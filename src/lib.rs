//! **dpta** — Dynamic Private Task Assignment under Differential
//! Privacy.
//!
//! A from-scratch Rust reproduction of Du et al., *Dynamic Private Task
//! Assignment under Differential Privacy* (ICDE 2023): the PA-TA
//! problem, the PPCF comparison function, the PUCE and PGT assignment
//! algorithms, every baseline they are evaluated against, and the full
//! experiment harness regenerating the paper's figures.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | crate | contents |
//! |---|---|
//! | [`spatial`] | points, service areas, grid index, distance matrices |
//! | [`dp`] | Laplace mechanism, PCF/PPCF, MLE effective pairs, ledgers |
//! | [`matching`] | Hungarian, greedy, rank matrices, CEA |
//! | [`core`] | the PA-TA model and the PUCE/PGT/PDCE/… engines |
//! | [`workloads`] | uniform/normal generators + Chengdu simulator |
//! | [`stream`] | arrival streams, windowing, online + sharded driving |
//! | [`experiments`] | figure registry, runner, reports, claims |
//!
//! # Quickstart
//!
//! ```
//! use dpta::prelude::*;
//!
//! // Three tasks, four workers, 2 km service radius.
//! let tasks: Vec<Task> = [(0.0, 0.0), (1.0, 1.0), (3.0, 0.5)]
//!     .iter()
//!     .map(|&(x, y)| Task::new(Point::new(x, y), 4.5))
//!     .collect();
//! let workers: Vec<Worker> = [(0.2, 0.1), (1.4, 0.8), (2.5, 0.2), (3.3, 1.0)]
//!     .iter()
//!     .map(|&(x, y)| Worker::new(Point::new(x, y), 2.0))
//!     .collect();
//!
//! // Each feasible pair owns a Z=3 privacy budget vector.
//! let inst = Instance::from_locations(tasks, workers, |_task, _worker| {
//!     BudgetVector::new(vec![0.5, 1.0, 1.5])
//! });
//!
//! // Run the paper's PUCE and inspect the outcome.
//! let outcome = Method::Puce.run(&inst, &RunParams::default());
//! assert!(outcome.assignment.len() > 0);
//! let m = measure(&inst, &outcome, 1.0, 1.0, true);
//! assert!(m.avg_utility().is_finite());
//!
//! // Every worker's local-DP level satisfies Theorem V.2.
//! outcome.board.verify_privacy_bounds(&inst);
//! ```
//!
//! # The engine API
//!
//! Every Table IX method is an [`AssignmentEngine`](core::engine::AssignmentEngine)
//! behind the [`Method`](core::Method) registry. Long-running callers
//! resolve the engine once and reuse it across batches — only the
//! noise source changes per run:
//!
//! ```
//! use dpta::prelude::*;
//!
//! let inst = Instance::from_locations(
//!     vec![Task::new(Point::new(0.0, 0.0), 4.5)],
//!     vec![Worker::new(Point::new(0.4, 0.3), 2.0)],
//!     |_, _| BudgetVector::new(vec![0.5, 1.0]),
//! );
//!
//! let params = RunParams::default();
//! let engine = Method::Puce.engine(&params); // Box<dyn AssignmentEngine>
//! assert_eq!(engine.name(), "PUCE");
//! assert!(engine.accounts_privacy() && engine.supports_warm_start());
//!
//! let noise = SeededNoise::new(params.seed);
//! let outcome = engine.run(&inst, &noise);
//!
//! // Trait dispatch and the Method::run convenience are bit-identical.
//! let direct = Method::Puce.run(&inst, &params);
//! assert_eq!(outcome.assignment, direct.assignment);
//! ```
//!
//! # The streaming pipeline
//!
//! The dynamic setting — arrivals over time, windowed batching, budget
//! depletion, sharded execution — lives in [`stream`]:
//!
//! ```
//! use dpta::prelude::*;
//!
//! let arrivals = StreamScenario::new(Scenario {
//!     batch_size: 30,
//!     n_batches: 2,
//!     ..Scenario::for_dataset(Dataset::Uniform)
//! })
//! .stream();
//! let cfg = StreamConfig::default();
//! let engine = Method::Puce.engine(&cfg.params);
//! let report = StreamDriver::new(engine.as_ref(), cfg).run(&arrivals);
//! report.assert_conservation(); // assigned + expired + pending = arrivals
//! ```
//!
//! See `examples/streaming.rs` for the full tour (windows, retirement,
//! sharding).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use dpta_core as core;
pub use dpta_dp as dp;
pub use dpta_experiments as experiments;
pub use dpta_matching as matching;
pub use dpta_spatial as spatial;
pub use dpta_stream as stream;
pub use dpta_workloads as workloads;

/// The names most programs need.
pub mod prelude {
    pub use dpta_core::metrics::{
        measure, relative_deviation_distance, relative_deviation_utility,
    };
    pub use dpta_core::{
        AssignmentEngine, Board, Instance, Measures, Method, RunOutcome, RunParams, Task, Worker,
    };
    pub use dpta_dp::{
        pcf, ppcf, BudgetLedger, BudgetVector, CumulativeAccountant, EffectivePair, LedgerState,
        PrivacyLedger, SeededNoise, WindowedAccountant,
    };
    pub use dpta_matching::Assignment;
    pub use dpta_spatial::{Circle, GridPartition, Point};
    pub use dpta_stream::{
        run_sharded, run_sharded_halo, run_sharded_with, AdmissionConfig, ArrivalModel,
        ArrivalStream, ConfigError, LedgerMode, Outcome, PacingConfig, ServiceModel,
        SessionSnapshot, ShardStrategy, ShardedSession, ShardedSnapshot, SnapshotError,
        StreamConfig, StreamConfigBuilder, StreamDriver, StreamReport, StreamScenario,
        StreamSession, WindowPolicy,
    };
    pub use dpta_workloads::{Dataset, Scenario};
}
