//! Paper-scale stress run: 1000-task batches with a worker-task ratio
//! of 2, i.e. the exact per-batch size of Section VII-B. Ignored by
//! default (several seconds per method); run with
//!
//! ```text
//! cargo test --release --test full_scale -- --ignored
//! ```

use dpta::prelude::*;
use std::time::Instant;

#[test]
#[ignore = "paper-scale run; invoke with -- --ignored"]
fn paper_scale_batches_run_clean_on_all_datasets() {
    for dataset in Dataset::all() {
        let scenario = Scenario {
            dataset,
            batch_size: 1000,
            n_batches: 2,
            ..Scenario::default()
        };
        let params = RunParams::default();
        for inst in &scenario.batches() {
            assert_eq!(inst.n_tasks(), 1000);
            assert_eq!(inst.n_workers(), 2000);
            for method in [Method::Puce, Method::Pdce, Method::Pgt, Method::Grd] {
                let started = Instant::now();
                let outcome = method.run(inst, &params);
                let elapsed = started.elapsed();
                outcome.assignment.check_consistent();
                outcome.board.verify_privacy_bounds(inst);
                let m = measure(inst, &outcome, 1.0, 1.0, method.is_private());
                assert!(m.matched > 0, "{dataset}/{method} matched nothing");
                assert!(
                    elapsed.as_secs() < 60,
                    "{dataset}/{method} took {elapsed:?} on one batch"
                );
                eprintln!(
                    "{dataset}/{method}: matched {} in {:?} ({} releases)",
                    m.matched, elapsed, m.publications
                );
            }
        }
    }
}
