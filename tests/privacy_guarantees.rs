//! End-to-end privacy guarantees: the Theorem V.2 / VI.4 accounting on
//! real protocol runs, and an empirical local-DP check of the release
//! mechanism itself.

use dpta::dp::{Laplace, NoiseSource, SeededNoise};
use dpta::prelude::*;

#[test]
fn ledgered_ldp_equals_radius_times_published_epsilon() {
    let scenario = Scenario {
        dataset: Dataset::Uniform,
        batch_size: 120,
        n_batches: 1,
        ..Scenario::default()
    };
    let inst = &scenario.batches()[0];
    let params = RunParams::default();
    for method in [Method::Puce, Method::Pdce, Method::Pgt] {
        let outcome = method.run(inst, &params);
        let bounds = outcome.board.verify_privacy_bounds(inst);
        for (j, bound) in bounds.iter().enumerate() {
            let expected = inst.workers()[j].radius * outcome.board.spent_total(j);
            assert!(
                (bound - expected).abs() < 1e-9,
                "{method}: worker {j} ledger {bound} != r*eps {expected}"
            );
        }
    }
}

#[test]
fn workers_only_release_within_their_service_area() {
    let scenario = Scenario {
        dataset: Dataset::Normal,
        batch_size: 150,
        n_batches: 1,
        ..Scenario::default()
    };
    let inst = &scenario.batches()[0];
    let params = RunParams::default();
    for method in [Method::Puce, Method::Pgt] {
        let outcome = method.run(inst, &params);
        for j in 0..inst.n_workers() {
            for t in outcome.board.ledger(j).tasks() {
                assert!(
                    inst.in_reach(t as usize, j),
                    "{method}: worker {j} leaked toward unreachable task {t}"
                );
                assert!(
                    inst.distance(t as usize, j) <= inst.workers()[j].radius,
                    "{method}: release outside radius"
                );
            }
        }
    }
}

#[test]
fn exhausted_budgets_are_never_overspent() {
    // Tiny budgets force exhaustion; the protocol must stop at Z
    // releases per pair.
    let scenario = Scenario {
        dataset: Dataset::Normal,
        batch_size: 100,
        n_batches: 1,
        budget_group_size: 2,
        worker_task_ratio: 3.0,
        ..Scenario::default()
    };
    let inst = &scenario.batches()[0];
    let params = RunParams::default();
    for method in [Method::Puce, Method::Pdce, Method::Pgt] {
        let outcome = method.run(inst, &params);
        for j in 0..inst.n_workers() {
            for &i in inst.reach(j) {
                assert!(
                    outcome.board.used_slots(i, j) <= 2,
                    "{method}: pair ({i},{j}) exceeded Z = 2"
                );
            }
        }
    }
}

#[test]
fn mechanism_noise_distribution_is_correct_laplace() {
    // The deterministic noise source must be statistically a Laplace
    // mechanism: empirical CDF at a few quantiles vs the closed form.
    let source = SeededNoise::new(7);
    let eps = 1.3;
    let dist = Laplace::mechanism(eps);
    let n = 40_000u32;
    for q in [-1.5f64, -0.5, 0.0, 0.5, 1.5] {
        let hits = (0..n)
            .filter(|&k| source.noise(k, k >> 7, k % 5, eps) <= q)
            .count();
        let emp = hits as f64 / n as f64;
        let theory = dist.cdf(q);
        assert!(
            (emp - theory).abs() < 0.01,
            "CDF mismatch at {q}: empirical {emp}, Laplace {theory}"
        );
    }
}

#[test]
fn unpublished_evaluations_leak_nothing() {
    // Two runs whose only difference is how often a worker *evaluates*
    // (not publishes) must produce identical boards. PGT evaluates every
    // candidate task but publishes only the accepted best response; the
    // noise for slot u is fixed, so re-evaluation is free. Check that a
    // replay from the converged board publishes nothing at all.
    let scenario = Scenario {
        dataset: Dataset::Chengdu,
        batch_size: 120,
        n_batches: 1,
        ..Scenario::default()
    };
    let inst = &scenario.batches()[0];
    let cfg = Method::Pgt.engine_config(&RunParams::default());
    let noise = SeededNoise::new(42);
    let first = dpta::core::engine::game::run(inst, &cfg, &noise);
    let publications = first.publications();
    let replay = dpta::core::engine::game::run_from(inst, &cfg, &noise, first.board.clone());
    assert_eq!(replay.publications(), publications, "replay must not leak");
    assert!(replay.moves.is_empty());
}
