//! Cross-crate integration: full pipelines from workload generation
//! through assignment to measurement, via the public facade only.

use dpta::experiments::{expectations, figures, runner, RunOptions};
use dpta::prelude::*;

fn tiny_opts() -> RunOptions {
    RunOptions {
        scale: 0.08, // 80-task batches
        n_batches: 2,
        params: RunParams::default(),
        n_seeds: 1,
        parallel: true,
    }
}

#[test]
fn every_dataset_runs_every_method_end_to_end() {
    for dataset in Dataset::all() {
        let scenario = Scenario {
            dataset,
            batch_size: 80,
            n_batches: 2,
            ..Scenario::default()
        };
        let params = RunParams::default();
        for inst in &scenario.batches() {
            for method in Method::all() {
                let outcome = method.run(inst, &params);
                outcome.assignment.check_consistent();
                outcome.board.verify_privacy_bounds(inst);
                let m = measure(inst, &outcome, 1.0, 1.0, method.is_private());
                assert!(m.avg_utility().is_finite(), "{dataset}/{method}");
                assert!(m.avg_distance() >= 0.0, "{dataset}/{method}");
                for (i, j) in outcome.assignment.pairs() {
                    assert!(inst.in_reach(i, j), "{dataset}/{method} out-of-range pair");
                }
            }
        }
    }
}

#[test]
fn figure_runner_covers_the_whole_registry() {
    // Structural smoke over every registered experiment at minimal
    // scale: panels exist, series are finite and complete.
    let opts = RunOptions {
        scale: 0.03,
        n_batches: 1,
        ..tiny_opts()
    };
    for spec in figures::registry() {
        // Only sample the sweep ends to keep the suite fast; the full
        // sweeps run in the experiments CLI and benches.
        let out = runner::run_figure(&spec, &opts);
        assert!(!out.tables.is_empty(), "{} produced no tables", spec.id);
        for t in &out.tables {
            assert_eq!(t.x_values.len(), 5, "{}", t.title);
            for (name, series) in &t.rows {
                assert_eq!(series.len(), 5, "{}/{name}", t.title);
                assert!(
                    series.iter().all(|v| v.is_finite()),
                    "{}/{name}: {series:?}",
                    t.title
                );
            }
        }
    }
}

#[test]
fn headline_claims_hold_at_test_scale() {
    // The paper's most load-bearing qualitative claims, checked on the
    // real harness at reduced scale. Larger-scale runs live in
    // EXPERIMENTS.md. Timing-based claims (fig04) need sequential
    // execution and a non-trivial instance to rise above scheduler
    // noise, so that figure gets its own options.
    for (id, opts) in [
        (
            "fig04",
            RunOptions {
                scale: 0.2,
                n_batches: 2,
                parallel: false,
                ..tiny_opts()
            },
        ),
        ("fig07", tiny_opts()),
        ("fig17", tiny_opts()),
    ] {
        let spec = figures::find(id).unwrap();
        let out = runner::run_figure(&spec, &opts);
        let claims = expectations::check(&spec, &out);
        assert!(!claims.is_empty(), "{id} produced no claims");
        let failed: Vec<_> = claims.iter().filter(|c| !c.holds).collect();
        assert!(
            failed.is_empty(),
            "{id} claims failed:\n{}",
            expectations::render(&claims)
        );
    }
}

#[test]
fn relative_deviation_wiring_matches_direct_computation() {
    let scenario = Scenario {
        dataset: Dataset::Normal,
        batch_size: 100,
        n_batches: 1,
        ..Scenario::default()
    };
    let inst = &scenario.batches()[0];
    let params = RunParams::default();
    let p = measure(inst, &Method::Puce.run(inst, &params), 1.0, 1.0, true);
    let np = measure(inst, &Method::Uce.run(inst, &params), 1.0, 1.0, false);
    let rd = relative_deviation_utility(&np, &p);
    assert!((rd - (np.avg_utility() - p.avg_utility()) / np.avg_utility()).abs() < 1e-12);
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let scenario = Scenario {
            dataset: Dataset::Chengdu,
            batch_size: 120,
            n_batches: 2,
            ..Scenario::default()
        };
        let params = RunParams::default();
        scenario
            .batches()
            .iter()
            .map(|inst| {
                let o = Method::Puce.run(inst, &params);
                (
                    o.assignment.pairs().collect::<Vec<_>>(),
                    o.publications(),
                    o.rounds,
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
