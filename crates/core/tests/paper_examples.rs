//! Replays of the paper's worked examples (Tables II–VIII, Examples
//! 2 and 3) against the real engines with scripted noise.
//!
//! The obfuscated releases of Table IV are injected by scripting the
//! Laplace noise to `release − d_{i,j}` per slot, so every effective
//! pair, utility value and allocation decision flows through the same
//! code paths as a production run.

use dpta_core::config::{CeaFallback, EngineConfig, RunParams};
use dpta_core::engine::{ce, game};
use dpta_core::{Board, Instance, Method, Task, Worker};
use dpta_dp::{BudgetVector, ScriptedNoise};
use dpta_spatial::{DistanceMatrix, Point};

/// Table III distances; rows = tasks t1..t3, columns = workers w1..w3.
fn table_iii() -> DistanceMatrix {
    DistanceMatrix::from_rows(&[
        &[12.2, 5.0, 9.43],
        &[3.61, 10.44, 18.25],
        &[17.12, 12.21, 7.28],
    ])
}

/// The budget vectors of Table IV, keyed by (task, worker).
fn budgets(task: usize, worker: usize) -> BudgetVector {
    let slots: &[f64] = match (task, worker) {
        (0, 0) => &[0.1, 0.3, 0.4],
        (0, 1) => &[4.6, 4.65, 4.8],
        (0, 2) => &[0.1, 0.4, 0.4],
        (1, 0) => &[6.99, 7.1, 7.2],
        (1, 1) => &[0.1, 0.2, 0.5],
        (2, 1) => &[0.1, 0.3, 0.4],
        (2, 2) => &[5.4, 5.5, 5.6],
        other => panic!("unexpected feasible pair {other:?}"),
    };
    BudgetVector::new(slots.to_vec())
}

/// The obfuscated releases of Table IV, per (task, worker, slot).
fn releases(task: usize, worker: usize) -> [f64; 3] {
    match (task, worker) {
        (0, 0) => [12.7, 12.4, 12.3],
        (0, 1) => [5.5, 5.3, 5.1],
        (0, 2) => [9.93, 9.63, 9.53],
        (1, 0) => [4.11, 4.01, 3.81],
        (1, 1) => [10.94, 10.64, 10.54],
        (2, 1) => [12.71, 12.51, 12.31],
        (2, 2) => [7.78, 7.58, 7.38],
        other => panic!("unexpected feasible pair {other:?}"),
    }
}

fn example_instance() -> Instance {
    Instance::from_distance_matrix(
        vec![
            Task::new(Point::ORIGIN, 12.4),
            Task::new(Point::ORIGIN, 11.0),
            Task::new(Point::ORIGIN, 13.0),
        ],
        vec![
            Worker::new(Point::ORIGIN, 15.0),
            Worker::new(Point::ORIGIN, 15.0),
            Worker::new(Point::ORIGIN, 10.0),
        ],
        table_iii(),
        budgets,
    )
}

/// Noise scripted so that publishing slot `u` of (i, j) produces exactly
/// the Table IV release.
fn scripted_noise(inst: &Instance) -> ScriptedNoise {
    let mut s = ScriptedNoise::new();
    for j in 0..inst.n_workers() {
        for &i in inst.reach(j) {
            let rel = releases(i, j);
            for (u, &r) in rel.iter().enumerate() {
                s.set(i as u32, j as u32, u as u32, r - inst.distance(i, j));
            }
        }
    }
    s
}

#[test]
fn effective_pairs_follow_table_iv_progression() {
    // Publishing the Table IV releases one by one must reproduce the
    // effective pairs the examples rely on (Table VIII timeline).
    let inst = example_instance();
    let mut board = Board::new(3, 3);
    board.publish(0, 0, 12.7, 0.1);
    assert_eq!(board.effective(0, 0).unwrap().distance, 12.7);
    board.publish(0, 0, 12.4, 0.3);
    let e = board.effective(0, 0).unwrap();
    assert_eq!((e.distance, e.epsilon), (12.4, 0.3));
    board.publish(0, 0, 12.3, 0.4);
    let e = board.effective(0, 0).unwrap();
    assert_eq!((e.distance, e.epsilon), (12.3, 0.4));

    board.publish(1, 0, 4.11, 6.99);
    board.publish(1, 0, 4.01, 7.1);
    let e = board.effective(1, 0).unwrap();
    assert_eq!((e.distance, e.epsilon), (4.01, 7.1));
    drop(inst);
}

#[test]
fn example_2_puce_cross_round_matches_paper_trace() {
    // The paper's Example 2 trace: round 1 collects the seven proposals
    // of Table V, CEA allocates t1 to w3 and resolves the {t2, t3}
    // conflict over w2 toward t3; t2 stays unallocated; round 2 produces
    // no proposals (w1's utilities are non-positive) and PUCE halts.
    let inst = example_instance();
    let noise = scripted_noise(&inst);
    let cfg = EngineConfig {
        fallback: CeaFallback::CrossRound,
        ..Method::Puce.engine_config(&RunParams::default())
    };
    let out = ce::run(&inst, &cfg, &noise);

    assert_eq!(out.assignment.worker_of(0), Some(2), "t1 -> w3");
    assert_eq!(out.assignment.worker_of(1), None, "t2 stays unallocated");
    assert_eq!(out.assignment.worker_of(2), Some(1), "t3 -> w2");
    assert_eq!(out.rounds, 2, "halt in the second round");
    // All seven slot-0 proposals of Table V were published, nothing more.
    assert_eq!(out.publications(), 7);

    // The board's effective pairs equal Table IV's first column.
    for j in 0..3 {
        for &i in inst.reach(j) {
            let e = out.board.effective(i, j).unwrap();
            assert_eq!(e.distance, releases(i, j)[0], "effective d ({i},{j})");
            assert_eq!(e.epsilon, budgets(i, j).slot(0), "effective eps ({i},{j})");
        }
    }
    out.board.verify_privacy_bounds(&inst);
}

#[test]
fn example_2_puce_within_round_completes_the_matching() {
    // Under the eager Section IV reading, the conflict loser t2 falls
    // back to its next candidate w1 within the same CEA invocation,
    // completing the matching.
    let inst = example_instance();
    let noise = scripted_noise(&inst);
    let cfg = EngineConfig {
        fallback: CeaFallback::WithinRound,
        ..Method::Puce.engine_config(&RunParams::default())
    };
    let out = ce::run(&inst, &cfg, &noise);
    assert_eq!(out.assignment.worker_of(0), Some(2), "t1 -> w3");
    assert_eq!(out.assignment.worker_of(1), Some(0), "t2 -> w1");
    assert_eq!(out.assignment.worker_of(2), Some(1), "t3 -> w2");
    assert_eq!(out.publications(), 7);
}

/// Warm-starts the board at the paper's k-th competition: every
/// matchable pair has its slot-0 release published and the winners are
/// t1:w1, t2:w2, t3:w3 (Table VII / VIII, column k).
fn example_3_board(inst: &Instance) -> Board {
    let mut board = Board::new(3, 3);
    for j in 0..inst.n_workers() {
        for &i in inst.reach(j) {
            board.publish(i, j, releases(i, j)[0], budgets(i, j).slot(0));
        }
    }
    board.set_winner(0, Some(0));
    board.set_winner(1, Some(1));
    board.set_winner(2, Some(2));
    board
}

#[test]
fn example_3_pgt_matches_paper_trace() {
    let inst = example_instance();
    let noise = scripted_noise(&inst);
    let cfg = EngineConfig {
        track_potential: true,
        ..Method::Pgt.engine_config(&RunParams::default())
    };
    let board = example_3_board(&inst);
    let out = game::run_from(&inst, &cfg, &noise, board);

    // Exactly two best responses are accepted:
    // (k+1) w1 abandons t1 and wins t2 with UT = 0.13;
    // (k+2) w2 wins the now-vacant t1 with UT = 2.45.
    // w3's only option has UT = −9.95 and is never published.
    assert_eq!(out.moves.len(), 2, "moves: {:?}", out.moves);
    let m0 = out.moves[0];
    assert_eq!((m0.worker, m0.from, m0.to), (0, Some(0), 1));
    assert!(
        (m0.utility_change - 0.13).abs() < 1e-9,
        "UT(k+1) = {}",
        m0.utility_change
    );
    let m1 = out.moves[1];
    assert_eq!((m1.worker, m1.from, m1.to), (1, None, 0));
    assert!(
        (m1.utility_change - 2.45).abs() < 1e-9,
        "UT(k+2) = {}",
        m1.utility_change
    );

    // Theorem VI.1: the potential increased by exactly UT each move
    // (asserted inside the engine because track_potential is on), and is
    // therefore strictly increasing across the trace.
    let p0 = m0.potential.unwrap();
    let p1 = m1.potential.unwrap();
    assert!(p1 > p0);

    // Final allocation = Table VII's (k+2)..(k+6) column.
    assert_eq!(out.assignment.worker_of(0), Some(1), "t1 -> w2");
    assert_eq!(out.assignment.worker_of(1), Some(0), "t2 -> w1");
    assert_eq!(out.assignment.worker_of(2), Some(2), "t3 -> w3");

    // Only the two accepted moves published (on top of the 7 warm-start
    // releases): failed evaluations publish neither distance nor budget.
    assert_eq!(out.publications(), 9);

    // The new effective pairs match Table VIII's red entries.
    let e = out.board.effective(1, 0).unwrap();
    assert_eq!((e.distance, e.epsilon), (4.01, 7.1));
    let e = out.board.effective(0, 1).unwrap();
    assert_eq!((e.distance, e.epsilon), (5.3, 4.65));
    // w3 published nothing new.
    let e = out.board.effective(0, 2).unwrap();
    assert_eq!((e.distance, e.epsilon), (9.93, 0.1));

    out.board.verify_privacy_bounds(&inst);
}

#[test]
fn example_3_pgt_cold_start_converges() {
    // Starting PGT from an empty board on the same instance must also
    // converge to a one-to-one matching with monotone potential.
    let inst = example_instance();
    let noise = scripted_noise(&inst);
    let cfg = EngineConfig {
        track_potential: true,
        ..Method::Pgt.engine_config(&RunParams::default())
    };
    let out = game::run(&inst, &cfg, &noise);
    out.assignment.check_consistent();
    let potentials: Vec<f64> = out.moves.iter().map(|m| m.potential.unwrap()).collect();
    for w in potentials.windows(2) {
        assert!(
            w[1] > w[0],
            "potential must strictly increase: {potentials:?}"
        );
    }
    for m in &out.moves {
        assert!(m.utility_change > 0.0);
    }
    out.board.verify_privacy_bounds(&inst);
}

#[test]
fn example_instance_ldp_matches_theorem_v2() {
    // Theorem V.2: worker w_j's LDP level is r_j · Σ published ε. For the
    // cross-round Example 2 run: w1 published 0.1 (t1) + 6.99 (t2) with
    // r = 15 => 106.35; w2 published 4.6 + 0.1 + 0.1 with r = 15 => 72;
    // w3 published 0.1 + 5.4 with r = 10 => 55.
    let inst = example_instance();
    let noise = scripted_noise(&inst);
    let cfg = Method::Puce.engine_config(&RunParams::default());
    let out = ce::run(&inst, &cfg, &noise);
    let bounds = out.board.verify_privacy_bounds(&inst);
    assert!(
        (bounds[0] - 15.0 * (0.1 + 6.99)).abs() < 1e-9,
        "w1: {}",
        bounds[0]
    );
    assert!(
        (bounds[1] - 15.0 * (4.6 + 0.1 + 0.1)).abs() < 1e-9,
        "w2: {}",
        bounds[1]
    );
    assert!(
        (bounds[2] - 10.0 * (0.1 + 5.4)).abs() < 1e-9,
        "w3: {}",
        bounds[2]
    );
}
