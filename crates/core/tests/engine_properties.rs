//! Cross-cutting engine properties on randomized instances: validity,
//! determinism, termination, privacy accounting, and the expected
//! dominance relations between methods.

use dpta_core::config::{CeaFallback, ProposalAccounting, RunParams};
use dpta_core::metrics::measure;
use dpta_core::{Instance, Method, Task, Worker};
use dpta_dp::BudgetVector;
use dpta_spatial::Point;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A random PA-TA instance in a `side × side` km frame.
fn random_instance(
    seed: u64,
    n_tasks: usize,
    n_workers: usize,
    side: f64,
    radius: f64,
    task_value: f64,
    z: usize,
) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let tasks: Vec<Task> = (0..n_tasks)
        .map(|_| {
            Task::new(
                Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)),
                task_value,
            )
        })
        .collect();
    let workers: Vec<Worker> = (0..n_workers)
        .map(|_| {
            Worker::new(
                Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)),
                radius,
            )
        })
        .collect();
    let mut brng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    Instance::from_locations(tasks, workers, |_i, _j| {
        BudgetVector::new((0..z).map(|_| brng.gen_range(0.5..1.75)).collect())
    })
}

fn default_instance(seed: u64) -> Instance {
    random_instance(seed, 40, 80, 10.0, 1.4, 4.5, 7)
}

#[test]
fn all_methods_produce_valid_assignments() {
    let inst = default_instance(1);
    let params = RunParams::default();
    for m in Method::all() {
        let out = m.run(&inst, &params);
        out.assignment.check_consistent();
        // Matched pairs must respect service areas.
        for (i, j) in out.assignment.pairs() {
            assert!(inst.in_reach(i, j), "{m}: pair ({i},{j}) out of range");
        }
        // Privacy accounting holds for every method (trivially for
        // non-private ones, which publish zero-noise releases).
        out.board.verify_privacy_bounds(&inst);
    }
}

#[test]
fn runs_are_deterministic_given_seed() {
    let inst = default_instance(2);
    let params = RunParams::with_seed(77);
    for m in Method::all() {
        let a = m.run(&inst, &params);
        let b = m.run(&inst, &params);
        assert_eq!(a.assignment, b.assignment, "{m} is not deterministic");
        assert_eq!(a.publications(), b.publications());
        assert_eq!(a.rounds, b.rounds);
    }
}

#[test]
fn different_seeds_change_private_outcomes_only() {
    let inst = default_instance(3);
    let a = RunParams::with_seed(1);
    let b = RunParams::with_seed(2);
    // Non-private methods ignore the noise seed entirely.
    for m in [
        Method::Uce,
        Method::Dce,
        Method::Gt,
        Method::Grd,
        Method::Optimal,
    ] {
        assert_eq!(
            m.run(&inst, &a).assignment,
            m.run(&inst, &b).assignment,
            "{m} must not depend on the seed"
        );
    }
}

#[test]
fn optimal_dominates_every_non_private_method_on_utility() {
    for seed in [5, 6, 7] {
        let inst = default_instance(seed);
        let params = RunParams::default();
        let opt = measure(&inst, &Method::Optimal.run(&inst, &params), 1.0, 1.0, false);
        for m in [Method::Uce, Method::Dce, Method::Gt, Method::Grd] {
            let got = measure(&inst, &m.run(&inst, &params), 1.0, 1.0, false);
            assert!(
                got.total_utility <= opt.total_utility + 1e-9,
                "seed {seed}: {m} utility {} beats optimal {}",
                got.total_utility,
                opt.total_utility
            );
        }
    }
}

#[test]
fn dce_minimises_distance_better_than_uce_on_average() {
    // The distance-objective CE should not travel farther than the
    // utility-objective CE when averaged over several instances
    // (per-instance inversions are possible; Figures 11–16 report the
    // aggregate relationship).
    let params = RunParams::default();
    let (mut d_dce, mut d_uce, mut n) = (0.0, 0.0, 0);
    for seed in 10..16 {
        let inst = default_instance(seed);
        let dce = measure(&inst, &Method::Dce.run(&inst, &params), 1.0, 1.0, false);
        let uce = measure(&inst, &Method::Uce.run(&inst, &params), 1.0, 1.0, false);
        if dce.matched > 0 && uce.matched > 0 {
            d_dce += dce.avg_distance();
            d_uce += uce.avg_distance();
            n += 1;
        }
    }
    assert!(n >= 3, "not enough populated instances");
    assert!(
        d_dce <= d_uce + 1e-9,
        "avg distance DCE {d_dce} should not exceed UCE {d_uce}"
    );
}

#[test]
fn non_private_beats_private_on_utility_in_aggregate() {
    // Relative deviation of utility is positive in the paper's plots:
    // obfuscation and privacy cost can only hurt. Check the aggregate
    // over several seeds for the CE family.
    let params = RunParams::default();
    let (mut up, mut unp) = (0.0, 0.0);
    for seed in 20..26 {
        let inst = default_instance(seed);
        up += measure(&inst, &Method::Puce.run(&inst, &params), 1.0, 1.0, true).total_utility;
        unp += measure(&inst, &Method::Uce.run(&inst, &params), 1.0, 1.0, false).total_utility;
    }
    assert!(
        unp >= up,
        "non-private UCE total utility {unp} must be >= private PUCE {up}"
    );
}

#[test]
fn publications_never_exceed_total_budget_slots() {
    let inst = default_instance(30);
    let params = RunParams::default();
    let max_slots: usize = (0..inst.n_workers())
        .map(|j| {
            inst.reach(j)
                .iter()
                .map(|&i| inst.budget(i, j).unwrap().len())
                .sum::<usize>()
        })
        .sum();
    for m in [Method::Puce, Method::Pdce, Method::Pgt] {
        let out = m.run(&inst, &params);
        assert!(
            out.publications() <= max_slots,
            "{m} published {} > {max_slots}",
            out.publications()
        );
        // And per pair, never more than Z releases.
        for j in 0..inst.n_workers() {
            for &i in inst.reach(j) {
                assert!(out.board.used_slots(i, j) <= inst.budget(i, j).unwrap().len());
            }
        }
    }
}

#[test]
fn empty_and_degenerate_instances() {
    let params = RunParams::default();
    // Empty.
    let empty = Instance::from_locations(vec![], vec![], |_, _| BudgetVector::new(vec![1.0]));
    for m in Method::all() {
        let out = m.run(&empty, &params);
        assert!(out.assignment.is_empty(), "{m} on empty instance");
    }
    // Workers that reach nothing.
    let unreachable = Instance::from_locations(
        vec![Task::new(Point::new(0.0, 0.0), 4.5)],
        vec![Worker::new(Point::new(100.0, 100.0), 1.0)],
        |_, _| BudgetVector::new(vec![1.0]),
    );
    for m in Method::all() {
        let out = m.run(&unreachable, &params);
        assert!(out.assignment.is_empty(), "{m} with unreachable task");
        assert_eq!(out.publications(), 0, "{m} must not publish out of range");
    }
    // A task whose value cannot cover the distance: utility methods
    // leave it unmatched.
    let unprofitable = Instance::from_locations(
        vec![Task::new(Point::new(0.0, 0.0), 0.5)],
        vec![Worker::new(Point::new(1.0, 0.0), 2.0)],
        |_, _| BudgetVector::new(vec![1.0]),
    );
    for m in [
        Method::Puce,
        Method::Uce,
        Method::Grd,
        Method::Optimal,
        Method::Pgt,
        Method::Gt,
    ] {
        let out = m.run(&unprofitable, &params);
        assert!(out.assignment.is_empty(), "{m} must skip unprofitable task");
    }
}

#[test]
fn single_pair_happy_path() {
    let params = RunParams::default();
    let inst = Instance::from_locations(
        vec![Task::new(Point::new(0.0, 0.0), 10.0)],
        vec![Worker::new(Point::new(0.5, 0.0), 2.0)],
        |_, _| BudgetVector::new(vec![1.0, 1.0]),
    );
    for m in Method::all() {
        let out = m.run(&inst, &params);
        assert_eq!(
            out.assignment.worker_of(0),
            Some(0),
            "{m} must match the single profitable pair"
        );
    }
}

#[test]
fn accounting_and_fallback_knobs_change_behaviour_but_stay_valid() {
    let inst = default_instance(40);
    for accounting in [ProposalAccounting::PerTask, ProposalAccounting::Cumulative] {
        for fallback in [CeaFallback::CrossRound, CeaFallback::WithinRound] {
            let params = RunParams {
                accounting,
                fallback,
                ..RunParams::default()
            };
            for m in [Method::Puce, Method::Pdce] {
                let out = m.run(&inst, &params);
                out.assignment.check_consistent();
                out.board.verify_privacy_bounds(&inst);
                for (i, j) in out.assignment.pairs() {
                    assert!(inst.in_reach(i, j));
                }
            }
        }
    }
}

#[test]
fn cumulative_accounting_publishes_no_more_than_per_task() {
    // Charging the whole ledger in each proposal decision makes workers
    // strictly more conservative.
    let mut per_task = 0usize;
    let mut cumulative = 0usize;
    for seed in 50..55 {
        let inst = default_instance(seed);
        let a = RunParams {
            accounting: ProposalAccounting::PerTask,
            ..RunParams::default()
        };
        let b = RunParams {
            accounting: ProposalAccounting::Cumulative,
            ..RunParams::default()
        };
        per_task += Method::Puce.run(&inst, &a).publications();
        cumulative += Method::Puce.run(&inst, &b).publications();
    }
    assert!(
        cumulative <= per_task,
        "cumulative accounting published {cumulative} > per-task {per_task}"
    );
}

#[test]
fn pgt_moves_all_have_positive_utility_and_monotone_potential() {
    let inst = default_instance(60);
    let cfg = dpta_core::config::EngineConfig {
        track_potential: true,
        ..Method::Pgt.engine_config(&RunParams::default())
    };
    let noise = dpta_dp::SeededNoise::new(42);
    let out = dpta_core::engine::game::run(&inst, &cfg, &noise);
    assert!(!out.moves.is_empty(), "expected at least one move");
    let mut last = f64::NEG_INFINITY;
    for m in &out.moves {
        assert!(m.utility_change > 0.0);
        let p = m.potential.unwrap();
        assert!(p > last, "potential must strictly increase");
        last = p;
    }
}

#[test]
fn grd_matches_hungarian_on_conflict_free_instances() {
    // When every worker reaches exactly one task and vice versa, greedy
    // and optimal coincide.
    let tasks: Vec<Task> = (0..5)
        .map(|k| Task::new(Point::new(10.0 * k as f64, 0.0), 4.5))
        .collect();
    let workers: Vec<Worker> = (0..5)
        .map(|k| Worker::new(Point::new(10.0 * k as f64 + 0.3, 0.0), 1.0))
        .collect();
    let inst = Instance::from_locations(tasks, workers, |_, _| BudgetVector::new(vec![1.0]));
    let params = RunParams::default();
    let grd = Method::Grd.run(&inst, &params);
    let opt = Method::Optimal.run(&inst, &params);
    assert_eq!(grd.assignment, opt.assignment);
    assert_eq!(grd.assignment.len(), 5);
}
