//! Property-based testing of the engines on randomly generated tiny
//! instances: whatever the geometry, values and budgets, every method
//! must produce a consistent, in-range, budget-respecting, deterministic
//! outcome, and the known dominance relations must hold.

use dpta_core::config::{CeaFallback, ProposalAccounting, RunParams};
use dpta_core::metrics::measure;
use dpta_core::{Instance, Method, Task, Worker};
use dpta_dp::BudgetVector;
use dpta_spatial::Point;
use proptest::prelude::*;

/// Strategy: a small random instance with 1–8 tasks and 1–10 workers in
/// a 6×6 km box, random radii, values and budget vectors.
fn instances() -> impl Strategy<Value = Instance> {
    let task = (0.0f64..6.0, 0.0f64..6.0, 0.5f64..8.0)
        .prop_map(|(x, y, v)| Task::new(Point::new(x, y), v));
    let worker = (0.0f64..6.0, 0.0f64..6.0, 0.3f64..4.0)
        .prop_map(|(x, y, r)| Worker::new(Point::new(x, y), r));
    let budgets = proptest::collection::vec(0.2f64..2.0, 1..5);
    (
        proptest::collection::vec(task, 1..8),
        proptest::collection::vec(worker, 1..10),
        budgets,
        any::<u64>(),
    )
        .prop_map(|(tasks, workers, budget_slots, _salt)| {
            Instance::from_locations(tasks, workers, |_i, _j| {
                BudgetVector::new(budget_slots.clone())
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn invariants_hold_for_every_method(inst in instances(), seed in 0u64..1000) {
        let params = RunParams::with_seed(seed);
        for method in Method::all() {
            let out = method.run(&inst, &params);
            out.assignment.check_consistent();
            out.board.verify_privacy_bounds(&inst);
            for (i, j) in out.assignment.pairs() {
                prop_assert!(inst.in_reach(i, j), "{method} out-of-range");
            }
            for j in 0..inst.n_workers() {
                for &i in inst.reach(j) {
                    prop_assert!(
                        out.board.used_slots(i, j) <= inst.budget(i, j).unwrap().len(),
                        "{method} overspent pair ({i},{j})"
                    );
                }
            }
            // Non-private methods must not put any budget on the ledger.
            if !method.is_private() {
                let total: f64 = (0..inst.n_workers())
                    .map(|j| out.board.spent_total(j))
                    .sum();
                // They still publish zero-noise releases with positive ε
                // (UCE/DCE/GT), but their measured utility must ignore it.
                let m = measure(&inst, &out, 1.0, 1.0, false);
                prop_assert!(m.total_utility.is_finite());
                let _ = total;
            }
        }
    }

    #[test]
    fn determinism_across_configurations(
        inst in instances(),
        seed in 0u64..100,
        per_task in any::<bool>(),
        within in any::<bool>(),
    ) {
        let params = RunParams {
            seed,
            accounting: if per_task { ProposalAccounting::PerTask } else { ProposalAccounting::Cumulative },
            fallback: if within { CeaFallback::WithinRound } else { CeaFallback::CrossRound },
            ..RunParams::default()
        };
        for method in [Method::Puce, Method::Pdce, Method::Pgt, Method::GeoI] {
            let a = method.run(&inst, &params);
            let b = method.run(&inst, &params);
            prop_assert_eq!(a.publications(), b.publications());
            prop_assert_eq!(a.assignment, b.assignment, "{} not deterministic", method);
        }
    }

    #[test]
    fn optimal_upper_bounds_all_non_private(inst in instances()) {
        let params = RunParams::default();
        let opt = measure(&inst, &Method::Optimal.run(&inst, &params), 1.0, 1.0, false);
        for method in [Method::Uce, Method::Dce, Method::Gt, Method::Grd] {
            let got = measure(&inst, &method.run(&inst, &params), 1.0, 1.0, false);
            prop_assert!(
                got.total_utility <= opt.total_utility + 1e-9,
                "{} {} beats optimum {}", method, got.total_utility, opt.total_utility
            );
        }
    }

    #[test]
    fn matched_pairs_of_utility_methods_have_positive_base_utility(
        inst in instances(), seed in 0u64..100
    ) {
        // PUCE's line-7 gate: a worker only proposes when
        // v_i − f_d(d) − f_p(spend) > 0, so in particular v_i > f_d(d)
        // for every matched pair of the utility objective.
        let params = RunParams::with_seed(seed);
        for method in [Method::Puce, Method::Uce, Method::Grd] {
            let out = method.run(&inst, &params);
            for (i, j) in out.assignment.pairs() {
                prop_assert!(
                    inst.task_value(i) - inst.distance(i, j) > 0.0,
                    "{method}: matched pair ({i},{j}) has non-positive base utility"
                );
            }
        }
    }

    #[test]
    fn game_engine_never_decreases_potential(inst in instances(), seed in 0u64..100) {
        let cfg = dpta_core::config::EngineConfig {
            track_potential: true,
            ..Method::Pgt.engine_config(&RunParams::with_seed(seed))
        };
        let noise = dpta_dp::SeededNoise::new(seed);
        let out = dpta_core::engine::game::run(&inst, &cfg, &noise);
        let mut last = f64::NEG_INFINITY;
        for m in &out.moves {
            prop_assert!(m.utility_change > 0.0);
            let p = m.potential.unwrap();
            prop_assert!(p > last);
            last = p;
        }
    }
}

#[test]
fn obfuscated_optimal_is_dominated_by_true_optimal() {
    // The Section V strawman pays a full round of budget and matches on
    // noisy estimates: over several seeds its measured (real-distance)
    // utility must not beat the true optimum, and typically trails PUCE.
    let mut rng_seed = 0u64;
    let mut popt_total = 0.0;
    let mut opt_total = 0.0;
    for _ in 0..6 {
        rng_seed += 1;
        let inst = {
            use rand::{rngs::StdRng, Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(rng_seed);
            let tasks: Vec<Task> = (0..25)
                .map(|_| {
                    Task::new(
                        Point::new(rng.gen_range(0.0..8.0), rng.gen_range(0.0..8.0)),
                        4.5,
                    )
                })
                .collect();
            let workers: Vec<Worker> = (0..50)
                .map(|_| {
                    Worker::new(
                        Point::new(rng.gen_range(0.0..8.0), rng.gen_range(0.0..8.0)),
                        1.8,
                    )
                })
                .collect();
            let mut brng = StdRng::seed_from_u64(rng_seed ^ 0xAA);
            Instance::from_locations(tasks, workers, |_, _| {
                BudgetVector::new((0..7).map(|_| brng.gen_range(0.5..1.75)).collect())
            })
        };
        let params = RunParams::default();
        popt_total += measure(
            &inst,
            &Method::ObfuscatedOptimal.run(&inst, &params),
            1.0,
            1.0,
            true,
        )
        .total_utility;
        opt_total +=
            measure(&inst, &Method::Optimal.run(&inst, &params), 1.0, 1.0, false).total_utility;
    }
    assert!(
        popt_total < opt_total,
        "P-OPT ({popt_total}) must trail the true optimum ({opt_total})"
    );
}

#[test]
fn geoi_charges_exactly_one_location_release_per_active_worker() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(5);
    let tasks: Vec<Task> = (0..20)
        .map(|_| {
            Task::new(
                Point::new(rng.gen_range(0.0..6.0), rng.gen_range(0.0..6.0)),
                4.5,
            )
        })
        .collect();
    let workers: Vec<Worker> = (0..30)
        .map(|_| {
            Worker::new(
                Point::new(rng.gen_range(0.0..6.0), rng.gen_range(0.0..6.0)),
                2.0,
            )
        })
        .collect();
    let inst = Instance::from_locations(tasks, workers, |_, _| BudgetVector::new(vec![0.8, 1.0]));
    let out = Method::GeoI.run(&inst, &RunParams::default());
    for j in 0..inst.n_workers() {
        let expected = usize::from(!inst.reach(j).is_empty());
        assert_eq!(
            out.board.ledger(j).publications(),
            expected,
            "worker {j} must publish exactly {expected} location release(s)"
        );
        if expected == 1 {
            // The charged budget is the mean first slot = 0.8.
            assert!((out.board.spent_total(j) - 0.8).abs() < 1e-12);
        }
    }
    out.board.verify_privacy_bounds(&inst);
}

#[test]
fn attack_on_geoi_finds_no_anchors() {
    use dpta_core::attack::worker_observations;
    let inst = Instance::from_locations(
        vec![Task::new(Point::new(0.0, 0.0), 5.0); 4],
        vec![Worker::new(Point::new(0.5, 0.5), 2.0)],
        |_, _| BudgetVector::new(vec![1.0]),
    );
    let out = Method::GeoI.run(&inst, &RunParams::default());
    assert!(worker_observations(&inst, &out.board, 0).is_empty());
}
