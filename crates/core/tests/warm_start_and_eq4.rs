//! Focused behavioural tests: warm-started protocol runs, and the
//! Equation 4 utility→distance transformation actually changing
//! decisions when task values (and hence utilities) diverge from pure
//! distances.

use dpta_core::config::{EngineConfig, RunParams};
use dpta_core::engine::{ce, game};
use dpta_core::{Board, Instance, Method, Task, Worker};
use dpta_dp::{BudgetVector, ScriptedNoise, SeededNoise};
use dpta_spatial::{DistanceMatrix, Point};

/// Two tasks with very different values, two workers at equal-ish
/// distances. Distance-objective and utility-objective engines must
/// disagree on who gets what.
fn value_skewed_instance() -> Instance {
    // d(t0, w0) = 1.0, d(t0, w1) = 1.1; d(t1, w0) = 1.1, d(t1, w1) = 1.0.
    let dist = DistanceMatrix::from_rows(&[&[1.0, 1.1], &[1.1, 1.0]]);
    Instance::from_distance_matrix(
        vec![
            Task::new(Point::ORIGIN, 10.0), // valuable task
            Task::new(Point::ORIGIN, 1.5),  // barely worth serving
        ],
        vec![
            Worker::new(Point::ORIGIN, 5.0),
            Worker::new(Point::ORIGIN, 5.0),
        ],
        dist,
        |_, _| BudgetVector::new(vec![0.3, 0.3, 0.3]),
    )
}

#[test]
fn utility_and_distance_objectives_can_disagree() {
    let inst = value_skewed_instance();
    let params = RunParams::default();
    // Non-private so the comparison is exact and the test deterministic
    // in intent, not just in seed.
    let uce = Method::Uce.run(&inst, &params);
    let dce = Method::Dce.run(&inst, &params);
    // DCE pairs everyone at their nearest (both tasks matched);
    // UCE also matches both, but must give t0 its nearest worker first —
    // and crucially it must never leave the valuable t0 unmatched.
    assert_eq!(
        uce.assignment.worker_of(0),
        Some(0),
        "valuable task takes w0"
    );
    assert_eq!(dce.assignment.worker_of(0), Some(0));
    // The low-value task t1: UCE only matches it if utility stays
    // positive (1.5 − 1.0 > 0: yes).
    assert_eq!(uce.assignment.worker_of(1), Some(1));
}

#[test]
fn eq4_shift_lets_a_farther_worker_win_a_valuable_task() {
    // Private PUCE with scripted zero noise: worker 1 is farther from
    // t0 but has spent nothing, while the incumbent worker 0 has burned
    // budget; Eq. 4's shift makes the comparison utility-aware.
    let dist = DistanceMatrix::from_rows(&[&[1.0, 1.2]]);
    let inst = Instance::from_distance_matrix(
        vec![Task::new(Point::ORIGIN, 8.0)],
        vec![
            Worker::new(Point::ORIGIN, 5.0),
            Worker::new(Point::ORIGIN, 5.0),
        ],
        dist,
        |_i, j| {
            if j == 0 {
                // Worker 0's proposals are expensive.
                BudgetVector::new(vec![3.0, 3.0])
            } else {
                BudgetVector::new(vec![0.1, 0.1])
            }
        },
    );
    let noise = ScriptedNoise::new(); // zero noise: d̂ == d
    let cfg = Method::Puce.engine_config(&RunParams::default());
    let out = ce::run(&inst, &cfg, &noise);
    // Estimated utilities: w0: 8 − 1.0 − 3.0 = 4.0; w1: 8 − 1.2 − 0.1 = 6.7.
    // Despite the larger distance, w1 must take the task.
    assert_eq!(out.assignment.worker_of(0), Some(1));

    // Sanity: the distance objective (PDCE) picks the nearer worker 0.
    let cfg = Method::Pdce.engine_config(&RunParams::default());
    let out = ce::run(&inst, &cfg, &noise);
    assert_eq!(out.assignment.worker_of(0), Some(0));
}

#[test]
fn warm_started_ce_respects_existing_winners() {
    // Pre-assign the only task to worker 0 with a published release;
    // a fresh run from that board must keep the incumbent when no
    // challenger can beat him.
    let dist = DistanceMatrix::from_rows(&[&[1.0, 3.0]]);
    let inst = Instance::from_distance_matrix(
        vec![Task::new(Point::ORIGIN, 5.0)],
        vec![
            Worker::new(Point::ORIGIN, 5.0),
            Worker::new(Point::ORIGIN, 5.0),
        ],
        dist,
        |_, _| BudgetVector::new(vec![1.0, 1.0]),
    );
    let mut board = Board::new(1, 2);
    board.publish(0, 0, 1.0, 1.0);
    board.set_winner(0, Some(0));

    let noise = ScriptedNoise::new();
    let cfg = Method::Puce.engine_config(&RunParams::default());
    let out = ce::run_from(&inst, &cfg, &noise, board);
    assert_eq!(
        out.assignment.worker_of(0),
        Some(0),
        "incumbent must survive"
    );
    // The challenger w1 (distance 3 > 1) may have probed but cannot win.
}

#[test]
fn warm_started_game_is_stable_at_equilibrium() {
    // Converge once, then re-run from the converged board with the same
    // deterministic noise: zero further moves, zero further leakage.
    let inst = value_skewed_instance();
    let cfg = EngineConfig {
        track_potential: true,
        ..Method::Pgt.engine_config(&RunParams::default())
    };
    let noise = SeededNoise::new(9);
    let first = game::run(&inst, &cfg, &noise);
    let before = first.publications();
    let replay = game::run_from(&inst, &cfg, &noise, first.board.clone());
    assert!(replay.moves.is_empty());
    assert_eq!(replay.publications(), before);
    assert_eq!(replay.assignment, first.assignment);
}

#[test]
fn pgt_prefers_the_high_value_task() {
    // A single worker in range of both tasks must best-respond to the
    // valuable one.
    let dist = DistanceMatrix::from_rows(&[&[1.0], &[1.0]]);
    let inst = Instance::from_distance_matrix(
        vec![Task::new(Point::ORIGIN, 9.0), Task::new(Point::ORIGIN, 2.0)],
        vec![Worker::new(Point::ORIGIN, 5.0)],
        dist,
        |_, _| BudgetVector::new(vec![0.2]),
    );
    let noise = ScriptedNoise::new();
    let cfg = Method::Pgt.engine_config(&RunParams::default());
    let out = game::run(&inst, &cfg, &noise);
    assert_eq!(out.assignment.task_of(0), Some(0), "worker must hold t0");
    // And he must not have wasted budget probing t1 (budget spent only
    // where published; evaluating t1 was free).
    assert_eq!(out.board.used_slots(1, 0), 0);
}

#[test]
fn ce_engine_counts_rounds_conservatively() {
    // Rounds are bounded by total slots + 1 by construction; make sure a
    // healthy run stays well under its cap and actually terminates by
    // quiescence (no proposals), not by the defensive cap.
    let inst = value_skewed_instance();
    let params = RunParams::default();
    for m in [Method::Puce, Method::Pdce] {
        let out = m.run(&inst, &params);
        let total_slots: usize = (0..inst.n_workers())
            .map(|j| {
                inst.reach(j)
                    .iter()
                    .map(|&i| inst.budget(i, j).unwrap().len())
                    .sum::<usize>()
            })
            .sum();
        assert!(out.rounds <= total_slots + 1, "{m} rounds {}", out.rounds);
    }
}
