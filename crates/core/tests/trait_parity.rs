//! Golden parity: for a fixed seed, every [`Method`] run through the
//! [`AssignmentEngine`] trait dispatch (`Method::run` →
//! `engine::build` → boxed trait object) must produce a bit-identical
//! outcome to a direct, concretely-typed engine call. This pins the
//! refactor invariant that the registry layer adds dispatch only — no
//! behaviour.

use dpta_core::config::RunParams;
use dpta_core::engine::{baseline, ce, game, location, AssignmentEngine};
use dpta_core::metrics::measure;
use dpta_core::{Board, Instance, Method, RunOutcome, Task, Worker};
use dpta_dp::{BudgetVector, SeededNoise};
use dpta_spatial::Point;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A mid-sized random instance exercising every engine code path:
/// conflicts, budget exhaustion, unreachable workers.
fn golden_instance(seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let tasks: Vec<Task> = (0..30)
        .map(|_| {
            Task::new(
                Point::new(rng.gen_range(0.0..9.0), rng.gen_range(0.0..9.0)),
                rng.gen_range(2.0..6.0),
            )
        })
        .collect();
    let workers: Vec<Worker> = (0..60)
        .map(|_| {
            Worker::new(
                Point::new(rng.gen_range(0.0..9.0), rng.gen_range(0.0..9.0)),
                rng.gen_range(0.8..2.2),
            )
        })
        .collect();
    let mut brng = StdRng::seed_from_u64(seed ^ 0xB00C);
    Instance::from_locations(tasks, workers, |_, _| {
        BudgetVector::new((0..7).map(|_| brng.gen_range(0.5..1.75)).collect())
    })
}

/// Runs `method` by constructing its engine family concretely — no
/// `Method::engine` / `engine::build` involved.
fn direct_run(method: Method, inst: &Instance, params: &RunParams) -> RunOutcome {
    let cfg = method.engine_config(params);
    let noise = SeededNoise::new(params.seed);
    match method {
        Method::Puce
        | Method::PuceNppcf
        | Method::Pdce
        | Method::PdceNppcf
        | Method::Uce
        | Method::Dce => ce::CeEngine::from_config(cfg).run(inst, &noise),
        Method::Pgt | Method::Gt => game::GameEngine::from_config(cfg).run(inst, &noise),
        Method::Grd => baseline::GreedyEngine::from_config(cfg).run(inst, &noise),
        Method::Optimal => baseline::HungarianEngine::from_config(cfg).run(inst, &noise),
        Method::GeoI => location::GeoIEngine::from_config(cfg).run(inst, &noise),
        Method::ObfuscatedOptimal => {
            baseline::ObfuscatedOptimalEngine::from_config(cfg).run(inst, &noise)
        }
    }
}

/// Bit-identical comparison of two outcomes over `inst`, including the
/// derived Section VII-C measures (exact f64 equality — the runs must
/// replay the same noise draws in the same order).
fn assert_outcomes_identical(
    label: &str,
    inst: &Instance,
    a: &RunOutcome,
    b: &RunOutcome,
    private: bool,
) {
    assert_eq!(a.assignment, b.assignment, "{label}: assignment differs");
    assert_eq!(a.rounds, b.rounds, "{label}: round count differs");
    assert_eq!(a.moves, b.moves, "{label}: move trace differs");
    assert_eq!(
        a.publications(),
        b.publications(),
        "{label}: publication count differs"
    );
    for j in 0..inst.n_workers() {
        assert_eq!(
            a.board.spent_total(j),
            b.board.spent_total(j),
            "{label}: worker {j} budget spend differs"
        );
    }
    for j in 0..inst.n_workers() {
        for &i in inst.reach(j) {
            assert_eq!(
                a.board.effective(i, j),
                b.board.effective(i, j),
                "{label}: effective pair ({i},{j}) differs"
            );
        }
    }
    let ma = measure(inst, a, 1.0, 1.0, private);
    let mb = measure(inst, b, 1.0, 1.0, private);
    assert_eq!(ma, mb, "{label}: measures differ");
}

#[test]
fn trait_dispatch_matches_direct_engine_calls_for_every_method() {
    let inst = golden_instance(0xD0_17A);
    for seed in [7u64, 42, 1234] {
        let params = RunParams::with_seed(seed);
        for method in Method::all() {
            let via_trait = method.run(&inst, &params);
            let direct = direct_run(method, &inst, &params);
            assert_outcomes_identical(
                &format!("{method} (seed {seed})"),
                &inst,
                &via_trait,
                &direct,
                method.is_private(),
            );
        }
    }
}

#[test]
fn boxed_engine_reuse_matches_fresh_dispatch() {
    // The experiment runner resolves one boxed engine and reuses it
    // across batches and seeds; reuse must not leak state between runs.
    let inst = golden_instance(0xBEEF);
    let params = RunParams::with_seed(9);
    for method in Method::all() {
        let engine = method.engine(&params);
        let noise = SeededNoise::new(params.seed);
        let first = engine.run(&inst, &noise);
        let second = engine.run(&inst, &noise);
        assert_outcomes_identical(
            &format!("{method} reuse"),
            &inst,
            &first,
            &second,
            method.is_private(),
        );
        let fresh = method.run(&inst, &params);
        assert_outcomes_identical(
            &format!("{method} fresh-vs-reused"),
            &inst,
            &fresh,
            &first,
            method.is_private(),
        );
    }
}

#[test]
fn assign_snapshot_equals_run_for_warm_startable_engines() {
    // `assign` drives a caller-owned board in place and snapshots it
    // into the outcome; both views must agree with `run`.
    let inst = golden_instance(0xCAFE);
    let params = RunParams::with_seed(3);
    for method in [
        Method::Puce,
        Method::Pdce,
        Method::Pgt,
        Method::Uce,
        Method::Gt,
    ] {
        let engine = method.engine(&params);
        assert!(engine.supports_warm_start(), "{method}");
        let noise = SeededNoise::new(params.seed);
        let mut board = Board::new(inst.n_tasks(), inst.n_workers());
        let via_assign = engine.assign(&inst, &mut board, &noise);
        let via_run = engine.run(&inst, &noise);
        assert_outcomes_identical(
            &format!("{method} assign-vs-run"),
            &inst,
            &via_assign,
            &via_run,
            method.is_private(),
        );
        // The in-place board and the snapshot agree.
        assert_eq!(board.assignment(), via_assign.assignment);
        assert_eq!(board.publications(), via_assign.board.publications());
    }
}

#[test]
#[should_panic(expected = "one-shot engine")]
fn one_shot_engines_reject_warm_boards() {
    let inst = golden_instance(0xF00D);
    let params = RunParams::default();
    let engine = Method::Grd.engine(&params);
    let noise = SeededNoise::new(params.seed);
    let mut board = Board::new(inst.n_tasks(), inst.n_workers());
    board.publish(0, 0, 1.0, 0.5); // simulate a carried-over release
    let _ = engine.assign(&inst, &mut board, &noise);
}
