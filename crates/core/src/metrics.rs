//! The evaluation measures of Section VII-C.
//!
//! * **Average utility** `U_AVG = Σ_{(i,j)∈M} U_j(i) / |M|`, where the
//!   utility of a matched pair uses the *real* distance and the
//!   worker's *cumulative* published privacy cost (Equation 2 /
//!   Definition 5) — regardless of the per-proposal accounting knob.
//! * **Average travel distance** `D_AVG = Σ_{(i,j)∈M} d_{i,j} / |M|`.
//! * **Relative deviations** between a private solution and its
//!   non-private counterpart:
//!   `U_RD = (U_NP − U_P)/U_NP` and `D_RD = (D_P − D_NP)/D_NP`.

use crate::model::Instance;
use crate::outcome::RunOutcome;
use serde::{Deserialize, Serialize};

/// Aggregate measures of one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measures {
    /// Matched pairs `|M|`.
    pub matched: usize,
    /// `Σ U_j(i)` over matched pairs.
    pub total_utility: f64,
    /// `Σ d_{i,j}` (real distances) over matched pairs.
    pub total_distance: f64,
    /// Total published privacy budget across all workers.
    pub total_epsilon: f64,
    /// Publications made during the run.
    pub publications: usize,
    /// Protocol rounds.
    pub rounds: usize,
}

impl Measures {
    /// `U_AVG`; zero when nothing matched.
    pub fn avg_utility(&self) -> f64 {
        if self.matched == 0 {
            0.0
        } else {
            self.total_utility / self.matched as f64
        }
    }

    /// `D_AVG`; zero when nothing matched.
    pub fn avg_distance(&self) -> f64 {
        if self.matched == 0 {
            0.0
        } else {
            self.total_distance / self.matched as f64
        }
    }

    /// Merges per-batch measures into a whole-run aggregate
    /// (Section VII-B runs each data set as a sequence of batches).
    pub fn merge(&mut self, other: &Measures) {
        self.matched += other.matched;
        self.total_utility += other.total_utility;
        self.total_distance += other.total_distance;
        self.total_epsilon += other.total_epsilon;
        self.publications += other.publications;
        self.rounds += other.rounds;
    }

    /// The all-zero aggregate (identity for [`Measures::merge`]).
    pub fn zero() -> Measures {
        Measures {
            matched: 0,
            total_utility: 0.0,
            total_distance: 0.0,
            total_epsilon: 0.0,
            publications: 0,
            rounds: 0,
        }
    }
}

/// Evaluates a finished run against the ground-truth instance.
///
/// `alpha`/`beta` are the `f_d`/`f_p` slopes; pass `private = false` to
/// score a non-private method (whose utility has no privacy term).
pub fn measure(
    inst: &Instance,
    outcome: &RunOutcome,
    alpha: f64,
    beta: f64,
    private: bool,
) -> Measures {
    let mut total_utility = 0.0;
    let mut total_distance = 0.0;
    let mut matched = 0usize;
    for (i, j) in outcome.assignment.pairs() {
        let d = inst.distance(i, j);
        let privacy_cost = if private {
            beta * outcome.board.spent_total(j)
        } else {
            0.0
        };
        total_utility += inst.task_value(i) - alpha * d - privacy_cost;
        total_distance += d;
        matched += 1;
    }
    let total_epsilon = (0..inst.n_workers())
        .map(|j| outcome.board.spent_total(j))
        .sum();
    Measures {
        matched,
        total_utility,
        total_distance,
        total_epsilon,
        publications: outcome.publications(),
        rounds: outcome.rounds,
    }
}

/// `U_RD = (U_NP − U_P) / U_NP`; zero when the non-private utility is
/// zero (nothing matched in the reference run).
pub fn relative_deviation_utility(non_private: &Measures, private_: &Measures) -> f64 {
    let u_np = non_private.avg_utility();
    if u_np == 0.0 {
        0.0
    } else {
        (u_np - private_.avg_utility()) / u_np
    }
}

/// `D_RD = (D_P − D_NP) / D_NP`; zero when the non-private distance is
/// zero.
pub fn relative_deviation_distance(non_private: &Measures, private_: &Measures) -> f64 {
    let d_np = non_private.avg_distance();
    if d_np == 0.0 {
        0.0
    } else {
        (private_.avg_distance() - d_np) / d_np
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::Board;
    use crate::model::{Task, Worker};
    use dpta_dp::BudgetVector;
    use dpta_spatial::{DistanceMatrix, Point};

    fn instance() -> Instance {
        let dist = DistanceMatrix::from_rows(&[&[1.0, 3.0], &[2.0, 1.5]]);
        Instance::from_distance_matrix(
            vec![Task::new(Point::ORIGIN, 5.0), Task::new(Point::ORIGIN, 4.0)],
            vec![
                Worker::new(Point::ORIGIN, 10.0),
                Worker::new(Point::ORIGIN, 10.0),
            ],
            dist,
            |_, _| BudgetVector::new(vec![1.0]),
        )
    }

    fn outcome_with(
        inst: &Instance,
        pairs: &[(usize, usize)],
        spends: &[(usize, usize, f64)],
    ) -> RunOutcome {
        let mut board = Board::new(inst.n_tasks(), inst.n_workers());
        for &(i, j, eps) in spends {
            board.publish(i, j, 0.0, eps);
        }
        for &(t, w) in pairs {
            board.set_winner(t, Some(w));
        }
        RunOutcome {
            assignment: board.assignment(),
            board,
            rounds: 3,
            moves: Vec::new(),
        }
    }

    #[test]
    fn measures_private_run() {
        let inst = instance();
        // t0:w0 (d=1), t1:w1 (d=1.5); w0 spent 0.5, w1 spent 0.25+0.25.
        let out = outcome_with(
            &inst,
            &[(0, 0), (1, 1)],
            &[(0, 0, 0.5), (0, 1, 0.25), (1, 1, 0.25)],
        );
        let m = measure(&inst, &out, 1.0, 1.0, true);
        assert_eq!(m.matched, 2);
        // U = (5 − 1 − 0.5) + (4 − 1.5 − 0.5) = 3.5 + 2.0 = 5.5
        assert!((m.total_utility - 5.5).abs() < 1e-12);
        assert!((m.avg_utility() - 2.75).abs() < 1e-12);
        assert!((m.total_distance - 2.5).abs() < 1e-12);
        assert!((m.avg_distance() - 1.25).abs() < 1e-12);
        assert!((m.total_epsilon - 1.0).abs() < 1e-12);
        assert_eq!(m.publications, 3);
    }

    #[test]
    fn measures_non_private_ignore_spend() {
        let inst = instance();
        let out = outcome_with(&inst, &[(0, 0)], &[(0, 0, 3.0)]);
        let m = measure(&inst, &out, 1.0, 1.0, false);
        assert!((m.total_utility - 4.0).abs() < 1e-12); // 5 − 1
    }

    #[test]
    fn alpha_beta_scale() {
        let inst = instance();
        let out = outcome_with(&inst, &[(0, 0)], &[(0, 0, 2.0)]);
        let m = measure(&inst, &out, 2.0, 0.5, true);
        // 5 − 2·1 − 0.5·2 = 2
        assert!((m.total_utility - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_match_measures_are_zero() {
        let inst = instance();
        let out = outcome_with(&inst, &[], &[]);
        let m = measure(&inst, &out, 1.0, 1.0, true);
        assert_eq!(m.matched, 0);
        assert_eq!(m.avg_utility(), 0.0);
        assert_eq!(m.avg_distance(), 0.0);
    }

    #[test]
    fn relative_deviations() {
        let np = Measures {
            matched: 2,
            total_utility: 8.0,
            total_distance: 2.0,
            ..Measures::zero()
        };
        let p = Measures {
            matched: 2,
            total_utility: 6.0,
            total_distance: 3.0,
            ..Measures::zero()
        };
        assert!((relative_deviation_utility(&np, &p) - 0.25).abs() < 1e-12);
        assert!((relative_deviation_distance(&np, &p) - 0.5).abs() < 1e-12);
        let empty = Measures::zero();
        assert_eq!(relative_deviation_utility(&empty, &p), 0.0);
        assert_eq!(relative_deviation_distance(&empty, &p), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Measures {
            matched: 1,
            total_utility: 2.0,
            total_distance: 1.0,
            total_epsilon: 0.5,
            publications: 3,
            rounds: 2,
        };
        let b = Measures {
            matched: 2,
            total_utility: 4.0,
            total_distance: 3.0,
            total_epsilon: 1.5,
            publications: 5,
            rounds: 4,
        };
        a.merge(&b);
        assert_eq!(a.matched, 3);
        assert!((a.total_utility - 6.0).abs() < 1e-12);
        assert!((a.avg_utility() - 2.0).abs() < 1e-12);
        assert_eq!(a.publications, 8);
        assert_eq!(a.rounds, 6);
    }
}
