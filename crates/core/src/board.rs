//! The untrusted server's public board.
//!
//! Everything on the board is, by the paper's threat model (Section I),
//! visible to every worker: the full release history `(d̂, ε)` of every
//! (task, worker) pair, the derived effective distance-budget pairs,
//! the current allocation list `AL`, and — for auditing — per-worker
//! privacy ledgers. Real distances never enter this structure.

use crate::model::Instance;
use dpta_dp::{EffectivePair, FastMap, PrivacyLedger, Release, ReleaseSet};
use dpta_matching::Assignment;
use serde::{Deserialize, Serialize};

/// Ledger key for a whole-location release (the Geo-I baseline
/// publishes one obfuscated *location* instead of per-task distances).
pub const LOCATION_RELEASE: u32 = u32::MAX;

/// Public protocol state shared by the server and all workers.
#[derive(Debug, Clone)]
pub struct Board {
    n_tasks: usize,
    n_workers: usize,
    releases: FastMap<(usize, usize), ReleaseSet>,
    /// `alloc[i]` — current winner of task `i` (the paper's `AL`).
    alloc: Vec<Option<usize>>,
    /// Reverse map: the task currently held by each worker.
    held: Vec<Option<usize>>,
    ledgers: Vec<PrivacyLedger>,
    /// Cached `Σ_i b_{i,j}·ε_{i,j}` per worker.
    spent_total: Vec<f64>,
    publications: usize,
}

impl Board {
    /// Fresh board for an `m × n` instance.
    pub fn new(n_tasks: usize, n_workers: usize) -> Self {
        Board {
            n_tasks,
            n_workers,
            releases: FastMap::default(),
            alloc: vec![None; n_tasks],
            held: vec![None; n_workers],
            ledgers: vec![PrivacyLedger::new(); n_workers],
            spent_total: vec![0.0; n_workers],
            publications: 0,
        }
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.n_tasks
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Publishes a new obfuscated distance for (task, worker): appends
    /// to the pair's release set, charges the worker's ledger, and
    /// refreshes the effective pair.
    pub fn publish(&mut self, task: usize, worker: usize, value: f64, epsilon: f64) {
        assert!(task < self.n_tasks && worker < self.n_workers);
        self.releases
            .entry((task, worker))
            .or_default()
            .push(Release { value, epsilon });
        self.ledgers[worker].record(task as u32, epsilon);
        self.spent_total[worker] += epsilon;
        self.publications += 1;
    }

    /// Charges a whole-location release (Geo-I baseline): the budget is
    /// ledgered under [`LOCATION_RELEASE`] and counts toward the
    /// worker's total spend, but no per-task distance release exists.
    pub fn charge_location(&mut self, worker: usize, epsilon: f64) {
        assert!(worker < self.n_workers);
        self.ledgers[worker].record(LOCATION_RELEASE, epsilon);
        self.spent_total[worker] += epsilon;
        self.publications += 1;
    }

    /// Number of releases published toward (task, worker) — equals the
    /// number of consumed budget slots, since a slot is charged exactly
    /// when published.
    pub fn used_slots(&self, task: usize, worker: usize) -> usize {
        self.releases
            .get(&(task, worker))
            .map_or(0, ReleaseSet::len)
    }

    /// The pair's release history.
    pub fn releases(&self, task: usize, worker: usize) -> Option<&ReleaseSet> {
        self.releases.get(&(task, worker))
    }

    /// The current effective distance-budget pair `(d̃, ε̃)`.
    pub fn effective(&self, task: usize, worker: usize) -> Option<EffectivePair> {
        self.releases
            .get(&(task, worker))
            .and_then(ReleaseSet::effective)
    }

    /// Budget published by `worker` toward `task`: `b_{i,j}·ε_{i,j}`.
    pub fn spent_on(&self, task: usize, worker: usize) -> f64 {
        self.releases
            .get(&(task, worker))
            .map_or(0.0, ReleaseSet::spent_epsilon)
    }

    /// Budget published by `worker` across all tasks:
    /// `Σ_i b_{i,j}·ε_{i,j}`.
    pub fn spent_total(&self, worker: usize) -> f64 {
        self.spent_total[worker]
    }

    /// The worker's privacy ledger (Theorem V.2 accounting).
    pub fn ledger(&self, worker: usize) -> &PrivacyLedger {
        &self.ledgers[worker]
    }

    /// Total number of publications on the board.
    pub fn publications(&self) -> usize {
        self.publications
    }

    /// Current winner of `task`.
    pub fn winner(&self, task: usize) -> Option<usize> {
        self.alloc[task]
    }

    /// Task currently held by `worker`.
    pub fn task_of(&self, worker: usize) -> Option<usize> {
        self.held[worker]
    }

    /// The allocation list `AL`.
    pub fn alloc(&self) -> &[Option<usize>] {
        &self.alloc
    }

    /// Rebinds `task` to `winner` (or clears it), keeping both directions
    /// of the allocation consistent. Freeing the previous winner and
    /// displacing the new winner's previous task are handled here so the
    /// engines cannot desynchronise the two maps.
    pub fn set_winner(&mut self, task: usize, winner: Option<usize>) {
        if let Some(old) = self.alloc[task] {
            self.held[old] = None;
        }
        self.alloc[task] = winner;
        if let Some(w) = winner {
            if let Some(prev_task) = self.held[w] {
                self.alloc[prev_task] = None;
            }
            self.held[w] = Some(task);
        }
    }

    /// Snapshot of the allocation as an [`Assignment`].
    pub fn assignment(&self) -> Assignment {
        let mut a = Assignment::new(self.n_tasks, self.n_workers);
        for (t, w) in self.alloc.iter().enumerate() {
            if let Some(w) = *w {
                a.assign(t, w);
            }
        }
        a.check_consistent();
        a
    }

    /// Transplants the protocol state that survives into the next
    /// stream window onto a fresh `n_tasks × n_workers` board.
    ///
    /// `task_map` / `worker_map` translate *this* board's indices to the
    /// next window's indices; entities mapped to `None` (completed
    /// tasks, departed or retired workers) are dropped together with
    /// every release and winner that references them. Retained pairs
    /// keep their full release history **in order**, so effective
    /// pairs, consumed budget slots and noise-slot continuation are
    /// preserved exactly — the warm-start precondition of
    /// [`AssignmentEngine::resume`](crate::engine::AssignmentEngine::resume).
    ///
    /// Two deliberate semantics, both load-bearing for streaming:
    ///
    /// * ledgers and the publication counter restart at the carried
    ///   subset — *lifetime* spend (including spend toward dropped
    ///   entities) is the stream accountant's job, not the board's;
    /// * whole-location releases ([`LOCATION_RELEASE`]) are dropped:
    ///   only one-shot engines publish them, and one-shot engines never
    ///   warm-start.
    ///
    /// Iteration is index-ascending throughout, so the result is
    /// deterministic.
    pub fn carry(
        &self,
        n_tasks: usize,
        n_workers: usize,
        task_map: impl Fn(usize) -> Option<usize>,
        worker_map: impl Fn(usize) -> Option<usize>,
    ) -> Board {
        let mut next = Board::new(n_tasks, n_workers);
        for j_old in 0..self.n_workers {
            let Some(j_new) = worker_map(j_old) else {
                continue;
            };
            for t in self.ledgers[j_old].tasks() {
                if t == LOCATION_RELEASE {
                    continue;
                }
                let t_old = t as usize;
                let Some(t_new) = task_map(t_old) else {
                    continue;
                };
                if let Some(set) = self.releases.get(&(t_old, j_old)) {
                    for r in set.releases() {
                        next.publish(t_new, j_new, r.value, r.epsilon);
                    }
                }
            }
        }
        for (t_old, w_old) in self.alloc.iter().enumerate() {
            if let Some(w_old) = *w_old {
                if let (Some(t_new), Some(w_new)) = (task_map(t_old), worker_map(w_old)) {
                    next.set_winner(t_new, Some(w_new));
                }
            }
        }
        next
    }

    /// Asserts the Theorem V.2 / VI.4 bound for every worker: the
    /// ledgered LDP level equals `r_j · Σ_{t_i} b_{i,j}·ε_{i,j}` and
    /// never exceeds the worst case `r_j · Σ_{t_i∈R_j} Σ_u ε⁽ᵘ⁾_{i,j}`.
    /// Returns the per-worker ledgered levels.
    pub fn verify_privacy_bounds(&self, inst: &Instance) -> Vec<f64> {
        (0..self.n_workers)
            .map(|j| {
                let r = inst.workers()[j].radius;
                let actual = self.ledgers[j].ldp_bound(r);
                let worst: f64 = inst
                    .reach(j)
                    .iter()
                    .map(|&i| {
                        inst.budget(i, j)
                            .expect("reachable pair has budgets")
                            .total()
                    })
                    .sum::<f64>()
                    * r;
                assert!(
                    actual <= worst + 1e-9,
                    "worker {j}: ledgered LDP {actual} exceeds worst case {worst}"
                );
                // Publications may only target reachable tasks (a
                // whole-location release has no task).
                for t in self.ledgers[j].tasks() {
                    assert!(
                        t == LOCATION_RELEASE || inst.in_reach(t as usize, j),
                        "worker {j} published toward unreachable task {t}"
                    );
                }
                actual
            })
            .collect()
    }
}

/// Verbatim state capture for session snapshots. Releases serialize as
/// `(task, worker, set)` triples sorted by pair so equal boards always
/// render identically; the cached `spent_total` floats are stored as-is
/// (never re-summed on restore) so a restored board is bit-identical to
/// the original, whatever publish order produced the sums.
impl Serialize for Board {
    fn serialize_value(&self) -> serde::Value {
        let mut releases: Vec<(usize, usize, &ReleaseSet)> = self
            .releases
            .iter()
            .map(|(&(t, w), set)| (t, w, set))
            .collect();
        releases.sort_by_key(|&(t, w, _)| (t, w));
        serde::Value::Object(vec![
            ("n_tasks".to_string(), self.n_tasks.serialize_value()),
            ("n_workers".to_string(), self.n_workers.serialize_value()),
            ("releases".to_string(), releases.serialize_value()),
            ("alloc".to_string(), self.alloc.serialize_value()),
            ("held".to_string(), self.held.serialize_value()),
            ("ledgers".to_string(), self.ledgers.serialize_value()),
            (
                "spent_total".to_string(),
                self.spent_total.serialize_value(),
            ),
            (
                "publications".to_string(),
                self.publications.serialize_value(),
            ),
        ])
    }
}

impl Deserialize for Board {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error(format!("missing board field `{name}`")))
        };
        let n_tasks = usize::deserialize_value(field("n_tasks")?)?;
        let n_workers = usize::deserialize_value(field("n_workers")?)?;
        let triples = Vec::<(usize, usize, ReleaseSet)>::deserialize_value(field("releases")?)?;
        let mut releases = FastMap::with_capacity_and_hasher(triples.len(), Default::default());
        for (t, w, set) in triples {
            if t >= n_tasks || w >= n_workers {
                return Err(serde::Error(format!(
                    "board release ({t}, {w}) outside {n_tasks} x {n_workers}"
                )));
            }
            if releases.insert((t, w), set).is_some() {
                return Err(serde::Error(format!("duplicate board release ({t}, {w})")));
            }
        }
        let board = Board {
            n_tasks,
            n_workers,
            releases,
            alloc: Vec::deserialize_value(field("alloc")?)?,
            held: Vec::deserialize_value(field("held")?)?,
            ledgers: Vec::deserialize_value(field("ledgers")?)?,
            spent_total: Vec::deserialize_value(field("spent_total")?)?,
            publications: usize::deserialize_value(field("publications")?)?,
        };
        if board.alloc.len() != n_tasks
            || board.held.len() != n_workers
            || board.ledgers.len() != n_workers
            || board.spent_total.len() != n_workers
        {
            return Err(serde::Error(format!(
                "board vectors disagree with {n_tasks} x {n_workers}"
            )));
        }
        Ok(board)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_updates_slots_spend_and_effective() {
        let mut b = Board::new(2, 2);
        assert_eq!(b.used_slots(0, 1), 0);
        assert!(b.effective(0, 1).is_none());
        b.publish(0, 1, 5.5, 4.6);
        assert_eq!(b.used_slots(0, 1), 1);
        assert_eq!(b.effective(0, 1).unwrap().distance, 5.5);
        assert!((b.spent_on(0, 1) - 4.6).abs() < 1e-12);
        b.publish(1, 1, 3.0, 0.4);
        assert!((b.spent_total(1) - 5.0).abs() < 1e-12);
        assert_eq!(b.publications(), 2);
        assert_eq!(b.spent_total(0), 0.0);
    }

    #[test]
    fn set_winner_keeps_directions_consistent() {
        let mut b = Board::new(2, 2);
        b.set_winner(0, Some(1));
        assert_eq!(b.winner(0), Some(1));
        assert_eq!(b.task_of(1), Some(0));
        // Worker 1 moves to task 1: task 0 must be freed automatically.
        b.set_winner(1, Some(1));
        assert_eq!(b.winner(0), None);
        assert_eq!(b.task_of(1), Some(1));
        // Replace winner of task 1: worker 1 freed.
        b.set_winner(1, Some(0));
        assert_eq!(b.task_of(1), None);
        assert_eq!(b.task_of(0), Some(1));
        // Clearing.
        b.set_winner(1, None);
        assert_eq!(b.task_of(0), None);
        b.assignment().check_consistent();
    }

    #[test]
    fn assignment_snapshot_matches_alloc() {
        let mut b = Board::new(3, 3);
        b.set_winner(0, Some(2));
        b.set_winner(2, Some(0));
        let a = b.assignment();
        assert_eq!(a.pairs().collect::<Vec<_>>(), vec![(0, 2), (2, 0)]);
    }

    #[test]
    fn carry_transplants_retained_pairs_in_order() {
        let mut b = Board::new(3, 3);
        b.publish(0, 1, 5.0, 0.5); // retained (task 0 -> 0, worker 1 -> 0)
        b.publish(0, 1, 4.8, 0.7); // second slot of the same pair
        b.publish(2, 1, 3.0, 0.4); // dropped: task 2 completed
        b.publish(0, 2, 6.0, 0.9); // dropped: worker 2 departs
        b.charge_location(1, 1.0); // dropped: location release
        b.set_winner(0, Some(1));
        b.set_winner(2, Some(2));

        let task_map = |t: usize| match t {
            0 => Some(0),
            1 => Some(1),
            _ => None,
        };
        let worker_map = |w: usize| match w {
            1 => Some(0),
            _ => None,
        };
        let next = b.carry(2, 1, task_map, worker_map);
        assert_eq!(next.n_tasks(), 2);
        assert_eq!(next.n_workers(), 1);
        // The retained pair keeps both releases, in publish order.
        assert_eq!(next.used_slots(0, 0), 2);
        let set = next.releases(0, 0).unwrap();
        assert_eq!(set.releases()[0].value, 5.0);
        assert_eq!(set.releases()[1].value, 4.8);
        assert_eq!(next.effective(0, 0), b.effective(0, 1));
        // Dropped state is gone; the ledger restarts at the carried subset.
        assert_eq!(next.publications(), 2);
        assert!((next.spent_total(0) - 1.2).abs() < 1e-12);
        // The retained winner survives under the new indices.
        assert_eq!(next.winner(0), Some(0));
        assert_eq!(next.task_of(0), Some(0));
        assert_eq!(next.winner(1), None);
    }

    #[test]
    fn carry_to_disjoint_window_is_fresh() {
        let mut b = Board::new(1, 1);
        b.publish(0, 0, 1.0, 0.5);
        b.set_winner(0, Some(0));
        let next = b.carry(4, 2, |_| None, |_| None);
        assert_eq!(next.publications(), 0);
        assert!(next.alloc().iter().all(Option::is_none));
    }

    #[test]
    fn board_serialization_round_trips_verbatim() {
        let mut b = Board::new(3, 2);
        b.publish(0, 1, 5.0, 0.5);
        b.publish(0, 1, 4.8, 0.7);
        b.publish(2, 0, 3.0, 0.4);
        b.charge_location(1, 1.0);
        b.set_winner(0, Some(1));
        b.set_winner(2, Some(0));
        let tree = b.serialize_value();
        let back = Board::deserialize_value(&tree).expect("round trip");
        assert_eq!(back.n_tasks(), 3);
        assert_eq!(back.n_workers(), 2);
        assert_eq!(back.used_slots(0, 1), 2);
        assert_eq!(back.effective(0, 1), b.effective(0, 1));
        assert_eq!(back.winner(0), Some(1));
        assert_eq!(back.task_of(0), Some(2));
        assert_eq!(back.publications(), b.publications());
        // Bit-exact floats and a canonical rendering: serializing the
        // restored board yields the identical tree.
        assert_eq!(back.spent_total(1).to_bits(), b.spent_total(1).to_bits());
        assert_eq!(back.serialize_value(), tree);
        // Out-of-range and duplicate releases are rejected.
        let mut bad = tree.clone();
        if let serde::Value::Object(fields) = &mut bad {
            for (k, v) in fields.iter_mut() {
                if k == "n_tasks" {
                    *v = serde::Value::Number(1.0);
                }
            }
        }
        assert!(Board::deserialize_value(&bad).is_err());
    }

    #[test]
    fn ledger_tracks_publications_per_worker() {
        let mut b = Board::new(2, 1);
        b.publish(0, 0, 1.0, 0.5);
        b.publish(0, 0, 0.9, 0.7);
        b.publish(1, 0, 2.0, 0.3);
        let l = b.ledger(0);
        assert_eq!(l.publications(), 3);
        assert!((l.spent_on(0) - 1.2).abs() < 1e-12);
        assert!((l.ldp_bound(2.0) - 3.0).abs() < 1e-12);
    }
}
