//! Game-theoretic analysis: the potential function of Theorem VI.1 and
//! the price-of-anarchy / price-of-stability bounds of Theorem VI.3.

use crate::board::Board;
use crate::config::EngineConfig;
use crate::model::Instance;

/// The potential `Φ(st)` of the PAA-TA game (proof of Theorem VI.1):
///
/// `Φ = Σ_i Σ_j s_{i,j}·(v_i − f_d(d̃_{i,j})) − Σ_i Σ_j f_p(b_{i,j}·ε_{i,j})`
///
/// evaluated on the *public* board state — effective obfuscated
/// distances and published budgets. Because `f_p` is linear
/// (Definition 4), the second sum collapses to
/// `f_p(Σ_j spent_total(j))`.
pub fn potential(inst: &Instance, board: &Board, cfg: &EngineConfig) -> f64 {
    let fp = |e: f64| if cfg.private { cfg.beta * e } else { 0.0 };
    let mut phi = 0.0;
    for (i, w) in board.alloc().iter().enumerate() {
        if let Some(j) = *w {
            let pair = board
                .effective(i, j)
                .expect("allocated pair must have published releases");
            phi += inst.task_value(i) - cfg.alpha * pair.distance;
        }
    }
    for j in 0..board.n_workers() {
        phi -= fp(board.spent_total(j));
    }
    phi
}

/// The Theorem VI.3 bounds on the expected price of anarchy / stability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GameQualityBounds {
    /// Lower bound on EPoA: `Σ_i U⁺_min(i) / Σ_i U⁺_max(i)`;
    /// `None` when the denominator is zero (no worker can profitably
    /// serve any task even in the best case).
    pub epoa_lower: Option<f64>,
    /// Upper bound on EPoS (always 1 per the theorem).
    pub epos_upper: f64,
}

/// Computes the Theorem VI.3 bounds for an instance.
///
/// Per the theorem's definitions:
/// * `U^L_j(i) = v_i − f_d(d_{i,j}) − f_p(Σ_{t_k∈R_j} sum(ε_{k,j}))` —
///   the worker's utility in the worst case where his entire budget
///   vector toward every reachable task has been spent;
/// * `U^H_j(i) = v_i − f_d(d_{i,j}) − f_p(min(ε_{i,j}))` — the best case
///   where only the cheapest single slot toward `t_i` is spent;
/// * `U⁺_min(i)` = the smallest positive `U^L_j(i)` over workers
///   reaching `t_i` (0 when none is positive);
/// * `U⁺_max(i)` = the largest `U^H_j(i)` when positive (0 otherwise).
pub fn game_quality_bounds(inst: &Instance, cfg: &EngineConfig) -> GameQualityBounds {
    let fp = |e: f64| if cfg.private { cfg.beta * e } else { 0.0 };
    let m = inst.n_tasks();
    let mut u_min = vec![f64::INFINITY; m];
    let mut u_max = vec![f64::NEG_INFINITY; m];

    for j in 0..inst.n_workers() {
        let worst_spend: f64 = inst
            .reach(j)
            .iter()
            .map(|&i| inst.budget(i, j).expect("reachable").total())
            .sum();
        for &i in inst.reach(j) {
            let base = inst.task_value(i) - cfg.alpha * inst.distance(i, j);
            let budgets = inst.budget(i, j).expect("reachable");
            let min_slot = budgets
                .slots()
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min);
            let u_l = base - fp(worst_spend);
            let u_h = base - fp(if min_slot.is_finite() { min_slot } else { 0.0 });
            if u_l > 0.0 && u_l < u_min[i] {
                u_min[i] = u_l;
            }
            if u_h > u_max[i] {
                u_max[i] = u_h;
            }
        }
    }

    let num: f64 = u_min
        .iter()
        .map(|&v| if v.is_finite() { v } else { 0.0 })
        .sum();
    let den: f64 = u_max.iter().map(|&v| if v > 0.0 { v } else { 0.0 }).sum();
    GameQualityBounds {
        epoa_lower: (den > 0.0).then_some(num / den),
        epos_upper: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Task, Worker};
    use dpta_dp::BudgetVector;
    use dpta_spatial::{DistanceMatrix, Point};

    fn tiny_instance() -> Instance {
        let dist = DistanceMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        Instance::from_distance_matrix(
            vec![Task::new(Point::ORIGIN, 5.0), Task::new(Point::ORIGIN, 5.0)],
            vec![
                Worker::new(Point::ORIGIN, 3.0),
                Worker::new(Point::ORIGIN, 3.0),
            ],
            dist,
            |_, _| BudgetVector::new(vec![0.5, 1.0]),
        )
    }

    #[test]
    fn potential_of_empty_board_is_zero() {
        let inst = tiny_instance();
        let cfg = EngineConfig::default();
        let board = Board::new(2, 2);
        assert_eq!(potential(&inst, &board, &cfg), 0.0);
    }

    #[test]
    fn potential_counts_matches_and_spend() {
        let inst = tiny_instance();
        let cfg = EngineConfig::default();
        let mut board = Board::new(2, 2);
        board.publish(0, 0, 1.2, 0.5);
        board.set_winner(0, Some(0));
        // Φ = (5 − 1.2) − 0.5 = 3.3
        assert!((potential(&inst, &board, &cfg) - 3.3).abs() < 1e-12);
        // Unmatched publications still cost.
        board.publish(1, 1, 1.4, 1.0);
        assert!((potential(&inst, &board, &cfg) - 2.3).abs() < 1e-12);
    }

    #[test]
    fn non_private_potential_ignores_spend() {
        let inst = tiny_instance();
        let cfg = EngineConfig {
            private: false,
            ..EngineConfig::default()
        };
        let mut board = Board::new(2, 2);
        board.publish(0, 0, 1.0, 0.5);
        board.set_winner(0, Some(0));
        assert!((potential(&inst, &board, &cfg) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn bounds_are_sane() {
        let inst = tiny_instance();
        let cfg = EngineConfig::default();
        let b = game_quality_bounds(&inst, &cfg);
        assert_eq!(b.epos_upper, 1.0);
        let epoa = b.epoa_lower.expect("profitable pairs exist");
        assert!(epoa > 0.0 && epoa <= 1.0, "epoa = {epoa}");
        // Hand check: per worker, worst spend = (0.5+1.0)*2 = 3.0.
        // U^L for (t0,w0) = 5 − 1 − 3 = 1; (t0,w1) = 5 − 2 − 3 = 0 (not > 0).
        // So U+min(t0) = 1; symmetric for t1 => numerator 2.
        // U^H best = 5 − 1 − 0.5 = 3.5 per task => denominator 7.
        assert!((epoa - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn bounds_with_no_profitable_pairs() {
        let dist = DistanceMatrix::from_rows(&[&[10.0]]);
        let inst = Instance::from_distance_matrix(
            vec![Task::new(Point::ORIGIN, 1.0)],
            vec![Worker::new(Point::ORIGIN, 20.0)],
            dist,
            |_, _| BudgetVector::new(vec![1.0]),
        );
        let b = game_quality_bounds(&inst, &EngineConfig::default());
        assert_eq!(b.epoa_lower, None);
    }
}
