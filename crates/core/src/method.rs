//! The Table IX method registry: every solution the paper evaluates,
//! plus the Hungarian optimum, behind a single [`Method::run`] entry
//! point. Execution is fully delegated to the
//! [`AssignmentEngine`] trait:
//! [`Method::engine`] resolves the variant to a boxed engine via
//! [`engine::build`], and [`Method::run`] is a
//! thin wrapper seeding the noise source and running it.

use crate::config::{CompareMode, EngineConfig, Objective, RunParams};
use crate::engine::{self, AssignmentEngine};
use crate::model::Instance;
use crate::outcome::RunOutcome;
use dpta_dp::SeededNoise;
use serde::{Deserialize, Serialize};

/// The methods of Table IX (private, non-private, and non-PPCF
/// versions), plus the exact Hungarian baseline.
///
/// # Examples
///
/// ```
/// use dpta_core::{Instance, Method, RunParams, Task, Worker};
/// use dpta_dp::BudgetVector;
/// use dpta_spatial::Point;
///
/// let inst = Instance::from_locations(
///     vec![Task::new(Point::new(0.0, 0.0), 4.5)],
///     vec![Worker::new(Point::new(0.5, 0.0), 2.0)],
///     |_, _| BudgetVector::new(vec![0.5, 1.0]),
/// );
/// // One entry point runs any registry method end-to-end.
/// let outcome = Method::Pgt.run(&inst, &RunParams::default());
/// assert!(outcome.assignment.len() <= 1);
/// // Private methods know their non-private reference point.
/// assert_eq!(Method::Pgt.non_private_counterpart(), Some(Method::Gt));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Private Utility Conflict-Elimination (this paper, Section V).
    Puce,
    /// PUCE with the PPCF gate replaced by PCF (Section VII-D.4).
    PuceNppcf,
    /// Private Distance Conflict-Elimination (Wang et al. \[3\], altered
    /// per Section VII-B).
    Pdce,
    /// PDCE without the PPCF gate.
    PdceNppcf,
    /// Private Game Theoretic approach (this paper, Section VI).
    Pgt,
    /// Non-private Utility Conflict-Elimination.
    Uce,
    /// Non-private Distance Conflict-Elimination.
    Dce,
    /// Non-private Game Theory.
    Gt,
    /// Non-private global greedy.
    Grd,
    /// Exact non-private optimum (Hungarian / Kuhn–Munkres).
    Optimal,
    /// One-shot Geo-Indistinguishability baseline: a single planar-
    /// Laplace location release instead of dynamic distance releases
    /// (related work \[2\]/\[18\]; see `engine::location`).
    GeoI,
    /// The Section V strawman: Hungarian on first-slot obfuscated
    /// distances after every worker proposes everywhere.
    ObfuscatedOptimal,
}

impl Method {
    /// Every implemented method.
    pub fn all() -> [Method; 12] {
        [
            Method::Puce,
            Method::PuceNppcf,
            Method::Pdce,
            Method::PdceNppcf,
            Method::Pgt,
            Method::Uce,
            Method::Dce,
            Method::Gt,
            Method::Grd,
            Method::Optimal,
            Method::GeoI,
            Method::ObfuscatedOptimal,
        ]
    }

    /// The seven methods plotted in Figures 4–16 of the paper.
    pub fn paper_main_set() -> [Method; 7] {
        [
            Method::Puce,
            Method::Pdce,
            Method::Pgt,
            Method::Uce,
            Method::Dce,
            Method::Gt,
            Method::Grd,
        ]
    }

    /// The four methods of the PPCF ablation (Figure 17).
    pub fn ppcf_ablation_set() -> [Method; 4] {
        [
            Method::Puce,
            Method::Pdce,
            Method::PuceNppcf,
            Method::PdceNppcf,
        ]
    }

    /// Display name as used in the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Puce => "PUCE",
            Method::PuceNppcf => "PUCE-nppcf",
            Method::Pdce => "PDCE",
            Method::PdceNppcf => "PDCE-nppcf",
            Method::Pgt => "PGT",
            Method::Uce => "UCE",
            Method::Dce => "DCE",
            Method::Gt => "GT",
            Method::Grd => "GRD",
            Method::Optimal => "OPT",
            Method::GeoI => "GEO-I",
            Method::ObfuscatedOptimal => "P-OPT",
        }
    }

    /// Whether the method obfuscates distances and pays privacy cost.
    pub fn is_private(&self) -> bool {
        matches!(
            self,
            Method::Puce
                | Method::PuceNppcf
                | Method::Pdce
                | Method::PdceNppcf
                | Method::Pgt
                | Method::GeoI
                | Method::ObfuscatedOptimal
        )
    }

    /// The non-private counterpart used for the relative-deviation
    /// measures of Section VII-C (`None` for already-non-private
    /// methods).
    pub fn non_private_counterpart(&self) -> Option<Method> {
        match self {
            Method::Puce | Method::PuceNppcf => Some(Method::Uce),
            Method::Pdce | Method::PdceNppcf => Some(Method::Dce),
            Method::Pgt => Some(Method::Gt),
            Method::GeoI => Some(Method::Grd),
            Method::ObfuscatedOptimal => Some(Method::Optimal),
            _ => None,
        }
    }

    /// The engine configuration this method runs under.
    pub fn engine_config(&self, params: &RunParams) -> EngineConfig {
        let base = EngineConfig {
            alpha: params.alpha,
            beta: params.beta,
            accounting: params.accounting,
            fallback: params.fallback,
            max_rounds: params.max_rounds,
            ..EngineConfig::default()
        };
        match self {
            Method::Puce => EngineConfig {
                objective: Objective::Utility,
                compare: CompareMode::Ppcf,
                private: true,
                ..base
            },
            Method::PuceNppcf => EngineConfig {
                objective: Objective::Utility,
                compare: CompareMode::PcfOnly,
                private: true,
                ..base
            },
            Method::Pdce => EngineConfig {
                objective: Objective::Distance,
                compare: CompareMode::Ppcf,
                private: true,
                ..base
            },
            Method::PdceNppcf => EngineConfig {
                objective: Objective::Distance,
                compare: CompareMode::PcfOnly,
                private: true,
                ..base
            },
            Method::Uce => EngineConfig {
                objective: Objective::Utility,
                private: false,
                ..base
            },
            Method::Dce => EngineConfig {
                objective: Objective::Distance,
                private: false,
                ..base
            },
            Method::Pgt | Method::GeoI | Method::ObfuscatedOptimal => EngineConfig {
                private: true,
                ..base
            },
            Method::Gt | Method::Grd | Method::Optimal => EngineConfig {
                private: false,
                ..base
            },
        }
    }

    /// Resolves this method to a boxed [`AssignmentEngine`] under
    /// `params` — the single dispatch point; callers that run many
    /// batches should resolve once and reuse the engine.
    pub fn engine(&self, params: &RunParams) -> Box<dyn AssignmentEngine> {
        engine::build(*self, self.engine_config(params))
    }

    /// Runs the method on an instance: resolves the engine and drives a
    /// fresh board under the seeded noise source.
    pub fn run(&self, inst: &Instance, params: &RunParams) -> RunOutcome {
        // dpta-lint: allow(charged-noise-flow) -- the source is only handed to engines, which charge every release via Board::publish/charge_location
        let noise = SeededNoise::new(params.seed);
        self.engine(params).run(inst, &noise)
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        assert_eq!(Method::all().len(), 12);
        assert_eq!(Method::paper_main_set().len(), 7);
        for m in Method::all() {
            assert!(!m.name().is_empty());
            if let Some(np) = m.non_private_counterpart() {
                assert!(m.is_private());
                assert!(!np.is_private());
            }
        }
        assert_eq!(Method::Puce.non_private_counterpart(), Some(Method::Uce));
        assert_eq!(Method::Pdce.non_private_counterpart(), Some(Method::Dce));
        assert_eq!(Method::Pgt.non_private_counterpart(), Some(Method::Gt));
        assert_eq!(Method::Grd.non_private_counterpart(), None);
    }

    #[test]
    fn engine_configs_match_table_ix() {
        let p = RunParams::default();
        let puce = Method::Puce.engine_config(&p);
        assert_eq!(puce.objective, Objective::Utility);
        assert_eq!(puce.compare, CompareMode::Ppcf);
        assert!(puce.private);
        let pdce = Method::Pdce.engine_config(&p);
        assert_eq!(pdce.objective, Objective::Distance);
        assert!(pdce.private);
        let nppcf = Method::PuceNppcf.engine_config(&p);
        assert_eq!(nppcf.compare, CompareMode::PcfOnly);
        assert!(!Method::Uce.engine_config(&p).private);
        assert!(!Method::Gt.engine_config(&p).private);
    }
}
