//! The result of one algorithm run.

use crate::board::Board;
use dpta_matching::Assignment;

/// One accepted best-response move of the game engine (Algorithm 4),
/// recorded for convergence analysis and the Theorem VI.1 tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoveRecord {
    /// The moving worker.
    pub worker: usize,
    /// The task he held before the move, if any.
    pub from: Option<usize>,
    /// The task he won.
    pub to: usize,
    /// The move's utility `UT⁽ᵏ⁾_j` (Equation 5), always > 0.
    pub utility_change: f64,
    /// The potential `Φ` after the move, when potential tracking is
    /// enabled (see [`crate::config::EngineConfig::track_potential`]).
    pub potential: Option<f64>,
}

/// Everything a run produces: the final matching, the full public board
/// (for privacy auditing and effective-pair inspection), and the
/// protocol trace.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The final task-worker matching `TWM`.
    pub assignment: Assignment,
    /// The server board at termination.
    pub board: Board,
    /// Protocol rounds executed (outer-loop iterations).
    pub rounds: usize,
    /// Accepted moves, in order (game engine only; empty for the
    /// conflict-elimination engine and the one-shot baselines).
    pub moves: Vec<MoveRecord>,
}

impl RunOutcome {
    /// Total obfuscated-distance publications across the run.
    pub fn publications(&self) -> usize {
        self.board.publications()
    }
}
