//! Shared engine context: value functions, noise gating, prospective
//! release evaluation.

use crate::board::Board;
use crate::config::EngineConfig;
use crate::engine::BudgetRemaining;
use crate::model::{DistanceValue, Instance, LinearValue, PrivacyValue};
use dpta_dp::{EffectivePair, NoiseSource, Release, ReleaseSet};

/// A release a worker has computed locally but not (yet) published.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Prospective {
    /// Budget `ε⁽ᵘ⁾` of the slot this release would consume.
    pub epsilon: f64,
    /// The obfuscated distance that would be published.
    pub d_hat: f64,
    /// The effective pair the pair's release set would have afterwards.
    pub effective: EffectivePair,
}

/// Bundles the instance, configuration and noise source, and exposes
/// the handful of derived operations every engine needs.
pub(crate) struct Ctx<'a> {
    pub inst: &'a Instance,
    pub cfg: &'a EngineConfig,
    noise: &'a dyn NoiseSource,
    fd: LinearValue,
    fp: LinearValue,
    /// Remaining lifetime budget per worker at drive start (the hard
    /// lifetime cap hook; `Uncapped` when the caller sets no cap).
    remaining: &'a dyn BudgetRemaining,
    /// Each worker's board spend when the drive started: the capped
    /// gate compares *novel* spend, not carried history, against the
    /// remaining budget.
    base_spend: Vec<f64>,
}

impl<'a> Ctx<'a> {
    pub fn new(
        inst: &'a Instance,
        cfg: &'a EngineConfig,
        noise: &'a dyn NoiseSource,
        board: &Board,
        remaining: &'a dyn BudgetRemaining,
    ) -> Self {
        assert!(
            cfg.alpha.is_finite() && cfg.alpha > 0.0,
            "f_d slope must be finite and > 0 (Eq. 4 needs its inverse), got {}",
            cfg.alpha
        );
        assert!(
            cfg.beta.is_finite() && cfg.beta >= 0.0,
            "f_p slope must be finite and >= 0, got {}",
            cfg.beta
        );
        Ctx {
            inst,
            cfg,
            noise,
            fd: LinearValue::new(cfg.alpha),
            fp: LinearValue::new(cfg.beta),
            remaining,
            base_spend: (0..inst.n_workers())
                .map(|j| board.spent_total(j))
                .collect(),
        }
    }

    /// Whether `worker` can afford another `epsilon` of novel spend:
    /// his board-spend delta since drive start plus `epsilon` must fit
    /// the remaining lifetime budget the cap hook grants. Always true
    /// under [`Uncapped`](crate::engine::Uncapped).
    pub fn affordable(&self, board: &Board, worker: usize, epsilon: f64) -> bool {
        board.spent_total(worker) - self.base_spend[worker] + epsilon
            <= self.remaining.remaining(worker) + 1e-12
    }

    /// `f_d(d)`.
    #[inline]
    pub fn fd(&self, d: f64) -> f64 {
        DistanceValue::value(&self.fd, d)
    }

    /// `f_d⁻¹(v)`.
    #[inline]
    pub fn fd_inv(&self, v: f64) -> f64 {
        self.fd.inverse(v)
    }

    /// `f_p(ε)` — zero for non-private runs, whose utility ignores
    /// privacy cost.
    #[inline]
    pub fn fp(&self, eps: f64) -> f64 {
        if self.cfg.private {
            PrivacyValue::value(&self.fp, eps)
        } else {
            0.0
        }
    }

    /// The noise of the `slot`-th release for (task, worker): a fixed
    /// Laplace draw for private runs, zero for non-private ones.
    #[inline]
    pub fn noise_for(&self, task: usize, worker: usize, slot: usize, epsilon: f64) -> f64 {
        if self.cfg.private {
            self.noise
                .noise(task as u32, worker as u32, slot as u32, epsilon)
        } else {
            0.0
        }
    }

    /// Locally evaluates the next release of (task, worker) without
    /// publishing: returns `None` when the pair's budget vector is
    /// exhausted. Deterministic — calling again returns the same values,
    /// so an unpublished evaluation leaks nothing and a later publish
    /// reveals exactly this draw.
    pub fn prospective(&self, board: &Board, task: usize, worker: usize) -> Option<Prospective> {
        let budgets = self
            .inst
            .budget(task, worker)
            .expect("prospective() requires task in worker's service area");
        let slot = board.used_slots(task, worker);
        if slot >= budgets.len() {
            return None;
        }
        let epsilon = budgets.slot(slot);
        let d_hat = self.inst.distance(task, worker) + self.noise_for(task, worker, slot, epsilon);
        let effective = match board.releases(task, worker) {
            Some(existing) => {
                let mut set: ReleaseSet = existing.clone();
                set.push(Release {
                    value: d_hat,
                    epsilon,
                });
                set.effective().expect("non-empty release set")
            }
            None => EffectivePair {
                distance: d_hat,
                epsilon,
            },
        };
        Some(Prospective {
            epsilon,
            d_hat,
            effective,
        })
    }
}
