//! The Geo-Indistinguishability baseline (`GEO-I`): one-shot location
//! obfuscation instead of dynamic distance releases.
//!
//! The paper's related-work section (To et al. \[2\], Andrés et al.
//! \[18\]) protects workers by perturbing their *location* once with the
//! planar Laplace mechanism and letting the server assign on distances
//! computed from the noisy locations. This engine implements that
//! design inside the PA-TA frame so the two privacy models are directly
//! comparable:
//!
//! * worker `j` publishes `l̂_j = l_j + PlanarLaplace(ε_j)` where `ε_j`
//!   is the mean first-slot budget over his reachable pairs — the same
//!   order of leakage a single round of distance proposals would cost;
//! * the server computes `d̂_{i,j} = |l̂_j − l_i|` for the tasks in the
//!   worker's service area and runs the greedy matcher on the estimated
//!   utilities `v_i − f_d(d̂) − f_p(ε_j)`;
//! * the worker's ledger records one [`LOCATION_RELEASE`] of `ε_j`.
//!
//! A single location release reveals geometry that per-task distances
//! do not (see [`crate::attack`] for the converse attack), and its noise
//! cannot be refined by re-proposing — the trade-offs the paper's
//! dynamic scheme is designed around.
//!
//! [`LOCATION_RELEASE`]: crate::board::LOCATION_RELEASE

use crate::board::Board;
use crate::config::EngineConfig;
use crate::engine::{
    require_fresh_board, AssignmentEngine, BudgetRemaining, Ctx, EngineTrace, Uncapped,
};
use crate::model::Instance;
use crate::outcome::RunOutcome;
use dpta_dp::{NoiseSource, PlanarLaplace};
use dpta_matching::greedy::{greedy_max_weight, Edge};
use dpta_spatial::Point;

/// Slot key for the radial uniform of the location draw.
const SLOT_RADIUS: u32 = 0;
/// Slot key for the angular uniform of the location draw.
const SLOT_ANGLE: u32 = 1;

/// The one-shot Geo-Indistinguishability engine (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct GeoIEngine {
    cfg: EngineConfig,
}

impl GeoIEngine {
    /// Builds the engine for a configuration.
    pub fn from_config(cfg: EngineConfig) -> Self {
        GeoIEngine { cfg }
    }
}

impl AssignmentEngine for GeoIEngine {
    fn name(&self) -> &'static str {
        "GEO-I"
    }

    fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    fn enforces_budget_cap(&self) -> bool {
        true
    }

    fn drive(&self, inst: &Instance, board: &mut Board, noise: &dyn NoiseSource) -> EngineTrace {
        self.drive_capped(inst, board, noise, &Uncapped)
    }

    fn drive_capped(
        &self,
        inst: &Instance,
        board: &mut Board,
        noise: &dyn NoiseSource,
        remaining: &dyn BudgetRemaining,
    ) -> EngineTrace {
        require_fresh_board(self.name(), board);
        let cfg = &self.cfg;
        let ctx = Ctx::new(inst, cfg, noise, board, remaining);
        let mut edges: Vec<Edge> = Vec::new();

        for j in 0..inst.n_workers() {
            let reach = inst.reach(j);
            if reach.is_empty() {
                continue;
            }
            // One location budget, comparable to a single proposal round.
            let eps: f64 = reach
                .iter()
                .map(|&i| inst.budget(i, j).expect("reachable").slot(0))
                .sum::<f64>()
                / reach.len() as f64;
            if cfg.private && !ctx.affordable(board, j, eps) {
                // Hard lifetime cap: without the location release the
                // worker cannot participate in this round at all.
                continue;
            }

            let reported = if cfg.private {
                let mech = PlanarLaplace::new(eps);
                let (dx, dy) = mech.sample_from_uniforms(
                    noise.uniform(crate::board::LOCATION_RELEASE, j as u32, SLOT_RADIUS),
                    noise.uniform(crate::board::LOCATION_RELEASE, j as u32, SLOT_ANGLE),
                );
                board.charge_location(j, eps);
                let l = inst.workers()[j].location;
                Point::new(l.x + dx, l.y + dy)
            } else {
                inst.workers()[j].location
            };

            for &i in reach {
                let d_hat = inst.tasks()[i].location.distance(&reported);
                let estimated = inst.task_value(i) - ctx.fd(d_hat) - ctx.fp(eps);
                edges.push(Edge {
                    task: i,
                    worker: j,
                    weight: estimated,
                });
            }
        }

        let assignment = greedy_max_weight(inst.n_tasks(), inst.n_workers(), &edges, 0.0);
        for (t, w) in assignment.pairs() {
            board.set_winner(t, Some(w));
        }
        EngineTrace {
            rounds: 1,
            moves: Vec::new(),
        }
    }
}

/// Runs the Geo-I baseline (direct engine call — equivalent to
/// dispatching through [`Method::run`](crate::Method::run)).
pub fn run_geoi(inst: &Instance, cfg: &EngineConfig, noise: &dyn NoiseSource) -> RunOutcome {
    GeoIEngine::from_config(*cfg).run(inst, noise)
}
