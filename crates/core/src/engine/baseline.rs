//! One-shot baselines: GRD (global greedy), the exact Hungarian optimum
//! (Section V intro), and the obfuscated-Hungarian strawman the paper
//! dismisses ("a direct method ... collecting all workers' proposals
//! ... and using the Hungarian algorithm", Section V).

use crate::board::Board;
use crate::config::EngineConfig;
use crate::engine::{
    require_fresh_board, AssignmentEngine, BudgetRemaining, Ctx, EngineTrace, Uncapped,
};
use crate::model::Instance;
use crate::outcome::RunOutcome;
use dpta_dp::NoiseSource;
use dpta_matching::greedy::{greedy_max_weight, Edge};
use dpta_matching::hungarian::max_weight_matching;

/// The non-private utility of pair (i, j): `v_i − f_d(d_{i,j})`.
fn pair_utility(inst: &Instance, cfg: &EngineConfig, task: usize, worker: usize) -> f64 {
    inst.task_value(task) - cfg.alpha * inst.distance(task, worker)
}

fn apply_assignment(board: &mut Board, assignment: &dpta_matching::Assignment) {
    for (t, w) in assignment.pairs() {
        board.set_winner(t, Some(w));
    }
}

/// GRD (Table IX): greedily pick the highest-utility feasible pair among
/// free tasks and workers; pairs with non-positive utility stay
/// unmatched (matching the PA-TA objective's option of `s_{i,j} = 0`).
#[derive(Debug, Clone, Copy)]
pub struct GreedyEngine {
    cfg: EngineConfig,
}

impl GreedyEngine {
    /// Builds the engine for a configuration.
    pub fn from_config(cfg: EngineConfig) -> Self {
        GreedyEngine { cfg }
    }
}

impl AssignmentEngine for GreedyEngine {
    fn name(&self) -> &'static str {
        "GRD"
    }

    fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    fn drive(&self, inst: &Instance, board: &mut Board, _noise: &dyn NoiseSource) -> EngineTrace {
        require_fresh_board(self.name(), board);
        let mut edges = Vec::with_capacity(inst.feasible_pairs());
        for j in 0..inst.n_workers() {
            for &i in inst.reach(j) {
                edges.push(Edge {
                    task: i,
                    worker: j,
                    weight: pair_utility(inst, &self.cfg, i, j),
                });
            }
        }
        let assignment = greedy_max_weight(inst.n_tasks(), inst.n_workers(), &edges, 0.0);
        apply_assignment(board, &assignment);
        EngineTrace {
            rounds: 1,
            moves: Vec::new(),
        }
    }
}

/// The exact optimum of the non-private assignment problem via the
/// Hungarian algorithm — the upper baseline the heuristics chase.
#[derive(Debug, Clone, Copy)]
pub struct HungarianEngine {
    cfg: EngineConfig,
}

impl HungarianEngine {
    /// Builds the engine for a configuration.
    pub fn from_config(cfg: EngineConfig) -> Self {
        HungarianEngine { cfg }
    }
}

impl AssignmentEngine for HungarianEngine {
    fn name(&self) -> &'static str {
        "OPT"
    }

    fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    fn drive(&self, inst: &Instance, board: &mut Board, _noise: &dyn NoiseSource) -> EngineTrace {
        require_fresh_board(self.name(), board);
        let assignment = max_weight_matching(inst.n_tasks(), inst.n_workers(), |i, j| {
            inst.in_reach(i, j)
                .then(|| pair_utility(inst, &self.cfg, i, j))
        });
        apply_assignment(board, &assignment);
        EngineTrace {
            rounds: 1,
            moves: Vec::new(),
        }
    }
}

/// The "direct method" of Section V: every worker publishes his
/// first-slot obfuscated distance toward every reachable task, then the
/// server runs the Hungarian algorithm on the estimated utilities
/// `v_i − f_d(d̃_{i,j}) − f_p(ε⁽¹⁾_{i,j})`.
///
/// The paper rejects this design because comparing *sums* of obfuscated
/// distances "needs complex comparisons and has low accuracy", and
/// because every worker leaks a full round of budget up front; this
/// implementation exists so that the claim is measurable (O((m+n)³),
/// use on batch-scale instances only).
#[derive(Debug, Clone, Copy)]
pub struct ObfuscatedOptimalEngine {
    cfg: EngineConfig,
}

impl ObfuscatedOptimalEngine {
    /// Builds the engine for a configuration.
    pub fn from_config(cfg: EngineConfig) -> Self {
        ObfuscatedOptimalEngine { cfg }
    }
}

impl AssignmentEngine for ObfuscatedOptimalEngine {
    fn name(&self) -> &'static str {
        "P-OPT"
    }

    fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    fn enforces_budget_cap(&self) -> bool {
        true
    }

    fn drive(&self, inst: &Instance, board: &mut Board, noise: &dyn NoiseSource) -> EngineTrace {
        self.drive_capped(inst, board, noise, &Uncapped)
    }

    fn drive_capped(
        &self,
        inst: &Instance,
        board: &mut Board,
        noise: &dyn NoiseSource,
        remaining: &dyn BudgetRemaining,
    ) -> EngineTrace {
        require_fresh_board(self.name(), board);
        let ctx = Ctx::new(inst, &self.cfg, noise, board, remaining);
        for j in 0..inst.n_workers() {
            for &i in inst.reach(j) {
                let p = ctx
                    .prospective(board, i, j)
                    .expect("fresh board: slot 0 must be available");
                if !ctx.affordable(board, j, p.epsilon) {
                    continue; // hard cap: the pair stays unestimated
                }
                board.publish(i, j, p.d_hat, p.epsilon);
            }
        }
        let assignment = max_weight_matching(inst.n_tasks(), inst.n_workers(), |i, j| {
            board
                .effective(i, j)
                .map(|e| inst.task_value(i) - ctx.fd(e.distance) - ctx.fp(e.epsilon))
        });
        apply_assignment(board, &assignment);
        EngineTrace {
            rounds: 1,
            moves: Vec::new(),
        }
    }
}

/// GRD as a direct engine call (equivalent to dispatching through
/// [`Method::run`](crate::Method::run)).
pub fn run_grd(inst: &Instance, cfg: &EngineConfig) -> RunOutcome {
    GreedyEngine::from_config(*cfg).run(inst, &dpta_dp::SeededNoise::new(0))
}

/// The Hungarian optimum as a direct engine call.
pub fn run_optimal(inst: &Instance, cfg: &EngineConfig) -> RunOutcome {
    HungarianEngine::from_config(*cfg).run(inst, &dpta_dp::SeededNoise::new(0))
}

/// The Section V strawman as a direct engine call.
pub fn run_obfuscated_optimal(
    inst: &Instance,
    cfg: &EngineConfig,
    noise: &dyn NoiseSource,
) -> RunOutcome {
    ObfuscatedOptimalEngine::from_config(*cfg).run(inst, noise)
}
