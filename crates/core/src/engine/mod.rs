//! The assignment engines and the [`AssignmentEngine`] trait unifying
//! them.
//!
//! Every Table IX solver is an [`AssignmentEngine`]: a config-built
//! object that drives a [`Board`] to completion over an [`Instance`].
//! Four engine families cover the whole method registry:
//!
//! * [`ce::CeEngine`] — the conflict-elimination protocol
//!   (Algorithms 1–3), parameterised into PUCE / PDCE / UCE / DCE and
//!   the nppcf ablations;
//! * [`game::GameEngine`] — the best-response potential-game protocol
//!   (Algorithm 4), parameterised into PGT / GT;
//! * [`baseline`] — the one-shot [`baseline::GreedyEngine`] (GRD), the
//!   [`baseline::HungarianEngine`] optimum, and the
//!   [`baseline::ObfuscatedOptimalEngine`] strawman of Section V;
//! * [`location::GeoIEngine`] — the one-shot Geo-Indistinguishability
//!   baseline.
//!
//! [`build`] resolves a [`Method`] to a boxed engine;
//! [`Method::run`](crate::Method::run) is a thin wrapper over it. New
//! solvers (and future sharded/async runtimes) implement the trait and
//! register in [`build`] without touching any dispatch site: the
//! experiment runner, the benches and the tests all drive engines
//! through the trait object.

pub mod baseline;
pub mod ce;
mod ctx;
pub mod game;
pub mod location;

pub(crate) use ctx::Ctx;

use crate::board::Board;
use crate::config::EngineConfig;
use crate::method::Method;
use crate::model::Instance;
use crate::outcome::{MoveRecord, RunOutcome};
use dpta_dp::NoiseSource;

/// The protocol trace an engine produces while driving a board: the
/// round count and (for the game family) the accepted-move log. The
/// final matching and privacy state live on the board itself.
#[derive(Debug, Clone, Default)]
pub struct EngineTrace {
    /// Outer-loop protocol rounds executed.
    pub rounds: usize,
    /// Accepted best-response moves, in order (game engines only).
    pub moves: Vec<MoveRecord>,
}

/// Per-worker remaining lifetime privacy budget, consulted by capped
/// drives ([`AssignmentEngine::drive_capped`]) before every
/// publication.
///
/// The streaming layer's `worker_capacity` is a *lifetime* figure; the
/// engines gate publications by per-pair budget vectors, so without
/// this hook a worker can overshoot the capacity inside the window that
/// exhausts him. A capped drive skips any proposal whose ε would push
/// the worker's novel spend (since drive start) past
/// [`remaining`](BudgetRemaining::remaining), which makes the cap exact
/// rather than retire-at-window-close.
///
/// Implementations must be pure over a drive: the same worker index
/// returns the same figure for the whole drive, so capped runs stay
/// deterministic.
pub trait BudgetRemaining: Sync {
    /// Remaining lifetime budget of worker `j` (instance index) at
    /// drive start. `f64::INFINITY` disables the cap for that worker.
    fn remaining(&self, worker: usize) -> f64;
}

/// The no-cap guard: infinite remaining budget for every worker.
/// [`AssignmentEngine::drive`] is exactly `drive_capped` under this
/// guard.
#[derive(Debug, Clone, Copy, Default)]
pub struct Uncapped;

impl BudgetRemaining for Uncapped {
    fn remaining(&self, _worker: usize) -> f64 {
        f64::INFINITY
    }
}

/// A snapshot vector indexed by instance worker: the natural guard for
/// drivers that pre-compute each worker's remaining lifetime budget.
impl BudgetRemaining for Vec<f64> {
    fn remaining(&self, worker: usize) -> f64 {
        self[worker]
    }
}

/// A Table IX solver behind one polymorphic interface.
///
/// Engines are cheap, immutable config holders (`Send + Sync`, so one
/// engine can serve parallel batch runs); all run state lives on the
/// [`Board`]. The required method is [`drive`](Self::drive); `assign`,
/// `run` and `resume` are provided conveniences layered on it.
///
/// # Warm-start contract
///
/// [`resume`](Self::resume) is the hook batch carry-over and the
/// streaming pipeline (`dpta-stream`) build on, so its semantics are
/// explicit:
///
/// 1. **Gate.** Callers may pass a non-fresh board only to engines
///    whose [`supports_warm_start`](Self::supports_warm_start) returns
///    `true`; `resume` panics otherwise, and one-shot engines guard
///    `drive` with a fresh-board check that fails loudly.
/// 2. **Board shape.** The board's dimensions must match the instance
///    (`drive` asserts this). When entities enter or leave between
///    windows, translate the surviving state with
///    [`Board::carry`](crate::Board::carry) first — it preserves
///    release order, effective pairs and consumed budget slots, which
///    is exactly the state the continuation below depends on.
/// 3. **Continuation, not replay.** A warm-start engine treats carried
///    releases as history: consumed budget slots stay consumed (the
///    next release of a pair draws the *next* slot of its budget
///    vector), carried winners are incumbents that must be beaten per
///    the protocol's comparison gates, and no carried release is ever
///    re-published or re-charged.
/// 4. **Quiescence.** Resuming a board the same engine just drove to
///    completion, with the instance unchanged, publishes nothing and
///    leaves the allocation as is — a completed run is a fixed point
///    (asserted by `warm_start_and_eq4` and the stream driver tests).
/// 5. **Re-entering workers.** A worker column dropped by a carry
///    (departed to serve) and re-introduced in a later window is a
///    *new* column with empty history — engines need no notion of
///    identity, and none is added. Two driver-side facts make this
///    sound: noise and budget vectors are keyed by stable logical ids,
///    so the returned worker's re-publications to still-pending tasks
///    are bit-identical to the originals (zero new information), and
///    the streaming layer's id-keyed dedup charges each distinct
///    release to the lifetime accountant at most once across service
///    cycles. Under a capped resume the guard still counts those
///    re-derivations as novel spend — deterministic, conservative
///    under-publishing near the cap, never an overshoot.
///
/// # Examples
///
/// ```
/// use dpta_core::{AssignmentEngine, Instance, Method, RunParams, Task, Worker};
/// use dpta_dp::{BudgetVector, SeededNoise};
/// use dpta_spatial::Point;
///
/// let inst = Instance::from_locations(
///     vec![Task::new(Point::new(0.0, 0.0), 4.5)],
///     vec![Worker::new(Point::new(0.3, 0.4), 2.0)],
///     |_, _| BudgetVector::new(vec![0.5, 1.0]),
/// );
/// let params = RunParams::default();
/// let engine = Method::Puce.engine(&params); // Box<dyn AssignmentEngine>
/// let noise = SeededNoise::new(params.seed);
///
/// let outcome = engine.run(&inst, &noise);
/// assert_eq!(outcome.assignment.worker_of(0), Some(0));
///
/// // Quiescence: resuming the completed board changes nothing.
/// let resumed = engine.resume(&inst, outcome.board.clone(), &noise);
/// assert_eq!(resumed.board.publications(), outcome.board.publications());
/// assert_eq!(resumed.assignment, outcome.assignment);
/// ```
pub trait AssignmentEngine: Send + Sync {
    /// Display name under this configuration (paper legend style, e.g.
    /// `"PUCE"` for a private utility-objective CE engine).
    fn name(&self) -> &'static str;

    /// The configuration the engine was built from.
    fn config(&self) -> &EngineConfig;

    /// Drives `board` to completion in place and returns the protocol
    /// trace. Engines that do not
    /// [support warm starts](Self::supports_warm_start) require a fresh
    /// board and panic otherwise.
    fn drive(&self, inst: &Instance, board: &mut Board, noise: &dyn NoiseSource) -> EngineTrace;

    /// Capability hook: whether [`drive`](Self::drive) may start from a
    /// board carrying earlier releases and winners (warm start / batch
    /// carry-over). One-shot engines return `false`.
    fn supports_warm_start(&self) -> bool {
        false
    }

    /// Capability hook: whether [`drive_capped`](Self::drive_capped)
    /// actually enforces the remaining-budget guard. Engines that never
    /// publish (GRD, OPT) satisfy any cap vacuously and return `false`.
    fn enforces_budget_cap(&self) -> bool {
        false
    }

    /// Drives `board` to completion like [`drive`](Self::drive), but
    /// skips every proposal whose ε would push the worker's novel spend
    /// (since drive start) past `remaining` — the hook the streaming
    /// pipeline uses to make lifetime budget caps exact. Under
    /// [`Uncapped`] this is bit-identical to `drive`; the default
    /// implementation ignores the guard, which is correct only for
    /// engines that publish nothing (see
    /// [`enforces_budget_cap`](Self::enforces_budget_cap)).
    ///
    /// # Examples
    ///
    /// ```
    /// use dpta_core::engine::{BudgetRemaining, Uncapped};
    /// use dpta_core::{Board, Instance, Method, RunParams, Task, Worker};
    /// use dpta_dp::{BudgetVector, SeededNoise};
    /// use dpta_spatial::Point;
    ///
    /// let inst = Instance::from_locations(
    ///     vec![Task::new(Point::new(0.0, 0.0), 4.5)],
    ///     vec![Worker::new(Point::new(0.3, 0.4), 2.0)],
    ///     |_, _| BudgetVector::new(vec![0.5, 1.0]),
    /// );
    /// let params = RunParams::default();
    /// let engine = Method::Puce.engine(&params);
    /// let noise = SeededNoise::new(params.seed);
    ///
    /// // A worker with no budget left publishes nothing and wins nothing.
    /// let mut board = Board::new(1, 1);
    /// engine.drive_capped(&inst, &mut board, &noise, &vec![0.0]);
    /// assert_eq!(board.publications(), 0);
    /// assert_eq!(board.winner(0), None);
    ///
    /// // Uncapped, the capped drive is the plain drive.
    /// let mut capped = Board::new(1, 1);
    /// engine.drive_capped(&inst, &mut capped, &noise, &Uncapped);
    /// let plain = engine.run(&inst, &noise);
    /// assert_eq!(capped.publications(), plain.board.publications());
    /// ```
    fn drive_capped(
        &self,
        inst: &Instance,
        board: &mut Board,
        noise: &dyn NoiseSource,
        remaining: &dyn BudgetRemaining,
    ) -> EngineTrace {
        let _ = remaining;
        self.drive(inst, board, noise)
    }

    /// [`assign`](Self::assign) under a remaining-budget guard.
    fn assign_capped(
        &self,
        inst: &Instance,
        board: &mut Board,
        noise: &dyn NoiseSource,
        remaining: &dyn BudgetRemaining,
    ) -> RunOutcome {
        let trace = self.drive_capped(inst, board, noise, remaining);
        RunOutcome {
            assignment: board.assignment(),
            board: board.clone(),
            rounds: trace.rounds,
            moves: trace.moves,
        }
    }

    /// [`resume`](Self::resume) under a remaining-budget guard: the
    /// warm-start contract plus the hard lifetime cap of
    /// [`drive_capped`](Self::drive_capped). Panics when the engine
    /// does not support warm starts.
    fn resume_capped(
        &self,
        inst: &Instance,
        mut board: Board,
        noise: &dyn NoiseSource,
        remaining: &dyn BudgetRemaining,
    ) -> RunOutcome {
        assert!(
            self.supports_warm_start(),
            "{} does not support warm starts",
            self.name()
        );
        let trace = self.drive_capped(inst, &mut board, noise, remaining);
        RunOutcome {
            assignment: board.assignment(),
            board,
            rounds: trace.rounds,
            moves: trace.moves,
        }
    }

    /// Capability hook: whether runs publish obfuscated releases and
    /// charge privacy budget — the flag the Section VII-C measures need
    /// to decide if `f_p` enters reported utility.
    fn accounts_privacy(&self) -> bool {
        self.config().private
    }

    /// Drives `board` to completion in place and assembles a full
    /// [`RunOutcome`] (whose board is a snapshot of the final state).
    /// Prefer [`run`](Self::run) or [`resume`](Self::resume) when the
    /// caller does not need to keep ownership of the board.
    fn assign(&self, inst: &Instance, board: &mut Board, noise: &dyn NoiseSource) -> RunOutcome {
        let trace = self.drive(inst, board, noise);
        RunOutcome {
            assignment: board.assignment(),
            board: board.clone(),
            rounds: trace.rounds,
            moves: trace.moves,
        }
    }

    /// Runs from a fresh board.
    fn run(&self, inst: &Instance, noise: &dyn NoiseSource) -> RunOutcome {
        let mut board = Board::new(inst.n_tasks(), inst.n_workers());
        let trace = self.drive(inst, &mut board, noise);
        RunOutcome {
            assignment: board.assignment(),
            board,
            rounds: trace.rounds,
            moves: trace.moves,
        }
    }

    /// Runs from a pre-populated board (warm start) under the
    /// [warm-start contract](AssignmentEngine#warm-start-contract):
    /// carried releases are history (slots stay consumed, nothing is
    /// re-published), carried winners are incumbents, and resuming a
    /// completed board is a no-op. Panics when the engine does not
    /// support warm starts.
    fn resume(&self, inst: &Instance, mut board: Board, noise: &dyn NoiseSource) -> RunOutcome {
        assert!(
            self.supports_warm_start(),
            "{} does not support warm starts",
            self.name()
        );
        let trace = self.drive(inst, &mut board, noise);
        RunOutcome {
            assignment: board.assignment(),
            board,
            rounds: trace.rounds,
            moves: trace.moves,
        }
    }
}

/// The engine registry: resolves a [`Method`] to a boxed engine under
/// `cfg`. This is the single place a new solver family plugs into.
pub fn build(method: Method, cfg: EngineConfig) -> Box<dyn AssignmentEngine> {
    match method {
        Method::Puce
        | Method::PuceNppcf
        | Method::Pdce
        | Method::PdceNppcf
        | Method::Uce
        | Method::Dce => Box::new(ce::CeEngine::from_config(cfg)),
        Method::Pgt | Method::Gt => Box::new(game::GameEngine::from_config(cfg)),
        Method::Grd => Box::new(baseline::GreedyEngine::from_config(cfg)),
        Method::Optimal => Box::new(baseline::HungarianEngine::from_config(cfg)),
        Method::GeoI => Box::new(location::GeoIEngine::from_config(cfg)),
        Method::ObfuscatedOptimal => Box::new(baseline::ObfuscatedOptimalEngine::from_config(cfg)),
    }
}

/// Panics unless `board` is untouched — the guard one-shot engines run
/// before driving, so a warm-start misuse fails loudly instead of
/// silently double-charging budgets.
pub(crate) fn require_fresh_board(name: &str, board: &Board) {
    assert!(
        board.publications() == 0 && board.alloc().iter().all(Option::is_none),
        "{name} is a one-shot engine and requires a fresh board \
         (found earlier releases or winners)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RunParams;
    use crate::model::{Task, Worker};
    use dpta_dp::{BudgetVector, SeededNoise};
    use dpta_spatial::Point;

    /// Three tasks, two workers, everything mutually reachable.
    fn cap_instance() -> Instance {
        Instance::from_locations(
            (0..3)
                .map(|i| Task::new(Point::new(i as f64, 0.0), 4.5))
                .collect(),
            vec![
                Worker::new(Point::new(0.5, 0.5), 5.0),
                Worker::new(Point::new(1.5, 0.5), 5.0),
            ],
            |_, _| BudgetVector::new(vec![0.5, 0.75, 1.0]),
        )
    }

    #[test]
    fn uncapped_drive_matches_plain_drive_for_every_method() {
        let params = RunParams::default();
        let inst = cap_instance();
        let noise = SeededNoise::new(params.seed);
        for method in Method::all() {
            let engine = build(method, method.engine_config(&params));
            let plain = engine.run(&inst, &noise);
            let mut board = Board::new(inst.n_tasks(), inst.n_workers());
            let capped = engine.assign_capped(&inst, &mut board, &noise, &Uncapped);
            assert_eq!(plain.assignment, capped.assignment, "{method}");
            assert_eq!(
                plain.board.publications(),
                capped.board.publications(),
                "{method}"
            );
            for j in 0..inst.n_workers() {
                assert_eq!(
                    plain.board.spent_total(j).to_bits(),
                    capped.board.spent_total(j).to_bits(),
                    "{method} worker {j}"
                );
            }
        }
    }

    #[test]
    fn capped_drives_never_overshoot_the_remaining_budget() {
        let params = RunParams::default();
        let inst = cap_instance();
        let noise = SeededNoise::new(params.seed);
        let caps = vec![1.1, 0.6];
        for method in Method::all() {
            let engine = build(method, method.engine_config(&params));
            if !engine.enforces_budget_cap() {
                continue;
            }
            let mut board = Board::new(inst.n_tasks(), inst.n_workers());
            engine.assign_capped(&inst, &mut board, &noise, &caps);
            for (j, &cap) in caps.iter().enumerate() {
                assert!(
                    board.spent_total(j) <= cap + 1e-9,
                    "{method}: worker {j} spent {} over cap {cap}",
                    board.spent_total(j)
                );
            }
        }
    }

    #[test]
    fn zero_remaining_budget_silences_private_engines() {
        let params = RunParams::default();
        let inst = cap_instance();
        let noise = SeededNoise::new(params.seed);
        for method in [Method::Puce, Method::Pdce, Method::Pgt, Method::GeoI] {
            let engine = build(method, method.engine_config(&params));
            let mut board = Board::new(inst.n_tasks(), inst.n_workers());
            engine.assign_capped(&inst, &mut board, &noise, &vec![0.0, 0.0]);
            assert_eq!(board.publications(), 0, "{method}");
            assert!(board.alloc().iter().all(Option::is_none), "{method}");
        }
    }

    #[test]
    fn capped_resume_continues_from_carried_state_under_the_cap() {
        // Drive PUCE capped; resume with a tighter remaining budget:
        // the carried spend must not be re-counted against the new cap
        // (only novel spend is gated), and the cap still binds.
        let params = RunParams::default();
        let inst = cap_instance();
        let noise = SeededNoise::new(params.seed);
        let engine = build(Method::Puce, Method::Puce.engine_config(&params));
        let mut board = Board::new(inst.n_tasks(), inst.n_workers());
        engine.assign_capped(&inst, &mut board, &noise, &vec![0.6, 0.6]);
        let spent_before: Vec<f64> = (0..2).map(|j| board.spent_total(j)).collect();
        let resumed = engine.resume_capped(&inst, board, &noise, &vec![0.5, 0.5]);
        for (j, &before) in spent_before.iter().enumerate() {
            let novel = resumed.board.spent_total(j) - before;
            assert!(novel >= 0.0);
            assert!(
                novel <= 0.5 + 1e-9,
                "worker {j} published {novel} of novel spend over the resumed cap"
            );
        }
    }

    #[test]
    fn registry_covers_every_method_with_matching_capabilities() {
        let params = RunParams::default();
        for method in Method::all() {
            let engine = build(method, method.engine_config(&params));
            assert_eq!(engine.accounts_privacy(), method.is_private(), "{method}");
            assert_eq!(
                engine.supports_warm_start(),
                !matches!(
                    method,
                    Method::Grd | Method::Optimal | Method::GeoI | Method::ObfuscatedOptimal
                ),
                "{method}"
            );
        }
    }

    #[test]
    fn engine_names_follow_the_paper_legends() {
        let params = RunParams::default();
        for method in Method::all() {
            let engine = build(method, method.engine_config(&params));
            assert_eq!(engine.name(), method.name(), "{method}");
        }
    }
}
