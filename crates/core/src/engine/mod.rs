//! The assignment engines and the [`AssignmentEngine`] trait unifying
//! them.
//!
//! Every Table IX solver is an [`AssignmentEngine`]: a config-built
//! object that drives a [`Board`] to completion over an [`Instance`].
//! Four engine families cover the whole method registry:
//!
//! * [`ce::CeEngine`] — the conflict-elimination protocol
//!   (Algorithms 1–3), parameterised into PUCE / PDCE / UCE / DCE and
//!   the nppcf ablations;
//! * [`game::GameEngine`] — the best-response potential-game protocol
//!   (Algorithm 4), parameterised into PGT / GT;
//! * [`baseline`] — the one-shot [`baseline::GreedyEngine`] (GRD), the
//!   [`baseline::HungarianEngine`] optimum, and the
//!   [`baseline::ObfuscatedOptimalEngine`] strawman of Section V;
//! * [`location::GeoIEngine`] — the one-shot Geo-Indistinguishability
//!   baseline.
//!
//! [`build`] resolves a [`Method`] to a boxed engine;
//! [`Method::run`](crate::Method::run) is a thin wrapper over it. New
//! solvers (and future sharded/async runtimes) implement the trait and
//! register in [`build`] without touching any dispatch site: the
//! experiment runner, the benches and the tests all drive engines
//! through the trait object.

pub mod baseline;
pub mod ce;
mod ctx;
pub mod game;
pub mod location;

pub(crate) use ctx::Ctx;

use crate::board::Board;
use crate::config::EngineConfig;
use crate::method::Method;
use crate::model::Instance;
use crate::outcome::{MoveRecord, RunOutcome};
use dpta_dp::NoiseSource;

/// The protocol trace an engine produces while driving a board: the
/// round count and (for the game family) the accepted-move log. The
/// final matching and privacy state live on the board itself.
#[derive(Debug, Clone, Default)]
pub struct EngineTrace {
    /// Outer-loop protocol rounds executed.
    pub rounds: usize,
    /// Accepted best-response moves, in order (game engines only).
    pub moves: Vec<MoveRecord>,
}

/// A Table IX solver behind one polymorphic interface.
///
/// Engines are cheap, immutable config holders (`Send + Sync`, so one
/// engine can serve parallel batch runs); all run state lives on the
/// [`Board`]. The required method is [`drive`](Self::drive); `assign`,
/// `run` and `resume` are provided conveniences layered on it.
///
/// # Warm-start contract
///
/// [`resume`](Self::resume) is the hook batch carry-over and the
/// streaming pipeline (`dpta-stream`) build on, so its semantics are
/// explicit:
///
/// 1. **Gate.** Callers may pass a non-fresh board only to engines
///    whose [`supports_warm_start`](Self::supports_warm_start) returns
///    `true`; `resume` panics otherwise, and one-shot engines guard
///    `drive` with a fresh-board check that fails loudly.
/// 2. **Board shape.** The board's dimensions must match the instance
///    (`drive` asserts this). When entities enter or leave between
///    windows, translate the surviving state with
///    [`Board::carry`](crate::Board::carry) first — it preserves
///    release order, effective pairs and consumed budget slots, which
///    is exactly the state the continuation below depends on.
/// 3. **Continuation, not replay.** A warm-start engine treats carried
///    releases as history: consumed budget slots stay consumed (the
///    next release of a pair draws the *next* slot of its budget
///    vector), carried winners are incumbents that must be beaten per
///    the protocol's comparison gates, and no carried release is ever
///    re-published or re-charged.
/// 4. **Quiescence.** Resuming a board the same engine just drove to
///    completion, with the instance unchanged, publishes nothing and
///    leaves the allocation as is — a completed run is a fixed point
///    (asserted by `warm_start_and_eq4` and the stream driver tests).
///
/// # Examples
///
/// ```
/// use dpta_core::{AssignmentEngine, Instance, Method, RunParams, Task, Worker};
/// use dpta_dp::{BudgetVector, SeededNoise};
/// use dpta_spatial::Point;
///
/// let inst = Instance::from_locations(
///     vec![Task::new(Point::new(0.0, 0.0), 4.5)],
///     vec![Worker::new(Point::new(0.3, 0.4), 2.0)],
///     |_, _| BudgetVector::new(vec![0.5, 1.0]),
/// );
/// let params = RunParams::default();
/// let engine = Method::Puce.engine(&params); // Box<dyn AssignmentEngine>
/// let noise = SeededNoise::new(params.seed);
///
/// let outcome = engine.run(&inst, &noise);
/// assert_eq!(outcome.assignment.worker_of(0), Some(0));
///
/// // Quiescence: resuming the completed board changes nothing.
/// let resumed = engine.resume(&inst, outcome.board.clone(), &noise);
/// assert_eq!(resumed.board.publications(), outcome.board.publications());
/// assert_eq!(resumed.assignment, outcome.assignment);
/// ```
pub trait AssignmentEngine: Send + Sync {
    /// Display name under this configuration (paper legend style, e.g.
    /// `"PUCE"` for a private utility-objective CE engine).
    fn name(&self) -> &'static str;

    /// The configuration the engine was built from.
    fn config(&self) -> &EngineConfig;

    /// Drives `board` to completion in place and returns the protocol
    /// trace. Engines that do not
    /// [support warm starts](Self::supports_warm_start) require a fresh
    /// board and panic otherwise.
    fn drive(&self, inst: &Instance, board: &mut Board, noise: &dyn NoiseSource) -> EngineTrace;

    /// Capability hook: whether [`drive`](Self::drive) may start from a
    /// board carrying earlier releases and winners (warm start / batch
    /// carry-over). One-shot engines return `false`.
    fn supports_warm_start(&self) -> bool {
        false
    }

    /// Capability hook: whether runs publish obfuscated releases and
    /// charge privacy budget — the flag the Section VII-C measures need
    /// to decide if `f_p` enters reported utility.
    fn accounts_privacy(&self) -> bool {
        self.config().private
    }

    /// Drives `board` to completion in place and assembles a full
    /// [`RunOutcome`] (whose board is a snapshot of the final state).
    /// Prefer [`run`](Self::run) or [`resume`](Self::resume) when the
    /// caller does not need to keep ownership of the board.
    fn assign(&self, inst: &Instance, board: &mut Board, noise: &dyn NoiseSource) -> RunOutcome {
        let trace = self.drive(inst, board, noise);
        RunOutcome {
            assignment: board.assignment(),
            board: board.clone(),
            rounds: trace.rounds,
            moves: trace.moves,
        }
    }

    /// Runs from a fresh board.
    fn run(&self, inst: &Instance, noise: &dyn NoiseSource) -> RunOutcome {
        let mut board = Board::new(inst.n_tasks(), inst.n_workers());
        let trace = self.drive(inst, &mut board, noise);
        RunOutcome {
            assignment: board.assignment(),
            board,
            rounds: trace.rounds,
            moves: trace.moves,
        }
    }

    /// Runs from a pre-populated board (warm start) under the
    /// [warm-start contract](AssignmentEngine#warm-start-contract):
    /// carried releases are history (slots stay consumed, nothing is
    /// re-published), carried winners are incumbents, and resuming a
    /// completed board is a no-op. Panics when the engine does not
    /// support warm starts.
    fn resume(&self, inst: &Instance, mut board: Board, noise: &dyn NoiseSource) -> RunOutcome {
        assert!(
            self.supports_warm_start(),
            "{} does not support warm starts",
            self.name()
        );
        let trace = self.drive(inst, &mut board, noise);
        RunOutcome {
            assignment: board.assignment(),
            board,
            rounds: trace.rounds,
            moves: trace.moves,
        }
    }
}

/// The engine registry: resolves a [`Method`] to a boxed engine under
/// `cfg`. This is the single place a new solver family plugs into.
pub fn build(method: Method, cfg: EngineConfig) -> Box<dyn AssignmentEngine> {
    match method {
        Method::Puce
        | Method::PuceNppcf
        | Method::Pdce
        | Method::PdceNppcf
        | Method::Uce
        | Method::Dce => Box::new(ce::CeEngine::from_config(cfg)),
        Method::Pgt | Method::Gt => Box::new(game::GameEngine::from_config(cfg)),
        Method::Grd => Box::new(baseline::GreedyEngine::from_config(cfg)),
        Method::Optimal => Box::new(baseline::HungarianEngine::from_config(cfg)),
        Method::GeoI => Box::new(location::GeoIEngine::from_config(cfg)),
        Method::ObfuscatedOptimal => Box::new(baseline::ObfuscatedOptimalEngine::from_config(cfg)),
    }
}

/// Panics unless `board` is untouched — the guard one-shot engines run
/// before driving, so a warm-start misuse fails loudly instead of
/// silently double-charging budgets.
pub(crate) fn require_fresh_board(name: &str, board: &Board) {
    assert!(
        board.publications() == 0 && board.alloc().iter().all(Option::is_none),
        "{name} is a one-shot engine and requires a fresh board \
         (found earlier releases or winners)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RunParams;

    #[test]
    fn registry_covers_every_method_with_matching_capabilities() {
        let params = RunParams::default();
        for method in Method::all() {
            let engine = build(method, method.engine_config(&params));
            assert_eq!(engine.accounts_privacy(), method.is_private(), "{method}");
            assert_eq!(
                engine.supports_warm_start(),
                !matches!(
                    method,
                    Method::Grd | Method::Optimal | Method::GeoI | Method::ObfuscatedOptimal
                ),
                "{method}"
            );
        }
    }

    #[test]
    fn engine_names_follow_the_paper_legends() {
        let params = RunParams::default();
        for method in Method::all() {
            let engine = build(method, method.engine_config(&params));
            assert_eq!(engine.name(), method.name(), "{method}");
        }
    }
}
