//! The three algorithm engines.
//!
//! * [`ce`] — the conflict-elimination protocol (Algorithms 1–3),
//!   parameterised into PUCE / PDCE / UCE / DCE and the nppcf ablations;
//! * [`game`] — the best-response potential-game protocol (Algorithm 4),
//!   parameterised into PGT / GT;
//! * [`baseline`] — the one-shot GRD greedy and the Hungarian optimum.

pub mod baseline;
pub mod ce;
mod ctx;
pub mod game;
pub mod location;

pub(crate) use ctx::Ctx;
