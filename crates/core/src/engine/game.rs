//! The game-theoretic protocol — Algorithm 4 (PGT) and its non-private
//! version GT.
//!
//! Workers take turns playing best responses in the strategic game
//! `G = <W, S, UT>` of Section VI. A worker's move utility toward task
//! `i₂` (Equation 5) decomposes into the three utility changes of
//! Section VI-A:
//!
//! * winning change `ΔU^W = v_{i₂} − f_d(d̃^{new}_{i₂,j}) − f_p(ε^{new})`,
//! * defeated change `ΔU^D = −v_{i₂} + f_d(d̃_{i₂,win})` for the current
//!   winner of `i₂` (when one exists),
//! * abandoned change `ΔU^A = −v_{i₁} + f_d(d̃_{i₁,j})` for the task the
//!   mover currently holds (when any).
//!
//! A move is published only when `UT > 0`; failed evaluations publish
//! neither the new obfuscated distance nor the budget (the "green"
//! entries of Table VIII). PAA-TA is an exact potential game
//! (Theorem VI.1): every accepted move increases
//! `Φ = Σ_i s_{i,j}(v_i − f_d(d̃_{i,j})) − Σ f_p(b·ε)` by exactly `UT`,
//! which the engine asserts when potential tracking is on.
//!
//! Termination: each accepted move publishes a release (finite slots)
//! and strictly increases Φ; the loop halts on the first full pass with
//! no accepted move — a pure Nash equilibrium of the approximate game
//! (Theorem VI.2 bounds the rounds by the scaled optimal potential).

use crate::analysis::potential;
use crate::board::Board;
use crate::config::EngineConfig;
use crate::engine::{AssignmentEngine, BudgetRemaining, Ctx, EngineTrace, Uncapped};
use crate::model::Instance;
use crate::outcome::{MoveRecord, RunOutcome};
use dpta_dp::NoiseSource;

/// The best-response potential-game engine: PGT / GT, selected by
/// [`EngineConfig::private`].
#[derive(Debug, Clone, Copy)]
pub struct GameEngine {
    cfg: EngineConfig,
}

impl GameEngine {
    /// Builds the engine for a configuration.
    pub fn from_config(cfg: EngineConfig) -> Self {
        GameEngine { cfg }
    }
}

impl AssignmentEngine for GameEngine {
    fn name(&self) -> &'static str {
        if self.cfg.private {
            "PGT"
        } else {
            "GT"
        }
    }

    fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    fn supports_warm_start(&self) -> bool {
        true
    }

    fn enforces_budget_cap(&self) -> bool {
        true
    }

    fn drive(&self, inst: &Instance, board: &mut Board, noise: &dyn NoiseSource) -> EngineTrace {
        drive_game(inst, &self.cfg, noise, board, &Uncapped)
    }

    fn drive_capped(
        &self,
        inst: &Instance,
        board: &mut Board,
        noise: &dyn NoiseSource,
        remaining: &dyn BudgetRemaining,
    ) -> EngineTrace {
        drive_game(inst, &self.cfg, noise, board, remaining)
    }
}

/// Runs the game protocol from an empty board (direct engine call —
/// equivalent to dispatching through [`Method::run`](crate::Method::run)).
pub fn run(inst: &Instance, cfg: &EngineConfig, noise: &dyn NoiseSource) -> RunOutcome {
    GameEngine::from_config(*cfg).run(inst, noise)
}

/// Runs the game protocol from a pre-populated board (warm start).
pub fn run_from(
    inst: &Instance,
    cfg: &EngineConfig,
    noise: &dyn NoiseSource,
    board: Board,
) -> RunOutcome {
    GameEngine::from_config(*cfg).resume(inst, board, noise)
}

fn drive_game(
    inst: &Instance,
    cfg: &EngineConfig,
    noise: &dyn NoiseSource,
    board: &mut Board,
    remaining: &dyn BudgetRemaining,
) -> EngineTrace {
    assert_eq!(board.n_tasks(), inst.n_tasks());
    assert_eq!(board.n_workers(), inst.n_workers());
    let ctx = Ctx::new(inst, cfg, noise, board, remaining);
    let mut moves: Vec<MoveRecord> = Vec::new();
    let mut rounds = 0usize;

    loop {
        rounds += 1;
        assert!(
            rounds <= cfg.max_rounds,
            "game engine exceeded max_rounds = {} — this indicates a \
             non-terminating configuration bug",
            cfg.max_rounds
        );
        let mut any_move = false;

        for j in 0..inst.n_workers() {
            let held = board.task_of(j);

            // Line 6: best response over R_j \ {current task}.
            let mut best: Option<(f64, usize, f64, f64)> = None; // (UT, task, d̂, ε)
            for &i in inst.reach(j) {
                if held == Some(i) {
                    continue;
                }
                let Some(p) = ctx.prospective(board, i, j) else {
                    continue; // budget exhausted toward this task
                };
                if !ctx.affordable(board, j, p.epsilon) {
                    continue; // hard lifetime cap: the move would overshoot
                }
                let mut ut = inst.task_value(i) - ctx.fd(p.effective.distance) - ctx.fp(p.epsilon);
                if let Some(w) = board.winner(i) {
                    let we = board
                        .effective(i, w)
                        .expect("winner must have published releases");
                    ut += -inst.task_value(i) + ctx.fd(we.distance);
                }
                if let Some(i1) = held {
                    let own = board
                        .effective(i1, j)
                        .expect("held task must have published releases");
                    ut += -inst.task_value(i1) + ctx.fd(own.distance);
                }
                if best.is_none_or(|(b, ..)| ut > b) {
                    best = Some((ut, i, p.d_hat, p.epsilon));
                }
            }

            // Lines 7–15: publish and update the allocation when the best
            // response strictly improves.
            if let Some((ut, i, d_hat, eps)) = best {
                if ut > 0.0 {
                    let phi_before = cfg.track_potential.then(|| potential(inst, board, cfg));
                    board.publish(i, j, d_hat, eps);
                    board.set_winner(i, Some(j)); // frees j's old task & displaces the old winner
                    any_move = true;
                    let phi_after = cfg.track_potential.then(|| {
                        let phi = potential(inst, board, cfg);
                        let delta = phi - phi_before.expect("tracked");
                        assert!(
                            (delta - ut).abs() < 1e-6,
                            "exact-potential identity violated: ΔΦ = {delta}, UT = {ut}"
                        );
                        phi
                    });
                    moves.push(MoveRecord {
                        worker: j,
                        from: held,
                        to: i,
                        utility_change: ut,
                        potential: phi_after,
                    });
                }
            }
        }

        if !any_move {
            break; // pure Nash equilibrium of the approximate game
        }
    }

    EngineTrace { rounds, moves }
}
