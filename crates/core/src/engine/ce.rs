//! The conflict-elimination protocol — Algorithms 1 (WorkerProposal),
//! 2 (WinnerChosen) and 3 (PUCE main loop) of the paper.
//!
//! One engine covers four Table IX methods through [`EngineConfig`]:
//!
//! | method | objective | compare | private |
//! |---|---|---|---|
//! | PUCE | Utility | Ppcf | yes |
//! | PUCE-nppcf | Utility | PcfOnly | yes |
//! | PDCE | Distance | Ppcf | yes |
//! | PDCE-nppcf | Distance | PcfOnly | yes |
//! | UCE | Utility | — | no |
//! | DCE | Distance | — | no |
//!
//! Non-private runs use zero noise and zero privacy cost, under which
//! every probabilistic gate degenerates to the exact comparison.
//!
//! ### Protocol round (batch style, Section III)
//!
//! 1. Every not-winning worker scans the tasks in his service area
//!    (Algorithm 1). A proposal must pass: budget not exhausted; for the
//!    utility objective, positive prospective utility (line 7); and when
//!    the task has an incumbent winner, the PPCF gate on the worker's
//!    real distance (line 12) and the PCF gate on his new effective
//!    distance (line 14), both against the incumbent's effective
//!    distance shifted per Equation 4. Passing proposals are *published*
//!    (the budget slot is charged) and enter the candidate list `CL`.
//! 2. The server merges each candidate set with the incumbent, sorts by
//!    estimated utility (via the Eq. 4 PCF order, which for Laplace
//!    noise coincides with sorting by `v_i − f_d(d̃) − f_p(spent)`), and
//!    runs CEA to resolve winner conflicts (Algorithm 2).
//! 3. Rounds repeat until a round produces no proposals (Algorithm 3).
//!
//! Termination: every round that does not halt publishes at least one
//! release, and the total number of budget slots is finite.

use crate::board::Board;
use crate::config::{CompareMode, EngineConfig, Objective, ProposalAccounting};
use crate::engine::{AssignmentEngine, BudgetRemaining, Ctx, EngineTrace, Uncapped};
use crate::model::Instance;
use crate::outcome::RunOutcome;
use dpta_dp::{pcf, ppcf, EffectivePair, NoiseSource};
use dpta_matching::cea::conflict_elimination;

/// One entry of the candidate list / competing table: a worker together
/// with his current effective distance-budget pair and the sort key
/// (estimated utility, or negated effective distance for the distance
/// objective — higher key is always better).
#[derive(Debug, Clone, Copy)]
struct CtEntry {
    worker: usize,
    pair: EffectivePair,
    key: f64,
}

/// The conflict-elimination engine: PUCE / PDCE / UCE / DCE and the
/// nppcf ablations, selected by [`EngineConfig`].
#[derive(Debug, Clone, Copy)]
pub struct CeEngine {
    cfg: EngineConfig,
}

impl CeEngine {
    /// Builds the engine for a configuration.
    pub fn from_config(cfg: EngineConfig) -> Self {
        CeEngine { cfg }
    }
}

impl AssignmentEngine for CeEngine {
    fn name(&self) -> &'static str {
        match (self.cfg.private, self.cfg.objective, self.cfg.compare) {
            (true, Objective::Utility, CompareMode::Ppcf) => "PUCE",
            (true, Objective::Utility, CompareMode::PcfOnly) => "PUCE-nppcf",
            (true, Objective::Distance, CompareMode::Ppcf) => "PDCE",
            (true, Objective::Distance, CompareMode::PcfOnly) => "PDCE-nppcf",
            (false, Objective::Utility, _) => "UCE",
            (false, Objective::Distance, _) => "DCE",
        }
    }

    fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    fn supports_warm_start(&self) -> bool {
        true
    }

    fn enforces_budget_cap(&self) -> bool {
        true
    }

    fn drive(&self, inst: &Instance, board: &mut Board, noise: &dyn NoiseSource) -> EngineTrace {
        self.drive_capped(inst, board, noise, &Uncapped)
    }

    fn drive_capped(
        &self,
        inst: &Instance,
        board: &mut Board,
        noise: &dyn NoiseSource,
        remaining: &dyn BudgetRemaining,
    ) -> EngineTrace {
        assert_eq!(board.n_tasks(), inst.n_tasks());
        assert_eq!(board.n_workers(), inst.n_workers());
        let cfg = &self.cfg;
        let ctx = Ctx::new(inst, cfg, noise, board, remaining);
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            assert!(
                rounds <= cfg.max_rounds,
                "CE engine exceeded max_rounds = {} — this indicates a \
                 non-terminating configuration bug",
                cfg.max_rounds
            );
            let cl = worker_proposals(&ctx, board);
            if !winner_chosen(&ctx, board, cl) {
                break;
            }
        }
        EngineTrace {
            rounds,
            moves: Vec::new(),
        }
    }
}

/// Runs the conflict-elimination protocol from an empty board (direct
/// engine call — equivalent to dispatching through
/// [`Method::run`](crate::Method::run)).
pub fn run(inst: &Instance, cfg: &EngineConfig, noise: &dyn NoiseSource) -> RunOutcome {
    CeEngine::from_config(*cfg).run(inst, noise)
}

/// Runs the protocol from a pre-populated board (used by warm-start
/// tests and the batch runner's carry-over mode).
pub fn run_from(
    inst: &Instance,
    cfg: &EngineConfig,
    noise: &dyn NoiseSource,
    board: Board,
) -> RunOutcome {
    CeEngine::from_config(*cfg).resume(inst, board, noise)
}

/// Algorithm 1 — WorkerProposal. Publishes every passing proposal and
/// returns the candidate list `CL` (per task, in worker order).
fn worker_proposals(ctx: &Ctx<'_>, board: &mut Board) -> Vec<Vec<CtEntry>> {
    let inst = ctx.inst;
    let cfg = ctx.cfg;
    let mut cl: Vec<Vec<CtEntry>> = vec![Vec::new(); inst.n_tasks()];

    for j in 0..inst.n_workers() {
        if board.task_of(j).is_some() {
            continue; // only not-winning workers propose
        }
        for &i in inst.reach(j) {
            let Some(p) = ctx.prospective(board, i, j) else {
                continue; // line 4: privacy budget exhausted
            };
            if !ctx.affordable(board, j, p.epsilon) {
                continue; // hard lifetime cap: the release would overshoot
            }

            // Line 6–8: prospective utility must be positive (utility
            // objective only — PDCE optimises distance and has no such
            // gate).
            if cfg.objective == Objective::Utility {
                let spent = proposal_spend(cfg, board, i, j);
                let u =
                    inst.task_value(i) - ctx.fd(inst.distance(i, j)) - ctx.fp(spent + p.epsilon);
                if u <= 0.0 {
                    continue;
                }
            }

            // Lines 9–15: utility comparison against the incumbent.
            if let Some(w) = board.winner(i) {
                let we = board
                    .effective(i, w)
                    .expect("incumbent winner must have published releases");
                // Equation 4: shift the incumbent's effective distance by
                // f_d⁻¹(V_j) − f_d⁻¹(V_w); V = v_i − f_p(spend) contains
                // only public quantities. Zero for the distance objective.
                let shift = match cfg.objective {
                    Objective::Utility => {
                        let v_j = inst.task_value(i)
                            - ctx.fp(proposal_spend(cfg, board, i, j) + p.epsilon);
                        let v_w = inst.task_value(i) - ctx.fp(proposal_spend(cfg, board, i, w));
                        ctx.fd_inv(v_j) - ctx.fd_inv(v_w)
                    }
                    Objective::Distance => 0.0,
                };
                let d_prime = we.distance + shift;

                // Line 12: PPCF gate on the real distance (or its PCF
                // replacement in the -nppcf ablation).
                let gate1 = match cfg.compare {
                    CompareMode::Ppcf => ppcf(inst.distance(i, j), d_prime, we.epsilon),
                    CompareMode::PcfOnly => pcf(
                        p.effective.distance,
                        d_prime,
                        p.effective.epsilon,
                        we.epsilon,
                    ),
                };
                if gate1 <= 0.5 {
                    continue;
                }
                // Line 14: PCF gate on the new effective distance.
                if pcf(
                    p.effective.distance,
                    d_prime,
                    p.effective.epsilon,
                    we.epsilon,
                ) <= 0.5
                {
                    continue;
                }
            }

            // Line 16: publish and enter the candidate list.
            board.publish(i, j, p.d_hat, p.epsilon);
            let pair = board
                .effective(i, j)
                .expect("just published, effective pair must exist");
            debug_assert_eq!(pair, p.effective);
            cl[i].push(CtEntry {
                worker: j,
                pair,
                key: f64::NAN,
            });
        }
    }
    cl
}

/// The privacy spend entering a proposal decision, per the configured
/// accounting (see [`ProposalAccounting`]).
fn proposal_spend(cfg: &EngineConfig, board: &Board, task: usize, worker: usize) -> f64 {
    match cfg.accounting {
        ProposalAccounting::PerTask => board.spent_on(task, worker),
        ProposalAccounting::Cumulative => board.spent_total(worker),
    }
}

/// Algorithm 2 — WinnerChosen. Returns `false` iff every candidate set
/// is empty (the halt condition of Algorithm 3).
fn winner_chosen(ctx: &Ctx<'_>, board: &mut Board, mut cl: Vec<Vec<CtEntry>>) -> bool {
    let inst = ctx.inst;
    let cfg = ctx.cfg;
    if cl.iter().all(Vec::is_empty) {
        return false;
    }

    // Build the competing table: candidates ∪ incumbent, keyed and
    // sorted best-first (lines 5–11).
    let mut task_ids: Vec<usize> = Vec::new();
    let mut rows: Vec<Vec<CtEntry>> = Vec::new();
    for (i, cl_row) in cl.iter_mut().enumerate() {
        if cl_row.is_empty() {
            continue; // lines 6–7: AL[i] stays AL'[i]
        }
        let mut row = std::mem::take(cl_row);
        if let Some(w) = board.winner(i) {
            let pair = board
                .effective(i, w)
                .expect("incumbent winner must have published releases");
            row.push(CtEntry {
                worker: w,
                pair,
                key: f64::NAN,
            });
        }
        for e in &mut row {
            e.key = entry_key(ctx, board, i, e);
        }
        row.sort_by(|a, b| {
            b.key
                .partial_cmp(&a.key)
                .expect("finite sort keys")
                .then(a.worker.cmp(&b.worker))
        });
        task_ids.push(i);
        rows.push(row);
    }

    // Line 12: CEA over the competing table. The pairwise comparator is
    // the Eq. 4 PCF order on transformed distances.
    let alpha_inv = |v: f64| ctx.fd_inv(v);
    let resolved = conflict_elimination(
        &rows,
        inst.n_workers(),
        |e: &CtEntry| e.worker,
        |a: &CtEntry, b: &CtEntry| match cfg.objective {
            Objective::Utility => pcf(
                a.pair.distance,
                a.pair.distance + alpha_inv(a.key - b.key),
                a.pair.epsilon,
                b.pair.epsilon,
            ),
            Objective::Distance => pcf(
                a.pair.distance,
                b.pair.distance,
                a.pair.epsilon,
                b.pair.epsilon,
            ),
        },
        cfg.fallback,
    );

    for (r, &i) in task_ids.iter().enumerate() {
        if let Some(k) = resolved[r] {
            let w_new = rows[r][k].worker;
            if board.winner(i) != Some(w_new) {
                board.set_winner(i, Some(w_new));
            }
        }
        // `None` (conflict loser or exhausted row): the incumbent — if
        // any — keeps the task.
    }
    true
}

/// Sort key: estimated utility `v_i − f_d(d̃) − f_p(spend)` for the
/// utility objective, negated effective distance for the distance
/// objective. Every input is public (board) information.
fn entry_key(ctx: &Ctx<'_>, board: &Board, task: usize, e: &CtEntry) -> f64 {
    match ctx.cfg.objective {
        Objective::Utility => {
            let spent = proposal_spend(ctx.cfg, board, task, e.worker);
            ctx.inst.task_value(task) - ctx.fd(e.pair.distance) - ctx.fp(spent)
        }
        Objective::Distance => -e.pair.distance,
    }
}
