//! The PA-TA problem and its assignment algorithms — the primary
//! contribution of *Dynamic Private Task Assignment under Differential
//! Privacy* (ICDE 2023).
//!
//! The crate is organised around the paper's structure:
//!
//! * [`model`] — tasks, workers, value functions `f_d`/`f_p`, and the
//!   [`model::Instance`] tying them to distances, service
//!   areas (`R_j`) and privacy budget vectors (Definitions 1–5);
//! * [`board`] — the untrusted server's public state: every published
//!   `(d̂, ε)` release, the effective pairs, the allocation list, and
//!   per-worker privacy ledgers;
//! * [`engine::ce`] — the conflict-elimination family (Algorithms 1–3):
//!   **PUCE** (utility objective), **PDCE** (distance objective), their
//!   non-private versions UCE / DCE, and the non-PPCF ablations;
//! * [`engine::game`] — the game-theoretic family (Algorithm 4):
//!   **PGT** and its non-private version GT, with the exact-potential
//!   machinery of Theorems VI.1–VI.3;
//! * [`engine::baseline`] — GRD (global greedy) and the Hungarian
//!   optimum;
//! * [`engine`] — the [`engine::AssignmentEngine`] trait every solver
//!   family implements, and the [`engine::build`] registry resolving a
//!   [`Method`] to a boxed engine;
//! * [`method`] — the Table IX method registry and a single entry point
//!   [`method::Method::run`];
//! * [`metrics`] — the evaluation measures of Section VII-C.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod analysis;
pub mod attack;
pub mod board;
pub mod config;
pub mod engine;
pub mod method;
pub mod metrics;
pub mod model;
pub mod outcome;

pub use board::Board;
pub use config::{
    CeaFallback, CompareMode, EngineConfig, Objective, ProposalAccounting, RunParams,
};
pub use dpta_dp::intern;
pub use dpta_dp::{FastMap, FastSet, Interner, Sym};
pub use engine::{AssignmentEngine, BudgetRemaining, EngineTrace, Uncapped};
pub use method::Method;
pub use metrics::Measures;
pub use model::{DeltaInstance, Instance, LinearValue, Task, Worker};
pub use outcome::{MoveRecord, RunOutcome};
