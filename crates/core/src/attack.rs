//! The trilateration adversary the paper's conclusion warns about.
//!
//! "If the service area of a worker is small enough and the quantity of
//! tasks in this area is large enough, attackers can locate the
//! worker's position through trilateration" — Section VIII. Task
//! locations are public and every effective obfuscated distance is on
//! the board, so a curious observer can fit the worker's location by
//! weighted non-linear least squares over the anchors:
//!
//! `min_p Σ_k w_k · (|p − a_k| − d̃_k)²`,
//!
//! solved here with a damped Gauss–Newton iteration from the weighted
//! anchor centroid. The `attack_surface` example and the tests use this
//! to quantify how localisation error shrinks as a worker publishes
//! toward more tasks — turning the paper's qualitative warning into a
//! measurement.

use crate::board::Board;
use crate::model::Instance;
use dpta_spatial::Point;

/// One anchored distance observation: a public task location plus the
/// worker's current effective obfuscated distance toward it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Task (anchor) location — public knowledge.
    pub anchor: Point,
    /// Observed distance (the effective obfuscated distance `d̃`);
    /// negative reports are clamped to 0 during fitting.
    pub distance: f64,
    /// Fit weight; the effective privacy budget `ε̃` is the natural
    /// choice (higher budget ⇒ less noise ⇒ more trustworthy).
    pub weight: f64,
}

/// Weighted Gauss–Newton trilateration. Returns `None` for fewer than
/// three observations (two range anchors leave a mirror ambiguity).
pub fn trilaterate(observations: &[Observation], max_iter: usize) -> Option<Point> {
    if observations.len() < 3 {
        return None;
    }
    for o in observations {
        assert!(
            o.anchor.is_finite() && o.distance.is_finite(),
            "observations must be finite: {o:?}"
        );
        assert!(
            o.weight.is_finite() && o.weight > 0.0,
            "weights must be > 0"
        );
    }

    // Start at the weighted anchor centroid.
    let wsum: f64 = observations.iter().map(|o| o.weight).sum();
    let mut p = observations
        .iter()
        .fold(Point::ORIGIN, |acc, o| acc + o.anchor * o.weight)
        / wsum;

    for _ in 0..max_iter {
        // Normal equations of the linearised residuals: (JᵀWJ)·Δ = −JᵀWr.
        let (mut a11, mut a12, mut a22) = (0.0f64, 0.0f64, 0.0f64);
        let (mut b1, mut b2) = (0.0f64, 0.0f64);
        for o in observations {
            let diff = p - o.anchor;
            let dist = diff.norm().max(1e-9);
            let r = dist - o.distance.max(0.0);
            let (jx, jy) = (diff.x / dist, diff.y / dist);
            a11 += o.weight * jx * jx;
            a12 += o.weight * jx * jy;
            a22 += o.weight * jy * jy;
            b1 += o.weight * jx * r;
            b2 += o.weight * jy * r;
        }
        // Tikhonov ridge keeps collinear anchor sets solvable.
        let ridge = 1e-9 * wsum;
        let (a11, a22) = (a11 + ridge, a22 + ridge);
        let det = a11 * a22 - a12 * a12;
        if det.abs() < 1e-18 {
            break;
        }
        let dx = (-b1 * a22 + b2 * a12) / det;
        let dy = (-b2 * a11 + b1 * a12) / det;
        p = Point::new(p.x + dx, p.y + dy);
        if dx.hypot(dy) < 1e-10 {
            break;
        }
    }
    p.is_finite().then_some(p)
}

/// Collects the attack surface a worker has exposed on the board: one
/// observation per task he has published toward, anchored at the task's
/// public location, valued at the current effective pair.
pub fn worker_observations(inst: &Instance, board: &Board, worker: usize) -> Vec<Observation> {
    inst.reach(worker)
        .iter()
        .filter_map(|&i| {
            board.effective(i, worker).map(|e| Observation {
                anchor: inst.tasks()[i].location,
                distance: e.distance,
                weight: e.epsilon,
            })
        })
        .collect()
}

/// Runs the trilateration attack against one worker and reports the
/// localisation error in km, or `None` when the board exposes fewer
/// than three anchors for him.
pub fn localization_error(inst: &Instance, board: &Board, worker: usize) -> Option<f64> {
    let obs = worker_observations(inst, board, worker);
    let estimate = trilaterate(&obs, 100)?;
    Some(estimate.distance(&inst.workers()[worker].location))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn obs(x: f64, y: f64, d: f64) -> Observation {
        Observation {
            anchor: Point::new(x, y),
            distance: d,
            weight: 1.0,
        }
    }

    #[test]
    fn exact_distances_recover_the_location() {
        let truth = Point::new(1.5, -0.8);
        let anchors = [
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 3.0),
            Point::new(5.0, 5.0),
        ];
        let observations: Vec<Observation> = anchors
            .iter()
            .map(|a| Observation {
                anchor: *a,
                distance: truth.distance(a),
                weight: 1.0,
            })
            .collect();
        let got = trilaterate(&observations, 100).unwrap();
        assert!(got.distance(&truth) < 1e-6, "got {got:?}");
    }

    #[test]
    fn fewer_than_three_anchors_is_ambiguous() {
        assert!(trilaterate(&[obs(0.0, 0.0, 1.0)], 100).is_none());
        assert!(trilaterate(&[obs(0.0, 0.0, 1.0), obs(2.0, 0.0, 1.0)], 100).is_none());
    }

    #[test]
    fn collinear_anchors_do_not_crash() {
        // Anchors on a line: the perpendicular component is ambiguous,
        // but the solver must return something finite near the line.
        let observations = [obs(0.0, 0.0, 1.0), obs(2.0, 0.0, 1.0), obs(4.0, 0.0, 3.0)];
        let got = trilaterate(&observations, 100).unwrap();
        assert!(got.is_finite());
    }

    #[test]
    fn weights_pull_toward_trustworthy_anchors() {
        // Two consistent high-weight anchors + one wildly wrong
        // low-weight anchor: the estimate should stay near the truth.
        let truth = Point::new(1.0, 1.0);
        let good1 = Observation {
            anchor: Point::new(0.0, 0.0),
            distance: truth.norm(),
            weight: 10.0,
        };
        let good2 = Observation {
            anchor: Point::new(3.0, 0.0),
            distance: truth.distance(&Point::new(3.0, 0.0)),
            weight: 10.0,
        };
        let good3 = Observation {
            anchor: Point::new(0.0, 3.0),
            distance: truth.distance(&Point::new(0.0, 3.0)),
            weight: 10.0,
        };
        let bad = Observation {
            anchor: Point::new(-5.0, -5.0),
            distance: 20.0,
            weight: 0.01,
        };
        let got = trilaterate(&[good1, good2, good3, bad], 200).unwrap();
        assert!(got.distance(&truth) < 0.15, "got {got:?}");
    }

    #[test]
    fn more_anchors_reduce_noisy_localisation_error() {
        // Statistical: with Laplace-noised distances, the median error
        // over trials should fall as the anchor count rises 4 -> 32.
        let mut rng = StdRng::seed_from_u64(17);
        let truth = Point::new(2.0, 3.0);
        let mut median_err = |n_anchors: usize| -> f64 {
            let mut errs: Vec<f64> = (0..40)
                .map(|_| {
                    let observations: Vec<Observation> = (0..n_anchors)
                        .map(|_| {
                            let a = Point::new(rng.gen_range(-5.0..9.0), rng.gen_range(-4.0..10.0));
                            let noise: f64 = {
                                // Laplace(0, 1/2) via inverse CDF.
                                let u: f64 = rng.gen_range(-0.5..0.5);
                                -0.5 * u.signum() * (1.0 - 2.0 * u.abs()).ln()
                            };
                            Observation {
                                anchor: a,
                                distance: truth.distance(&a) + noise,
                                weight: 1.0,
                            }
                        })
                        .collect();
                    trilaterate(&observations, 100).unwrap().distance(&truth)
                })
                .collect();
            errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            errs[errs.len() / 2]
        };
        let few = median_err(4);
        let many = median_err(32);
        assert!(
            many < few,
            "error should shrink with more anchors: 4 -> {few:.3}, 32 -> {many:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "weights must be > 0")]
    fn zero_weight_panics() {
        let o = Observation {
            anchor: Point::ORIGIN,
            distance: 1.0,
            weight: 0.0,
        };
        let _ = trilaterate(&[o, o, o], 10);
    }
}
