//! The PA-TA problem model (Definitions 1–5 of the paper).

mod delta;
mod entities;
mod instance;
mod values;

pub use delta::DeltaInstance;
pub use entities::{Task, Worker};
pub use instance::Instance;
pub use values::{DistanceValue, LinearValue, PrivacyValue, ZeroValue};
