//! The Distance Value Function `f_d` (Definition 3) and Privacy Budget
//! Value Function `f_p` (Definition 4).
//!
//! `f_d` converts travel distance into value cost; it must be monotone
//! with `f_d(0)=0`, and PUCE's utility→distance transformation (Eq. 4)
//! additionally needs its inverse. `f_p` converts privacy budget into
//! value cost; Definition 4 requires additivity
//! (`f_p(ε₁)+f_p(ε₂)=f_p(ε₁+ε₂)`), which forces it to be linear — the
//! paper states `f_p` *is* linear and uses `f_d(x)=αx`, `f_p(x)=βx`
//! with `α=β=1` in the experiments.

/// A distance value function `f_d` with an inverse (needed by Eq. 4).
pub trait DistanceValue {
    /// `f_d(d)` — the value cost of travelling distance `d`.
    fn value(&self, d: f64) -> f64;
    /// `f_d⁻¹(v)` — the distance whose value cost is `v`.
    fn inverse(&self, v: f64) -> f64;
}

/// A privacy budget value function `f_p` (linear by Definition 4).
pub trait PrivacyValue {
    /// `f_p(ε)` — the value cost of leaking budget `ε`.
    fn value(&self, eps: f64) -> f64;
}

/// The linear value function `x ↦ c·x` used throughout the paper's
/// evaluation (`α` for `f_d`, `β` for `f_p`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearValue(pub f64);

impl LinearValue {
    /// Creates the function, validating the coefficient.
    pub fn new(coefficient: f64) -> Self {
        assert!(
            coefficient.is_finite() && coefficient >= 0.0,
            "value coefficient must be finite and >= 0, got {coefficient}"
        );
        LinearValue(coefficient)
    }
}

impl DistanceValue for LinearValue {
    #[inline]
    fn value(&self, d: f64) -> f64 {
        self.0 * d
    }

    #[inline]
    fn inverse(&self, v: f64) -> f64 {
        assert!(self.0 > 0.0, "f_d with zero slope has no inverse");
        v / self.0
    }
}

impl PrivacyValue for LinearValue {
    #[inline]
    fn value(&self, eps: f64) -> f64 {
        self.0 * eps
    }
}

/// The degenerate `f_p ≡ 0` used by the non-private baselines (UCE,
/// DCE, GT, GRD), whose utility ignores privacy cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZeroValue;

impl PrivacyValue for ZeroValue {
    #[inline]
    fn value(&self, _eps: f64) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_value_and_inverse() {
        let f = LinearValue::new(2.0);
        assert_eq!(DistanceValue::value(&f, 3.0), 6.0);
        assert_eq!(f.inverse(6.0), 3.0);
        assert_eq!(DistanceValue::value(&f, 0.0), 0.0); // f_d(0) = 0
    }

    #[test]
    fn zero_value_is_always_zero() {
        assert_eq!(ZeroValue.value(100.0), 0.0);
        assert_eq!(ZeroValue.value(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn zero_slope_inverse_panics() {
        let _ = LinearValue::new(0.0).inverse(1.0);
    }

    #[test]
    #[should_panic(expected = "coefficient")]
    fn negative_coefficient_panics() {
        let _ = LinearValue::new(-1.0);
    }

    proptest! {
        #[test]
        fn definition_4_additivity(c in 0.0f64..10.0, a in 0.0f64..10.0, b in 0.0f64..10.0) {
            let f = LinearValue::new(c);
            let lhs = PrivacyValue::value(&f, a) + PrivacyValue::value(&f, b);
            let rhs = PrivacyValue::value(&f, a + b);
            prop_assert!((lhs - rhs).abs() < 1e-9);
        }

        #[test]
        fn inverse_roundtrip(c in 0.01f64..10.0, d in 0.0f64..100.0) {
            let f = LinearValue::new(c);
            prop_assert!((f.inverse(DistanceValue::value(&f, d)) - d).abs() < 1e-9);
        }
    }
}
