//! A PA-TA problem instance: tasks, workers, distances, service-area
//! reach sets `R_j`, and privacy budget vectors `ε_{i,j}`.

use crate::model::{Task, Worker};
use dpta_dp::BudgetVector;
use dpta_spatial::{DistanceMatrix, GridIndex};
use std::sync::Arc;

/// How pair distances are stored.
///
/// Geometric instances (the normal case) derive `d_{i,j}` from the
/// entity locations on demand — O(m+n) memory instead of the O(m·n)
/// dense matrix, which matters at the paper's 1000×3000 batch sizes.
/// Table-based instances (the paper's worked examples) carry the dense
/// matrix they were built from.
#[derive(Debug, Clone)]
enum DistanceStore {
    Geometric,
    Dense(DistanceMatrix),
}

/// One batch's worth of the PA-TA problem (Definition 5).
///
/// Holds the real (secret) distances — the algorithms only consult them
/// through the worker-side code paths, never through the server board —
/// together with the public structure: who can reach what, and which
/// budget vector each feasible pair owns.
#[derive(Debug, Clone)]
pub struct Instance {
    tasks: Vec<Task>,
    workers: Vec<Worker>,
    store: DistanceStore,
    /// `reach[j]` = the paper's `R_j`: task indices within `r_j` of
    /// worker `j`, ascending.
    reach: Vec<Vec<usize>>,
    /// `budgets[j][k]` is the budget vector for task `reach[j][k]`.
    /// Each worker's row sits behind an `Arc` so an incrementally
    /// maintained instance can share unchanged rows across emissions
    /// instead of re-cloning one heap vector per feasible pair.
    budgets: Vec<Arc<Vec<BudgetVector>>>,
}

impl Instance {
    /// Builds an instance from entity locations; distances are Euclidean
    /// and `R_j = {i : d_{i,j} <= r_j}`. Service areas are resolved with
    /// a uniform grid index over the task locations, so construction is
    /// O(m + n + feasible pairs) instead of O(m·n). `budget_fn(i, j)`
    /// supplies the budget vector for each feasible pair.
    pub fn from_locations(
        tasks: Vec<Task>,
        workers: Vec<Worker>,
        mut budget_fn: impl FnMut(usize, usize) -> BudgetVector,
    ) -> Self {
        let task_locs: Vec<_> = tasks.iter().map(|t| t.location).collect();
        let max_radius = workers
            .iter()
            .map(|w| w.radius)
            .fold(0.0f64, f64::max)
            .max(1e-6);
        let index = GridIndex::build_for_radius(&task_locs, max_radius);

        let mut reach = Vec::with_capacity(workers.len());
        let mut budgets = Vec::with_capacity(workers.len());
        let mut buf = Vec::new();
        for (j, w) in workers.iter().enumerate() {
            index.query_circle_into(&w.service_area(), &mut buf);
            let mut b = Vec::with_capacity(buf.len());
            for &i in &buf {
                b.push(budget_fn(i, j));
            }
            reach.push(buf.clone());
            budgets.push(Arc::new(b));
        }
        Instance {
            tasks,
            workers,
            store: DistanceStore::Geometric,
            reach,
            budgets,
        }
    }

    /// Assembles an instance from pre-resolved parts — the emission
    /// path of [`DeltaInstance`](crate::model::DeltaInstance), which
    /// maintains reach sets and budget vectors incrementally and hands
    /// them over here instead of re-deriving them from locations.
    ///
    /// Invariants (checked in debug builds): `reach[j]` ascending and
    /// in range, `budgets[j]` positionally aligned with `reach[j]`.
    /// Distances are geometric, exactly as in
    /// [`from_locations`](Instance::from_locations).
    pub(crate) fn from_parts(
        tasks: Vec<Task>,
        workers: Vec<Worker>,
        reach: Vec<Vec<usize>>,
        budgets: Vec<Arc<Vec<BudgetVector>>>,
    ) -> Self {
        debug_assert_eq!(reach.len(), workers.len());
        debug_assert_eq!(budgets.len(), workers.len());
        for (j, r) in reach.iter().enumerate() {
            debug_assert_eq!(r.len(), budgets[j].len());
            debug_assert!(r.windows(2).all(|w| w[0] < w[1]), "reach not ascending");
            debug_assert!(r.iter().all(|&i| i < tasks.len()), "reach out of range");
        }
        Instance {
            tasks,
            workers,
            store: DistanceStore::Geometric,
            reach,
            budgets,
        }
    }

    /// Builds an instance from an explicit distance matrix (rows =
    /// tasks, columns = workers) — used to replay the paper's worked
    /// examples, whose inputs are distance tables rather than geometry.
    pub fn from_distance_matrix(
        tasks: Vec<Task>,
        workers: Vec<Worker>,
        dist: DistanceMatrix,
        mut budget_fn: impl FnMut(usize, usize) -> BudgetVector,
    ) -> Self {
        assert_eq!(dist.tasks(), tasks.len(), "distance matrix rows != tasks");
        assert_eq!(
            dist.workers(),
            workers.len(),
            "distance matrix cols != workers"
        );
        let mut reach = Vec::with_capacity(workers.len());
        let mut budgets = Vec::with_capacity(workers.len());
        for (j, w) in workers.iter().enumerate() {
            let mut r = Vec::new();
            let mut b = Vec::new();
            for i in 0..tasks.len() {
                if dist.get(i, j) <= w.radius {
                    r.push(i);
                    b.push(budget_fn(i, j));
                }
            }
            reach.push(r);
            budgets.push(Arc::new(b));
        }
        Instance {
            tasks,
            workers,
            store: DistanceStore::Dense(dist),
            reach,
            budgets,
        }
    }

    /// The tasks of this instance.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The workers of this instance.
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }

    /// Number of tasks `m`.
    pub fn n_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of workers `n`.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// The real distance `d_{i,j}` (secret worker-side knowledge).
    #[inline]
    pub fn distance(&self, task: usize, worker: usize) -> f64 {
        match &self.store {
            DistanceStore::Geometric => self.tasks[task]
                .location
                .distance(&self.workers[worker].location),
            DistanceStore::Dense(m) => m.get(task, worker),
        }
    }

    /// The task value `v_i`.
    #[inline]
    pub fn task_value(&self, task: usize) -> f64 {
        self.tasks[task].value
    }

    /// The paper's `R_j`: tasks inside worker `j`'s service area,
    /// ascending by task index.
    pub fn reach(&self, worker: usize) -> &[usize] {
        &self.reach[worker]
    }

    /// Whether task `i` is inside worker `j`'s service area.
    pub fn in_reach(&self, task: usize, worker: usize) -> bool {
        self.reach[worker].binary_search(&task).is_ok()
    }

    /// The budget vector `ε_{i,j}` for a feasible pair; `None` when the
    /// task is outside the worker's service area.
    pub fn budget(&self, task: usize, worker: usize) -> Option<&BudgetVector> {
        self.reach[worker]
            .binary_search(&task)
            .ok()
            .map(|k| &self.budgets[worker][k])
    }

    /// Total number of feasible (task, worker) pairs.
    pub fn feasible_pairs(&self) -> usize {
        self.reach.iter().map(Vec::len).sum()
    }

    /// Average number of tasks per worker service area — the data-set
    /// density statistic the paper uses to explain PGT's behaviour
    /// (Section VII-D.2).
    pub fn mean_tasks_in_range(&self) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        self.feasible_pairs() as f64 / self.workers.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpta_spatial::Point;
    use proptest::prelude::*;

    fn budget(_i: usize, _j: usize) -> BudgetVector {
        BudgetVector::new(vec![1.0, 1.0])
    }

    #[test]
    fn reach_from_locations() {
        let tasks = vec![
            Task::new(Point::new(0.0, 0.0), 1.0),
            Task::new(Point::new(5.0, 0.0), 1.0),
        ];
        let workers = vec![
            Worker::new(Point::new(0.0, 1.0), 2.0), // reaches t0 only
            Worker::new(Point::new(2.5, 0.0), 3.0), // reaches both
        ];
        let inst = Instance::from_locations(tasks, workers, budget);
        assert_eq!(inst.reach(0), &[0]);
        assert_eq!(inst.reach(1), &[0, 1]);
        assert!(inst.in_reach(0, 0));
        assert!(!inst.in_reach(1, 0));
        assert!(inst.budget(1, 0).is_none());
        assert!(inst.budget(1, 1).is_some());
        assert_eq!(inst.feasible_pairs(), 3);
        assert!((inst.mean_tasks_in_range() - 1.5).abs() < 1e-12);
        // Geometric distances come straight from the locations.
        assert!((inst.distance(1, 1) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn paper_table_iii_reach_matches_table_iv_pairs() {
        // Table III distances with service areas 15, 15, 10 must produce
        // exactly the seven matchable pairs of Table IV.
        let dist = DistanceMatrix::from_rows(&[
            &[12.2, 5.0, 9.43],
            &[3.61, 10.44, 18.25],
            &[17.12, 12.21, 7.28],
        ]);
        let tasks = vec![
            Task::new(Point::ORIGIN, 12.4),
            Task::new(Point::ORIGIN, 11.0),
            Task::new(Point::ORIGIN, 13.0),
        ];
        let workers = vec![
            Worker::new(Point::ORIGIN, 15.0),
            Worker::new(Point::ORIGIN, 15.0),
            Worker::new(Point::ORIGIN, 10.0),
        ];
        let inst = Instance::from_distance_matrix(tasks, workers, dist, budget);
        assert_eq!(inst.reach(0), &[0, 1]); // w1: t1, t2
        assert_eq!(inst.reach(1), &[0, 1, 2]); // w2: all
        assert_eq!(inst.reach(2), &[0, 2]); // w3: t1, t3
        assert_eq!(inst.feasible_pairs(), 7);
    }

    #[test]
    fn boundary_task_is_in_reach() {
        let dist = DistanceMatrix::from_rows(&[&[2.0]]);
        let inst = Instance::from_distance_matrix(
            vec![Task::new(Point::ORIGIN, 1.0)],
            vec![Worker::new(Point::ORIGIN, 2.0)],
            dist,
            budget,
        );
        assert!(inst.in_reach(0, 0)); // d == r counts (A_j is closed)
    }

    #[test]
    #[should_panic(expected = "distance matrix rows")]
    fn mismatched_matrix_panics() {
        let dist = DistanceMatrix::from_rows(&[&[1.0]]);
        let _ = Instance::from_distance_matrix(
            vec![],
            vec![Worker::new(Point::ORIGIN, 1.0)],
            dist,
            budget,
        );
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::from_locations(vec![], vec![], budget);
        assert_eq!(inst.n_tasks(), 0);
        assert_eq!(inst.n_workers(), 0);
        assert_eq!(inst.mean_tasks_in_range(), 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn grid_backed_reach_equals_brute_force(
            task_pts in proptest::collection::vec((0.0f64..20.0, 0.0f64..20.0), 0..40),
            worker_pts in proptest::collection::vec((0.0f64..20.0, 0.0f64..20.0, 0.2f64..5.0), 1..25),
        ) {
            let tasks: Vec<Task> = task_pts
                .iter()
                .map(|&(x, y)| Task::new(Point::new(x, y), 1.0))
                .collect();
            let workers: Vec<Worker> = worker_pts
                .iter()
                .map(|&(x, y, r)| Worker::new(Point::new(x, y), r))
                .collect();
            let inst = Instance::from_locations(tasks.clone(), workers.clone(), budget);
            for (j, w) in workers.iter().enumerate() {
                let brute: Vec<usize> = tasks
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.location.distance_sq(&w.location) <= w.radius * w.radius)
                    .map(|(i, _)| i)
                    .collect();
                prop_assert_eq!(inst.reach(j), &brute[..], "worker {}", j);
            }
        }

        #[test]
        fn geometric_distance_matches_dense_matrix(
            task_pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..10),
            worker_pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..10),
        ) {
            let tasks: Vec<Task> = task_pts
                .iter()
                .map(|&(x, y)| Task::new(Point::new(x, y), 1.0))
                .collect();
            let workers: Vec<Worker> = worker_pts
                .iter()
                .map(|&(x, y)| Worker::new(Point::new(x, y), 100.0))
                .collect();
            let dense = DistanceMatrix::compute(
                &tasks.iter().map(|t| t.location).collect::<Vec<_>>(),
                &workers.iter().map(|w| w.location).collect::<Vec<_>>(),
            );
            let geo = Instance::from_locations(tasks.clone(), workers.clone(), budget);
            let tab = Instance::from_distance_matrix(tasks, workers, dense, budget);
            for i in 0..geo.n_tasks() {
                for j in 0..geo.n_workers() {
                    prop_assert!((geo.distance(i, j) - tab.distance(i, j)).abs() < 1e-12);
                }
            }
        }
    }
}
