//! Incremental instance maintenance: [`DeltaInstance`] carries the
//! spatial index, reach sets `R_j` and budget vectors across stream
//! windows, applying arrivals, TTL expiries, retirements and service
//! returns as *diffs* — O(affected cells) per entity instead of the
//! O(m + n + pairs) scratch rebuild of
//! [`Instance::from_locations`].
//!
//! ## Exactness
//!
//! The reach predicate is pure geometry —
//! `distance_sq(task, worker) <= radius²` — independent of any index
//! structure, so an incrementally maintained reach set is bit-identical
//! to a scratch rebuild's. Budget vectors are pure functions of the
//! *logical* `(task id, worker id)` pair (the caller's `budget_fn`), so
//! a vector computed at insertion time equals the one a rebuild would
//! re-derive. Entity *order* is preserved because live entities are
//! kept in insertion order and the stream's pending/pool vectors are
//! append-plus-retain: the emitted [`Instance`] lists tasks and workers
//! in exactly the order `from_locations` would see them, which keeps
//! every index-based engine tie-break unchanged.
//! [`DeltaInstance::instance`] therefore emits an `Instance` equal to
//! the reference constructor's on the same entities — pinned by the
//! `incremental_properties` proptest suite in `dpta-stream`.
//!
//! `Instance::from_locations` remains the reference constructor; a
//! full rebuild is forced only when a caller constructs a fresh
//! `DeltaInstance` (e.g. on snapshot restore), never mid-stream.

use crate::model::{Instance, Task, Worker};
use dpta_dp::BudgetVector;
use dpta_dp::FastMap;
use dpta_spatial::Point;
use std::sync::Arc;

/// A dynamic spatial hash: points bucketed by fixed-size cell, with
/// O(1) insert/remove and disc queries visiting only overlapping cells
/// (clamped to the occupied bounding box, so oversized radii cannot
/// scan an unbounded range). Cells are keyed through the deterministic
/// [`FastMap`] — a disc query probes O(cells-in-box) buckets, and at
/// streaming rates the SipHash of the default hasher was the single
/// largest cost of the insert/remove path.
#[derive(Debug, Clone)]
struct CellGrid {
    cell: f64,
    map: FastMap<(i64, i64), Vec<u32>>,
    /// Recycled per-cell vectors from emptied cells; keeps the map
    /// sized to the *live* set (a long stream otherwise accumulates one
    /// dead entry per cell ever occupied, and probes stop fitting in
    /// cache) without paying an allocation each time a cell refills.
    pool: Vec<Vec<u32>>,
    /// Occupied cell bounds (min_x, min_y, max_x, max_y); `None` while
    /// empty. Never shrinks — only used to clamp query ranges.
    bounds: Option<(i64, i64, i64, i64)>,
}

impl CellGrid {
    fn new(cell: f64) -> Self {
        CellGrid {
            cell,
            map: FastMap::default(),
            pool: Vec::new(),
            bounds: None,
        }
    }

    #[inline]
    fn cell_of(&self, p: &Point) -> (i64, i64) {
        (
            (p.x / self.cell).floor() as i64,
            (p.y / self.cell).floor() as i64,
        )
    }

    fn insert(&mut self, slot: u32, p: &Point) {
        let c = self.cell_of(p);
        let pool = &mut self.pool;
        self.map
            .entry(c)
            .or_insert_with(|| pool.pop().unwrap_or_default())
            .push(slot);
        self.bounds = Some(match self.bounds {
            None => (c.0, c.1, c.0, c.1),
            Some((x0, y0, x1, y1)) => (x0.min(c.0), y0.min(c.1), x1.max(c.0), y1.max(c.1)),
        });
    }

    fn remove(&mut self, slot: u32, p: &Point) {
        let c = self.cell_of(p);
        if let Some(v) = self.map.get_mut(&c) {
            if let Some(k) = v.iter().position(|&s| s == slot) {
                v.swap_remove(k);
                if v.is_empty() {
                    if let Some(vec) = self.map.remove(&c) {
                        self.pool.push(vec);
                    }
                }
            }
        }
    }

    /// Appends every slot in a cell overlapping the disc's bounding box
    /// to `out` (unfiltered — the caller applies the exact predicate).
    fn candidates_into(&self, center: &Point, radius: f64, out: &mut Vec<u32>) {
        let Some((bx0, by0, bx1, by1)) = self.bounds else {
            return;
        };
        let cx0 = (((center.x - radius) / self.cell).floor() as i64).clamp(bx0, bx1);
        let cx1 = (((center.x + radius) / self.cell).floor() as i64).clamp(bx0, bx1);
        let cy0 = (((center.y - radius) / self.cell).floor() as i64).clamp(by0, by1);
        let cy1 = (((center.y + radius) / self.cell).floor() as i64).clamp(by0, by1);
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                if let Some(v) = self.map.get(&(cx, cy)) {
                    out.extend_from_slice(v);
                }
            }
        }
    }
}

/// The task arena, struct-of-arrays: one slot index addresses the same
/// row of every column. Hot loops (grid candidate filtering, emission)
/// touch only the columns they need — the distance predicate streams
/// through `rows` without dragging keys along, and the layout is what
/// lets 10⁵-entity windows stay cache-resident.
#[derive(Debug, Clone, Default)]
struct TaskArena {
    keys: Vec<u64>,
    rows: Vec<Task>,
}

/// The worker arena, struct-of-arrays. `reach[s]` holds the live task
/// slots inside worker slot `s`'s service area, ascending; `budgets[s]`
/// is the parallel budget row, behind an `Arc` so emission shares it
/// with the emitted [`Instance`] in O(1) — a later diff against a
/// shared row clones it first (copy-on-write), so only churned workers
/// ever pay a row copy.
#[derive(Debug, Clone, Default)]
struct WorkerArena {
    keys: Vec<u64>,
    rows: Vec<Worker>,
    reach: Vec<Vec<u32>>,
    budgets: Vec<Arc<Vec<BudgetVector>>>,
}

/// An incrementally maintained PA-TA instance.
///
/// Insert and remove single tasks and workers by a caller-chosen
/// stable key (the stream's logical entity id); call
/// [`instance`](DeltaInstance::instance) to emit the current state as
/// a regular [`Instance`], bit-identical to what
/// [`Instance::from_locations`] would build from the same entities in
/// the same order (see the module docs for the exactness argument).
///
/// Slots are allocated monotonically and never reused, so live-entity
/// order always equals insertion order — a returning worker gets a
/// fresh slot at the end, exactly mirroring a stream pool re-push.
///
/// # Examples
///
/// ```
/// use dpta_core::model::{DeltaInstance, Task, Worker};
/// use dpta_dp::BudgetVector;
/// use dpta_spatial::Point;
///
/// let budget = |_t: u64, _w: u64| BudgetVector::new(vec![1.0]);
/// let mut delta = DeltaInstance::new();
/// delta.insert_worker(7, Worker::new(Point::new(0.0, 0.0), 2.0), budget);
/// delta.insert_task(1, Task::new(Point::new(1.0, 0.0), 4.5), budget);
/// delta.insert_task(2, Task::new(Point::new(9.0, 0.0), 4.5), budget);
/// let inst = delta.instance();
/// assert_eq!(inst.n_tasks(), 2);
/// assert_eq!(inst.reach(0), &[0]); // only task 1 is in range
/// assert!(delta.remove_task(2));
/// assert_eq!(delta.feasible_pairs(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DeltaInstance {
    tasks: TaskArena,
    workers: WorkerArena,
    /// Live task slots, ascending (slots are monotone, so this is also
    /// insertion order).
    live_tasks: Vec<u32>,
    /// Live worker slots, ascending.
    live_workers: Vec<u32>,
    task_index: FastMap<u64, u32>,
    worker_index: FastMap<u64, u32>,
    /// Spatial hash over live task locations; `None` until the first
    /// worker fixes the cell size.
    task_grid: Option<CellGrid>,
    /// Spatial hash over live worker locations (reverse queries: which
    /// workers cover an arriving task).
    worker_grid: Option<CellGrid>,
    /// Max radius ever seen among inserted workers (never shrinks —
    /// a conservative reverse-query radius).
    max_radius: f64,
    /// Running count of feasible pairs, for O(1) emptiness checks.
    pairs: usize,
    /// Scratch buffer for grid candidates.
    scratch: Vec<u32>,
    /// Recycled reach vectors from removed workers.
    reach_pool: Vec<Vec<u32>>,
    /// Recycled budget rows from removed workers — reclaimed only when
    /// no emitted [`Instance`] still shares the row.
    budget_pool: Vec<Vec<BudgetVector>>,
    /// The one empty budget row every removed worker's slot points at,
    /// so removals bump a refcount instead of allocating.
    empty_budgets: Arc<Vec<BudgetVector>>,
}

impl Default for DeltaInstance {
    fn default() -> Self {
        Self::new()
    }
}

impl DeltaInstance {
    /// An empty delta instance.
    pub fn new() -> Self {
        DeltaInstance {
            tasks: TaskArena::default(),
            workers: WorkerArena::default(),
            live_tasks: Vec::new(),
            live_workers: Vec::new(),
            task_index: FastMap::default(),
            worker_index: FastMap::default(),
            task_grid: None,
            worker_grid: None,
            max_radius: 0.0,
            pairs: 0,
            scratch: Vec::new(),
            reach_pool: Vec::new(),
            budget_pool: Vec::new(),
            empty_budgets: Arc::new(Vec::new()),
        }
    }

    /// Number of live tasks.
    pub fn n_tasks(&self) -> usize {
        self.live_tasks.len()
    }

    /// Number of live workers.
    pub fn n_workers(&self) -> usize {
        self.live_workers.len()
    }

    /// Current number of feasible (task, worker) pairs — maintained
    /// incrementally, so this is O(1): the zero-feasible early-out of
    /// the halo reconciliation loop reads it per pass.
    pub fn feasible_pairs(&self) -> usize {
        self.pairs
    }

    /// Whether a task with this key is live.
    pub fn contains_task(&self, key: u64) -> bool {
        self.task_index.contains_key(&key)
    }

    /// Whether a worker with this key is live.
    pub fn contains_worker(&self, key: u64) -> bool {
        self.worker_index.contains_key(&key)
    }

    /// Live task keys in instance (insertion) order.
    pub fn task_keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.live_tasks.iter().map(|&s| self.tasks.keys[s as usize])
    }

    /// Live worker keys in instance (insertion) order.
    pub fn worker_keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.live_workers
            .iter()
            .map(|&s| self.workers.keys[s as usize])
    }

    /// Ensures both grids exist, sizing cells from `radius_hint` when
    /// they are first needed, and back-fills live tasks into the task
    /// grid.
    fn ensure_grids(&mut self, radius_hint: f64) {
        if self.task_grid.is_some() {
            return;
        }
        // Cell = one disc diameter: a radius-`r` query box spans at
        // most 2×2 cells, and candidate lists stay short at constant
        // density. (Cell size only affects which supersets the exact
        // distance predicate filters — never the result.)
        let cell = (2.0 * radius_hint).max(1e-6);
        let mut tg = CellGrid::new(cell);
        for &s in &self.live_tasks {
            let p = self.tasks.rows[s as usize].location;
            tg.insert(s, &p);
        }
        self.task_grid = Some(tg);
        self.worker_grid = Some(CellGrid::new(cell));
    }

    /// Inserts a task under `key`; `budget_fn(task_key, worker_key)`
    /// supplies the budget vector for each newly feasible pair. Panics
    /// if the key is already live.
    pub fn insert_task(
        &mut self,
        key: u64,
        task: Task,
        mut budget_fn: impl FnMut(u64, u64) -> BudgetVector,
    ) {
        assert!(
            self.task_index
                .insert(key, self.tasks.keys.len() as u32)
                .is_none(),
            "task key {key} is already live"
        );
        let slot = self.tasks.keys.len() as u32;
        let loc = task.location;
        self.tasks.keys.push(key);
        self.tasks.rows.push(task);
        self.live_tasks.push(slot);
        if let Some(tg) = &mut self.task_grid {
            tg.insert(slot, &loc);
        }
        // Reverse query: every live worker whose disc covers the task.
        let mut cands = std::mem::take(&mut self.scratch);
        cands.clear();
        if let Some(wg) = &self.worker_grid {
            wg.candidates_into(&loc, self.max_radius, &mut cands);
        }
        cands.sort_unstable();
        for &ws in &cands {
            let w = &self.workers.rows[ws as usize];
            let r_sq = w.radius * w.radius;
            if w.location.distance_sq(&loc) <= r_sq {
                let reach = &mut self.workers.reach[ws as usize];
                // New slot is the largest: reach stays ascending.
                debug_assert!(reach.last().is_none_or(|&t| t < slot));
                reach.push(slot);
                let wkey = self.workers.keys[ws as usize];
                Arc::make_mut(&mut self.workers.budgets[ws as usize]).push(budget_fn(key, wkey));
                self.pairs += 1;
            }
        }
        self.scratch = cands;
    }

    /// Inserts a worker under `key`, resolving his reach set against
    /// the live tasks; `budget_fn(task_key, worker_key)` supplies the
    /// budget vector for each feasible pair, called in ascending task
    /// order. Panics if the key is already live.
    pub fn insert_worker(
        &mut self,
        key: u64,
        worker: Worker,
        mut budget_fn: impl FnMut(u64, u64) -> BudgetVector,
    ) {
        assert!(
            self.worker_index
                .insert(key, self.workers.keys.len() as u32)
                .is_none(),
            "worker key {key} is already live"
        );
        self.ensure_grids(worker.radius);
        let slot = self.workers.keys.len() as u32;
        let loc = worker.location;
        let r_sq = worker.radius * worker.radius;

        let mut cands = std::mem::take(&mut self.scratch);
        cands.clear();
        self.task_grid
            .as_ref()
            .expect("grids ensured")
            .candidates_into(&loc, worker.radius, &mut cands);
        cands.sort_unstable();
        let mut reach = self.reach_pool.pop().unwrap_or_default();
        let mut budgets = self.budget_pool.pop().unwrap_or_default();
        for &ts in &cands {
            if loc.distance_sq(&self.tasks.rows[ts as usize].location) <= r_sq {
                reach.push(ts);
                budgets.push(budget_fn(self.tasks.keys[ts as usize], key));
            }
        }
        self.scratch = cands;
        self.pairs += reach.len();
        self.max_radius = self.max_radius.max(worker.radius);
        self.worker_grid
            .as_mut()
            .expect("grids ensured")
            .insert(slot, &loc);
        self.workers.keys.push(key);
        self.workers.rows.push(worker);
        self.workers.reach.push(reach);
        self.workers.budgets.push(Arc::new(budgets));
        self.live_workers.push(slot);
    }

    /// Removes the task with this key from the instance and from every
    /// covering worker's reach set. Returns whether it was live (a
    /// missing key is a no-op, so callers can mirror idempotent
    /// retain-style sweeps).
    pub fn remove_task(&mut self, key: u64) -> bool {
        let Some(slot) = self.task_index.remove(&key) else {
            return false;
        };
        let loc = self.tasks.rows[slot as usize].location;
        let k = self
            .live_tasks
            .binary_search(&slot)
            .expect("live slot listed");
        self.live_tasks.remove(k);
        if let Some(tg) = &mut self.task_grid {
            tg.remove(slot, &loc);
        }
        let mut cands = std::mem::take(&mut self.scratch);
        cands.clear();
        if let Some(wg) = &self.worker_grid {
            wg.candidates_into(&loc, self.max_radius, &mut cands);
        }
        for &ws in &cands {
            let reach = &mut self.workers.reach[ws as usize];
            if let Ok(k) = reach.binary_search(&slot) {
                reach.remove(k);
                Arc::make_mut(&mut self.workers.budgets[ws as usize]).remove(k);
                self.pairs -= 1;
            }
        }
        self.scratch = cands;
        true
    }

    /// Removes the worker with this key together with his reach set.
    /// Returns whether he was live (a missing key is a no-op).
    pub fn remove_worker(&mut self, key: u64) -> bool {
        let Some(slot) = self.worker_index.remove(&key) else {
            return false;
        };
        let s = slot as usize;
        let mut reach = std::mem::take(&mut self.workers.reach[s]);
        self.pairs -= reach.len();
        if reach.capacity() > 0 {
            reach.clear();
            self.reach_pool.push(reach);
        }
        let row = std::mem::replace(
            &mut self.workers.budgets[s],
            Arc::clone(&self.empty_budgets),
        );
        if let Ok(mut row) = Arc::try_unwrap(row) {
            if row.capacity() > 0 {
                row.clear();
                self.budget_pool.push(row);
            }
        }
        let loc = self.workers.rows[s].location;
        let k = self
            .live_workers
            .binary_search(&slot)
            .expect("live slot listed");
        self.live_workers.remove(k);
        if let Some(wg) = &mut self.worker_grid {
            wg.remove(slot, &loc);
        }
        true
    }

    /// Emits the current state as a regular [`Instance`]: live entities
    /// in insertion order, reach sets translated from slots to compact
    /// indices, budget rows shared with the per-worker cache (an `Arc`
    /// bump per worker, not a clone per pair). The result is
    /// bit-identical to [`Instance::from_locations`] over the same
    /// entities in the same order — O(live + pairs) with no re-hashing,
    /// no grid rebuild and no budget re-derivation.
    pub fn instance(&self) -> Instance {
        let tasks: Vec<Task> = self
            .live_tasks
            .iter()
            .map(|&s| self.tasks.rows[s as usize])
            .collect();
        let workers: Vec<Worker> = self
            .live_workers
            .iter()
            .map(|&s| self.workers.rows[s as usize])
            .collect();
        // Slot → compact index over the live span only (slots are
        // monotone, so ranks preserve ascending order inside each reach
        // set, and the table never outgrows the live window even though
        // slot numbers themselves grow for the stream's lifetime).
        let base = self.live_tasks.first().map_or(0, |&s| s as usize);
        let span = self.live_tasks.last().map_or(0, |&s| s as usize + 1 - base);
        let mut rank = vec![u32::MAX; span];
        for (i, &s) in self.live_tasks.iter().enumerate() {
            rank[s as usize - base] = i as u32;
        }
        let mut reach = Vec::with_capacity(workers.len());
        let mut budgets = Vec::with_capacity(workers.len());
        for &ws in &self.live_workers {
            reach.push(
                self.workers.reach[ws as usize]
                    .iter()
                    .map(|&ts| rank[ts as usize - base] as usize)
                    .collect::<Vec<_>>(),
            );
            budgets.push(Arc::clone(&self.workers.budgets[ws as usize]));
        }
        Instance::from_parts(tasks, workers, reach, budgets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpta_spatial::Point;

    fn budget(t: u64, w: u64) -> BudgetVector {
        // Key-dependent so misaligned budgets are caught.
        BudgetVector::new(vec![0.5 + t as f64, 0.5 + w as f64])
    }

    /// Asserts the delta's emission equals the scratch rebuild over
    /// the same entities in the same order.
    fn assert_matches_scratch(delta: &DeltaInstance) {
        let tasks: Vec<(u64, Task)> = delta
            .task_keys()
            .zip(delta.instance().tasks().iter().copied())
            .collect();
        let workers: Vec<(u64, Worker)> = delta
            .worker_keys()
            .zip(delta.instance().workers().iter().copied())
            .collect();
        let reference = Instance::from_locations(
            tasks.iter().map(|&(_, t)| t).collect(),
            workers.iter().map(|&(_, w)| w).collect(),
            |i, j| budget(tasks[i].0, workers[j].0),
        );
        let got = delta.instance();
        assert_eq!(got.n_tasks(), reference.n_tasks());
        assert_eq!(got.n_workers(), reference.n_workers());
        assert_eq!(got.feasible_pairs(), reference.feasible_pairs());
        assert_eq!(delta.feasible_pairs(), reference.feasible_pairs());
        for j in 0..reference.n_workers() {
            assert_eq!(got.reach(j), reference.reach(j), "worker {j}");
            for &i in reference.reach(j) {
                assert_eq!(got.budget(i, j), reference.budget(i, j));
                assert_eq!(
                    got.distance(i, j).to_bits(),
                    reference.distance(i, j).to_bits()
                );
            }
        }
    }

    #[test]
    fn tasks_before_any_worker_are_indexed_lazily() {
        let mut d = DeltaInstance::new();
        d.insert_task(0, Task::new(Point::new(1.0, 1.0), 4.5), budget);
        d.insert_task(1, Task::new(Point::new(3.0, 1.0), 4.5), budget);
        assert_eq!(d.feasible_pairs(), 0);
        d.insert_worker(0, Worker::new(Point::new(0.0, 1.0), 3.5), budget);
        assert_eq!(d.feasible_pairs(), 2);
        assert_matches_scratch(&d);
    }

    #[test]
    fn inserts_and_removes_track_reach_exactly() {
        let mut d = DeltaInstance::new();
        d.insert_worker(0, Worker::new(Point::new(0.0, 0.0), 3.0), budget);
        d.insert_worker(1, Worker::new(Point::new(10.0, 0.0), 3.0), budget);
        d.insert_task(0, Task::new(Point::new(1.0, 0.0), 1.0), budget);
        d.insert_task(1, Task::new(Point::new(9.0, 0.0), 1.0), budget);
        d.insert_task(2, Task::new(Point::new(5.0, 0.0), 1.0), budget);
        assert_matches_scratch(&d);
        assert!(d.remove_task(0));
        assert!(!d.remove_task(0), "second removal is a no-op");
        assert_matches_scratch(&d);
        assert!(d.remove_worker(1));
        assert_matches_scratch(&d);
        // Re-insert the worker key (service return): fresh slot at the
        // end, exactly like a pool re-push.
        d.insert_worker(1, Worker::new(Point::new(6.0, 0.0), 3.0), budget);
        d.insert_task(3, Task::new(Point::new(6.5, 0.0), 1.0), budget);
        assert_matches_scratch(&d);
        assert_eq!(d.worker_keys().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn boundary_task_is_in_reach() {
        let mut d = DeltaInstance::new();
        d.insert_worker(0, Worker::new(Point::new(0.0, 0.0), 2.0), budget);
        d.insert_task(0, Task::new(Point::new(2.0, 0.0), 1.0), budget);
        assert_eq!(d.feasible_pairs(), 1); // d == r counts (A_j closed)
        assert_matches_scratch(&d);
    }

    #[test]
    #[should_panic(expected = "already live")]
    fn duplicate_task_key_panics() {
        let mut d = DeltaInstance::new();
        d.insert_task(3, Task::new(Point::ORIGIN, 1.0), budget);
        d.insert_task(3, Task::new(Point::ORIGIN, 1.0), budget);
    }

    #[test]
    fn empty_emission() {
        let d = DeltaInstance::new();
        let inst = d.instance();
        assert_eq!(inst.n_tasks(), 0);
        assert_eq!(inst.n_workers(), 0);
    }

    #[test]
    fn wide_radius_after_small_cell_still_exact() {
        let mut d = DeltaInstance::new();
        // First worker fixes a small cell; a later disc spans many.
        d.insert_worker(0, Worker::new(Point::new(0.0, 0.0), 0.5), budget);
        for k in 0..20u64 {
            d.insert_task(k, Task::new(Point::new(k as f64, 0.0), 1.0), budget);
        }
        d.insert_worker(1, Worker::new(Point::new(10.0, 0.0), 50.0), budget);
        assert_matches_scratch(&d);
        d.insert_task(99, Task::new(Point::new(-4.0, 3.0), 1.0), budget);
        assert_matches_scratch(&d);
    }
}
