//! Spatial tasks and spatial workers (Definitions 1 and 2).

use dpta_spatial::{Circle, Point};
use serde::{Deserialize, Serialize};

/// A spatial task `t_i` with location `l_i` and inherent value `v_i`
/// (Definition 1). A worker gains `v_i` revenue by serving it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Task location.
    pub location: Point,
    /// Task value `v_i`; must be finite and non-negative.
    pub value: f64,
}

impl Task {
    /// Creates a task, validating the value.
    pub fn new(location: Point, value: f64) -> Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "task value must be finite and >= 0, got {value}"
        );
        Task { location, value }
    }
}

/// A spatial worker `w_j` with location `l_j` and service radius `r_j`
/// (Definition 2); the worker proposes only to tasks inside the circle
/// `A_j` of radius `r_j` around `l_j`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Worker {
    /// Worker location.
    pub location: Point,
    /// Service radius `r_j` in km ("worker range" in the experiments).
    pub radius: f64,
}

impl Worker {
    /// Creates a worker, validating the radius.
    pub fn new(location: Point, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "worker radius must be finite and >= 0, got {radius}"
        );
        Worker { location, radius }
    }

    /// The worker's service area `A_j`.
    pub fn service_area(&self) -> Circle {
        Circle::new(self.location, self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_construction() {
        let t = Task::new(Point::new(1.0, 2.0), 4.5);
        assert_eq!(t.value, 4.5);
    }

    #[test]
    #[should_panic(expected = "task value")]
    fn negative_task_value_panics() {
        let _ = Task::new(Point::ORIGIN, -1.0);
    }

    #[test]
    fn worker_service_area() {
        let w = Worker::new(Point::new(3.0, 4.0), 1.4);
        let a = w.service_area();
        assert!(a.contains(&Point::new(3.0, 5.0)));
        assert!(!a.contains(&Point::new(3.0, 5.5)));
    }

    #[test]
    #[should_panic(expected = "worker radius")]
    fn nan_radius_panics() {
        let _ = Worker::new(Point::ORIGIN, f64::NAN);
    }
}
