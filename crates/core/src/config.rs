//! Algorithm configuration knobs and their paper-faithful defaults.

use serde::{Deserialize, Serialize};

/// What the conflict-elimination engine optimises (the only difference
/// between PUCE and PDCE per Section VII-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Maximise the PA-TA utility (PUCE / UCE).
    Utility,
    /// Minimise travel distance (PDCE / DCE — Wang et al. \[3\] altered
    /// to respect service areas).
    Distance,
}

/// Which comparison function gates a proposal against the incumbent
/// winner in Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompareMode {
    /// The paper's design: a PPCF gate on the worker's *real* distance
    /// plus a PCF gate on his obfuscated one (lines 12 and 14).
    Ppcf,
    /// The `-nppcf` ablation of Section VII-D.4: the PPCF gate is
    /// replaced by a PCF gate on the obfuscated value.
    PcfOnly,
}

/// How the privacy cost inside a *proposal decision* is accounted.
///
/// Equation 2 sums `f_p` over all tasks, but the paper's worked example
/// (Tables IV–V) computes each proposal's utility from the budget spent
/// on *that* task only; `PerTask` reproduces the example exactly and is
/// the default. `Cumulative` applies Equation 2 literally. The
/// *reported* measure of Section VII-C always uses the cumulative
/// Definition-5 cost regardless of this knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProposalAccounting {
    /// Proposal utility charges only the budget spent toward the task
    /// under consideration (matches Tables IV–V).
    PerTask,
    /// Proposal utility charges the worker's entire published budget
    /// (Equation 2 read literally).
    Cumulative,
}

pub use dpta_matching::cea::CeaFallback;

/// Full configuration of one engine run.
///
/// Every Table IX method is one point in this configuration space;
/// [`Method::engine_config`](crate::Method::engine_config) performs the
/// mapping, and [`engine::build`](crate::engine::build) turns the pair
/// into a boxed engine. Construct one directly only to explore settings
/// the registry does not name.
///
/// # Examples
///
/// ```
/// use dpta_core::{CompareMode, EngineConfig, Method, Objective, RunParams};
///
/// // The registry's PUCE configuration…
/// let cfg = Method::Puce.engine_config(&RunParams::default());
/// assert_eq!(cfg.objective, Objective::Utility);
/// assert_eq!(cfg.compare, CompareMode::Ppcf);
/// assert!(cfg.private);
///
/// // …and a custom off-registry variant with a steeper privacy slope.
/// let steep = EngineConfig { beta: 2.5, ..cfg };
/// assert_eq!(steep.alpha, cfg.alpha);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Optimisation objective.
    pub objective: Objective,
    /// PPCF vs non-PPCF gating.
    pub compare: CompareMode,
    /// Proposal-utility accounting.
    pub accounting: ProposalAccounting,
    /// CEA fallback style.
    pub fallback: CeaFallback,
    /// `f_d` slope α (Table X uses 1).
    pub alpha: f64,
    /// `f_p` slope β (Table X uses 1); ignored when `private == false`.
    pub beta: f64,
    /// Whether distances are obfuscated and privacy cost charged; the
    /// non-private baselines (UCE/DCE/GT) set this to `false`.
    pub private: bool,
    /// Defensive cap on protocol rounds; the algorithms terminate by
    /// budget exhaustion long before this, and hitting it panics.
    pub max_rounds: usize,
    /// When true, the game engine computes the potential `Φ` after every
    /// accepted move, records it in the move trace, and asserts the
    /// exact-potential identity of Theorem VI.1 (`ΔΦ = UT`). Costs
    /// O(m + n) per move; enabled by the convergence tests and the
    /// `game_convergence` example, off by default.
    pub track_potential: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            objective: Objective::Utility,
            compare: CompareMode::Ppcf,
            accounting: ProposalAccounting::PerTask,
            fallback: CeaFallback::CrossRound,
            alpha: 1.0,
            beta: 1.0,
            private: true,
            max_rounds: 100_000,
            track_potential: false,
        }
    }
}

/// Run-level parameters shared by every method (seed + value-function
/// slopes + the engine knobs above).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunParams {
    /// Master seed for the deterministic noise source.
    pub seed: u64,
    /// `f_d` slope α.
    pub alpha: f64,
    /// `f_p` slope β.
    pub beta: f64,
    /// Proposal-utility accounting (see [`ProposalAccounting`]).
    pub accounting: ProposalAccounting,
    /// CEA fallback style (see [`CeaFallback`]).
    pub fallback: CeaFallback,
    /// Defensive round cap.
    pub max_rounds: usize,
}

impl Default for RunParams {
    fn default() -> Self {
        RunParams {
            seed: 42,
            alpha: 1.0,
            beta: 1.0,
            accounting: ProposalAccounting::PerTask,
            fallback: CeaFallback::CrossRound,
            max_rounds: 100_000,
        }
    }
}

impl RunParams {
    /// Convenience: the default parameters with a different seed.
    pub fn with_seed(seed: u64) -> Self {
        RunParams {
            seed,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_x() {
        let p = RunParams::default();
        assert_eq!(p.alpha, 1.0);
        assert_eq!(p.beta, 1.0);
        assert_eq!(p.accounting, ProposalAccounting::PerTask);
        assert_eq!(p.fallback, CeaFallback::CrossRound);
        let c = EngineConfig::default();
        assert_eq!(c.objective, Objective::Utility);
        assert_eq!(c.compare, CompareMode::Ppcf);
        assert!(c.private);
    }

    #[test]
    fn with_seed_overrides_only_seed() {
        let p = RunParams::with_seed(7);
        assert_eq!(p.seed, 7);
        assert_eq!(p.alpha, RunParams::default().alpha);
    }
}
