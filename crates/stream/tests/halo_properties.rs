//! Property tests of the boundary-halo protocol on *random,
//! non-disjoint* streams — the regime drop-pairs sharding cannot
//! handle:
//!
//! * **no duplicate assignments** — reconciliation gives every worker
//!   to at most one shard, and every task has exactly one fate in
//!   exactly one (home) shard;
//! * **budget charged at most once** — replaying the same stream
//!   charges bit-identical per-worker spend (reruns re-derive
//!   identical releases, the dedup set filters them), totals equal the
//!   per-worker map, and under a finite lifetime capacity no worker
//!   ever exceeds it (the hard-cap guarantee);
//! * **weak dominance** — within a window, recovering cross-boundary
//!   pairs never does worse than dropping them, for the deterministic
//!   engines whose proposal order is utility-faithful (GRD, UCE).
//!   Across windows no mode dominates per-instance — serve-and-leave
//!   means a pair dropped today can free the worker for a better task
//!   tomorrow, an online-matching anomaly that hits the *unsharded*
//!   pipeline identically — so the dominance property is asserted on
//!   single-window streams, where the comparison is meaningful.

use dpta_core::{Method, Task, Worker};
use dpta_spatial::{Aabb, GridPartition, Point};
use dpta_stream::{
    run_sharded, run_sharded_halo, ArrivalEvent, ArrivalStream, StreamConfig, TaskArrival,
    TaskFate, WindowPolicy, WorkerArrival,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A random stream over the unit frame with worker radii large enough
/// that many discs cross cell boundaries.
fn random_stream(tasks: &[(f64, f64, f64)], workers: &[(f64, f64, f64, f64)]) -> ArrivalStream {
    let mut events = Vec::new();
    for (id, &(x, y, t)) in tasks.iter().enumerate() {
        events.push(ArrivalEvent::Task(TaskArrival {
            id: id as u32,
            time: t,
            task: Task::new(Point::new(x, y), 4.5),
        }));
    }
    for (id, &(x, y, r, t)) in workers.iter().enumerate() {
        events.push(ArrivalEvent::Worker(WorkerArrival {
            id: id as u32,
            time: t,
            worker: Worker::new(Point::new(x, y), r),
        }));
    }
    ArrivalStream::new(events)
}

fn cfg() -> StreamConfig {
    StreamConfig {
        policy: WindowPolicy::ByTime { width: 300.0 },
        ..StreamConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn halo_runs_are_sound_on_random_non_disjoint_streams(
        tasks in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.0f64..900.0), 4..24),
        workers in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 3.0f64..25.0, 0.0f64..600.0), 3..12),
        cols in 1usize..4, rows in 1usize..4,
    ) {
        let stream = random_stream(&tasks, &workers);
        let part = GridPartition::new(
            Aabb::from_extents(0.0, 0.0, 100.0, 100.0), cols, rows);
        let cfg = cfg();

        for method in [Method::Grd, Method::Uce, Method::Puce] {
            let engine = method.engine(&cfg.params);
            let halo = run_sharded_halo(engine.as_ref(), &stream, &cfg, &part);
            let dropped = run_sharded(engine.as_ref(), &stream, &cfg, &part);

            // ── No duplicate assignments ─────────────────────────────
            // Every task settles exactly once, in its home shard…
            let mut fates: BTreeMap<u32, TaskFate> = BTreeMap::new();
            for s in &halo.shards {
                s.assert_conservation();
                for (&id, &f) in &s.fates {
                    prop_assert!(
                        fates.insert(id, f).is_none(),
                        "{method}: task {id} settled in two shards"
                    );
                }
            }
            prop_assert_eq!(fates.len(), stream.n_tasks(), "{}", method);
            // …and every worker serves at most one task, ever.
            let mut serving: BTreeMap<u32, u32> = BTreeMap::new();
            for (&t, f) in &fates {
                if let TaskFate::Assigned { worker, .. } = *f {
                    prop_assert!(
                        serving.insert(worker, t).is_none(),
                        "{method}: worker {worker} assigned twice"
                    );
                }
            }

            // ── Budget charged at most once ──────────────────────────
            // Determinism: a replay charges bit-identical spend.
            let replay = run_sharded_halo(engine.as_ref(), &stream, &cfg, &part);
            for (a, b) in halo.shards.iter().zip(&replay.shards) {
                prop_assert_eq!(&a.spend_by_worker, &b.spend_by_worker, "{}", method);
                prop_assert_eq!(&a.fates, &b.fates, "{}", method);
            }
            // The window totals are exactly the per-worker charges.
            let by_worker: f64 = halo
                .shards
                .iter()
                .flat_map(|s| s.spend_by_worker.values())
                .sum();
            prop_assert!(
                (halo.total_epsilon() - by_worker).abs() < 1e-9,
                "{}: window ε {} vs per-worker ε {}",
                method, halo.total_epsilon(), by_worker
            );

            let _ = dropped;
        }
    }

    #[test]
    fn halo_weakly_dominates_drop_pairs_within_a_window(
        tasks in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.0f64..250.0), 4..24),
        workers in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 3.0f64..25.0, 0.0f64..250.0), 3..12),
        cols in 1usize..4, rows in 1usize..4,
    ) {
        // Every arrival lands in one window, so serve-and-leave timing
        // cannot reward dropping a pair: recovering cross-boundary
        // pairs can only add utility for the noise-free engines.
        let stream = random_stream(&tasks, &workers);
        let part = GridPartition::new(
            Aabb::from_extents(0.0, 0.0, 100.0, 100.0), cols, rows);
        let cfg = cfg(); // 300 s windows ⊇ the 250 s arrival span
        for method in [Method::Grd, Method::Uce] {
            let engine = method.engine(&cfg.params);
            let halo = run_sharded_halo(engine.as_ref(), &stream, &cfg, &part);
            let dropped = run_sharded(engine.as_ref(), &stream, &cfg, &part);
            prop_assert!(
                halo.total_utility() + 1e-9 >= dropped.total_utility(),
                "{}: halo {} < drop-pairs {}",
                method, halo.total_utility(), dropped.total_utility()
            );
            prop_assert!(halo.matched() >= dropped.matched(), "{}", method);
        }
    }

    #[test]
    fn hard_cap_is_exact_under_halo_and_flat_driving(
        tasks in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.0f64..600.0), 6..20),
        workers in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 5.0f64..30.0, 0.0f64..300.0), 3..10),
        capacity in 0.6f64..4.0,
    ) {
        let stream = random_stream(&tasks, &workers);
        let part = GridPartition::new(
            Aabb::from_extents(0.0, 0.0, 100.0, 100.0), 2, 2);
        let cfg = StreamConfig {
            worker_capacity: capacity,
            ..cfg()
        };
        for method in [Method::Puce, Method::Pdce, Method::Pgt] {
            let engine = method.engine(&cfg.params);
            let flat = dpta_stream::StreamDriver::new(engine.as_ref(), cfg.clone())
                .run(&stream);
            for (&w, &spent) in &flat.spend_by_worker {
                prop_assert!(
                    spent <= capacity + 1e-9,
                    "{}: flat worker {} spent {} over cap {}",
                    method, w, spent, capacity
                );
            }
            let halo = run_sharded_halo(engine.as_ref(), &stream, &cfg, &part);
            for s in &halo.shards {
                for (&w, &spent) in &s.spend_by_worker {
                    prop_assert!(
                        spent <= capacity + 1e-9,
                        "{}: halo worker {} spent {} over cap {}",
                        method, w, spent, capacity
                    );
                }
            }
        }
    }
}
