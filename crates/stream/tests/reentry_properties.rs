//! Property tests of worker re-entry ([`ServiceModel`]):
//!
//! * **mode agreement** — on shard-disjoint input, flat, drop-pairs and
//!   halo execution agree bit-for-bit (fates, matched counts, window
//!   cuts) and to float tolerance on per-worker lifetime spend, with a
//!   service model enabled — re-entry must not break the equivalence
//!   gates the serve-and-leave pipeline pins;
//! * **replay determinism** — the same seed replays a re-entry run
//!   identically, service cycles included;
//! * **budget exactness** — a returned worker's cumulative spend is
//!   continuous across service cycles: under a finite `worker_capacity`
//!   the per-worker lifetime spend never overshoots, no matter how many
//!   times the worker cycles through the pool (flat and halo driving);
//! * **degeneration** — a service duration beyond the stream horizon
//!   reproduces serve-and-leave (`ServiceModel::Never`) exactly on
//!   fates, spend and window cuts: nobody ever returns, so the two
//!   pipelines must walk the same path.

use dpta_core::{Method, Task, Worker};
use dpta_spatial::{Aabb, GridPartition, Point};
use dpta_stream::{
    run_sharded, run_sharded_halo, AdaptivePolicy, ArrivalEvent, ArrivalStream, ServiceModel,
    ShardedReport, StreamConfig, StreamDriver, StreamReport, TaskArrival, TaskFate, WindowPolicy,
    WorkerArrival,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A shard-disjoint clustered stream over `part`: workers sit near
/// their cell centre with service discs interior to the cell, tasks
/// jitter around the same centre, arrival times drawn by proptest.
fn disjoint_stream(
    part: &GridPartition,
    worker_times: &[f64],
    task_times: &[f64],
) -> ArrivalStream {
    let frame = part.frame();
    let cell_w = frame.width() / part.cols() as f64;
    let cell_h = frame.height() / part.rows() as f64;
    let mut events = Vec::new();
    let (mut task_id, mut worker_id) = (0u32, 0u32);
    let n_cells = part.n_shards();
    for (k, &t) in worker_times.iter().enumerate() {
        let cell = k % n_cells;
        let (cx, cy) = (cell % part.cols(), cell / part.cols());
        let centre = Point::new(
            frame.min.x + (cx as f64 + 0.5) * cell_w,
            frame.min.y + (cy as f64 + 0.5) * cell_h,
        );
        let spread = 0.1 * cell_w.min(cell_h);
        let angle = k as f64 * 2.39996; // golden-angle scatter
        events.push(ArrivalEvent::Worker(WorkerArrival {
            id: worker_id,
            time: t,
            worker: Worker::new(
                Point::new(
                    centre.x + spread * angle.cos(),
                    centre.y + spread * angle.sin(),
                ),
                0.25 * cell_w.min(cell_h),
            ),
        }));
        worker_id += 1;
    }
    for (k, &t) in task_times.iter().enumerate() {
        let cell = k % n_cells;
        let (cx, cy) = (cell % part.cols(), cell / part.cols());
        let centre = Point::new(
            frame.min.x + (cx as f64 + 0.5) * cell_w,
            frame.min.y + (cy as f64 + 0.5) * cell_h,
        );
        let spread = 0.08 * cell_w.min(cell_h);
        let angle = k as f64 * 1.7 + 0.3;
        events.push(ArrivalEvent::Task(TaskArrival {
            id: task_id,
            time: t,
            task: Task::new(
                Point::new(
                    centre.x + spread * angle.cos(),
                    centre.y + spread * angle.sin(),
                ),
                4.5,
            ),
        }));
        task_id += 1;
    }
    ArrivalStream::new(events)
}

fn merged_fates(report: &ShardedReport) -> Vec<(u32, TaskFate)> {
    let mut fates: Vec<(u32, TaskFate)> = report
        .shards
        .iter()
        .flat_map(|s| s.fates.iter().map(|(&id, &f)| (id, f)))
        .collect();
    fates.sort_by_key(|&(id, _)| id);
    fates
}

fn merged_spend(report: &ShardedReport) -> BTreeMap<u32, f64> {
    report
        .shards
        .iter()
        .flat_map(|s| s.spend_by_worker.iter().map(|(&w, &e)| (w, e)))
        .collect()
}

fn cuts(report: &StreamReport) -> Vec<(f64, f64)> {
    report.windows.iter().map(|w| (w.start, w.end)).collect()
}

/// Flat window cuts, replicated per shard: on disjoint input every
/// populated shard must have stepped exactly the flat window sequence.
fn assert_sharded_cuts_match(flat: &StreamReport, sharded: &ShardedReport) {
    for s in &sharded.shards {
        if s.windows.is_empty() {
            continue; // empty cells never drive
        }
        assert_eq!(
            cuts(flat),
            cuts(s),
            "shard window cuts diverged from the flat run"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // The headline gate: with a service model enabled, flat,
    // drop-pairs and halo driving agree on shard-disjoint input —
    // fates bit-for-bit, spend to float tolerance, window cuts
    // identical — and the whole run replays deterministically.
    #[test]
    fn reentry_modes_agree_bitwise_on_disjoint_input(
        worker_times in proptest::collection::vec(0.0f64..200.0, 4..10),
        task_times in proptest::collection::vec(0.0f64..900.0, 8..24),
        service_secs in 30.0f64..400.0,
        adaptive in proptest::bool::ANY,
    ) {
        let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 100.0, 100.0), 2, 2);
        let stream = disjoint_stream(&part, &worker_times, &task_times);
        prop_assert!(stream.is_shard_disjoint(&part));
        let policy = if adaptive {
            WindowPolicy::Adaptive(AdaptivePolicy {
                base_width: 150.0,
                min_width: 30.0,
                max_width: 600.0,
                burst_tasks: 6,
                target_p95: 120.0,
            })
        } else {
            WindowPolicy::ByTime { width: 150.0 }
        };
        let cfg = StreamConfig {
            policy,
            task_ttl: 4,
            service: ServiceModel::Fixed { secs: service_secs },
            ..StreamConfig::default()
        };
        for method in [Method::Puce, Method::Pgt, Method::Grd] {
            let engine = method.engine(&cfg.params);
            let flat = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&stream);
            flat.assert_conservation();
            let replay = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&stream);
            prop_assert_eq!(
                flat.without_timing(), replay.without_timing(),
                "{}: re-entry broke replay determinism", method
            );

            let dropped = run_sharded(engine.as_ref(), &stream, &cfg, &part);
            let halo = run_sharded_halo(engine.as_ref(), &stream, &cfg, &part);
            let flat_fates: Vec<(u32, TaskFate)> =
                flat.fates.iter().map(|(&id, &f)| (id, f)).collect();
            prop_assert_eq!(&merged_fates(&dropped), &flat_fates, "{}: drop-pairs fates", method);
            prop_assert_eq!(&merged_fates(&halo), &flat_fates, "{}: halo fates", method);
            assert_sharded_cuts_match(&flat, &halo);
            for (label, spend) in [("drop-pairs", merged_spend(&dropped)), ("halo", merged_spend(&halo))] {
                prop_assert_eq!(
                    spend.keys().collect::<Vec<_>>(),
                    flat.spend_by_worker.keys().collect::<Vec<_>>(),
                    "{}: {} charged workers", method, label
                );
                for (w, eps) in &spend {
                    prop_assert!(
                        (eps - flat.spend_by_worker[w]).abs() < 1e-9,
                        "{}: {} worker {} spend {} vs flat {}",
                        method, label, w, eps, flat.spend_by_worker[w]
                    );
                }
            }
            // Re-entry totals agree too: a cycle completed in the flat
            // run completes in every sharded run.
            let dropped_returns: usize = dropped.shards.iter().map(StreamReport::returns).sum();
            let halo_returns: usize = halo.shards.iter().map(StreamReport::returns).sum();
            prop_assert_eq!(dropped_returns, flat.returns(), "{}: drop-pairs returns", method);
            prop_assert_eq!(halo_returns, flat.returns(), "{}: halo returns", method);
        }
    }

    // Budget exactness across cycles: under a finite capacity no
    // worker's lifetime spend ever overshoots, however many times he
    // returns to the pool — flat and halo driving alike — and his
    // spend is one continuous account (never reset by a cycle).
    #[test]
    fn spend_never_overshoots_capacity_across_cycles(
        worker_times in proptest::collection::vec(0.0f64..100.0, 3..8),
        task_times in proptest::collection::vec(0.0f64..1200.0, 10..30),
        capacity in 0.8f64..4.0,
        service_secs in 20.0f64..200.0,
    ) {
        let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 100.0, 100.0), 2, 2);
        let stream = disjoint_stream(&part, &worker_times, &task_times);
        let cfg = StreamConfig {
            policy: WindowPolicy::ByTime { width: 120.0 },
            task_ttl: 4,
            worker_capacity: capacity,
            service: ServiceModel::Fixed { secs: service_secs },
            ..StreamConfig::default()
        };
        for method in [Method::Puce, Method::Pdce, Method::Pgt] {
            let engine = method.engine(&cfg.params);
            let flat = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&stream);
            for (&w, &spent) in &flat.spend_by_worker {
                prop_assert!(
                    spent <= capacity + 1e-9,
                    "{}: worker {} spent {} over cap {} across cycles",
                    method, w, spent, capacity
                );
            }
            let halo = run_sharded_halo(engine.as_ref(), &stream, &cfg, &part);
            for (w, spent) in merged_spend(&halo) {
                prop_assert!(
                    spent <= capacity + 1e-9,
                    "{}: halo worker {} spent {} over cap {}",
                    method, w, spent, capacity
                );
            }
        }
    }

    // `ServiceModel::Never` is exactly the serve-and-leave pipeline: a
    // service duration past the horizon (nobody ever returns) must
    // walk the same path — fates, per-worker spend, window cuts.
    #[test]
    fn parked_service_degenerates_to_serve_and_leave(
        worker_times in proptest::collection::vec(0.0f64..150.0, 3..8),
        task_times in proptest::collection::vec(0.0f64..700.0, 6..18),
    ) {
        let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 100.0, 100.0), 2, 1);
        let stream = disjoint_stream(&part, &worker_times, &task_times);
        let base = StreamConfig {
            policy: WindowPolicy::ByTime { width: 100.0 },
            ..StreamConfig::default()
        };
        let parked_cfg = StreamConfig {
            service: ServiceModel::Fixed { secs: 1e9 },
            ..base.clone()
        };
        for method in [Method::Puce, Method::Pgt, Method::Grd] {
            let engine = method.engine(&base.params);
            let never = StreamDriver::new(engine.as_ref(), base.clone()).run(&stream);
            let parked = StreamDriver::new(engine.as_ref(), parked_cfg.clone()).run(&stream);
            prop_assert_eq!(&never.fates, &parked.fates, "{}", method);
            prop_assert_eq!(&never.spend_by_worker, &parked.spend_by_worker, "{}", method);
            prop_assert_eq!(cuts(&never), cuts(&parked), "{}", method);
            prop_assert_eq!(parked.returns(), 0, "{}", method);
        }
    }
}

/// Re-entry strictly raises fleet utilization on a worker-scarce
/// stream: the same fleet serves more tasks when it recycles. This is
/// the deterministic core of the `stream --reentry` gate. Geometry is
/// tight (pickup legs ≪ task value) so every engine family matches
/// whenever a worker is free.
#[test]
fn reentry_raises_utilization_when_workers_are_scarce() {
    let mut events = Vec::new();
    for k in 0..3u32 {
        let a = k as f64 * 2.39996;
        events.push(ArrivalEvent::Worker(WorkerArrival {
            id: k,
            time: 0.0,
            worker: Worker::new(Point::new(50.0 + 1.5 * a.cos(), 50.0 + 1.5 * a.sin()), 8.0),
        }));
    }
    for k in 0..18u32 {
        let a = k as f64 * 1.7 + 0.3;
        events.push(ArrivalEvent::Task(TaskArrival {
            id: k,
            time: 10.0 + 100.0 * k as f64,
            task: Task::new(Point::new(50.0 + 1.2 * a.cos(), 50.0 + 1.2 * a.sin()), 4.5),
        }));
    }
    let stream = ArrivalStream::new(events);
    let base = StreamConfig {
        policy: WindowPolicy::ByTime { width: 120.0 },
        task_ttl: 4,
        ..StreamConfig::default()
    };
    for method in [Method::Puce, Method::Pgt, Method::Grd] {
        let engine = method.engine(&base.params);
        let never = StreamDriver::new(engine.as_ref(), base.clone()).run(&stream);
        let reentry = StreamDriver::new(
            engine.as_ref(),
            StreamConfig {
                service: ServiceModel::Fixed { secs: 90.0 },
                ..base.clone()
            },
        )
        .run(&stream);
        reentry.assert_conservation();
        assert!(
            reentry.utilization() > never.utilization(),
            "{method}: reentry utilization {} must beat serve-and-leave {}",
            reentry.utilization(),
            never.utilization()
        );
        assert!(reentry.returns() > 0, "{method}: nobody cycled");
    }
}
