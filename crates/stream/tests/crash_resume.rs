//! Crash-injection determinism: a session snapshotted at a window
//! boundary, dropped, serialized through JSON, restored in a fresh
//! process-alike, and drained must be **bit-for-bit identical** to the
//! run that never stopped — same fates, same window cuts, same
//! per-worker spend, same outcome log. The suite sweeps the full
//! execution matrix the pipeline ships:
//!
//! * flat [`StreamSession`], drop-pairs [`ShardedSession`] and the
//!   boundary-halo coordinator;
//! * `ByTime`, `ByCount` and `Adaptive` window policies (the adaptive
//!   controller's PID trajectory rides in the snapshot);
//! * serve-and-leave, fixed-duration and travel-time service models;
//! * plain and private engines, infinite and finite lifetime capacity
//!   (finite capacity exercises the accountant-capped halo path).
//!
//! Alongside the crash harness: snapshot → restore → snapshot is
//! *byte*-identical in every mode, a committed golden fixture pins the
//! v2 wire format, and restoring under a changed configuration is
//! rejected with a typed error naming the offending field.

use dpta_core::{Method, Task, Worker};
use dpta_spatial::{Aabb, GridPartition, Point};
use dpta_stream::AdaptivePolicy;
use dpta_stream::{
    ArrivalEvent, ArrivalStream, Outcome, ServiceModel, SessionSnapshot, ShardStrategy,
    ShardedReport, ShardedSession, ShardedSnapshot, SnapshotError, StreamConfig, StreamReport,
    StreamSession, TaskArrival, WindowPolicy, WorkerArrival,
};
use dpta_workloads::ValueModel;
use proptest::prelude::*;

// ── Stream and configuration matrix ─────────────────────────────────

/// A random stream over a 100×100 frame, sorted by arrival time.
fn random_stream(tasks: &[(f64, f64, f64)], workers: &[(f64, f64, f64, f64)]) -> ArrivalStream {
    let mut events = Vec::new();
    for (id, &(x, y, t)) in tasks.iter().enumerate() {
        events.push(ArrivalEvent::Task(TaskArrival {
            id: id as u32,
            time: t,
            task: Task::new(Point::new(x, y), 30.0),
        }));
    }
    for (id, &(x, y, r, t)) in workers.iter().enumerate() {
        events.push(ArrivalEvent::Worker(WorkerArrival {
            id: id as u32,
            time: t,
            worker: Worker::new(Point::new(x, y), r),
        }));
    }
    ArrivalStream::new(events)
}

fn policies() -> [WindowPolicy; 3] {
    [
        WindowPolicy::ByTime { width: 300.0 },
        WindowPolicy::ByCount { tasks: 5 },
        WindowPolicy::Adaptive(AdaptivePolicy {
            base_width: 300.0,
            min_width: 75.0,
            max_width: 1200.0,
            burst_tasks: 8,
            target_p95: 120.0,
        }),
    ]
}

fn services() -> [ServiceModel; 3] {
    [
        ServiceModel::Never,
        ServiceModel::Fixed { secs: 350.0 },
        ServiceModel::PerTripKm {
            value_model: ValueModel::PerTripKm {
                base: 2.0,
                per_km: 0.8,
            },
            secs_per_km: 45.0,
        },
    ]
}

fn cfg_for(policy: WindowPolicy, service: ServiceModel, capacity: f64) -> StreamConfig {
    StreamConfig {
        policy,
        service,
        worker_capacity: capacity,
        task_ttl: 2,
        ..StreamConfig::default()
    }
}

// ── Drain helpers: uninterrupted vs crash-and-resume ────────────────

/// Push everything, close, and drain the outcome log — the baseline
/// run that never stops.
fn run_flat(
    engine: &dyn dpta_core::AssignmentEngine,
    cfg: &StreamConfig,
    events: &[ArrivalEvent],
) -> (StreamReport, Vec<Outcome>) {
    let mut s = StreamSession::new(engine, cfg.clone());
    for &e in events {
        s.push(e);
    }
    let report = s.close();
    (report, s.poll_outcomes())
}

/// Push a prefix, advance the watermark to the crash point (driving
/// every window that closes before it), snapshot, serialize through
/// JSON, drop the session, restore, push the rest, close. When
/// `poll_pre` the outcomes delivered before the crash are drained
/// first (the snapshot's residual queue is empty); otherwise they ride
/// across the restart inside the snapshot.
fn run_flat_interrupted(
    engine: &dyn dpta_core::AssignmentEngine,
    cfg: &StreamConfig,
    events: &[ArrivalEvent],
    split: usize,
    poll_pre: bool,
) -> (StreamReport, Vec<Outcome>) {
    let mut s = StreamSession::new(engine, cfg.clone());
    for &e in &events[..split] {
        s.push(e);
    }
    if split > 0 {
        s.advance_to(events[split - 1].time());
    }
    let mut delivered = if poll_pre {
        s.poll_outcomes()
    } else {
        Vec::new()
    };

    let json = s.snapshot().to_json();
    drop(s);

    let snap = SessionSnapshot::from_json(&json).expect("snapshot JSON round-trips");
    let mut s = StreamSession::restore(engine, cfg.clone(), &snap).expect("restore succeeds");
    for &e in &events[split..] {
        s.push(e);
    }
    let report = s.close();
    delivered.extend(s.poll_outcomes());
    (report, delivered)
}

/// The sharded analogues of the two flat drains.
fn run_sharded_session(
    engine: &dyn dpta_core::AssignmentEngine,
    cfg: &StreamConfig,
    partition: &GridPartition,
    strategy: ShardStrategy,
    events: &[ArrivalEvent],
) -> ShardedReport {
    let mut s = ShardedSession::new(engine, cfg.clone(), partition, strategy);
    for &e in events {
        s.push(e);
    }
    s.close()
}

fn run_sharded_interrupted(
    engine: &dyn dpta_core::AssignmentEngine,
    cfg: &StreamConfig,
    partition: &GridPartition,
    strategy: ShardStrategy,
    events: &[ArrivalEvent],
    split: usize,
) -> ShardedReport {
    let mut s = ShardedSession::new(engine, cfg.clone(), partition, strategy);
    for &e in &events[..split] {
        s.push(e);
    }
    if split > 0 {
        s.advance_to(events[split - 1].time());
    }
    let json = s.snapshot().to_json();
    drop(s);

    let snap = ShardedSnapshot::from_json(&json).expect("snapshot JSON round-trips");
    let mut s = ShardedSession::restore(engine, cfg.clone(), partition, strategy, &snap)
        .expect("restore succeeds");
    for &e in &events[split..] {
        s.push(e);
    }
    s.close()
}

// ── The crash harness proper ────────────────────────────────────────

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Flat sessions: crash-and-resume is invisible across every
    // window policy, service model, both engine families, and finite
    // as well as infinite lifetime capacity.
    #[test]
    fn flat_resume_is_bit_identical(
        tasks in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.0f64..1500.0), 4..20),
        workers in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 5.0f64..40.0, 0.0f64..900.0), 3..10),
        split_frac in 0.0f64..1.1,
        engine_pick in 0usize..2,
        service_pick in 0usize..3,
        finite_capacity in any::<bool>(),
        poll_pre in any::<bool>(),
    ) {
        let stream = random_stream(&tasks, &workers);
        let events = stream.events();
        let split = (((events.len() as f64) * split_frac) as usize).min(events.len());
        let method = [Method::Grd, Method::Puce][engine_pick];
        let service = services()[service_pick];
        let capacity = if finite_capacity { 2.5 } else { f64::INFINITY };

        for policy in policies() {
            let cfg = cfg_for(policy, service, capacity);
            let engine = method.engine(&cfg.params);
            let (base_report, base_outcomes) = run_flat(engine.as_ref(), &cfg, events);
            let (res_report, res_outcomes) =
                run_flat_interrupted(engine.as_ref(), &cfg, events, split, poll_pre);

            prop_assert_eq!(
                res_report.without_timing(), base_report.without_timing(),
                "report diverged after resume under {:?}", policy);
            prop_assert_eq!(
                res_outcomes, base_outcomes,
                "outcome log diverged after resume under {:?}", policy);
        }
    }

    // Sharded sessions: crash-and-resume is invisible for drop-pairs
    // and halo strategies under every window policy — and the pushed
    // session itself reproduces the batch runner of the same strategy.
    #[test]
    fn sharded_resume_is_bit_identical(
        tasks in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.0f64..1200.0), 4..16),
        workers in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 4.0f64..30.0, 0.0f64..800.0), 3..8),
        split_frac in 0.0f64..1.1,
        engine_pick in 0usize..2,
        cols in 1usize..3,
        rows in 1usize..3,
    ) {
        let stream = random_stream(&tasks, &workers);
        let events = stream.events();
        let split = (((events.len() as f64) * split_frac) as usize).min(events.len());
        let method = [Method::Grd, Method::Puce][engine_pick];
        let part = GridPartition::new(
            Aabb::from_extents(0.0, 0.0, 100.0, 100.0), cols, rows);

        for strategy in [ShardStrategy::DropPairs, ShardStrategy::Halo] {
            for policy in policies() {
                let cfg = cfg_for(policy, ServiceModel::Never, f64::INFINITY);
                let engine = method.engine(&cfg.params);
                let base = run_sharded_session(
                    engine.as_ref(), &cfg, &part, strategy, events);
                let resumed = run_sharded_interrupted(
                    engine.as_ref(), &cfg, &part, strategy, events, split);
                prop_assert_eq!(
                    resumed.without_timing(), base.without_timing(),
                    "sharded report diverged after resume: {:?} {:?}", strategy, policy);

                let batch = match strategy {
                    ShardStrategy::DropPairs =>
                        dpta_stream::run_sharded(engine.as_ref(), &stream, &cfg, &part),
                    ShardStrategy::Halo =>
                        dpta_stream::run_sharded_halo(engine.as_ref(), &stream, &cfg, &part),
                };
                prop_assert_eq!(
                    base.without_timing(), batch.without_timing(),
                    "pushed session diverged from batch runner: {:?} {:?}", strategy, policy);
            }
        }
    }

    // Snapshot stability: `restore(snapshot(s))` then `snapshot()`
    // again is *byte*-identical JSON, for every policy and execution
    // mode. A snapshot loses nothing.
    #[test]
    fn snapshot_roundtrip_is_byte_identical(
        tasks in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.0f64..1200.0), 3..14),
        workers in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 4.0f64..30.0, 0.0f64..800.0), 2..8),
        split_frac in 0.0f64..1.1,
        service_pick in 0usize..3,
    ) {
        let stream = random_stream(&tasks, &workers);
        let events = stream.events();
        let split = (((events.len() as f64) * split_frac) as usize).min(events.len());
        let part = GridPartition::new(
            Aabb::from_extents(0.0, 0.0, 100.0, 100.0), 2, 2);

        for policy in policies() {
            let cfg = cfg_for(policy, services()[service_pick], f64::INFINITY);
            let engine = Method::Puce.engine(&cfg.params);

            // Flat.
            let mut s = StreamSession::new(engine.as_ref(), cfg.clone());
            for &e in &events[..split] {
                s.push(e);
            }
            if split > 0 {
                s.advance_to(events[split - 1].time());
            }
            let first = s.snapshot().to_json();
            let restored = StreamSession::restore(
                engine.as_ref(), cfg.clone(),
                &SessionSnapshot::from_json(&first).expect("parses"),
            ).expect("restores");
            prop_assert_eq!(&restored.snapshot().to_json(), &first,
                "flat snapshot not byte-stable under {:?}", policy);

            // Sharded, both strategies.
            for strategy in [ShardStrategy::DropPairs, ShardStrategy::Halo] {
                let mut s = ShardedSession::new(
                    engine.as_ref(), cfg.clone(), &part, strategy);
                for &e in &events[..split] {
                    s.push(e);
                }
                if split > 0 {
                    s.advance_to(events[split - 1].time());
                }
                let first = s.snapshot().to_json();
                let restored = ShardedSession::restore(
                    engine.as_ref(), cfg.clone(), &part, strategy,
                    &ShardedSnapshot::from_json(&first).expect("parses"),
                ).expect("restores");
                prop_assert_eq!(&restored.snapshot().to_json(), &first,
                    "sharded snapshot not byte-stable: {:?} {:?}", strategy, policy);
            }
        }
    }
}

// ── Typed rejection of incompatible restores ────────────────────────

fn fixture_events() -> Vec<ArrivalEvent> {
    let tasks = [
        (12.0, 18.0, 40.0),
        (55.0, 61.0, 130.0),
        (77.0, 20.0, 300.0),
        (30.0, 82.0, 520.0),
        (64.0, 44.0, 700.0),
        (18.0, 55.0, 940.0),
    ];
    let workers = [
        (20.0, 25.0, 30.0, 10.0),
        (60.0, 58.0, 35.0, 90.0),
        (70.0, 30.0, 28.0, 410.0),
        (25.0, 70.0, 32.0, 650.0),
    ];
    random_stream(&tasks, &workers).events().to_vec()
}

fn fixture_cfg() -> StreamConfig {
    cfg_for(
        WindowPolicy::ByTime { width: 300.0 },
        ServiceModel::Fixed { secs: 350.0 },
        2.5,
    )
}

/// A mid-run snapshot of the fixture scenario: first four events
/// pushed, watermark at the fourth arrival.
fn fixture_snapshot() -> SessionSnapshot {
    let cfg = fixture_cfg();
    let engine = Method::Puce.engine(&cfg.params);
    let events = fixture_events();
    let mut s = StreamSession::new(engine.as_ref(), cfg.clone());
    for &e in &events[..4] {
        s.push(e);
    }
    s.advance_to(events[3].time());
    s.snapshot()
}

#[test]
fn restore_rejects_changed_config_with_the_offending_field() {
    let cfg = fixture_cfg();
    let engine = Method::Puce.engine(&cfg.params);
    let snap = fixture_snapshot();

    let cases: [(StreamConfig, &str); 5] = [
        (
            StreamConfig {
                worker_capacity: 3.0,
                ..cfg.clone()
            },
            "worker_capacity",
        ),
        (
            StreamConfig {
                policy: WindowPolicy::ByCount { tasks: 5 },
                ..cfg.clone()
            },
            "policy",
        ),
        (
            StreamConfig {
                service: ServiceModel::Never,
                ..cfg.clone()
            },
            "service",
        ),
        (
            StreamConfig {
                task_ttl: 9,
                ..cfg.clone()
            },
            "task_ttl",
        ),
        (
            StreamConfig {
                budget_group_size: 3,
                ..cfg.clone()
            },
            "budget_group_size",
        ),
    ];
    for (bad_cfg, field) in cases {
        let err = StreamSession::restore(engine.as_ref(), bad_cfg, &snap)
            .err()
            .expect("changed config must be rejected");
        assert_eq!(err, SnapshotError::ConfigMismatch { field });
    }

    // A different engine is a config mismatch too.
    let other = Method::Grd.engine(&cfg.params);
    let err = StreamSession::restore(other.as_ref(), cfg.clone(), &snap)
        .err()
        .expect("changed engine must be rejected");
    assert_eq!(err, SnapshotError::ConfigMismatch { field: "engine" });

    // Matching everything restores fine.
    assert!(StreamSession::restore(engine.as_ref(), cfg, &snap).is_ok());
}

#[test]
fn restore_rejects_foreign_version_and_garbage() {
    let snap = fixture_snapshot();
    let json = snap.to_json();

    // A snapshot written under a future format version.
    let tampered = json.replacen("\"version\": 2", "\"version\": 99", 1);
    assert_eq!(
        SessionSnapshot::from_json(&tampered).err(),
        Some(SnapshotError::VersionMismatch {
            found: 99,
            expected: dpta_stream::SNAPSHOT_VERSION,
        })
    );

    // Garbage bytes and schema violations are Malformed, not panics.
    assert!(matches!(
        SessionSnapshot::from_json("not json at all"),
        Err(SnapshotError::Malformed(_))
    ));
    assert!(matches!(
        SessionSnapshot::from_json("{\"version\": 2}"),
        Err(SnapshotError::Malformed(_))
    ));
}

#[test]
fn sharded_restore_rejects_changed_strategy_and_partition() {
    let cfg = cfg_for(
        WindowPolicy::ByTime { width: 300.0 },
        ServiceModel::Never,
        f64::INFINITY,
    );
    let engine = Method::Puce.engine(&cfg.params);
    let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 100.0, 100.0), 2, 2);
    let events = fixture_events();

    let mut s = ShardedSession::new(
        engine.as_ref(),
        cfg.clone(),
        &part,
        ShardStrategy::DropPairs,
    );
    for &e in &events[..4] {
        s.push(e);
    }
    s.advance_to(events[3].time());
    let snap = s.snapshot();

    let err = ShardedSession::restore(
        engine.as_ref(),
        cfg.clone(),
        &part,
        ShardStrategy::Halo,
        &snap,
    )
    .err()
    .expect("changed strategy must be rejected");
    assert_eq!(err, SnapshotError::ConfigMismatch { field: "strategy" });

    let bigger = GridPartition::new(Aabb::from_extents(0.0, 0.0, 100.0, 100.0), 3, 2);
    let err = ShardedSession::restore(
        engine.as_ref(),
        cfg.clone(),
        &bigger,
        ShardStrategy::DropPairs,
        &snap,
    )
    .err()
    .expect("changed partition must be rejected");
    assert_eq!(err, SnapshotError::ConfigMismatch { field: "partition" });

    let err = ShardedSession::restore(
        engine.as_ref(),
        StreamConfig {
            worker_capacity: 1.0,
            ..cfg.clone()
        },
        &part,
        ShardStrategy::DropPairs,
        &snap,
    )
    .err()
    .expect("changed config must be rejected");
    assert_eq!(
        err,
        SnapshotError::ConfigMismatch {
            field: "worker_capacity"
        }
    );

    assert!(
        ShardedSession::restore(engine.as_ref(), cfg, &part, ShardStrategy::DropPairs, &snap)
            .is_ok()
    );
}

// ── Golden fixture: the committed v2 wire format stays restorable ───

/// The committed fixture (`tests/fixtures/session_snapshot_v2.json`)
/// was written by [`fixture_snapshot`] at the v2 format (tagged
/// ledger section, deferred queue, pacing state). It must keep
/// parsing, keep matching a freshly-taken snapshot byte for byte (the
/// format is stable), and keep draining to the pinned outcomes.
#[test]
fn golden_fixture_restores_and_drains_to_pinned_outcomes() {
    let text = include_str!("fixtures/session_snapshot_v2.json");
    let snap = SessionSnapshot::from_json(text).expect("golden fixture parses");
    assert_eq!(snap.version(), dpta_stream::SNAPSHOT_VERSION);
    assert_eq!(snap.engine(), "PUCE");

    // Byte-stable: today's code still writes exactly the committed
    // bytes for the same session state. Any diff here is a format
    // change and requires a version bump plus a new fixture.
    assert_eq!(fixture_snapshot().to_json().trim_end(), text.trim_end());

    // Restore and drain; the finished run must match both the pinned
    // aggregates and a from-scratch uninterrupted run.
    let cfg = fixture_cfg();
    let engine = Method::Puce.engine(&cfg.params);
    let events = fixture_events();
    let mut s =
        StreamSession::restore(engine.as_ref(), cfg.clone(), &snap).expect("fixture restores");
    for &e in &events[4..] {
        s.push(e);
    }
    let report = s.close();
    let (baseline, _) = run_flat(engine.as_ref(), &cfg, &events);
    assert_eq!(report.without_timing(), baseline.without_timing());

    let (matched, expired, pending) = report.assert_conservation();
    assert_eq!(
        (matched, expired, pending),
        pinned_fixture_fates(),
        "fixture drain diverged from the pinned outcome"
    );
}

/// The (matched, expired, pending) triple the fixture scenario drains
/// to — pinned when the fixture was committed.
fn pinned_fixture_fates() -> (usize, usize, usize) {
    (5, 0, 1)
}

/// Regenerates the committed fixture after an intentional format bump
/// (`cargo test -p dpta-stream --test crash_resume -- --ignored
/// regen_fixture --nocapture`); update [`pinned_fixture_fates`] from
/// the printed triple and bump [`dpta_stream::SNAPSHOT_VERSION`].
#[test]
#[ignore]
fn regen_fixture() {
    let json = fixture_snapshot().to_json();
    std::fs::write(
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/fixtures/session_snapshot_v2.json"
        ),
        &json,
    )
    .unwrap();
    let cfg = fixture_cfg();
    let engine = Method::Puce.engine(&cfg.params);
    let (report, _) = run_flat(engine.as_ref(), &cfg, &fixture_events());
    println!("fixture fates = {:?}", report.assert_conservation());
}
