//! Pipeline-level properties of the streaming subsystem:
//!
//! * **determinism** — the same seed produces identical window
//!   boundaries, assignments and fates, for every engine family;
//! * **conservation** — every task arrival is assigned, expired, or
//!   pending at stream end, exactly once;
//! * **shard equivalence** — on shard-disjoint input, sharded and
//!   unsharded execution agree on matches, utility and budget spend,
//!   private engines included (noise and budgets are keyed by logical
//!   ids, so a shard sees exactly the draws of the unsharded run).

use dpta_core::{Method, Task, Worker};
use dpta_spatial::{Aabb, GridPartition, Point};
use dpta_stream::{
    run_sharded, run_sharded_halo, ArrivalEvent, ArrivalModel, ArrivalStream, StreamConfig,
    StreamDriver, StreamScenario, TaskArrival, TaskFate, WindowPolicy, WorkerArrival,
};
use dpta_workloads::{Dataset, Scenario};

fn scenario_stream(dataset: Dataset, batch_size: usize) -> ArrivalStream {
    StreamScenario {
        scenario: Scenario {
            dataset,
            batch_size,
            n_batches: 2,
            ..Scenario::default()
        },
        task_model: ArrivalModel::Bursty {
            base_rate: 0.05,
            burst_rate: 0.5,
            period: 600.0,
            burst_fraction: 0.25,
        },
        worker_model: ArrivalModel::Poisson { rate: 0.02 },
        initial_worker_fraction: 0.7,
    }
    .stream()
}

fn cfg(width: f64) -> StreamConfig {
    StreamConfig {
        policy: WindowPolicy::ByTime { width },
        ..StreamConfig::default()
    }
}

/// A synthetic stream whose workers' service discs are interior to the
/// cells of `part`: clusters at each cell centre, radii below the
/// margin. Tasks arrive bursty; some workers join late.
fn disjoint_clustered_stream(part: &GridPartition) -> ArrivalStream {
    let frame = part.frame();
    let (cols, rows) = (part.cols(), part.rows());
    let cell_w = frame.width() / cols as f64;
    let cell_h = frame.height() / rows as f64;
    let mut events = Vec::new();
    let mut task_id = 0u32;
    let mut worker_id = 0u32;
    for cy in 0..rows {
        for cx in 0..cols {
            let centre = Point::new(
                frame.min.x + (cx as f64 + 0.5) * cell_w,
                frame.min.y + (cy as f64 + 0.5) * cell_h,
            );
            let radius = 0.2 * cell_w.min(cell_h);
            for k in 0..4u32 {
                let jitter = 0.1 * cell_w.min(cell_h) * (k as f64 / 4.0 - 0.4);
                events.push(ArrivalEvent::Worker(WorkerArrival {
                    id: worker_id,
                    time: if k < 3 { 0.0 } else { 40.0 },
                    worker: Worker::new(Point::new(centre.x + jitter, centre.y - jitter), radius),
                }));
                worker_id += 1;
            }
            for k in 0..6u32 {
                let dx = 0.15 * cell_w * ((k % 3) as f64 / 3.0 - 0.3);
                let dy = 0.15 * cell_h * ((k / 3) as f64 / 2.0 - 0.2);
                events.push(ArrivalEvent::Task(TaskArrival {
                    id: task_id,
                    time: 5.0 + 17.0 * k as f64 + (cx + cy) as f64,
                    task: Task::new(Point::new(centre.x + dx, centre.y + dy), 4.5),
                }));
                task_id += 1;
            }
        }
    }
    ArrivalStream::new(events)
}

#[test]
fn same_seed_same_run_for_every_engine_family() {
    let stream = scenario_stream(Dataset::Uniform, 60);
    let cfg = cfg(300.0);
    for method in [Method::Puce, Method::Pgt, Method::Grd, Method::GeoI] {
        let engine = method.engine(&cfg.params);
        let a = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&stream);
        let b = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&stream);
        assert_eq!(
            a.without_timing(),
            b.without_timing(),
            "{method}: replay must be bit-identical"
        );
        // Window boundaries are data-determined, not timing-determined.
        for (wa, wb) in a.windows.iter().zip(&b.windows) {
            assert_eq!((wa.start, wa.end), (wb.start, wb.end));
        }
    }
}

#[test]
fn conservation_holds_across_methods_and_datasets() {
    for dataset in [Dataset::Uniform, Dataset::Normal] {
        let stream = scenario_stream(dataset, 50);
        let cfg = cfg(240.0);
        for method in [Method::Puce, Method::Pdce, Method::Pgt, Method::Grd] {
            let engine = method.engine(&cfg.params);
            let report = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&stream);
            let (matched, expired, pending) = report.assert_conservation();
            assert_eq!(
                matched + expired + pending,
                stream.n_tasks(),
                "{method} on {dataset}"
            );
            // Fate ids must be exactly the arrival ids.
            assert_eq!(report.fates.len(), stream.n_tasks());
            assert!(report
                .fates
                .keys()
                .all(|&id| (id as usize) < stream.n_tasks()));
        }
    }
}

#[test]
fn matched_fates_point_at_real_workers_and_windows() {
    let stream = scenario_stream(Dataset::Uniform, 60);
    let cfg = cfg(300.0);
    let engine = Method::Puce.engine(&cfg.params);
    let report = StreamDriver::new(engine.as_ref(), cfg).run(&stream);
    let n_windows = report.windows.len();
    for fate in report.fates.values() {
        match *fate {
            TaskFate::Assigned {
                window,
                worker,
                latency,
            } => {
                assert!(window < n_windows);
                assert!((worker as usize) < stream.n_workers());
                assert!(latency >= 0.0, "latency {latency} negative");
            }
            TaskFate::Expired { window } => assert!(window < n_windows),
            TaskFate::Pending => {}
        }
    }
}

#[test]
fn sharded_equals_unsharded_for_private_and_plain_engines() {
    let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 100.0, 100.0), 3, 2);
    let stream = disjoint_clustered_stream(&part);
    assert!(stream.is_shard_disjoint(&part));
    let cfg = cfg(60.0);
    // ≥ 3 engine methods, covering the CE, game and one-shot families.
    for method in [Method::Puce, Method::Pgt, Method::Uce, Method::Grd] {
        let engine = method.engine(&cfg.params);
        let flat = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&stream);
        let sharded = run_sharded(engine.as_ref(), &stream, &cfg, &part);
        assert_eq!(sharded.matched(), flat.matched(), "{method}");
        assert!(
            (sharded.total_utility() - flat.total_utility()).abs() < 1e-9,
            "{method}: sharded {} vs flat {}",
            sharded.total_utility(),
            flat.total_utility()
        );
        assert!(
            (sharded.total_distance() - flat.total_distance()).abs() < 1e-9,
            "{method}"
        );
        assert!(
            (sharded.total_epsilon() - flat.total_epsilon()).abs() < 1e-9,
            "{method}"
        );
        // Per-shard fates must partition the flat run's fate map.
        let mut shard_fates: Vec<(u32, TaskFate)> = sharded
            .shards
            .iter()
            .flat_map(|s| s.fates.iter().map(|(&id, &f)| (id, f)))
            .collect();
        shard_fates.sort_by_key(|&(id, _)| id);
        let flat_fates: Vec<(u32, TaskFate)> = flat.fates.iter().map(|(&id, &f)| (id, f)).collect();
        assert_eq!(shard_fates, flat_fates, "{method}");

        // The halo protocol degrades to drop-pairs on disjoint input:
        // same fates, same totals, same per-worker lifetime spend.
        let halo = run_sharded_halo(engine.as_ref(), &stream, &cfg, &part);
        assert_eq!(halo.matched(), flat.matched(), "halo {method}");
        assert!(
            (halo.total_utility() - flat.total_utility()).abs() < 1e-9,
            "halo {method}"
        );
        assert!(
            (halo.total_epsilon() - flat.total_epsilon()).abs() < 1e-9,
            "halo {method}"
        );
        let mut halo_fates: Vec<(u32, TaskFate)> = halo
            .shards
            .iter()
            .flat_map(|s| s.fates.iter().map(|(&id, &f)| (id, f)))
            .collect();
        halo_fates.sort_by_key(|&(id, _)| id);
        assert_eq!(halo_fates, flat_fates, "halo {method}");
        let halo_spend: std::collections::BTreeMap<u32, f64> = halo
            .shards
            .iter()
            .flat_map(|s| s.spend_by_worker.iter().map(|(&w, &e)| (w, e)))
            .collect();
        assert_eq!(
            halo_spend.keys().collect::<Vec<_>>(),
            flat.spend_by_worker.keys().collect::<Vec<_>>(),
            "halo {method}: charged workers"
        );
        for (w, eps) in &halo_spend {
            assert!(
                (eps - flat.spend_by_worker[w]).abs() < 1e-9,
                "halo {method}: worker {w} spend {eps} vs {}",
                flat.spend_by_worker[w]
            );
        }
    }
}

#[test]
fn count_windows_also_conserve() {
    let stream = scenario_stream(Dataset::Uniform, 50);
    let cfg = StreamConfig {
        policy: WindowPolicy::ByCount { tasks: 25 },
        ..StreamConfig::default()
    };
    let engine = Method::Pdce.engine(&cfg.params);
    let report = StreamDriver::new(engine.as_ref(), cfg).run(&stream);
    report.assert_conservation();
    assert!(report.windows.len() >= 3, "100 tasks / 25 per window");
    for w in &report.windows {
        assert!(w.tasks_arrived <= 25);
    }
}

#[test]
fn budget_depletion_eventually_retires_the_fleet() {
    // Tight lifetime capacity with surplus workers: every conflict
    // loser has already published (PDCE publishes on every proposal),
    // so losing means burnout and retirement.
    let mut events = Vec::new();
    for k in 0..8u32 {
        events.push(ArrivalEvent::Worker(WorkerArrival {
            id: k,
            time: 0.0,
            worker: Worker::new(Point::new(0.1 * k as f64, 0.0), 3.0),
        }));
    }
    for k in 0..8u32 {
        // Four tasks in window 0, four more afterwards.
        events.push(ArrivalEvent::Task(TaskArrival {
            id: k,
            time: 10.0 + 20.0 * k as f64,
            task: Task::new(Point::new(0.1 * k as f64, 1.0), 4.5),
        }));
    }
    let stream = ArrivalStream::new(events);
    let cfg = StreamConfig {
        policy: WindowPolicy::ByTime { width: 80.0 },
        // Room for exactly one publication (ε ∈ [0.5, 1.75) under
        // Table X budgets): after it, the remaining budget is below the
        // cheapest possible release and the hard cap retires the
        // worker. Losers publish without winning, so they burn out.
        worker_capacity: 1.0,
        ..StreamConfig::default()
    };
    let engine = Method::Pdce.engine(&cfg.params);
    let report = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&stream);
    report.assert_conservation();
    let retired: usize = report.windows.iter().map(|w| w.workers_retired).sum();
    assert!(retired > 0, "tight capacity must retire someone");
    // The hard-cap guarantee: no worker's lifetime spend exceeds the
    // capacity, ever — not even inside his final window.
    for (&w, &spent) in &report.spend_by_worker {
        assert!(
            spent <= cfg.worker_capacity + 1e-9,
            "worker {w} spent {spent} over the hard cap"
        );
    }
    // Against an unconstrained fleet, depletion can only cost matches.
    let loose_cfg = StreamConfig {
        worker_capacity: f64::INFINITY,
        ..cfg
    };
    let loose = StreamDriver::new(engine.as_ref(), loose_cfg).run(&stream);
    let loose_retired: usize = loose.windows.iter().map(|w| w.workers_retired).sum();
    assert_eq!(loose_retired, 0, "infinite capacity never retires");
    assert!(
        report.matched() <= loose.matched(),
        "depleted fleet cannot match more ({} vs {})",
        report.matched(),
        loose.matched()
    );
}
