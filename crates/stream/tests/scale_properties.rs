//! Properties of the million-entity scaling layer (PR 8): id
//! interning, struct-of-arrays window building and work-stealing shard
//! execution must all be *invisible* — pure speedups with no
//! observable behaviour change.
//!
//! * **interning ≡ pre-interning semantics** — the interned pipeline
//!   (dense-symbol ledgers, arena-backed window builds, `FastMap`
//!   scratch state) reproduces the pre-interning observable contract
//!   on random streams across all three window policies and all three
//!   execution shapes (flat, drop-pairs sharded, halo sharded): task
//!   fates bit for bit, per-worker privacy spend to ≤ 1e-9 (exact on
//!   the flat path), window cut sequences, and the typed outcome log.
//!   The oracle is the set of cross-path equivalences that were pinned
//!   *before* interning landed: drain ≡ push-session, flat ≡ sharded
//!   on shard-disjoint input, repeat ≡ first run.
//! * **work-stealing determinism** — sharded execution is
//!   byte-identical across pool sizes 1/2/8/auto and across repeated
//!   runs, including on an adversarially skewed hotspot-cell stream
//!   where job-stealing order genuinely varies between runs.
//! * **wire-format stability** — the committed v1 session snapshot
//!   still parses and round-trips byte-identically, and snapshots key
//!   everything by *logical* id: intern symbols (first-insertion
//!   ranks) must never leak into the wire format, pinned by a session
//!   whose insertion order disagrees with id order.

use dpta_core::{Method, Task, Worker};
use dpta_spatial::{Aabb, GridPartition, Point};
use dpta_stream::{
    run_sharded_halo, run_sharded_pooled, AdaptivePolicy, ArrivalEvent, ArrivalStream, Outcome,
    SessionSnapshot, ShardStrategy, ShardedReport, StreamConfig, StreamDriver, StreamSession,
    TaskArrival, TaskFate, WindowPolicy, WorkerArrival,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// The frame every stream in this suite lives on, partitioned 2×2.
const FRAME: f64 = 100.0;
const CELL: f64 = FRAME / 2.0;

fn partition() -> GridPartition {
    GridPartition::new(Aabb::from_extents(0.0, 0.0, FRAME, FRAME), 2, 2)
}

/// Maps a `(cell, fx, fy)` triple into the cell's interior so that a
/// disc of radius ≤ 10 around the point stays strictly inside the
/// cell: positions land in `[15, 35]` of each 50-unit cell axis. Every
/// stream built this way is shard-disjoint by construction, which is
/// what lets the sharded runs be compared bit for bit against flat.
fn interior(cell: usize, fx: f64, fy: f64) -> Point {
    let cx = (cell % 2) as f64 * CELL;
    let cy = (cell / 2) as f64 * CELL;
    Point::new(cx + 15.0 + 20.0 * fx, cy + 15.0 + 20.0 * fy)
}

/// A shard-disjoint stream from raw proptest tuples: tasks are
/// `(cell, fx, fy, t)`, workers `(cell, fx, fy, r, t)` with r ≤ 10.
fn clustered_stream(
    tasks: &[(usize, f64, f64, f64)],
    workers: &[(usize, f64, f64, f64, f64)],
) -> ArrivalStream {
    let mut events = Vec::new();
    for (id, &(cell, fx, fy, t)) in tasks.iter().enumerate() {
        events.push(ArrivalEvent::Task(TaskArrival {
            id: id as u32,
            time: t,
            task: Task::new(interior(cell, fx, fy), 4.5),
        }));
    }
    for (id, &(cell, fx, fy, r, t)) in workers.iter().enumerate() {
        events.push(ArrivalEvent::Worker(WorkerArrival {
            id: id as u32,
            time: t,
            worker: Worker::new(interior(cell, fx, fy), r),
        }));
    }
    ArrivalStream::new(events)
}

/// The three window policies of the streaming layer.
fn policies() -> [WindowPolicy; 3] {
    [
        WindowPolicy::ByTime { width: 200.0 },
        WindowPolicy::ByCount { tasks: 5 },
        WindowPolicy::Adaptive(AdaptivePolicy::default()),
    ]
}

/// Drives `stream` through the push-session interface with the
/// watermark advanced to every event time (so windows are driven
/// mid-stream, not only at close), returning the report and the full
/// typed outcome log.
fn run_push_session(
    engine: &dyn dpta_core::AssignmentEngine,
    cfg: &StreamConfig,
    stream: &ArrivalStream,
) -> (dpta_stream::StreamReport, Vec<Outcome>) {
    let mut session = StreamSession::new(engine, cfg.clone());
    let mut outcomes = Vec::new();
    for e in stream.events() {
        session.advance_to(e.time());
        session.push(*e);
        outcomes.extend(session.poll_outcomes());
    }
    let report = session.close();
    outcomes.extend(session.poll_outcomes());
    (report, outcomes)
}

/// Merges per-shard fates into one id-keyed map (ids are globally
/// unique, so shards never collide).
fn merge_fates(sharded: &ShardedReport) -> BTreeMap<u32, TaskFate> {
    sharded
        .shards
        .iter()
        .flat_map(|s| s.fates.iter().map(|(&id, &f)| (id, f)))
        .collect()
}

/// Merges per-shard privacy spend into one id-keyed map.
fn merge_spend(sharded: &ShardedReport) -> BTreeMap<u32, f64> {
    let mut out: BTreeMap<u32, f64> = BTreeMap::new();
    for s in &sharded.shards {
        for (&id, &eps) in &s.spend_by_worker {
            *out.entry(id).or_insert(0.0) += eps;
        }
    }
    out
}

/// Asserts two spend maps agree to ≤ `tol` per worker (same key sets).
fn assert_spend_close(a: &BTreeMap<u32, f64>, b: &BTreeMap<u32, f64>, tol: f64, what: &str) {
    assert_eq!(
        a.keys().collect::<Vec<_>>(),
        b.keys().collect::<Vec<_>>(),
        "{what}: charged worker sets differ"
    );
    for (id, &eps) in a {
        let other = b[id];
        assert!(
            (eps - other).abs() <= tol,
            "{what}: worker {id} spend {eps} vs {other}"
        );
    }
}

/// Rebuilds the final fate of every task from the outcome log alone.
fn fates_from_outcomes(outcomes: &[Outcome], n_tasks: usize) -> BTreeMap<u32, TaskFate> {
    let mut fates: BTreeMap<u32, TaskFate> = (0..n_tasks as u32)
        .map(|id| (id, TaskFate::Pending))
        .collect();
    for o in outcomes {
        match *o {
            Outcome::Assigned {
                task,
                worker,
                window,
                latency,
            } => {
                fates.insert(
                    task,
                    TaskFate::Assigned {
                        window,
                        worker,
                        latency,
                    },
                );
            }
            Outcome::Expired { task, window } => {
                fates.insert(task, TaskFate::Expired { window });
            }
            _ => {}
        }
    }
    fates
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The tentpole agreement property: on random shard-disjoint
    // streams, under every window policy, the interned pipeline's
    // flat drain, push-session, drop-pairs sharded and halo sharded
    // runs all agree on everything observable — fates bit for bit,
    // spend to ≤ 1e-9, window cuts, and the outcome log.
    #[test]
    fn interned_pipeline_agrees_across_paths_and_policies(
        tasks in proptest::collection::vec(
            (0usize..4, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..900.0), 4..24),
        raw_workers in proptest::collection::vec(
            ((0usize..4, 0.0f64..1.0, 0.0f64..1.0), (1.0f64..10.0, 0.0f64..600.0)), 3..12),
    ) {
        let workers: Vec<(usize, f64, f64, f64, f64)> = raw_workers
            .iter()
            .map(|&((cell, fx, fy), (r, t))| (cell, fx, fy, r, t))
            .collect();
        let stream = clustered_stream(&tasks, &workers);
        let part = partition();
        prop_assert!(stream.is_shard_disjoint(&part));
        for policy in policies() {
            let cfg = StreamConfig { policy, ..StreamConfig::default() };
            for method in [Method::Grd, Method::Puce] {
                let engine = method.engine(&cfg.params);

                // Drain twice: repeat runs are identical.
                let flat = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&stream);
                let again = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&stream);
                prop_assert_eq!(
                    flat.without_timing(), again.without_timing(),
                    "{}/{:?}: repeated drains diverged", method, policy
                );

                // Push-session with mid-stream watermark advances:
                // same fates, same spend (exactly), same window cut
                // sequence — and an outcome log that replays to the
                // same fates.
                let (pushed, outcomes) =
                    run_push_session(engine.as_ref(), &cfg, &stream);
                prop_assert_eq!(
                    flat.without_timing(), pushed.without_timing(),
                    "{}/{:?}: push-session diverged from drain", method, policy
                );
                let (pushed2, outcomes2) =
                    run_push_session(engine.as_ref(), &cfg, &stream);
                prop_assert_eq!(pushed.without_timing(), pushed2.without_timing());
                prop_assert_eq!(
                    &outcomes, &outcomes2,
                    "{}/{:?}: outcome log is not deterministic", method, policy
                );
                prop_assert_eq!(
                    fates_from_outcomes(&outcomes, tasks.len()),
                    flat.fates.clone(),
                    "{}/{:?}: outcome log disagrees with the fates", method, policy
                );

                // Halo sharding windows globally, so it must reproduce
                // the flat run under every policy on disjoint input.
                let halo = run_sharded_halo(engine.as_ref(), &stream, &cfg, &part);
                prop_assert_eq!(
                    merge_fates(&halo), flat.fates.clone(),
                    "{}/{:?}: halo fates diverged", method, policy
                );
                assert_spend_close(
                    &merge_spend(&halo), &flat.spend_by_worker, 1e-9,
                    &format!("{method}/{policy:?} halo"),
                );

                // Drop-pairs shards window independently: exact under
                // a time grid and under the lockstep adaptive runner,
                // structurally misaligned under count windows (the
                // runner says so itself via its shard warning).
                let dropped = run_sharded_pooled(
                    engine.as_ref(), &stream, &cfg, &part,
                    ShardStrategy::DropPairs, None,
                );
                if matches!(policy, WindowPolicy::ByCount { .. }) {
                    prop_assert!(
                        dropped.shards.iter().any(|s| !s.warnings.is_empty()),
                        "count-window sharding must carry its misalignment warning"
                    );
                } else {
                    prop_assert_eq!(
                        merge_fates(&dropped), flat.fates.clone(),
                        "{}/{:?}: drop-pairs fates diverged", method, policy
                    );
                    assert_spend_close(
                        &merge_spend(&dropped), &flat.spend_by_worker, 1e-9,
                        &format!("{method}/{policy:?} drop-pairs"),
                    );
                    // Window cuts line up shard by shard: every driven
                    // shard walks the same (start, end) grid as flat.
                    for (k, shard) in dropped.shards.iter().enumerate() {
                        if shard.task_arrivals + shard.worker_arrivals == 0 {
                            continue;
                        }
                        prop_assert_eq!(
                            shard.windows.len(), flat.windows.len(),
                            "{}/{:?}: shard {} window count", method, policy, k
                        );
                        for (a, b) in shard.windows.iter().zip(&flat.windows) {
                            prop_assert_eq!(a.index, b.index);
                            prop_assert_eq!(a.start.to_bits(), b.start.to_bits());
                            prop_assert_eq!(a.end.to_bits(), b.end.to_bits());
                            prop_assert_eq!(a.cut, b.cut, "{}: shard {}", method, k);
                        }
                    }
                }
            }
        }
    }
}

// ── Work-stealing determinism ───────────────────────────────────────

/// An adversarially skewed stream: ~90 % of all entities crowd into
/// one hotspot cell, the rest sprinkle over the other 15 cells of a
/// 4×4 partition. Under work stealing the hotspot shard pins one
/// thread while the others race through the sprinkle shards — the
/// regime where which-thread-ran-what varies most between runs.
fn hotspot_stream() -> ArrivalStream {
    let mut events = Vec::new();
    for k in 0..200u32 {
        // 90 % hotspot (cell at origin), 10 % elsewhere.
        let (cx, cy) = if k % 10 != 9 {
            (0.0, 0.0)
        } else {
            let cell = 1 + (k as usize / 10) % 15;
            ((cell % 4) as f64 * 25.0, (cell / 4) as f64 * 25.0)
        };
        let x = cx + 4.0 + (k % 8) as f64 * 2.0;
        let y = cy + 4.0 + (k % 5) as f64 * 3.0;
        let t = k as f64 * 3.0;
        events.push(ArrivalEvent::Worker(WorkerArrival {
            id: k,
            time: t,
            worker: Worker::new(Point::new(x, y), 3.0),
        }));
        events.push(ArrivalEvent::Task(TaskArrival {
            id: k,
            time: t,
            task: Task::new(Point::new(x + 1.0, y), 4.5),
        }));
    }
    ArrivalStream::new(events)
}

/// Work-stealing shard execution must be byte-identical across pool
/// sizes 1/2/8/auto and across repeated runs — on a hotspot-skewed
/// stream where the steal order genuinely differs run to run. The
/// comparison is on the full debug rendering of the timing-stripped
/// report, so any bit difference in any float anywhere fails.
#[test]
fn work_stealing_reports_are_identical_across_pool_sizes_and_runs() {
    let stream = hotspot_stream();
    let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 100.0, 100.0), 4, 4);
    let cfg = StreamConfig {
        policy: WindowPolicy::ByTime { width: 60.0 },
        ..StreamConfig::default()
    };
    let engine = Method::Puce.engine(&cfg.params);
    let reference = run_sharded_pooled(
        engine.as_ref(),
        &stream,
        &cfg,
        &part,
        ShardStrategy::DropPairs,
        Some(1),
    )
    .without_timing();
    assert!(reference.matched() > 0, "hotspot stream matched nothing");
    let rendered = format!("{reference:?}");
    for pool in [Some(1), Some(2), Some(8), None] {
        for rep in 0..2 {
            let run = run_sharded_pooled(
                engine.as_ref(),
                &stream,
                &cfg,
                &part,
                ShardStrategy::DropPairs,
                pool,
            )
            .without_timing();
            assert_eq!(
                run, reference,
                "pool {pool:?} rep {rep}: structural difference"
            );
            assert_eq!(
                format!("{run:?}"),
                rendered,
                "pool {pool:?} rep {rep}: byte-level difference"
            );
        }
    }
}

// ── Snapshot wire format under interning ────────────────────────────

/// The committed v2 fixture still parses and round-trips byte for
/// byte: interning changed every id-keyed structure behind the
/// snapshot, so any symbol leaking into the wire format would show up
/// here as a re-serialization diff.
#[test]
fn committed_fixture_round_trips_byte_identically() {
    let text = include_str!("fixtures/session_snapshot_v2.json");
    let snap = SessionSnapshot::from_json(text).expect("committed fixture parses");
    assert_eq!(snap.version(), dpta_stream::SNAPSHOT_VERSION);
    assert_eq!(snap.to_json().trim_end(), text.trim_end());
}

/// Snapshots are keyed by logical id even when interning order
/// disagrees with id order: a session fed descending ids must
/// serialize ascending-id wire state (symbols are ranks of first
/// insertion — if they leaked, the order would be descending),
/// restore cleanly, keep rejecting the original duplicate ids, and
/// round-trip byte-identically.
#[test]
fn snapshot_keys_by_logical_id_not_intern_symbol() {
    let cfg = StreamConfig {
        policy: WindowPolicy::ByTime { width: 100.0 },
        ..StreamConfig::default()
    };
    let engine = Method::Grd.engine(&cfg.params);
    let mut session = StreamSession::new(engine.as_ref(), cfg.clone());
    // Ids arrive in descending order: intern symbols (0, 1, 2, …) are
    // the *reverse* of id order.
    for (k, id) in [9u32, 4, 2].into_iter().enumerate() {
        session.push(ArrivalEvent::Worker(WorkerArrival {
            id,
            time: k as f64,
            worker: Worker::new(Point::new(5.0 * k as f64, 5.0), 2.0),
        }));
        session.push(ArrivalEvent::Task(TaskArrival {
            id,
            time: k as f64,
            task: Task::new(Point::new(5.0 * k as f64 + 1.0, 5.0), 4.5),
        }));
    }
    let snap = session.snapshot();
    let json = snap.to_json();

    // The wire format lists logical ids ascending — insertion rank
    // must not shape the serialization.
    let tasks_at = json.find("\"task_ids\"").expect("task_ids serialized");
    let tail = &json[tasks_at..];
    let list_end = tail.find(']').expect("task id list closes");
    let flat: String = tail[..list_end]
        .chars()
        .filter(|c| !c.is_whitespace())
        .collect();
    assert!(
        flat.ends_with("[2,4,9"),
        "task ids must serialize ascending by logical id, got: {flat}"
    );

    // Round-trip: parse → re-serialize is byte-identical.
    let reparsed = SessionSnapshot::from_json(&json).expect("snapshot parses");
    assert_eq!(reparsed.to_json(), json);

    // Restore: the rebuilt session still knows all three logical ids
    // (duplicate pushes panic) and drains exactly like the original.
    let mut restored =
        StreamSession::restore(engine.as_ref(), cfg.clone(), &reparsed).expect("snapshot restores");
    let report = session.close();
    let restored_report = restored.close();
    assert_eq!(report.without_timing(), restored_report.without_timing());
}
