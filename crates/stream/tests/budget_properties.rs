//! Budget-economics properties of the streaming pipeline: the
//! sliding-window ledger against its acceptance gates.
//!
//! * **W = ∞ ≡ lifetime** — a `Windowed` ledger with an infinite
//!   protection window is *bit-identical* to lifetime accounting
//!   (fates, window cuts, per-worker spend), across flat, drop-pairs
//!   and halo execution. An infinite window never reclaims and is not
//!   renewable, so retirement fires at exactly the lifetime points.
//! * **capped trailing spend** — under the warm-engine remaining-budget
//!   guard, no worker's charges inside any trailing protection window
//!   exceed his capacity (observed through the versioned snapshot's
//!   serialized ledger at every event boundary).
//! * **determinism** — windowed runs with pacing, admission control and
//!   service jitter all enabled replay bit-for-bit in the seed.
//! * **snapshot round-trip** — a session carrying a windowed ledger,
//!   pacing state and a deferred-task queue serializes through JSON
//!   byte-identically and resumes bit-for-bit.
//! * **jitter degenerates cleanly** — `ServiceModel::Jittered` with a
//!   zero jitter fraction is bit-identical to `ServiceModel::Fixed`.

use dpta_core::{Method, Task, Worker};
use dpta_spatial::{Aabb, GridPartition, Point};
use dpta_stream::{
    run_sharded, run_sharded_halo, AdmissionConfig, ArrivalEvent, ArrivalStream, LedgerMode,
    PacingConfig, ServiceModel, SessionSnapshot, StreamConfig, StreamDriver, StreamSession,
    TaskArrival, TaskFate, WindowPolicy, WorkerArrival,
};
use proptest::prelude::*;
use serde::Value;
use std::collections::BTreeMap;

fn random_stream(tasks: &[(f64, f64, f64)], workers: &[(f64, f64, f64, f64)]) -> ArrivalStream {
    let mut events = Vec::new();
    for (id, &(x, y, t)) in tasks.iter().enumerate() {
        events.push(ArrivalEvent::Task(TaskArrival {
            id: id as u32,
            time: t,
            task: Task::new(Point::new(x, y), 4.5),
        }));
    }
    for (id, &(x, y, r, t)) in workers.iter().enumerate() {
        events.push(ArrivalEvent::Worker(WorkerArrival {
            id: id as u32,
            time: t,
            worker: Worker::new(Point::new(x, y), r),
        }));
    }
    ArrivalStream::new(events)
}

fn cfg_with(ledger: LedgerMode, capacity: f64) -> StreamConfig {
    StreamConfig::builder()
        .policy(WindowPolicy::ByTime { width: 300.0 })
        .worker_capacity(capacity)
        .service(ServiceModel::Fixed { secs: 240.0 })
        .ledger(ledger)
        .build()
        .expect("valid streaming configuration")
}

/// Sorted `(task id, fate)` pairs plus per-worker spend of a sharded
/// run — the cross-mode comparison view.
type MergedView = (Vec<(u32, TaskFate)>, Vec<(u32, f64)>);

/// Merged fate/spend view of a sharded run, for exact cross-mode
/// comparison.
fn merged(report: &dpta_stream::ShardedReport) -> MergedView {
    let mut fates: Vec<(u32, TaskFate)> = report
        .shards
        .iter()
        .flat_map(|s| s.fates.iter().map(|(&id, &f)| (id, f)))
        .collect();
    fates.sort_by_key(|&(id, _)| id);
    let mut spend: BTreeMap<u32, f64> = BTreeMap::new();
    for s in &report.shards {
        for (&w, &e) in &s.spend_by_worker {
            *spend.entry(w).or_insert(0.0) += e;
        }
    }
    (fates, spend.into_iter().collect())
}

/// Recursively collects every `(spent, capacity)` pair in a parsed
/// snapshot — each is one serialized ledger account.
fn account_rows(v: &Value, out: &mut Vec<(f64, f64)>) {
    match v {
        Value::Object(fields) => {
            if let (Some(Value::Number(s)), Some(Value::Number(c))) =
                (v.get("spent"), v.get("capacity"))
            {
                out.push((*s, *c));
            }
            for (_, child) in fields {
                account_rows(child, out);
            }
        }
        Value::Array(items) => {
            for child in items {
                account_rows(child, out);
            }
        }
        _ => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn infinite_window_is_bit_identical_to_lifetime(
        tasks in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.0f64..1500.0), 6..26),
        workers in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 4.0f64..25.0, 0.0f64..900.0), 3..12),
        cap_sel in 0u8..3,
    ) {
        let stream = random_stream(&tasks, &workers);
        let capacity = [f64::INFINITY, 2.0, 1.0][cap_sel as usize];
        let life = cfg_with(LedgerMode::Lifetime, capacity);
        let winf = cfg_with(
            LedgerMode::Windowed { window_secs: f64::INFINITY }, capacity);
        let part = GridPartition::new(
            Aabb::from_extents(0.0, 0.0, 100.0, 100.0), 2, 2);
        for method in [Method::Puce, Method::Pgt, Method::Grd] {
            let engine = method.engine(&life.params);
            // Flat: the whole report — fates, window cuts, per-window
            // and per-worker spend — must agree bit for bit.
            let a = StreamDriver::new(engine.as_ref(), life.clone()).run(&stream);
            let b = StreamDriver::new(engine.as_ref(), winf.clone()).run(&stream);
            prop_assert_eq!(
                a.without_timing(), b.without_timing(), "{} flat", method);
            // Drop-pairs sharding.
            let a = run_sharded(engine.as_ref(), &stream, &life, &part);
            let b = run_sharded(engine.as_ref(), &stream, &winf, &part);
            prop_assert_eq!(merged(&a), merged(&b), "{} drop-pairs", method);
            // Boundary-halo sharding.
            let a = run_sharded_halo(engine.as_ref(), &stream, &life, &part);
            let b = run_sharded_halo(engine.as_ref(), &stream, &winf, &part);
            prop_assert_eq!(merged(&a), merged(&b), "{} halo", method);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn guarded_trailing_spend_never_exceeds_capacity(
        tasks in proptest::collection::vec(
            (0.0f64..60.0, 0.0f64..60.0, 0.0f64..2400.0), 10..30),
        workers in proptest::collection::vec(
            (0.0f64..60.0, 0.0f64..60.0, 6.0f64..30.0, 0.0f64..300.0), 2..6),
    ) {
        let stream = random_stream(&tasks, &workers);
        let cfg = cfg_with(LedgerMode::Windowed { window_secs: 900.0 }, 1.5);
        let engine = Method::Puce.engine(&cfg.params);
        let mut session = StreamSession::new(engine.as_ref(), cfg.clone());
        for e in stream.events() {
            session.push(*e);
            // The serialized ledger is the observable: every account's
            // `spent` is exactly its charge mass inside the trailing
            // protection window, and the warm-engine guard must have
            // kept it within capacity.
            let snap = serde_json::from_str(&session.snapshot().to_json())
                .expect("snapshot JSON parses");
            let mut rows = Vec::new();
            account_rows(&snap, &mut rows);
            for (spent, capacity) in rows {
                prop_assert!(
                    spent <= capacity + 1e-9,
                    "trailing-window spend {spent} exceeds capacity {capacity}"
                );
            }
        }
        session.close().assert_conservation();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn windowed_runs_replay_bit_identically(
        tasks in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.0f64..1800.0), 8..24),
        workers in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 5.0f64..25.0, 0.0f64..600.0), 3..8),
    ) {
        let stream = random_stream(&tasks, &workers);
        // Every new knob at once: sliding window, pacing, admission
        // control and stochastic service jitter.
        let cfg = StreamConfig::builder()
            .policy(WindowPolicy::ByTime { width: 300.0 })
            .worker_capacity(1.5)
            .service(ServiceModel::Jittered { secs: 240.0, frac: 0.4 })
            .ledger(LedgerMode::Windowed { window_secs: 900.0 })
            .pacing(Some(PacingConfig { horizon_windows: 3 }))
            .admission(Some(AdmissionConfig { epsilon_per_task: 0.5 }))
            .build()
            .expect("valid windowed configuration");
        for method in [Method::Puce, Method::Grd] {
            let engine = method.engine(&cfg.params);
            let a = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&stream);
            let b = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&stream);
            a.assert_conservation();
            prop_assert_eq!(
                a.without_timing(), b.without_timing(), "{} replay", method);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn windowed_snapshot_round_trips_and_resumes_bit_for_bit(
        tasks in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.0f64..1800.0), 8..24),
        workers in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 5.0f64..25.0, 0.0f64..600.0), 3..8),
        split_frac in 0.2f64..0.8,
    ) {
        let stream = random_stream(&tasks, &workers);
        let cfg = StreamConfig::builder()
            .policy(WindowPolicy::ByTime { width: 300.0 })
            .worker_capacity(1.5)
            .service(ServiceModel::Jittered { secs: 240.0, frac: 0.4 })
            .ledger(LedgerMode::Windowed { window_secs: 900.0 })
            .pacing(Some(PacingConfig { horizon_windows: 3 }))
            .admission(Some(AdmissionConfig { epsilon_per_task: 0.5 }))
            .build()
            .expect("valid windowed configuration");
        let engine = Method::Puce.engine(&cfg.params);
        let events = stream.events();
        let split = ((events.len() as f64) * split_frac) as usize;

        let baseline = {
            let mut s = StreamSession::new(engine.as_ref(), cfg.clone());
            for e in events { s.push(*e); }
            let report = s.close();
            (report, s.poll_outcomes())
        };

        let mut s = StreamSession::new(engine.as_ref(), cfg.clone());
        for e in &events[..split] { s.push(*e); }
        if split > 0 { s.advance_to(events[split - 1].time()); }
        let json = s.snapshot().to_json();
        drop(s);
        // Byte-stable round trip: parse and re-serialize.
        let parsed = SessionSnapshot::from_json(&json).expect("snapshot parses");
        prop_assert_eq!(parsed.to_json(), json.clone());
        // Restore and drain: bit-for-bit with the uninterrupted run.
        let mut s = StreamSession::restore(engine.as_ref(), cfg.clone(), &parsed)
            .expect("snapshot restores");
        for e in &events[split..] { s.push(*e); }
        let resumed = s.close();
        prop_assert_eq!(
            resumed.without_timing(), baseline.0.without_timing());
        prop_assert_eq!(s.poll_outcomes(), baseline.1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn zero_jitter_is_bit_identical_to_fixed_service(
        tasks in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.0f64..1500.0), 6..20),
        workers in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 5.0f64..25.0, 0.0f64..600.0), 3..8),
    ) {
        let stream = random_stream(&tasks, &workers);
        let fixed = StreamConfig::builder()
            .service(ServiceModel::Fixed { secs: 240.0 })
            .build()
            .expect("valid fixed-service configuration");
        let jittered = fixed
            .to_builder()
            .service(ServiceModel::Jittered { secs: 240.0, frac: 0.0 })
            .build()
            .expect("valid zero-jitter configuration");
        for method in [Method::Puce, Method::Grd] {
            let engine = method.engine(&fixed.params);
            let a = StreamDriver::new(engine.as_ref(), fixed.clone()).run(&stream);
            let b = StreamDriver::new(engine.as_ref(), jittered.clone()).run(&stream);
            prop_assert_eq!(
                a.without_timing(), b.without_timing(), "{} zero jitter", method);
        }
    }
}

/// Non-zero jitter actually moves return times: on a stream where a
/// recycled worker exists, the jittered run's outcome log differs from
/// the fixed run's somewhere, while both still conserve tasks. This is
/// deterministic in the seed (pinned by the replay property above), so
/// one hand-built witness is enough — a property test would have to
/// exclude streams with no returns at all.
#[test]
fn nonzero_jitter_shifts_return_times_deterministically() {
    let mut events = Vec::new();
    // One worker, three tasks spaced so the worker cycles through
    // service twice — return times are on the outcome log.
    events.push(ArrivalEvent::Worker(WorkerArrival {
        id: 0,
        time: 0.0,
        worker: Worker::new(Point::new(50.0, 50.0), 10.0),
    }));
    for k in 0..3u32 {
        events.push(ArrivalEvent::Task(TaskArrival {
            id: k,
            time: 30.0 + 600.0 * f64::from(k),
            task: Task::new(Point::new(52.0, 50.0), 4.5),
        }));
    }
    let stream = ArrivalStream::new(events);
    let fixed = StreamConfig::builder()
        .service(ServiceModel::Fixed { secs: 240.0 })
        .build()
        .expect("valid fixed-service configuration");
    let jittered = fixed
        .to_builder()
        .service(ServiceModel::Jittered {
            secs: 240.0,
            frac: 0.5,
        })
        .build()
        .expect("valid jittered configuration");
    let engine = Method::Grd.engine(&fixed.params);
    let run = |cfg: &StreamConfig| {
        let mut s = StreamSession::new(engine.as_ref(), cfg.clone());
        for e in stream.events() {
            s.push(*e);
        }
        let report = s.close();
        report.assert_conservation();
        (report, s.poll_outcomes())
    };
    let (_, fixed_outcomes) = run(&fixed);
    let (_, jittered_outcomes) = run(&jittered);
    // Replays are bit-identical…
    assert_eq!(jittered_outcomes, run(&jittered).1);
    // …but the jittered schedule differs from the fixed one.
    assert_ne!(fixed_outcomes, jittered_outcomes);
}
