//! Property tests of the incremental maintenance layer (PR 6):
//!
//! * **delta ≡ rebuild** — a [`DeltaInstance`] maintained through a
//!   random sequence of arrivals, expiries, retirements and service
//!   returns emits an [`Instance`] structurally identical to an
//!   [`Instance::from_locations`] rebuild over the surviving entities
//!   in insertion order — same entities, same order, same reach sets,
//!   same budget vectors, same feasible-pair count;
//! * **incremental ≡ full rerun** — driving the halo protocol with
//!   component-restricted reconciliation re-drives
//!   ([`StreamConfig::halo_full_rerun`] `= false`, the default)
//!   reproduces the full-rerun reference *bit for bit* in everything
//!   observable: task fates, per-worker privacy spend, per-window
//!   matched/expired/carried counts, utility, distance and ε totals.
//!   Only effort counters (rounds, publications, drive time) may
//!   differ — that is the point of the optimisation.
//!
//! The second property is the acceptance gate for the component-
//! locality argument in `crates/stream/src/halo.rs`: engine
//! interactions flow only along feasibility edges and noise/budgets
//! are keyed by logical ids, so skipping undisturbed components must
//! be observationally undetectable. It runs the full engine spread —
//! greedy, conflict-elimination, game-theoretic and the one-shot
//! Geo-I location baseline — because each stresses a different part of
//! the argument (proposal order, budget slots, best-response rounds,
//! reach-dependent location ε).

use dpta_core::{DeltaInstance, Instance, Method, Task, Worker};
use dpta_spatial::{Aabb, GridPartition, Point};
use dpta_stream::{
    run_sharded_halo, ArrivalEvent, ArrivalStream, StreamConfig, TaskArrival, WindowPolicy,
    WorkerArrival,
};
use dpta_workloads::budgets::BudgetGen;
use proptest::prelude::*;

/// One random mutation of the maintained instance, tuple-encoded for
/// the strategy layer: `(kind, key)` picks the operation and target,
/// `(x, y, r)` supplies geometry for the insert kinds.
type RawOp = ((usize, u64), (f64, f64, f64));

fn op_strategy() -> impl Strategy<Value = RawOp> {
    (
        (0usize..4, 0u64..8),
        (0.0f64..50.0, 0.0f64..50.0, 2.0f64..20.0),
    )
}

/// Asserts `delta.instance()` is structurally identical to a
/// from-scratch rebuild over `(key, entity)` mirrors kept in insertion
/// order.
fn assert_matches_rebuild(
    delta: &DeltaInstance,
    tasks: &[(u64, Task)],
    workers: &[(u64, Worker)],
    gen: &BudgetGen,
) {
    let reference = Instance::from_locations(
        tasks.iter().map(|&(_, t)| t).collect(),
        workers.iter().map(|&(_, w)| w).collect(),
        |i, j| gen.vector(tasks[i].0 as usize, workers[j].0 as usize),
    );
    let emitted = delta.instance();
    prop_assert_eq!(emitted.n_tasks(), reference.n_tasks());
    prop_assert_eq!(emitted.n_workers(), reference.n_workers());
    prop_assert_eq!(
        delta.task_keys().collect::<Vec<_>>(),
        tasks.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
        "task emission order must be insertion order"
    );
    prop_assert_eq!(
        delta.worker_keys().collect::<Vec<_>>(),
        workers.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
        "worker emission order must be insertion order"
    );
    prop_assert_eq!(emitted.tasks(), reference.tasks());
    prop_assert_eq!(emitted.workers(), reference.workers());
    for j in 0..reference.n_workers() {
        prop_assert_eq!(emitted.reach(j), reference.reach(j), "worker {}", j);
        for &i in reference.reach(j) {
            prop_assert_eq!(
                emitted.distance(i, j).to_bits(),
                reference.distance(i, j).to_bits()
            );
            prop_assert_eq!(emitted.budget(i, j), reference.budget(i, j));
        }
    }
    prop_assert_eq!(emitted.feasible_pairs(), reference.feasible_pairs());
    prop_assert_eq!(
        delta.feasible_pairs(),
        reference.feasible_pairs(),
        "the O(1) pair counter must track the true edge count"
    );
}

/// A random stream over the frame with worker radii large enough that
/// many discs cross cell boundaries — the regime where reconciliation
/// reruns actually happen.
fn random_stream(tasks: &[(f64, f64, f64)], workers: &[(f64, f64, f64, f64)]) -> ArrivalStream {
    let mut events = Vec::new();
    for (id, &(x, y, t)) in tasks.iter().enumerate() {
        events.push(ArrivalEvent::Task(TaskArrival {
            id: id as u32,
            time: t,
            task: Task::new(Point::new(x, y), 4.5),
        }));
    }
    for (id, &(x, y, r, t)) in workers.iter().enumerate() {
        events.push(ArrivalEvent::Worker(WorkerArrival {
            id: id as u32,
            time: t,
            worker: Worker::new(Point::new(x, y), r),
        }));
    }
    ArrivalStream::new(events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn delta_instance_matches_a_from_scratch_rebuild(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let gen = BudgetGen::new(0xD0_17A5, 0, (0.2, 1.0), 4);
        let mut delta = DeltaInstance::new();
        // Insertion-order mirrors of the live entity sets. A key
        // removed and re-inserted moves to the back — exactly the
        // arena's never-reuse-a-slot rule.
        let mut tasks: Vec<(u64, Task)> = Vec::new();
        let mut workers: Vec<(u64, Worker)> = Vec::new();
        for ((kind, key), (x, y, r)) in ops {
            match kind {
                0 => {
                    if !delta.contains_task(key) {
                        let t = Task::new(Point::new(x, y), 1.0);
                        delta.insert_task(key, t, |tk, wk| {
                            gen.vector(tk as usize, wk as usize)
                        });
                        tasks.push((key, t));
                    }
                }
                1 => {
                    if !delta.contains_worker(key) {
                        let w = Worker::new(Point::new(x, y), r);
                        delta.insert_worker(key, w, |tk, wk| {
                            gen.vector(tk as usize, wk as usize)
                        });
                        workers.push((key, w));
                    }
                }
                2 => {
                    let was_live = tasks.iter().any(|&(k, _)| k == key);
                    prop_assert_eq!(delta.remove_task(key), was_live);
                    tasks.retain(|&(k, _)| k != key);
                }
                _ => {
                    let was_live = workers.iter().any(|&(k, _)| k == key);
                    prop_assert_eq!(delta.remove_worker(key), was_live);
                    workers.retain(|&(k, _)| k != key);
                }
            }
            assert_matches_rebuild(&delta, &tasks, &workers, &gen);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn incremental_reconciliation_matches_full_reruns_bit_for_bit(
        tasks in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.0f64..900.0), 4..24),
        workers in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 3.0f64..25.0, 0.0f64..600.0), 3..12),
        cols in 2usize..4, rows in 2usize..4,
    ) {
        let stream = random_stream(&tasks, &workers);
        let part = GridPartition::new(
            Aabb::from_extents(0.0, 0.0, 100.0, 100.0), cols, rows);
        let base = StreamConfig {
            policy: WindowPolicy::ByTime { width: 300.0 },
            ..StreamConfig::default()
        };
        let full_cfg = StreamConfig { halo_full_rerun: true, ..base.clone() };

        for method in [Method::Grd, Method::Uce, Method::Puce, Method::Pgt, Method::GeoI] {
            let engine = method.engine(&base.params);
            let incremental = run_sharded_halo(engine.as_ref(), &stream, &base, &part);
            let full = run_sharded_halo(engine.as_ref(), &stream, &full_cfg, &part);

            prop_assert_eq!(incremental.shards.len(), full.shards.len());
            for (k, (inc, refr)) in incremental.shards.iter().zip(&full.shards).enumerate() {
                prop_assert_eq!(&inc.fates, &refr.fates, "{} shard {}: fates", method, k);
                prop_assert_eq!(
                    &inc.spend_by_worker, &refr.spend_by_worker,
                    "{} shard {}: spend", method, k
                );
                prop_assert_eq!(inc.windows.len(), refr.windows.len());
                for (a, b) in inc.windows.iter().zip(&refr.windows) {
                    prop_assert_eq!(a.matched, b.matched, "{}", method);
                    prop_assert_eq!(a.expired, b.expired, "{}", method);
                    prop_assert_eq!(a.carried_out, b.carried_out, "{}", method);
                    prop_assert_eq!(a.tasks_arrived, b.tasks_arrived, "{}", method);
                    prop_assert_eq!(a.carried_in, b.carried_in, "{}", method);
                    prop_assert_eq!(a.workers_available, b.workers_available, "{}", method);
                    prop_assert_eq!(a.workers_departed, b.workers_departed, "{}", method);
                    prop_assert_eq!(a.workers_retired, b.workers_retired, "{}", method);
                    prop_assert_eq!(a.workers_returned, b.workers_returned, "{}", method);
                    prop_assert_eq!(
                        a.utility.to_bits(), b.utility.to_bits(),
                        "{}: window {} utility {} vs {}", method, a.index, a.utility, b.utility
                    );
                    prop_assert_eq!(
                        a.distance.to_bits(), b.distance.to_bits(),
                        "{}: window {} distance", method, a.index
                    );
                    prop_assert_eq!(
                        a.epsilon_spent.to_bits(), b.epsilon_spent.to_bits(),
                        "{}: window {} ε {} vs {}",
                        method, a.index, a.epsilon_spent, b.epsilon_spent
                    );
                }
            }
        }
    }
}

/// Deterministic witness that the incremental path actually *does
/// less*: on a stream whose shards hold several feasibility components
/// (a contended junction cluster plus isolated interior clusters),
/// reconciliation re-drives must republish strictly fewer releases
/// than full reruns while reproducing the same matches. Guards the
/// suite above against vacuity — if the planner degraded to always
/// re-driving everything, the bit-for-bit property would still pass.
#[test]
fn incremental_mode_rederives_strictly_less() {
    // Contended cluster around the 2x2 junction: every worker's disc
    // covers all four cells, so every claim is contested.
    let tasks: Vec<(f64, f64, f64)> = (0..40)
        .map(|i| {
            (
                40.0 + (i % 8) as f64 * 2.6,
                41.0 + (i / 8) as f64 * 4.4,
                20.0 * i as f64,
            )
        })
        .collect();
    let workers: Vec<(f64, f64, f64, f64)> = (0..16)
        .map(|j| {
            (
                46.0 + (j % 4) as f64 * 2.5,
                46.5 + (j / 4) as f64 * 2.4,
                15.0,
                40.0 * j as f64,
            )
        })
        .collect();
    // Plus an interior cluster per cell: its discs stay inside the
    // cell, forming components untouched by junction contention.
    let mut tasks = tasks;
    let mut workers = workers;
    for (c, &(cx, cy)) in [(20.0, 20.0), (80.0, 20.0), (20.0, 80.0), (80.0, 80.0)]
        .iter()
        .enumerate()
    {
        for i in 0..5 {
            tasks.push((cx + i as f64 * 1.5, cy, 25.0 * i as f64 + c as f64));
        }
        workers.push((cx + 3.0, cy + 2.0, 6.0, 30.0 + c as f64));
        workers.push((cx - 3.0, cy - 2.0, 6.0, 350.0 + c as f64));
    }
    let stream = random_stream(&tasks, &workers);
    let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 100.0, 100.0), 2, 2);
    let base = StreamConfig {
        policy: WindowPolicy::ByTime { width: 300.0 },
        ..StreamConfig::default()
    };
    let full_cfg = StreamConfig {
        halo_full_rerun: true,
        ..base.clone()
    };
    for method in [Method::Grd, Method::Puce] {
        let engine = method.engine(&base.params);
        let inc = run_sharded_halo(engine.as_ref(), &stream, &base, &part);
        let full = run_sharded_halo(engine.as_ref(), &stream, &full_cfg, &part);
        let pubs_inc: usize = inc
            .shards
            .iter()
            .flat_map(|s| s.windows.iter())
            .map(|w| w.publications)
            .sum();
        let pubs_full: usize = full
            .shards
            .iter()
            .flat_map(|s| s.windows.iter())
            .map(|w| w.publications)
            .sum();
        assert_eq!(inc.matched(), full.matched(), "{method}");
        assert!(
            pubs_inc <= pubs_full,
            "{method}: incremental republished more ({pubs_inc} > {pubs_full})"
        );
        if method == Method::Puce {
            assert!(
                pubs_inc < pubs_full,
                "{method}: incremental mode re-derived as much as full reruns \
                 ({pubs_inc}) — component skipping is not engaging"
            );
        }
    }
}
