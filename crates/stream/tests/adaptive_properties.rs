//! Property tests of the adaptive windowing controller
//! ([`WindowPolicy::Adaptive`]):
//!
//! * **progress** — windowing always terminates with every arrival
//!   covered exactly once (no zero-width window livelock), for random
//!   streams, random controller knobs and adversarial burst ties;
//! * **degeneracy** — under constant Paced load with a slack target
//!   and an unreachable burst threshold, the adaptive run is
//!   *bit-identical* to the equivalent static `ByTime` policy (same
//!   windows, same assignments, same spend);
//! * **shard equivalence** — on shard-disjoint input, flat, drop-pairs
//!   and halo execution of the same adaptive configuration agree bit
//!   for bit: one controller windows the merged global stream in all
//!   three modes, and the merged per-shard feedback reproduces the
//!   flat run's feedback exactly.

use dpta_core::{Method, Task, Worker};
use dpta_spatial::{Aabb, GridPartition, Point};
use dpta_stream::{
    run_sharded, run_sharded_halo, AdaptivePolicy, ArrivalEvent, ArrivalModel, ArrivalStream,
    StreamConfig, StreamDriver, TaskArrival, TaskFate, WindowPolicy, WorkerArrival,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn random_stream(tasks: &[(f64, f64, f64)], workers: &[(f64, f64, f64, f64)]) -> ArrivalStream {
    let mut events = Vec::new();
    for (id, &(x, y, t)) in tasks.iter().enumerate() {
        events.push(ArrivalEvent::Task(TaskArrival {
            id: id as u32,
            time: t,
            task: Task::new(Point::new(x, y), 4.5),
        }));
    }
    for (id, &(x, y, r, t)) in workers.iter().enumerate() {
        events.push(ArrivalEvent::Worker(WorkerArrival {
            id: id as u32,
            time: t,
            worker: Worker::new(Point::new(x, y), r),
        }));
    }
    ArrivalStream::new(events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Adaptive windowing always makes progress: the driver terminates,
    // conservation holds, and the window count stays under the bound
    // implied by "every window consumes an event or advances time by
    // at least `min_width`". Task times are drawn from a *coarse* grid
    // (multiples of 10 s) so many arrivals tie exactly — the regime
    // where a zero-width burst cut could livelock if membership were
    // keyed on time instead of the consuming cursor.
    #[test]
    fn adaptive_windowing_always_makes_progress(
        task_slots in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0, 0u32..60), 1..40),
        workers in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 3.0f64..20.0, 0.0f64..400.0), 1..8),
        min_width in 5.0f64..50.0,
        base_mult in 1usize..8,
        burst_tasks in 1usize..6,
        target_p95 in 10.0f64..500.0,
    ) {
        let tasks: Vec<(f64, f64, f64)> = task_slots
            .iter()
            .map(|&(x, y, slot)| (x, y, slot as f64 * 10.0))
            .collect();
        let stream = random_stream(&tasks, &workers);
        let base_width = min_width * base_mult as f64;
        let policy = AdaptivePolicy {
            base_width,
            min_width,
            max_width: base_width * 4.0,
            burst_tasks,
            target_p95,
        };
        let cfg = StreamConfig {
            policy: WindowPolicy::Adaptive(policy),
            ..StreamConfig::default()
        };
        let engine = Method::Grd.engine(&cfg.params);
        let report = StreamDriver::new(engine.as_ref(), cfg).run(&stream);
        report.assert_conservation();
        prop_assert_eq!(report.task_arrivals, stream.n_tasks());
        // Progress bound: every window either consumed >= 1 event or
        // advanced time by >= min_width over the stream horizon.
        let bound = stream.events().len()
            + (stream.horizon() / min_width).ceil() as usize
            + 2;
        prop_assert!(
            report.windows.len() <= bound,
            "{} windows exceeds the progress bound {}",
            report.windows.len(),
            bound
        );
        // Windows tile the timeline: starts are non-decreasing and each
        // window starts where the previous one ended.
        for w in report.windows.windows(2) {
            prop_assert!(w[1].start == w[0].end && w[1].end >= w[1].start);
        }
    }

    // With a slack latency target and an unreachable burst threshold,
    // constant Paced load never triggers the controller, and the
    // adaptive run must be *bit-identical* to `ByTime { base_width }`.
    #[test]
    fn adaptive_degenerates_to_by_time_under_paced_load(
        n_tasks in 5usize..40,
        rate_denom in 2u32..20,
        base_width in 1usize..8,
    ) {
        let base_width = base_width as f64 * 50.0;
        let rate = 1.0 / rate_denom as f64;
        let times = ArrivalModel::Paced { rate }.times(0, n_tasks);
        let mut events: Vec<ArrivalEvent> = times
            .iter()
            .enumerate()
            .map(|(k, &t)| {
                ArrivalEvent::Task(TaskArrival {
                    id: k as u32,
                    time: t,
                    task: Task::new(Point::new((k % 7) as f64, (k % 5) as f64), 4.5),
                })
            })
            .collect();
        // A pool big enough that the run is never starved.
        for k in 0..n_tasks as u32 {
            events.push(ArrivalEvent::Worker(WorkerArrival {
                id: k,
                time: 0.0,
                worker: Worker::new(Point::new((k % 7) as f64, (k % 5) as f64 + 0.3), 2.0),
            }));
        }
        let stream = ArrivalStream::new(events);
        let adaptive = StreamConfig {
            policy: WindowPolicy::Adaptive(AdaptivePolicy {
                base_width,
                min_width: base_width / 4.0,
                max_width: base_width * 4.0,
                burst_tasks: n_tasks + 1,   // unreachable
                target_p95: base_width * 2.0, // slack: ages never overshoot
            }),
            ..StreamConfig::default()
        };
        let fixed = StreamConfig {
            policy: WindowPolicy::ByTime { width: base_width },
            ..StreamConfig::default()
        };
        for method in [Method::Puce, Method::Grd] {
            let engine = method.engine(&adaptive.params);
            let a = StreamDriver::new(engine.as_ref(), adaptive.clone()).run(&stream);
            let b = StreamDriver::new(engine.as_ref(), fixed.clone()).run(&stream);
            prop_assert_eq!(
                a.without_timing(),
                b.without_timing(),
                "{}: adaptive at a constant base width must equal the static policy",
                method
            );
        }
    }
}

/// A shard-disjoint clustered stream with bursty task arrivals: one
/// cluster per cell, worker discs interior to their cells.
fn disjoint_clustered_stream(part: &GridPartition, seed: u64) -> ArrivalStream {
    let frame = part.frame();
    let cell_w = frame.width() / part.cols() as f64;
    let cell_h = frame.height() / part.rows() as f64;
    let per_cell = 8;
    let times = ArrivalModel::Bursty {
        base_rate: 0.02,
        burst_rate: 0.3,
        period: 400.0,
        burst_fraction: 0.3,
    }
    .times(seed, per_cell * part.n_shards());
    let mut events = Vec::new();
    let (mut task_id, mut worker_id) = (0u32, 0u32);
    for cy in 0..part.rows() {
        for cx in 0..part.cols() {
            let centre = Point::new(
                frame.min.x + (cx as f64 + 0.5) * cell_w,
                frame.min.y + (cy as f64 + 0.5) * cell_h,
            );
            let radius = 0.2 * cell_w.min(cell_h);
            for k in 0..4u32 {
                let spread = 0.1 * cell_w.min(cell_h);
                let angle = k as f64 * 2.1;
                events.push(ArrivalEvent::Worker(WorkerArrival {
                    id: worker_id,
                    time: if k < 3 { 0.0 } else { 60.0 },
                    worker: Worker::new(
                        Point::new(
                            centre.x + spread * angle.cos(),
                            centre.y + spread * angle.sin(),
                        ),
                        radius,
                    ),
                }));
                worker_id += 1;
            }
            for k in 0..per_cell {
                let spread = 0.08 * cell_w.min(cell_h);
                let angle = k as f64 * 1.3 + 0.5;
                events.push(ArrivalEvent::Task(TaskArrival {
                    id: task_id,
                    time: times[task_id as usize],
                    task: Task::new(
                        Point::new(
                            centre.x + spread * angle.cos(),
                            centre.y + spread * angle.sin(),
                        ),
                        4.5,
                    ),
                }));
                task_id += 1;
            }
        }
    }
    ArrivalStream::new(events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // On shard-disjoint input, flat, drop-pairs and halo execution of
    // the same adaptive configuration are bit-for-bit identical:
    // windows, fates, utility and per-worker spend all agree, because
    // every mode windows the merged global stream with one controller
    // and the merged shard feedback equals the flat feedback.
    #[test]
    fn adaptive_sharding_is_bit_for_bit_on_disjoint_input(
        seed in 0u64..1000,
        cols in 1usize..4,
        rows in 1usize..3,
        burst_tasks in 3usize..12,
    ) {
        let part = GridPartition::new(
            Aabb::from_extents(0.0, 0.0, 100.0, 100.0), cols, rows);
        let stream = disjoint_clustered_stream(&part, seed);
        prop_assume!(stream.is_shard_disjoint(&part));
        let cfg = StreamConfig {
            policy: WindowPolicy::Adaptive(AdaptivePolicy {
                base_width: 300.0,
                min_width: 50.0,
                max_width: 1200.0,
                burst_tasks,
                target_p95: 150.0,
            }),
            ..StreamConfig::default()
        };
        for method in [Method::Puce, Method::Pgt, Method::Grd] {
            let engine = method.engine(&cfg.params);
            let flat = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&stream);
            for (label, sharded) in [
                ("drop-pairs", run_sharded(engine.as_ref(), &stream, &cfg, &part)),
                ("halo", run_sharded_halo(engine.as_ref(), &stream, &cfg, &part)),
            ] {
                prop_assert_eq!(sharded.matched(), flat.matched(), "{}/{}", method, label);
                prop_assert!(
                    (sharded.total_utility() - flat.total_utility()).abs() < 1e-9,
                    "{}/{}: utility {} vs {}",
                    method, label, sharded.total_utility(), flat.total_utility()
                );
                prop_assert!(
                    (sharded.total_epsilon() - flat.total_epsilon()).abs() < 1e-9,
                    "{}/{}", method, label
                );
                // Fates merge back to the flat fate map exactly.
                let mut merged: Vec<(u32, TaskFate)> = sharded
                    .shards
                    .iter()
                    .flat_map(|s| s.fates.iter().map(|(&id, &f)| (id, f)))
                    .collect();
                merged.sort_by_key(|&(id, _)| id);
                let flat_fates: Vec<(u32, TaskFate)> =
                    flat.fates.iter().map(|(&id, &f)| (id, f)).collect();
                prop_assert_eq!(merged, flat_fates, "{}/{}: fates diverged", method, label);
                // Per-worker spend merges back exactly (bit-for-bit).
                let mut merged_spend: BTreeMap<u32, f64> = BTreeMap::new();
                for s in &sharded.shards {
                    for (&w, &eps) in &s.spend_by_worker {
                        *merged_spend.entry(w).or_insert(0.0) += eps;
                    }
                }
                for (w, eps) in &flat.spend_by_worker {
                    let got = merged_spend.get(w).copied().unwrap_or(0.0);
                    prop_assert!(
                        (got - eps).abs() < 1e-9,
                        "{}/{}: worker {} spend {} vs {}",
                        method, label, w, got, eps
                    );
                }
                // Every shard's windows tile the same global cut
                // sequence the flat run used.
                for s in sharded.shards.iter().filter(|s| !s.windows.is_empty()) {
                    let flat_cuts: Vec<(f64, f64)> =
                        flat.windows.iter().map(|w| (w.start, w.end)).collect();
                    let shard_cuts: Vec<(f64, f64)> =
                        s.windows.iter().map(|w| (w.start, w.end)).collect();
                    prop_assert_eq!(&shard_cuts, &flat_cuts, "{}/{}", method, label);
                }
            }
        }
    }
}
