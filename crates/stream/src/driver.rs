//! The online driver: replays an arrival stream window by window
//! through any [`AssignmentEngine`].
//!
//! Since the session redesign this module is a *drain loop*:
//! [`StreamDriver::run`] opens a push-based
//! [`StreamSession`](crate::StreamSession), feeds it the pre-built
//! stream and closes it. All pipeline semantics — windowing, warm
//! starts, lifetime accounting, task TTL, worker re-entry — live in
//! the session stepper (`crate::session`); this module keeps the
//! configuration type and the id-stable noise/budget plumbing the
//! stepper and the halo coordinator share.
//!
//! Each window becomes a PA-TA [`Instance`](dpta_core::Instance) of
//! the tasks waiting and the workers on duty; the engine drives it;
//! matched tasks complete, unmatched tasks carry over until their
//! time-to-live runs out, and a
//! [`CumulativeAccountant`](dpta_dp::CumulativeAccountant) charges every
//! worker's *lifetime* privacy budget, retiring workers the moment it
//! is exhausted. Engines that support warm starts resume from the
//! carried protocol state (releases, consumed budget slots) per the
//! [warm-start contract](AssignmentEngine#warm-start-contract);
//! one-shot engines get a fresh board every window. Matched workers
//! serve for a [`ServiceModel`](crate::ServiceModel) duration and
//! re-enter the pool — or depart for good under the default
//! `ServiceModel::Never`.
//!
//! Determinism: budgets and noise are keyed by the stream's *logical*
//! ids, not per-window indices, so the same seed reproduces the same
//! run bit for bit — and a spatially disjoint shard sees exactly the
//! draws it would see inside the unsharded run.

use crate::event::{ArrivalStream, TaskArrival};
use crate::metrics::StreamReport;
use crate::session::{ServiceModel, StreamSession};
use crate::window::WindowPolicy;
use dpta_core::{AssignmentEngine, RunParams};
use dpta_dp::{NoiseSource, SeededNoise};
use dpta_workloads::Scenario;
use serde::{Deserialize, Serialize};

/// Dedup of releases already charged to the lifetime accountant.
/// Fresh-board engines re-publish bit-identical releases for pairs
/// still pending from earlier windows (noise and budgets are
/// id-keyed), which reveals nothing new and therefore must not be
/// charged twice. The halo coordinator keys the same dedup across
/// shards and reconciliation passes, and the session stepper keys it
/// across *service cycles* (a returned worker's re-publications are
/// bit-identical too), so a release is charged once no matter how
/// many runs re-derive it.
///
/// Logically this is the set of charged
/// `(worker id, task id, slot, ε-bits)` keys, but the representation
/// exploits two structural invariants of the pipeline instead of
/// storing (and tree-searching) full keys:
///
/// * release sets only append, and every charging sweep enumerates a
///   pair's releases `0..len` — so the charged slots of a pair are
///   always a contiguous prefix, and a per-pair *count* is the whole
///   set;
/// * the ε published at `(worker, task, slot)` is a pure function of
///   those ids (id-keyed noise and budget vectors), so the ε-bits
///   component of the logical key is redundant for pair releases and
///   only whole-location (Geo-I) releases need their bits deduped.
///
/// Workers are interned to dense indices on first charge, making the
/// per-release hot-path cost two small hash probes (worker id, task
/// id) instead of a `BTreeSet` descent over wide tuple keys.
#[derive(Debug, Clone, Default)]
pub(crate) struct ReleaseDedup {
    /// Worker id → dense index into `workers` (the dedup's interning
    /// table, one deterministic [`dpta_dp::FastMap`] probe per charge).
    index: dpta_dp::FastMap<u32, u32>,
    workers: Vec<WorkerCharges>,
}

/// One worker's charged releases: a contiguous-slot count per task and
/// the distinct whole-location ε bit patterns.
#[derive(Debug, Clone, Default)]
struct WorkerCharges {
    /// Task id → number of slots already charged (slots `0..count`).
    pairs: dpta_dp::FastMap<u32, u32>,
    /// Whole-location release spends already charged, by exact bits.
    /// Practically 0 or 1 entries (Geo-I publishes one location per
    /// worker lifetime), so a linear scan beats any keyed structure.
    locations: Vec<u64>,
}

impl ReleaseDedup {
    fn worker_mut(&mut self, wid: u32) -> &mut WorkerCharges {
        let next = self.workers.len() as u32;
        let idx = *self.index.entry(wid).or_insert(next);
        if idx == next {
            self.workers.push(WorkerCharges::default());
        }
        &mut self.workers[idx as usize]
    }

    /// Charges slot `slot` of pair `(wid, tid)`; returns whether it was
    /// novel. Slots of one pair must arrive in contiguous ascending
    /// sweeps starting at 0 (the release-set enumeration order), which
    /// the count representation asserts.
    pub(crate) fn charge_pair(&mut self, wid: u32, tid: u32, slot: u32) -> bool {
        let count = self.worker_mut(wid).pairs.entry(tid).or_insert(0);
        if slot < *count {
            return false;
        }
        assert_eq!(
            slot, *count,
            "release slots of a pair must be charged contiguously"
        );
        *count += 1;
        true
    }

    /// Charges a whole-location (Geo-I) release of `spend_bits` total ε
    /// for `wid`; returns whether that exact spend was novel.
    pub(crate) fn charge_location(&mut self, wid: u32, spend_bits: u64) -> bool {
        let locs = &mut self.worker_mut(wid).locations;
        if locs.contains(&spend_bits) {
            return false;
        }
        locs.push(spend_bits);
        true
    }
}

// Canonical snapshot form: workers sorted by id, each with its pair
// counts sorted by task id and its location bits in charge order. The
// interning order of `index` is unobservable (lookups go through the
// map), so re-interning in sorted order on restore is behaviourally
// identical — and two dedups with the same charges always serialize to
// the same bytes, which the snapshot byte-identity gate relies on.
impl Serialize for ReleaseDedup {
    fn serialize_value(&self) -> serde::Value {
        let mut ids: Vec<u32> = self.index.keys().copied().collect();
        ids.sort_unstable();
        let workers: Vec<serde::Value> = ids
            .iter()
            .map(|wid| {
                let w = &self.workers[self.index[wid] as usize];
                let mut pairs: Vec<(u32, u32)> =
                    w.pairs.iter().map(|(tid, count)| (*tid, *count)).collect();
                pairs.sort_unstable();
                serde::Value::Object(vec![
                    ("id".to_string(), wid.serialize_value()),
                    ("pairs".to_string(), pairs.serialize_value()),
                    ("locations".to_string(), w.locations.serialize_value()),
                ])
            })
            .collect();
        serde::Value::Array(workers)
    }
}

impl Deserialize for ReleaseDedup {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Array(items) = v else {
            return Err(serde::Error::expected("ReleaseDedup array", v));
        };
        let mut dedup = ReleaseDedup::default();
        for item in items {
            let id = item
                .get("id")
                .ok_or_else(|| serde::Error("ReleaseDedup entry missing id".to_string()))?;
            let wid = u32::deserialize_value(id)?;
            if dedup.index.contains_key(&wid) {
                return Err(serde::Error(format!(
                    "ReleaseDedup has duplicate worker id {wid}"
                )));
            }
            let pairs = item
                .get("pairs")
                .ok_or_else(|| serde::Error("ReleaseDedup entry missing pairs".to_string()))?;
            let locations = item
                .get("locations")
                .ok_or_else(|| serde::Error("ReleaseDedup entry missing locations".to_string()))?;
            let charges = dedup.worker_mut(wid);
            for (tid, count) in Vec::<(u32, u32)>::deserialize_value(pairs)? {
                if charges.pairs.insert(tid, count).is_some() {
                    return Err(serde::Error(format!(
                        "ReleaseDedup worker {wid} has duplicate task id {tid}"
                    )));
                }
            }
            charges.locations = Vec::<u64>::deserialize_value(locations)?;
        }
        Ok(dedup)
    }
}

/// Configuration of one stream run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// How arrivals are grouped into batches.
    pub policy: WindowPolicy,
    /// Algorithm parameters (seed, α, β, accounting, fallback).
    pub params: RunParams,
    /// Privacy budget draw range for per-pair budget vectors (Table X).
    /// A wrapped scenario's budget settings do not propagate through
    /// [`StreamScenario`](crate::StreamScenario); use
    /// [`StreamConfig::for_scenario`] to inherit them.
    pub budget_range: (f64, f64),
    /// Budget vector group size `Z` (Table X); see
    /// [`StreamConfig::for_scenario`] for scenario inheritance.
    pub budget_group_size: usize,
    /// Lifetime privacy budget per worker; once cumulative published
    /// spend reaches it the worker is retired. `f64::INFINITY` never
    /// retires anyone.
    ///
    /// For warm-start engines with [`carry_releases`] on (the default),
    /// a finite capacity is a *hard* cap: the driver hands the engine a
    /// remaining-budget guard
    /// ([`AssignmentEngine::resume_capped`](dpta_core::AssignmentEngine::resume_capped)),
    /// so proposals whose ε would overshoot the worker's remaining
    /// lifetime budget are skipped mid-window and the recorded spend
    /// never exceeds the capacity. Because a capped worker stops just
    /// short rather than overshooting, retirement fires once his
    /// remaining budget drops below the cheapest possible release
    /// ([`budget_range`](StreamConfig::budget_range)`.0`) — he could
    /// never publish again. Fresh-board drives (one-shot engines, or
    /// `carry_releases = false`) re-publish already-charged releases
    /// the guard cannot tell apart from novel spend, so there the
    /// capacity stays a retirement threshold checked at window close
    /// and the final window may overshoot.
    ///
    /// The cap follows the worker's logical id across
    /// [`ServiceModel`](crate::ServiceModel) re-entry: a returned
    /// worker resumes with exactly the remaining budget he left with.
    ///
    /// [`carry_releases`]: StreamConfig::carry_releases
    pub worker_capacity: f64,
    /// Windows a task participates in before it expires (≥ 1).
    pub task_ttl: usize,
    /// Carry release history across windows for warm-start engines.
    /// One-shot engines always start fresh regardless.
    pub carry_releases: bool,
    /// How long matched workers serve before re-entering the pool.
    /// [`ServiceModel::Never`](crate::ServiceModel::Never) (the
    /// default) is serve-and-leave: the pre-session pipeline, bit for
    /// bit.
    pub service: ServiceModel,
    /// Extend the windowed span to this horizon (used by the sharded
    /// runner so every shard forms the same window sequence).
    pub horizon: Option<f64>,
    /// Force the halo coordinator to re-drive every flagged shard from
    /// scratch on reconciliation passes, even when component analysis
    /// proves the rerun's outcome unchanged. `false` (the default)
    /// enables the incremental skip: a shard whose lost claims touch no
    /// feasibility component of its remaining entities keeps its
    /// previous run and only drops the departed workers' claims.
    /// Equivalence of the two modes is pinned by the incremental
    /// property suite; the knob exists to express that test and to
    /// debug suspected skip misfires.
    pub halo_full_rerun: bool,
    /// How per-worker budget spend is accounted over time.
    /// [`LedgerMode::Lifetime`] (the default) is the paper's model:
    /// spend accumulates forever and exhausted workers retire.
    /// [`LedgerMode::Windowed`] reclaims spend older than the
    /// protection window, making workers renewable — they idle while
    /// exhausted instead of retiring, and resume publishing once old
    /// charges age out.
    pub ledger: LedgerMode,
    /// Budget pacing: forecast each worker's per-window burn rate from
    /// the trailing ledger and throttle expensive releases when the
    /// rate would exhaust them within the forecast horizon. Only
    /// active when the engine-level remaining-budget guard is — a
    /// warm-start engine with [`carry_releases`] on and a finite
    /// [`worker_capacity`]. `None` (the default) never throttles.
    ///
    /// [`carry_releases`]: StreamConfig::carry_releases
    /// [`worker_capacity`]: StreamConfig::worker_capacity
    pub pacing: Option<PacingConfig>,
    /// Admission control: when the pool's aggregate remaining budget
    /// cannot serve the backlog, defer excess task admissions into
    /// later windows instead of burning TTL on unmatchable tasks.
    /// Deferred tasks spend no TTL and surface as
    /// [`Outcome::Deferred`](crate::Outcome::Deferred). `None` (the
    /// default) admits everything on arrival.
    pub admission: Option<AdmissionConfig>,
}

/// Budget accounting regime for a stream run: the paper's monotone
/// lifetime depletion, or the sliding-window model of Qiu & Yi
/// (arXiv:2209.01387) where spend older than the protection window is
/// reclaimed and workers become renewable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LedgerMode {
    /// Cumulative lifetime accounting — spend never comes back and
    /// exhausted workers retire forever (the pre-ledger pipeline, bit
    /// for bit).
    Lifetime,
    /// Sliding-window accounting with protection window `window_secs`:
    /// a charge stamped at time `t` is reclaimed once the ledger clock
    /// passes `t + window_secs`. Exhausted workers idle instead of
    /// retiring. Must be positive; an infinite width is accepted and
    /// is bit-identical to [`LedgerMode::Lifetime`] (proptest-pinned).
    Windowed {
        /// Protection window width in stream seconds.
        window_secs: f64,
    },
}

impl LedgerMode {
    /// Builds the matching ledger state, ready to account a stream.
    pub fn state(self) -> dpta_dp::LedgerState {
        match self {
            LedgerMode::Lifetime => dpta_dp::LedgerState::lifetime(),
            LedgerMode::Windowed { window_secs } => dpta_dp::LedgerState::windowed(window_secs),
        }
    }
}

/// Budget-pacing controller settings; see
/// [`StreamConfig::pacing`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacingConfig {
    /// Forecast horizon in windows: a worker whose trailing per-window
    /// burn rate would exhaust their remaining budget within this many
    /// windows has their per-window guard capped to `remaining /
    /// horizon_windows`, stretching the budget across the horizon
    /// (until window-`W` reclamation catches up). Must be ≥ 1.
    pub horizon_windows: usize,
}

/// Admission-control settings; see [`StreamConfig::admission`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Estimated budget cost of serving one task — the divisor turning
    /// the pool's aggregate remaining budget into a serveable-backlog
    /// estimate. Must be finite and positive.
    pub epsilon_per_task: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            policy: WindowPolicy::ByTime { width: 600.0 },
            params: RunParams::default(),
            budget_range: (0.5, 1.75),
            budget_group_size: 7,
            worker_capacity: f64::INFINITY,
            task_ttl: 3,
            carry_releases: true,
            service: ServiceModel::Never,
            horizon: None,
            halo_full_rerun: false,
            ledger: LedgerMode::Lifetime,
            pacing: None,
            admission: None,
        }
    }
}

impl StreamConfig {
    /// A configuration inheriting `scenario`'s seed and privacy-budget
    /// settings (draw range, group size `Z`), every other knob at its
    /// default.
    ///
    /// The driver draws budget vectors itself, keyed by logical pair —
    /// a [`StreamScenario`](crate::StreamScenario) contributes only
    /// locations, values and radii, so the wrapped scenario's budget
    /// fields do **not** ride along on the stream. Build the config
    /// with this constructor when a scenario sweeps them.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpta_stream::StreamConfig;
    /// use dpta_workloads::Scenario;
    ///
    /// let scenario = Scenario {
    ///     budget_range: (1.0, 3.0),
    ///     budget_group_size: 5,
    ///     seed: 7,
    ///     ..Scenario::default()
    /// };
    /// let cfg = StreamConfig::for_scenario(&scenario);
    /// assert_eq!(cfg.budget_range, (1.0, 3.0));
    /// assert_eq!(cfg.budget_group_size, 5);
    /// assert_eq!(cfg.params.seed, 7);
    /// ```
    pub fn for_scenario(scenario: &Scenario) -> StreamConfig {
        StreamConfig {
            params: RunParams::with_seed(scenario.seed),
            budget_range: scenario.budget_range,
            budget_group_size: scenario.budget_group_size,
            ..StreamConfig::default()
        }
    }

    /// A validating builder starting from the default configuration —
    /// the construction path that catches degenerate knobs (zero-width
    /// windows, negative capacities, service/TTL inconsistencies) at
    /// build time as typed [`ConfigError`]s instead of panicking deep
    /// inside a run.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpta_stream::{StreamConfig, WindowPolicy};
    ///
    /// let cfg = StreamConfig::builder()
    ///     .policy(WindowPolicy::ByTime { width: 300.0 })
    ///     .worker_capacity(2.5)
    ///     .task_ttl(4)
    ///     .build()
    ///     .expect("valid configuration");
    /// assert_eq!(cfg.task_ttl, 4);
    ///
    /// let err = StreamConfig::builder()
    ///     .policy(WindowPolicy::ByTime { width: 0.0 })
    ///     .build()
    ///     .unwrap_err();
    /// assert_eq!(err.field, "policy");
    /// ```
    pub fn builder() -> StreamConfigBuilder {
        StreamConfigBuilder {
            cfg: StreamConfig::default(),
        }
    }

    /// Builder seeded from `scenario` like
    /// [`for_scenario`](StreamConfig::for_scenario): inherits the
    /// scenario's seed and privacy-budget settings, every other knob at
    /// its default.
    pub fn builder_for_scenario(scenario: &Scenario) -> StreamConfigBuilder {
        StreamConfigBuilder {
            cfg: StreamConfig::for_scenario(scenario),
        }
    }

    /// Builder seeded from this configuration — the validated
    /// equivalent of struct-update syntax for deriving a variant that
    /// tweaks a knob or two.
    pub fn to_builder(&self) -> StreamConfigBuilder {
        StreamConfigBuilder { cfg: self.clone() }
    }

    /// Validates every knob, returning the offending field on failure.
    /// [`StreamConfigBuilder::build`] funnels through this; session and
    /// driver constructors assert the same invariants.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn err(field: &'static str, message: String) -> Result<(), ConfigError> {
            Err(ConfigError { field, message })
        }
        match self.policy {
            WindowPolicy::ByTime { width } => {
                if !(width > 0.0 && width.is_finite()) {
                    return err(
                        "policy",
                        format!("window width must be positive and finite, got {width}"),
                    );
                }
            }
            WindowPolicy::ByCount { tasks } => {
                if tasks == 0 {
                    return err("policy", "count threshold must be positive".to_string());
                }
            }
            WindowPolicy::Adaptive(p) => {
                if !(p.min_width > 0.0 && p.min_width.is_finite()) {
                    return err(
                        "policy",
                        format!("min_width must be positive and finite, got {}", p.min_width),
                    );
                }
                if !(p.min_width <= p.base_width && p.base_width <= p.max_width) {
                    return err(
                        "policy",
                        format!(
                            "widths must satisfy min <= base <= max, got {} / {} / {}",
                            p.min_width, p.base_width, p.max_width
                        ),
                    );
                }
                if !p.max_width.is_finite() {
                    return err("policy", "max_width must be finite".to_string());
                }
                if p.burst_tasks == 0 {
                    return err("policy", "burst_tasks must be at least 1".to_string());
                }
                if !(p.target_p95 > 0.0 && p.target_p95.is_finite()) {
                    return err(
                        "policy",
                        format!(
                            "target_p95 must be positive and finite, got {}",
                            p.target_p95
                        ),
                    );
                }
            }
        }
        let (lo, hi) = self.budget_range;
        if !(lo > 0.0 && lo <= hi && hi.is_finite()) {
            return err(
                "budget_range",
                format!("budget range must satisfy 0 < low <= high < inf, got ({lo}, {hi})"),
            );
        }
        if self.budget_group_size == 0 {
            return err(
                "budget_group_size",
                "budget group must be non-empty".to_string(),
            );
        }
        if self.worker_capacity.is_nan() || self.worker_capacity <= 0.0 {
            return err(
                "worker_capacity",
                format!(
                    "worker_capacity must be positive, got {}",
                    self.worker_capacity
                ),
            );
        }
        if self.task_ttl == 0 {
            return err("task_ttl", "task_ttl must be at least 1".to_string());
        }
        match self.service {
            ServiceModel::Never => {}
            ServiceModel::Fixed { secs } => {
                if !(secs > 0.0 && secs.is_finite()) {
                    return err(
                        "service",
                        format!("service duration must be positive and finite, got {secs}"),
                    );
                }
            }
            ServiceModel::PerTripKm { secs_per_km, .. } => {
                if !(secs_per_km > 0.0 && secs_per_km.is_finite()) {
                    return err(
                        "service",
                        format!("secs_per_km must be positive and finite, got {secs_per_km}"),
                    );
                }
            }
            ServiceModel::Jittered { secs, frac } => {
                if !(secs > 0.0 && secs.is_finite()) {
                    return err(
                        "service",
                        format!("service duration must be positive and finite, got {secs}"),
                    );
                }
                if !(0.0..1.0).contains(&frac) {
                    return err(
                        "service",
                        format!("jitter fraction must lie in [0, 1), got {frac}"),
                    );
                }
            }
        }
        if let Some(h) = self.horizon {
            if !(h > 0.0 && h.is_finite()) {
                return err(
                    "horizon",
                    format!("horizon must be positive and finite, got {h}"),
                );
            }
        }
        if let LedgerMode::Windowed { window_secs } = self.ledger {
            if window_secs.is_nan() || window_secs <= 0.0 {
                return err(
                    "ledger",
                    format!("protection window must be positive, got {window_secs}"),
                );
            }
        }
        if let Some(p) = self.pacing {
            if p.horizon_windows == 0 {
                return err(
                    "pacing",
                    "pacing horizon must be at least 1 window".to_string(),
                );
            }
        }
        if let Some(a) = self.admission {
            if !(a.epsilon_per_task > 0.0 && a.epsilon_per_task.is_finite()) {
                return err(
                    "admission",
                    format!(
                        "epsilon_per_task must be positive and finite, got {}",
                        a.epsilon_per_task
                    ),
                );
            }
        }
        Ok(())
    }
}

/// A rejected [`StreamConfigBuilder::build`]: the offending
/// [`StreamConfig`] field (matching the snapshot layer's
/// `ConfigMismatch { field }` names) and a human-readable reason.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError {
    /// The `StreamConfig` field that failed validation.
    pub field: &'static str,
    /// Why it was rejected.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid StreamConfig.{}: {}", self.field, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`StreamConfig`]; construct via
/// [`StreamConfig::builder`]. Every setter overwrites the
/// corresponding field; [`build`](StreamConfigBuilder::build) checks
/// all invariants at once and names the offending field on failure.
#[derive(Debug, Clone)]
pub struct StreamConfigBuilder {
    cfg: StreamConfig,
}

impl StreamConfigBuilder {
    /// Sets the batching policy.
    pub fn policy(mut self, policy: WindowPolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Sets the algorithm parameters (seed, α, β, accounting, fallback).
    pub fn params(mut self, params: RunParams) -> Self {
        self.cfg.params = params;
        self
    }

    /// Sets the per-pair budget draw range.
    pub fn budget_range(mut self, low: f64, high: f64) -> Self {
        self.cfg.budget_range = (low, high);
        self
    }

    /// Sets the budget vector group size `Z`.
    pub fn budget_group_size(mut self, z: usize) -> Self {
        self.cfg.budget_group_size = z;
        self
    }

    /// Sets the per-worker privacy budget capacity.
    pub fn worker_capacity(mut self, capacity: f64) -> Self {
        self.cfg.worker_capacity = capacity;
        self
    }

    /// Sets the task time-to-live in windows.
    pub fn task_ttl(mut self, ttl: usize) -> Self {
        self.cfg.task_ttl = ttl;
        self
    }

    /// Sets whether warm-start engines carry release history.
    pub fn carry_releases(mut self, carry: bool) -> Self {
        self.cfg.carry_releases = carry;
        self
    }

    /// Sets the service model.
    pub fn service(mut self, service: ServiceModel) -> Self {
        self.cfg.service = service;
        self
    }

    /// Sets the windowing horizon override.
    pub fn horizon(mut self, horizon: Option<f64>) -> Self {
        self.cfg.horizon = horizon;
        self
    }

    /// Sets the halo full-rerun debug knob.
    pub fn halo_full_rerun(mut self, full: bool) -> Self {
        self.cfg.halo_full_rerun = full;
        self
    }

    /// Sets the budget accounting regime.
    pub fn ledger(mut self, ledger: LedgerMode) -> Self {
        self.cfg.ledger = ledger;
        self
    }

    /// Enables budget pacing with the given forecast horizon.
    pub fn pacing(mut self, pacing: Option<PacingConfig>) -> Self {
        self.cfg.pacing = pacing;
        self
    }

    /// Enables admission control with the given per-task cost estimate.
    pub fn admission(mut self, admission: Option<AdmissionConfig>) -> Self {
        self.cfg.admission = admission;
        self
    }

    /// Validates every knob and returns the configuration, or the
    /// first offending field.
    pub fn build(self) -> Result<StreamConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Sums worker `j`'s *novel* releases off his board ledger — the
/// charge both the session stepper (warm boards under re-entry) and
/// the halo coordinator apply, in the same ledger order, so flat and
/// sharded runs accumulate per-worker spend identically. Novel means
/// the release was not yet in `charged`; re-derivations of
/// already-charged releases (reruns, carried history, returned
/// workers) sum to zero. Whole-location releases (Geo-I) are charged
/// once per distinct total spend.
pub(crate) fn novel_ledger_spend(
    board: &dpta_core::Board,
    j: usize,
    wid: u32,
    task_ids: &[u32],
    charged: &mut ReleaseDedup,
) -> f64 {
    use dpta_core::board::LOCATION_RELEASE;
    let mut novel = 0.0;
    for t in board.ledger(j).tasks() {
        if t == LOCATION_RELEASE {
            continue;
        }
        if let Some(set) = board.releases(t as usize, j) {
            for (u, rel) in set.releases().iter().enumerate() {
                if charged.charge_pair(wid, task_ids[t as usize], u as u32) {
                    novel += rel.epsilon;
                }
            }
        }
    }
    let loc = board.ledger(j).spent_on(LOCATION_RELEASE);
    if loc > 0.0 && charged.charge_location(wid, loc.to_bits()) {
        novel += loc;
    }
    novel
}

/// Noise keyed by logical ids: per-window instance indices are
/// translated to the stream's stable ids before hashing, so a pair's
/// draws do not depend on which window (or shard) it is evaluated in.
pub(crate) struct IdStableNoise<'a> {
    pub(crate) base: SeededNoise,
    pub(crate) task_ids: &'a [u32],
    pub(crate) worker_ids: &'a [u32],
}

impl NoiseSource for IdStableNoise<'_> {
    fn noise(&self, task: u32, worker: u32, slot: u32, epsilon: f64) -> f64 {
        // Sentinel keys outside the instance (e.g. the Geo-I engine's
        // whole-location releases keyed by `LOCATION_RELEASE`) pass
        // through untranslated.
        let t = self.task_ids.get(task as usize).copied().unwrap_or(task);
        let w = self
            .worker_ids
            .get(worker as usize)
            .copied()
            .unwrap_or(worker);
        self.base.noise(t, w, slot, epsilon)
    }
}

/// A task waiting to be served.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub(crate) struct PendingTask {
    pub(crate) arrival: TaskArrival,
    /// Windows of participation left before expiry.
    pub(crate) ttl: usize,
}

/// Drives an arrival stream through one assignment engine.
///
/// The driver borrows the engine — engines are immutable `Send + Sync`
/// config holders, so the sharded runner can point many drivers at one
/// boxed engine concurrently.
///
/// This is the batch-shaped convenience over the push-based
/// [`StreamSession`](crate::StreamSession): [`run`](StreamDriver::run)
/// is exactly "push every event, close". Programs that need the
/// event-at-a-time interface (or the typed
/// [`Outcome`](crate::Outcome) log) open the session directly.
///
/// # Examples
///
/// ```
/// use dpta_core::Method;
/// use dpta_stream::{StreamConfig, StreamDriver, StreamScenario, WindowPolicy};
/// use dpta_workloads::{Dataset, Scenario};
///
/// let stream = StreamScenario::new(Scenario {
///     batch_size: 30,
///     n_batches: 2,
///     ..Scenario::for_dataset(Dataset::Uniform)
/// })
/// .stream();
/// let cfg = StreamConfig {
///     policy: WindowPolicy::ByTime { width: 60.0 },
///     ..StreamConfig::default()
/// };
/// let engine = Method::Puce.engine(&cfg.params);
/// let report = StreamDriver::new(engine.as_ref(), cfg).run(&stream);
/// report.assert_conservation();
/// assert!(report.windows.len() > 1);
/// assert!(report.matched() > 0);
/// ```
pub struct StreamDriver<'e> {
    engine: &'e dyn AssignmentEngine,
    cfg: StreamConfig,
}

impl<'e> StreamDriver<'e> {
    /// Creates a driver for `engine` under `cfg`. Panics on degenerate
    /// configuration (zero TTL or an empty budget group).
    pub fn new(engine: &'e dyn AssignmentEngine, cfg: StreamConfig) -> Self {
        assert!(cfg.task_ttl >= 1, "task_ttl must be at least 1");
        assert!(cfg.budget_group_size >= 1, "budget group must be non-empty");
        assert!(
            cfg.worker_capacity > 0.0,
            "worker_capacity must be positive"
        );
        cfg.service.validate();
        StreamDriver { engine, cfg }
    }

    /// The configuration this driver runs under.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Replays the whole stream and returns the aggregate report — a
    /// thin drain loop over [`StreamSession`](crate::StreamSession):
    /// push every event, close. The session runs the adaptive-window
    /// feedback loop internally, so one shape drives all three
    /// policies.
    pub fn run(&self, stream: &ArrivalStream) -> StreamReport {
        let mut session = StreamSession::new(self.engine, self.cfg.clone());
        session.reserve(stream.events().len());
        for e in stream.events() {
            session.push(*e);
        }
        session.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ArrivalEvent, WorkerArrival};
    use crate::metrics::TaskFate;
    use dpta_core::{Method, Task, Worker};
    use dpta_spatial::Point;

    fn tiny_stream() -> ArrivalStream {
        let mut events = Vec::new();
        for k in 0..4u32 {
            events.push(ArrivalEvent::Worker(WorkerArrival {
                id: k,
                time: 0.0,
                worker: Worker::new(Point::new(k as f64, 0.0), 2.0),
            }));
        }
        for k in 0..6u32 {
            events.push(ArrivalEvent::Task(TaskArrival {
                id: k,
                time: 10.0 + 20.0 * k as f64,
                task: Task::new(Point::new((k % 4) as f64, 0.5), 4.5),
            }));
        }
        ArrivalStream::new(events)
    }

    fn tiny_cfg() -> StreamConfig {
        StreamConfig {
            policy: WindowPolicy::ByTime { width: 50.0 },
            ..StreamConfig::default()
        }
    }

    #[test]
    fn drives_multiple_windows_and_conserves_tasks() {
        let cfg = tiny_cfg();
        let engine = Method::Puce.engine(&cfg.params);
        let report = StreamDriver::new(engine.as_ref(), cfg).run(&tiny_stream());
        assert_eq!(report.windows.len(), 3); // horizon 110 s / 50 s
        report.assert_conservation();
        assert!(report.matched() > 0, "PUCE should match something");
        assert_eq!(report.task_arrivals, 6);
        assert_eq!(report.worker_arrivals, 4);
    }

    #[test]
    fn one_shot_engines_run_fresh_each_window() {
        let cfg = tiny_cfg();
        let engine = Method::Grd.engine(&cfg.params);
        let report = StreamDriver::new(engine.as_ref(), cfg).run(&tiny_stream());
        report.assert_conservation();
        assert!(report.matched() > 0);
    }

    #[test]
    fn ttl_expires_unserveable_tasks() {
        // One worker far away from every task: nothing can match, so
        // every task must expire after exactly `task_ttl` windows.
        let events = vec![
            ArrivalEvent::Worker(WorkerArrival {
                id: 0,
                time: 0.0,
                worker: Worker::new(Point::new(500.0, 500.0), 1.0),
            }),
            ArrivalEvent::Task(TaskArrival {
                id: 0,
                time: 5.0,
                task: Task::new(Point::new(0.0, 0.0), 4.5),
            }),
        ];
        let cfg = StreamConfig {
            policy: WindowPolicy::ByTime { width: 10.0 },
            task_ttl: 2,
            horizon: Some(100.0),
            ..StreamConfig::default()
        };
        let engine = Method::Puce.engine(&cfg.params);
        let report = StreamDriver::new(engine.as_ref(), cfg).run(&ArrivalStream::new(events));
        report.assert_conservation();
        assert_eq!(report.matched(), 0);
        assert_eq!(report.expired(), 1);
        // Arrived in window 0, participates in windows 0 and 1, expires
        // at the close of window 1.
        assert_eq!(report.fates[&0], TaskFate::Expired { window: 1 });
    }

    #[test]
    fn capacity_retires_workers() {
        // A worker whose lifetime budget cannot cover even the cheapest
        // release (hard cap: no publication ever) must retire at his
        // first window close — and, being capped, must never publish.
        let mut events = vec![ArrivalEvent::Worker(WorkerArrival {
            id: 0,
            time: 0.0,
            worker: Worker::new(Point::new(0.0, 0.0), 5.0),
        })];
        for k in 0..6u32 {
            events.push(ArrivalEvent::Task(TaskArrival {
                id: k,
                time: 1.0 + k as f64 * 30.0,
                task: Task::new(Point::new(4.9, 0.0), 0.1), // low value: proposals fail
            }));
        }
        let cfg = StreamConfig {
            policy: WindowPolicy::ByTime { width: 30.0 },
            worker_capacity: 0.25, // below one minimum-budget release
            task_ttl: 1,
            ..StreamConfig::default()
        };
        // PDCE publishes regardless of value (distance objective).
        let engine = Method::Pdce.engine(&cfg.params);
        let report = StreamDriver::new(engine.as_ref(), cfg).run(&ArrivalStream::new(events));
        report.assert_conservation();
        assert_eq!(
            report.total_epsilon(),
            0.0,
            "the hard cap must block every release"
        );
        let retired: usize = report.windows.iter().map(|w| w.workers_retired).sum();
        let departed: usize = report.windows.iter().map(|w| w.workers_departed).sum();
        assert_eq!(
            retired + departed,
            1,
            "the worker must leave by retirement or by serving a match"
        );
        if departed == 0 {
            // Once retired, later windows see an empty pool.
            let last = report.windows.last().unwrap();
            assert_eq!(last.workers_available, 0);
        }
    }

    #[test]
    fn identical_republication_is_charged_once() {
        // A Geo-I worker re-publishes the *same* location release every
        // window while a worthless task keeps him unmatched. The repeat
        // is bit-identical (id-keyed noise), reveals nothing new, and
        // must be charged to the lifetime accountant exactly once.
        let events = vec![
            ArrivalEvent::Worker(WorkerArrival {
                id: 0,
                time: 0.0,
                worker: Worker::new(Point::new(0.0, 0.0), 2.0),
            }),
            ArrivalEvent::Task(TaskArrival {
                id: 0,
                time: 5.0,
                // Zero value: the greedy stage never takes the edge, so
                // the task stays pending and the worker stays unmatched.
                task: Task::new(Point::new(1.0, 0.0), 0.0),
            }),
        ];
        let cfg = StreamConfig {
            policy: WindowPolicy::ByTime { width: 10.0 },
            task_ttl: 10,
            horizon: Some(49.0),
            ..StreamConfig::default()
        };
        let engine = Method::GeoI.engine(&cfg.params);
        let report = StreamDriver::new(engine.as_ref(), cfg).run(&ArrivalStream::new(events));
        report.assert_conservation();
        assert_eq!(report.matched(), 0);
        assert!(report.windows.len() >= 5);
        let first = report.windows[0].epsilon_spent;
        assert!(first > 0.0, "the location release must be charged");
        // Every later window re-publishes the identical release: the
        // publication shows up, the charge does not.
        for w in &report.windows[1..] {
            assert_eq!(w.epsilon_spent, 0.0, "window {} re-charged", w.index);
            assert!(w.publications > 0, "window {} did not republish", w.index);
        }
        assert!((report.total_epsilon() - first).abs() < 1e-12);
    }

    #[test]
    fn same_seed_reproduces_the_run() {
        let cfg = tiny_cfg();
        let engine = Method::Pgt.engine(&cfg.params);
        let a = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&tiny_stream());
        let b = StreamDriver::new(engine.as_ref(), cfg).run(&tiny_stream());
        assert_eq!(a.without_timing(), b.without_timing());
    }

    #[test]
    fn carry_can_be_disabled() {
        let cfg = StreamConfig {
            carry_releases: false,
            ..tiny_cfg()
        };
        let engine = Method::Puce.engine(&cfg.params);
        let report = StreamDriver::new(engine.as_ref(), cfg).run(&tiny_stream());
        report.assert_conservation();
    }
}
