//! The online driver: replays an arrival stream window by window
//! through any [`AssignmentEngine`].
//!
//! Each window becomes a PA-TA [`Instance`] of the tasks waiting and
//! the workers on duty; the engine drives it; matched tasks complete,
//! unmatched tasks carry over until their time-to-live runs out, and a
//! [`CumulativeAccountant`] charges every worker's *lifetime* privacy
//! budget, retiring workers the moment it is exhausted. Engines that
//! support warm starts resume from the carried protocol state
//! (releases, consumed budget slots) per the
//! [warm-start contract](AssignmentEngine#warm-start-contract);
//! one-shot engines get a fresh board every window.
//!
//! Determinism: budgets and noise are keyed by the stream's *logical*
//! ids, not per-window indices, so the same seed reproduces the same
//! run bit for bit — and a spatially disjoint shard sees exactly the
//! draws it would see inside the unsharded run.

use crate::event::{ArrivalStream, TaskArrival, WorkerArrival};
use crate::metrics::{
    percentile, StreamReport, TaskFate, WindowCutDecision, WindowFeedback, WindowReport,
};
use crate::window::{Window, WindowPolicy, Windower};
use dpta_core::board::LOCATION_RELEASE;
use dpta_core::metrics::measure;
use dpta_core::{AssignmentEngine, Board, Instance, RunParams};
use dpta_dp::{CumulativeAccountant, NoiseSource, SeededNoise};
use dpta_workloads::budgets::BudgetGen;
use dpta_workloads::Scenario;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// A release already charged to the lifetime accountant:
/// `(worker id, task id, slot, epsilon bits)`. Fresh-board engines
/// re-publish bit-identical releases for pairs still pending from
/// earlier windows (noise and budgets are id-keyed), which reveals
/// nothing new and therefore must not be charged twice. The halo
/// coordinator keys the same dedup across shards and reconciliation
/// passes, so a release is charged once no matter how many shard runs
/// re-derive it.
pub(crate) type ChargeKey = (u32, u32, u32, u64);

/// Configuration of one stream run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// How arrivals are grouped into batches.
    pub policy: WindowPolicy,
    /// Algorithm parameters (seed, α, β, accounting, fallback).
    pub params: RunParams,
    /// Privacy budget draw range for per-pair budget vectors (Table X).
    /// A wrapped scenario's budget settings do not propagate through
    /// [`StreamScenario`](crate::StreamScenario); use
    /// [`StreamConfig::for_scenario`] to inherit them.
    pub budget_range: (f64, f64),
    /// Budget vector group size `Z` (Table X); see
    /// [`StreamConfig::for_scenario`] for scenario inheritance.
    pub budget_group_size: usize,
    /// Lifetime privacy budget per worker; once cumulative published
    /// spend reaches it the worker is retired. `f64::INFINITY` never
    /// retires anyone.
    ///
    /// For warm-start engines with [`carry_releases`] on (the default),
    /// a finite capacity is a *hard* cap: the driver hands the engine a
    /// remaining-budget guard
    /// ([`AssignmentEngine::resume_capped`](dpta_core::AssignmentEngine::resume_capped)),
    /// so proposals whose ε would overshoot the worker's remaining
    /// lifetime budget are skipped mid-window and the recorded spend
    /// never exceeds the capacity. Because a capped worker stops just
    /// short rather than overshooting, retirement fires once his
    /// remaining budget drops below the cheapest possible release
    /// ([`budget_range`](StreamConfig::budget_range)`.0`) — he could
    /// never publish again. Fresh-board drives (one-shot engines, or
    /// `carry_releases = false`) re-publish already-charged releases
    /// the guard cannot tell apart from novel spend, so there the
    /// capacity stays a retirement threshold checked at window close
    /// and the final window may overshoot.
    ///
    /// [`carry_releases`]: StreamConfig::carry_releases
    pub worker_capacity: f64,
    /// Windows a task participates in before it expires (≥ 1).
    pub task_ttl: usize,
    /// Carry release history across windows for warm-start engines.
    /// One-shot engines always start fresh regardless.
    pub carry_releases: bool,
    /// Extend the windowed span to this horizon (used by the sharded
    /// runner so every shard forms the same window sequence).
    pub horizon: Option<f64>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            policy: WindowPolicy::ByTime { width: 600.0 },
            params: RunParams::default(),
            budget_range: (0.5, 1.75),
            budget_group_size: 7,
            worker_capacity: f64::INFINITY,
            task_ttl: 3,
            carry_releases: true,
            horizon: None,
        }
    }
}

impl StreamConfig {
    /// A configuration inheriting `scenario`'s seed and privacy-budget
    /// settings (draw range, group size `Z`), every other knob at its
    /// default.
    ///
    /// The driver draws budget vectors itself, keyed by logical pair —
    /// a [`StreamScenario`](crate::StreamScenario) contributes only
    /// locations, values and radii, so the wrapped scenario's budget
    /// fields do **not** ride along on the stream. Build the config
    /// with this constructor when a scenario sweeps them.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpta_stream::StreamConfig;
    /// use dpta_workloads::Scenario;
    ///
    /// let scenario = Scenario {
    ///     budget_range: (1.0, 3.0),
    ///     budget_group_size: 5,
    ///     seed: 7,
    ///     ..Scenario::default()
    /// };
    /// let cfg = StreamConfig::for_scenario(&scenario);
    /// assert_eq!(cfg.budget_range, (1.0, 3.0));
    /// assert_eq!(cfg.budget_group_size, 5);
    /// assert_eq!(cfg.params.seed, 7);
    /// ```
    pub fn for_scenario(scenario: &Scenario) -> StreamConfig {
        StreamConfig {
            params: RunParams::with_seed(scenario.seed),
            budget_range: scenario.budget_range,
            budget_group_size: scenario.budget_group_size,
            ..StreamConfig::default()
        }
    }
}

/// Noise keyed by logical ids: per-window instance indices are
/// translated to the stream's stable ids before hashing, so a pair's
/// draws do not depend on which window (or shard) it is evaluated in.
pub(crate) struct IdStableNoise<'a> {
    pub(crate) base: SeededNoise,
    pub(crate) task_ids: &'a [u32],
    pub(crate) worker_ids: &'a [u32],
}

impl NoiseSource for IdStableNoise<'_> {
    fn noise(&self, task: u32, worker: u32, slot: u32, epsilon: f64) -> f64 {
        // Sentinel keys outside the instance (e.g. the Geo-I engine's
        // whole-location releases keyed by `LOCATION_RELEASE`) pass
        // through untranslated.
        let t = self.task_ids.get(task as usize).copied().unwrap_or(task);
        let w = self
            .worker_ids
            .get(worker as usize)
            .copied()
            .unwrap_or(worker);
        self.base.noise(t, w, slot, epsilon)
    }
}

/// A task waiting to be served.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingTask {
    pub(crate) arrival: TaskArrival,
    /// Windows of participation left before expiry.
    pub(crate) ttl: usize,
}

/// The protocol state carried between windows for warm-start engines.
struct CarriedBoard {
    board: Board,
    task_ids: Vec<u32>,
    worker_ids: Vec<u32>,
}

/// Drives an arrival stream through one assignment engine.
///
/// The driver borrows the engine — engines are immutable `Send + Sync`
/// config holders, so the sharded runner can point many drivers at one
/// boxed engine concurrently.
///
/// # Examples
///
/// ```
/// use dpta_core::Method;
/// use dpta_stream::{StreamConfig, StreamDriver, StreamScenario, WindowPolicy};
/// use dpta_workloads::{Dataset, Scenario};
///
/// let stream = StreamScenario::new(Scenario {
///     batch_size: 30,
///     n_batches: 2,
///     ..Scenario::for_dataset(Dataset::Uniform)
/// })
/// .stream();
/// let cfg = StreamConfig {
///     policy: WindowPolicy::ByTime { width: 60.0 },
///     ..StreamConfig::default()
/// };
/// let engine = Method::Puce.engine(&cfg.params);
/// let report = StreamDriver::new(engine.as_ref(), cfg).run(&stream);
/// report.assert_conservation();
/// assert!(report.windows.len() > 1);
/// assert!(report.matched() > 0);
/// ```
pub struct StreamDriver<'e> {
    engine: &'e dyn AssignmentEngine,
    cfg: StreamConfig,
}

impl<'e> StreamDriver<'e> {
    /// Creates a driver for `engine` under `cfg`. Panics on degenerate
    /// configuration (zero TTL or an empty budget group).
    pub fn new(engine: &'e dyn AssignmentEngine, cfg: StreamConfig) -> Self {
        assert!(cfg.task_ttl >= 1, "task_ttl must be at least 1");
        assert!(cfg.budget_group_size >= 1, "budget group must be non-empty");
        assert!(
            cfg.worker_capacity > 0.0,
            "worker_capacity must be positive"
        );
        StreamDriver { engine, cfg }
    }

    /// The configuration this driver runs under.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Replays the whole stream and returns the aggregate report.
    ///
    /// This is the feedback loop the adaptive window policy rides on:
    /// the [`Windower`] forms the next window, the session drives it,
    /// and the realized stream state (task waiting ages, backlog, pool
    /// size) is observed back into the controller before the next cut.
    /// Static policies ignore the feedback, so one loop drives all
    /// three policies.
    pub fn run(&self, stream: &ArrivalStream) -> StreamReport {
        let mut former = Windower::new(self.cfg.policy, stream, self.cfg.horizon);
        let mut session = Session::new(self.engine, self.cfg.clone());
        while let Some(window) = former.next_window() {
            let signals = session.step(&window, former.last_decision());
            if former.needs_feedback() {
                former.observe(&StepSignals::merge(std::slice::from_ref(&signals)));
            }
        }
        session.finish(stream.n_tasks(), stream.n_workers())
    }
}

/// One window's stream-observable signals, handed back to the adaptive
/// window controller after the window settles. The sharded runners
/// merge one per shard into a single global [`WindowFeedback`], which
/// is what keeps adaptive cuts identical across flat, drop-pairs and
/// halo execution.
pub(crate) struct StepSignals {
    /// Seconds from arrival to window close of every task present in
    /// the window (matched, expired and carried alike).
    pub(crate) ages: Vec<f64>,
    /// Unserved tasks carried out of the window.
    pub(crate) backlog: usize,
    /// Workers on duty after the window settled.
    pub(crate) pool: usize,
}

impl StepSignals {
    /// Merges per-shard signals into the global controller feedback.
    /// The percentile sorts, so shard order never affects the merge —
    /// concatenating shard age vectors reproduces the flat run's
    /// feedback exactly on shard-disjoint input.
    pub(crate) fn merge(signals: &[StepSignals]) -> WindowFeedback {
        let ages: Vec<f64> = signals
            .iter()
            .flat_map(|s| s.ages.iter().copied())
            .collect();
        WindowFeedback {
            p95_age: percentile(&ages, 0.95),
            backlog: signals.iter().map(|s| s.backlog).sum(),
            pool: signals.iter().map(|s| s.pool).sum(),
        }
    }
}

/// The mutable state of one driven stream: pool, pending tasks,
/// lifetime accounting and carried protocol state, stepped one window
/// at a time. [`StreamDriver::run`] wraps it for whole-stream replay;
/// the sharded runner steps one session per shard in lockstep so a
/// single adaptive controller can window every shard identically.
pub(crate) struct Session<'e> {
    engine: &'e dyn AssignmentEngine,
    cfg: StreamConfig,
    warm: bool,
    budget_gen: BudgetGen,
    pool: Vec<WorkerArrival>,
    pending: Vec<PendingTask>,
    accountant: CumulativeAccountant,
    carried: Option<CarriedBoard>,
    charged: BTreeSet<ChargeKey>,
    fates: BTreeMap<u32, TaskFate>,
    spend_by_worker: BTreeMap<u32, f64>,
    reports: Vec<WindowReport>,
}

impl<'e> Session<'e> {
    /// A fresh session for `engine` under `cfg`.
    pub(crate) fn new(engine: &'e dyn AssignmentEngine, cfg: StreamConfig) -> Self {
        let warm = cfg.carry_releases && engine.supports_warm_start();
        let budget_gen = BudgetGen::new(
            cfg.params.seed ^ 0x5712_EA11,
            0,
            cfg.budget_range,
            cfg.budget_group_size,
        );
        Session {
            engine,
            cfg,
            warm,
            budget_gen,
            pool: Vec::new(),
            pending: Vec::new(),
            accountant: CumulativeAccountant::new(),
            carried: None,
            charged: BTreeSet::new(),
            fates: BTreeMap::new(),
            spend_by_worker: BTreeMap::new(),
            reports: Vec::new(),
        }
    }

    /// Settles remaining fates and assembles the aggregate report.
    pub(crate) fn finish(mut self, task_arrivals: usize, worker_arrivals: usize) -> StreamReport {
        for p in &self.pending {
            self.fates.insert(p.arrival.id, TaskFate::Pending);
        }
        StreamReport {
            engine: self.engine.name().to_string(),
            windows: self.reports,
            fates: self.fates,
            task_arrivals,
            worker_arrivals,
            spend_by_worker: self.spend_by_worker,
            warnings: Vec::new(),
        }
    }

    /// One window: admit arrivals, drive the engine, settle fates.
    /// Returns the window's stream-observable signals for the adaptive
    /// controller.
    pub(crate) fn step(&mut self, window: &Window, cut: WindowCutDecision) -> StepSignals {
        let warm = self.warm;
        for w in &window.workers {
            self.accountant
                .register(u64::from(w.id), self.cfg.worker_capacity);
            self.pool.push(*w);
        }
        self.pending
            .extend(window.tasks.iter().map(|&arrival| PendingTask {
                arrival,
                ttl: self.cfg.task_ttl,
            }));
        let (pool, pending) = (&mut self.pool, &mut self.pending);
        let (accountant, carried) = (&mut self.accountant, &mut self.carried);
        let (charged, fates) = (&mut self.charged, &mut self.fates);
        let spend_by_worker = &mut self.spend_by_worker;
        let budget_gen = &self.budget_gen;

        // Observed stream state at window close: how long every task
        // present has been waiting. Matched or not, the formula is the
        // same — it is the age the window width controls. Only the
        // adaptive controller consumes it, so static-policy runs skip
        // the per-window allocation entirely.
        let ages: Vec<f64> = if matches!(self.cfg.policy, WindowPolicy::Adaptive(_)) {
            pending
                .iter()
                .map(|p| window.end - p.arrival.time)
                .collect()
        } else {
            Vec::new()
        };

        let mut report = WindowReport {
            index: window.index,
            start: window.start,
            end: window.end,
            tasks_arrived: window.tasks.len(),
            carried_in: pending.len() - window.tasks.len(),
            workers_available: pool.len(),
            matched: 0,
            expired: 0,
            carried_out: 0,
            utility: 0.0,
            distance: 0.0,
            epsilon_spent: 0.0,
            publications: 0,
            rounds: 0,
            drive_time: std::time::Duration::ZERO,
            workers_retired: 0,
            workers_departed: 0,
            cut,
        };

        let mut matched_tasks: Vec<(usize, u32)> = Vec::new(); // (pending idx, worker id)
        if !pending.is_empty() && !pool.is_empty() {
            let task_ids: Vec<u32> = pending.iter().map(|p| p.arrival.id).collect();
            let worker_ids: Vec<u32> = pool.iter().map(|w| w.id).collect();
            let inst = Instance::from_locations(
                pending.iter().map(|p| p.arrival.task).collect(),
                pool.iter().map(|w| w.worker).collect(),
                |i, j| budget_gen.vector(task_ids[i] as usize, worker_ids[j] as usize),
            );
            let noise = IdStableNoise {
                base: SeededNoise::new(self.cfg.params.seed),
                task_ids: &task_ids,
                worker_ids: &worker_ids,
            };

            let board = match carried.take() {
                Some(prev) if warm => {
                    let task_to_new: BTreeMap<u32, usize> = task_ids
                        .iter()
                        .enumerate()
                        .map(|(i, &id)| (id, i))
                        .collect();
                    let worker_to_new: BTreeMap<u32, usize> = worker_ids
                        .iter()
                        .enumerate()
                        .map(|(j, &id)| (id, j))
                        .collect();
                    prev.board.carry(
                        inst.n_tasks(),
                        inst.n_workers(),
                        |t_old| task_to_new.get(&prev.task_ids[t_old]).copied(),
                        |j_old| worker_to_new.get(&prev.worker_ids[j_old]).copied(),
                    )
                }
                _ => Board::new(inst.n_tasks(), inst.n_workers()),
            };
            let pre_spend: Vec<f64> = (0..inst.n_workers())
                .map(|j| board.spent_total(j))
                .collect();
            let pre_pubs = board.publications();

            // With a finite lifetime capacity, warm drives run under
            // the engine-level remaining-budget hook: every proposal
            // whose ε would overshoot the worker's remaining lifetime
            // budget is skipped, so the cap is exact rather than
            // retire-at-window-close. (Fresh-board drives re-publish
            // already-charged releases the hook cannot distinguish from
            // novel spend, so they keep the window-close semantics.)
            let guard: Option<Vec<f64>> =
                (warm && self.cfg.worker_capacity.is_finite()).then(|| {
                    pool.iter()
                        .map(|w| accountant.remaining(u64::from(w.id)))
                        .collect()
                });

            let start = Instant::now();
            let outcome = if self.engine.supports_warm_start() {
                match &guard {
                    Some(g) => self.engine.resume_capped(&inst, board, &noise, g),
                    None => self.engine.resume(&inst, board, &noise),
                }
            } else {
                // One-shot engines require (and here always get) a
                // fresh board.
                let mut board = board;
                self.engine.assign(&inst, &mut board, &noise)
            };
            report.drive_time = start.elapsed();

            if warm {
                // A carried board never re-publishes (slots only
                // advance), so the spend delta is exactly the novel
                // information released this window.
                for (j, w) in pool.iter().enumerate() {
                    let delta = (outcome.board.spent_total(j) - pre_spend[j]).max(0.0);
                    accountant.charge(u64::from(w.id), delta);
                    report.epsilon_spent += delta;
                    if delta > 0.0 {
                        *spend_by_worker.entry(w.id).or_insert(0.0) += delta;
                    }
                }
            } else {
                // Fresh boards re-publish for pairs still pending from
                // earlier windows. Under id-keyed noise and budgets the
                // repeat is bit-identical to the original release —
                // zero new information — so each distinct release is
                // charged exactly once over the stream's lifetime.
                for (j, &wid) in worker_ids.iter().enumerate() {
                    let mut novel = 0.0;
                    for &i in inst.reach(j) {
                        if let Some(set) = outcome.board.releases(i, j) {
                            for (u, rel) in set.releases().iter().enumerate() {
                                if charged.insert((
                                    wid,
                                    task_ids[i],
                                    u as u32,
                                    rel.epsilon.to_bits(),
                                )) {
                                    novel += rel.epsilon;
                                }
                            }
                        }
                    }
                    // Whole-location releases (Geo-I) appear only on
                    // the ledger, one per drive.
                    let loc = outcome.board.ledger(j).spent_on(LOCATION_RELEASE);
                    if loc > 0.0 && charged.insert((wid, LOCATION_RELEASE, u32::MAX, loc.to_bits()))
                    {
                        novel += loc;
                    }
                    accountant.charge(u64::from(wid), novel);
                    report.epsilon_spent += novel;
                    if novel > 0.0 {
                        *spend_by_worker.entry(wid).or_insert(0.0) += novel;
                    }
                }
            }
            let m = measure(
                &inst,
                &outcome,
                self.cfg.params.alpha,
                self.cfg.params.beta,
                self.engine.accounts_privacy(),
            );
            report.matched = m.matched;
            report.utility = m.total_utility;
            report.distance = m.total_distance;
            report.rounds = outcome.rounds;
            report.publications = outcome.board.publications() - pre_pubs;

            for (i, j) in outcome.assignment.pairs() {
                let worker_id = worker_ids[j];
                fates.insert(
                    task_ids[i],
                    TaskFate::Assigned {
                        window: window.index,
                        worker: worker_id,
                        latency: window.end - pending[i].arrival.time,
                    },
                );
                matched_tasks.push((i, worker_id));
            }

            if warm {
                *carried = Some(CarriedBoard {
                    board: outcome.board,
                    task_ids,
                    worker_ids,
                });
            }
        }

        // Settle the pool: matched workers depart to serve, exhausted
        // workers retire.
        let departed: BTreeSet<u32> = matched_tasks.iter().map(|&(_, w)| w).collect();
        for &id in &departed {
            accountant.forget(u64::from(id));
        }
        report.workers_departed = departed.len();
        let mut retired: BTreeSet<u64> = accountant.drain_exhausted().into_iter().collect();
        if warm && self.cfg.worker_capacity.is_finite() {
            // Hard-cap mode never overshoots, so spend rarely reaches
            // the capacity exactly; instead a worker is effectively
            // exhausted once his remaining budget cannot cover even the
            // cheapest possible release (the draw range's lower bound).
            for w in pool.iter() {
                let id = u64::from(w.id);
                if !departed.contains(&w.id)
                    && !retired.contains(&id)
                    && accountant.remaining(id) + 1e-12 < self.cfg.budget_range.0
                {
                    accountant.forget(id);
                    retired.insert(id);
                }
            }
        }
        report.workers_retired = retired.len();
        pool.retain(|w| !departed.contains(&w.id) && !retired.contains(&u64::from(w.id)));

        // Settle the tasks: matched leave, survivors age, the too-old
        // expire.
        let mut matched_mask = vec![false; pending.len()];
        for &(i, _) in &matched_tasks {
            matched_mask[i] = true;
        }
        let mut next_pending = Vec::with_capacity(pending.len());
        for (i, mut p) in pending.drain(..).enumerate() {
            if matched_mask[i] {
                continue;
            }
            p.ttl -= 1;
            if p.ttl == 0 {
                fates.insert(
                    p.arrival.id,
                    TaskFate::Expired {
                        window: window.index,
                    },
                );
                report.expired += 1;
            } else {
                next_pending.push(p);
            }
        }
        *pending = next_pending;
        report.carried_out = pending.len();
        let signals = StepSignals {
            ages,
            backlog: pending.len(),
            pool: pool.len(),
        };
        self.reports.push(report);
        signals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ArrivalEvent;
    use dpta_core::{Method, Task, Worker};
    use dpta_spatial::Point;

    fn tiny_stream() -> ArrivalStream {
        let mut events = Vec::new();
        for k in 0..4u32 {
            events.push(ArrivalEvent::Worker(WorkerArrival {
                id: k,
                time: 0.0,
                worker: Worker::new(Point::new(k as f64, 0.0), 2.0),
            }));
        }
        for k in 0..6u32 {
            events.push(ArrivalEvent::Task(TaskArrival {
                id: k,
                time: 10.0 + 20.0 * k as f64,
                task: Task::new(Point::new((k % 4) as f64, 0.5), 4.5),
            }));
        }
        ArrivalStream::new(events)
    }

    fn tiny_cfg() -> StreamConfig {
        StreamConfig {
            policy: WindowPolicy::ByTime { width: 50.0 },
            ..StreamConfig::default()
        }
    }

    #[test]
    fn drives_multiple_windows_and_conserves_tasks() {
        let cfg = tiny_cfg();
        let engine = Method::Puce.engine(&cfg.params);
        let report = StreamDriver::new(engine.as_ref(), cfg).run(&tiny_stream());
        assert_eq!(report.windows.len(), 3); // horizon 110 s / 50 s
        report.assert_conservation();
        assert!(report.matched() > 0, "PUCE should match something");
        assert_eq!(report.task_arrivals, 6);
        assert_eq!(report.worker_arrivals, 4);
    }

    #[test]
    fn one_shot_engines_run_fresh_each_window() {
        let cfg = tiny_cfg();
        let engine = Method::Grd.engine(&cfg.params);
        let report = StreamDriver::new(engine.as_ref(), cfg).run(&tiny_stream());
        report.assert_conservation();
        assert!(report.matched() > 0);
    }

    #[test]
    fn ttl_expires_unserveable_tasks() {
        // One worker far away from every task: nothing can match, so
        // every task must expire after exactly `task_ttl` windows.
        let events = vec![
            ArrivalEvent::Worker(WorkerArrival {
                id: 0,
                time: 0.0,
                worker: Worker::new(Point::new(500.0, 500.0), 1.0),
            }),
            ArrivalEvent::Task(TaskArrival {
                id: 0,
                time: 5.0,
                task: Task::new(Point::new(0.0, 0.0), 4.5),
            }),
        ];
        let cfg = StreamConfig {
            policy: WindowPolicy::ByTime { width: 10.0 },
            task_ttl: 2,
            horizon: Some(100.0),
            ..StreamConfig::default()
        };
        let engine = Method::Puce.engine(&cfg.params);
        let report = StreamDriver::new(engine.as_ref(), cfg).run(&ArrivalStream::new(events));
        report.assert_conservation();
        assert_eq!(report.matched(), 0);
        assert_eq!(report.expired(), 1);
        // Arrived in window 0, participates in windows 0 and 1, expires
        // at the close of window 1.
        assert_eq!(report.fates[&0], TaskFate::Expired { window: 1 });
    }

    #[test]
    fn capacity_retires_workers() {
        // A worker whose lifetime budget cannot cover even the cheapest
        // release (hard cap: no publication ever) must retire at his
        // first window close — and, being capped, must never publish.
        let mut events = vec![ArrivalEvent::Worker(WorkerArrival {
            id: 0,
            time: 0.0,
            worker: Worker::new(Point::new(0.0, 0.0), 5.0),
        })];
        for k in 0..6u32 {
            events.push(ArrivalEvent::Task(TaskArrival {
                id: k,
                time: 1.0 + k as f64 * 30.0,
                task: Task::new(Point::new(4.9, 0.0), 0.1), // low value: proposals fail
            }));
        }
        let cfg = StreamConfig {
            policy: WindowPolicy::ByTime { width: 30.0 },
            worker_capacity: 0.25, // below one minimum-budget release
            task_ttl: 1,
            ..StreamConfig::default()
        };
        // PDCE publishes regardless of value (distance objective).
        let engine = Method::Pdce.engine(&cfg.params);
        let report = StreamDriver::new(engine.as_ref(), cfg).run(&ArrivalStream::new(events));
        report.assert_conservation();
        assert_eq!(
            report.total_epsilon(),
            0.0,
            "the hard cap must block every release"
        );
        let retired: usize = report.windows.iter().map(|w| w.workers_retired).sum();
        let departed: usize = report.windows.iter().map(|w| w.workers_departed).sum();
        assert_eq!(
            retired + departed,
            1,
            "the worker must leave by retirement or by serving a match"
        );
        if departed == 0 {
            // Once retired, later windows see an empty pool.
            let last = report.windows.last().unwrap();
            assert_eq!(last.workers_available, 0);
        }
    }

    #[test]
    fn identical_republication_is_charged_once() {
        // A Geo-I worker re-publishes the *same* location release every
        // window while a worthless task keeps him unmatched. The repeat
        // is bit-identical (id-keyed noise), reveals nothing new, and
        // must be charged to the lifetime accountant exactly once.
        let events = vec![
            ArrivalEvent::Worker(WorkerArrival {
                id: 0,
                time: 0.0,
                worker: Worker::new(Point::new(0.0, 0.0), 2.0),
            }),
            ArrivalEvent::Task(TaskArrival {
                id: 0,
                time: 5.0,
                // Zero value: the greedy stage never takes the edge, so
                // the task stays pending and the worker stays unmatched.
                task: Task::new(Point::new(1.0, 0.0), 0.0),
            }),
        ];
        let cfg = StreamConfig {
            policy: WindowPolicy::ByTime { width: 10.0 },
            task_ttl: 10,
            horizon: Some(49.0),
            ..StreamConfig::default()
        };
        let engine = Method::GeoI.engine(&cfg.params);
        let report = StreamDriver::new(engine.as_ref(), cfg).run(&ArrivalStream::new(events));
        report.assert_conservation();
        assert_eq!(report.matched(), 0);
        assert!(report.windows.len() >= 5);
        let first = report.windows[0].epsilon_spent;
        assert!(first > 0.0, "the location release must be charged");
        // Every later window re-publishes the identical release: the
        // publication shows up, the charge does not.
        for w in &report.windows[1..] {
            assert_eq!(w.epsilon_spent, 0.0, "window {} re-charged", w.index);
            assert!(w.publications > 0, "window {} did not republish", w.index);
        }
        assert!((report.total_epsilon() - first).abs() < 1e-12);
    }

    #[test]
    fn same_seed_reproduces_the_run() {
        let cfg = tiny_cfg();
        let engine = Method::Pgt.engine(&cfg.params);
        let a = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&tiny_stream());
        let b = StreamDriver::new(engine.as_ref(), cfg).run(&tiny_stream());
        assert_eq!(a.without_timing(), b.without_timing());
    }

    #[test]
    fn carry_can_be_disabled() {
        let cfg = StreamConfig {
            carry_releases: false,
            ..tiny_cfg()
        };
        let engine = Method::Puce.engine(&cfg.params);
        let report = StreamDriver::new(engine.as_ref(), cfg).run(&tiny_stream());
        report.assert_conservation();
    }
}
