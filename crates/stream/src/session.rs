//! The push-based session API — the primary interface of the online
//! pipeline — plus worker re-entry.
//!
//! [`StreamDriver::run`](crate::StreamDriver::run) is batch-shaped: it
//! consumes a pre-built [`ArrivalStream`](crate::ArrivalStream) and
//! drains it to completion. A production dispatch loop is not like
//! that — events arrive one at a time, time advances, and the caller
//! wants to *see* what the pipeline decided. [`StreamSession`] is that
//! interface:
//!
//! * [`push`](StreamSession::push) — feed one arrival event;
//! * [`advance_to`](StreamSession::advance_to) — declare the event-time
//!   watermark; every window that closes before it is formed and
//!   driven;
//! * [`poll_outcomes`](StreamSession::poll_outcomes) — drain the typed
//!   [`Outcome`] log (assignments, expiries, retirements, service
//!   departures, **worker returns**);
//! * [`close`](StreamSession::close) — drive the remaining windows and
//!   settle the aggregate [`StreamReport`](crate::StreamReport).
//!
//! `StreamDriver::run`, `run_sharded` and `run_sharded_halo` are thin
//! drain loops over the same stepper ([`SessionCore`]), so every
//! driving mode shares one set of window/budget/fate semantics.
//!
//! # Worker re-entry
//!
//! A [`ServiceModel`] gives matched workers a *service duration*:
//! instead of departing for good (`ServiceModel::Never`, the
//! serve-and-leave default), a matched worker is held in an in-service
//! set and re-enters the pool at his completion time — with the same
//! logical id, so lifetime budgets
//! ([`CumulativeAccountant`](dpta_dp::CumulativeAccountant)), hard
//! caps and replay determinism all carry across service cycles.
//! Durations are pure functions of the match (pickup distance, task
//! value), never wall-clock time, so re-entry preserves bit-for-bit
//! replay and the flat/drop-pairs/halo equivalence gates.

use crate::driver::{novel_ledger_spend, IdStableNoise, PendingTask, ReleaseDedup, StreamConfig};
use crate::event::{ArrivalEvent, WorkerArrival};
use crate::metrics::{
    percentile, StreamReport, TaskFate, WindowCutDecision, WindowFeedback, WindowReport,
};
use crate::snapshot::{SessionSnapshot, SnapshotError, SNAPSHOT_VERSION};
use crate::window::{AdaptiveController, ControllerState, Window, WindowPolicy, MAX_WINDOWS};
use dpta_core::board::LOCATION_RELEASE;
use dpta_core::metrics::measure;
use dpta_core::{AssignmentEngine, Board, DeltaInstance};
use dpta_dp::{AccountId, BudgetLedger, FastMap, Interner, LedgerState, SeededNoise};
use dpta_workloads::budgets::BudgetGen;
use dpta_workloads::ValueModel;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Instant;

/// How long a matched worker is held in service before re-entering the
/// pool.
///
/// Durations are deterministic functions of the match — pickup distance
/// and task value — never wall-clock time, so enabling re-entry keeps
/// every replay and sharding gate bit-for-bit. `Never` reproduces the
/// pre-session serve-and-leave pipeline exactly.
///
/// # Examples
///
/// ```
/// use dpta_stream::ServiceModel;
/// use dpta_workloads::ValueModel;
///
/// assert_eq!(ServiceModel::Never.duration(2.0, 4.5), None);
/// assert_eq!(ServiceModel::Fixed { secs: 300.0 }.duration(2.0, 4.5), Some(300.0));
/// // Trip-length service: pickup leg + the trip the task value encodes
/// // (value = base + per_km · trip ⇒ trip = 5 km here), at 90 s/km.
/// let model = ServiceModel::PerTripKm {
///     value_model: ValueModel::PerTripKm { base: 2.0, per_km: 0.8 },
///     secs_per_km: 90.0,
/// };
/// assert_eq!(model.duration(1.0, 6.0), Some(90.0 * 6.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ServiceModel {
    /// Serve-and-leave: a matched worker departs for good. This is the
    /// pre-re-entry pipeline, bit for bit.
    #[default]
    Never,
    /// Every service takes the same fixed duration (seconds).
    Fixed {
        /// Service duration in seconds (positive, finite).
        secs: f64,
    },
    /// Travel-time service: `secs_per_km × (pickup distance + trip
    /// length)`, where the trip length is decoded from the task's value
    /// via [`ValueModel::trip_km`] — the Chengdu simulator's trips ride
    /// along on `ValueModel::PerTripKm` pricing, and constant-value
    /// tasks contribute only the pickup leg.
    PerTripKm {
        /// The pricing model the task values were generated under.
        value_model: ValueModel,
        /// Travel seconds per kilometre (positive, finite).
        secs_per_km: f64,
    },
    /// Fixed mean duration with deterministic multiplicative jitter: a
    /// match's service time is `secs · m` where the multiplier
    /// `m ∈ [1 − frac, 1 + frac]` is hashed from the run seed and the
    /// matched pair's *logical* ids. Same seed, same pair → same draw,
    /// in every window, shard and replay — stochastic-looking service
    /// times that keep the bit-for-bit gates intact (pinned by the
    /// replay-determinism test).
    Jittered {
        /// Mean service duration in seconds (positive, finite).
        secs: f64,
        /// Jitter half-width as a fraction of `secs`, in `[0, 1)`.
        /// Zero degenerates to [`ServiceModel::Fixed`].
        frac: f64,
    },
}

impl ServiceModel {
    /// The service duration of one match, or `None` when matched
    /// workers depart for good. `pickup_km` is the worker→task
    /// distance, `task_value` the matched task's value.
    pub fn duration(&self, pickup_km: f64, task_value: f64) -> Option<f64> {
        match *self {
            ServiceModel::Never => None,
            ServiceModel::Fixed { secs } => Some(secs),
            ServiceModel::PerTripKm {
                value_model,
                secs_per_km,
            } => Some(secs_per_km * (pickup_km + value_model.trip_km(task_value))),
            // The unkeyed view reports the mean; the pipeline draws via
            // `duration_keyed`.
            ServiceModel::Jittered { secs, .. } => Some(secs),
        }
    }

    /// The service duration of one *specific* match, keyed by the
    /// pair's logical ids and the run seed — the call the session
    /// stepper and halo coordinator make. Deterministic: the same
    /// (seed, worker, task) always draws the same duration, so replays
    /// and sharded runs agree bit for bit. Non-jittered variants
    /// ignore the key and defer to [`duration`](ServiceModel::duration).
    pub fn duration_keyed(
        &self,
        pickup_km: f64,
        task_value: f64,
        worker: u32,
        task: u32,
        seed: u64,
    ) -> Option<f64> {
        match *self {
            ServiceModel::Jittered { secs, frac } => {
                if frac == 0.0 {
                    return Some(secs);
                }
                let unit = jitter_unit(seed, worker, task);
                Some(secs * (1.0 + frac * (2.0 * unit - 1.0)))
            }
            _ => self.duration(pickup_km, task_value),
        }
    }

    /// Whether matched workers re-enter the pool at all.
    pub fn reenters(&self) -> bool {
        !matches!(self, ServiceModel::Never)
    }

    pub(crate) fn validate(&self) {
        match *self {
            ServiceModel::Never => {}
            ServiceModel::Fixed { secs } => assert!(
                secs > 0.0 && secs.is_finite(),
                "service duration must be positive and finite, got {secs}"
            ),
            ServiceModel::PerTripKm { secs_per_km, .. } => assert!(
                secs_per_km > 0.0 && secs_per_km.is_finite(),
                "secs_per_km must be positive and finite, got {secs_per_km}"
            ),
            ServiceModel::Jittered { secs, frac } => {
                assert!(
                    secs > 0.0 && secs.is_finite(),
                    "service duration must be positive and finite, got {secs}"
                );
                assert!(
                    (0.0..1.0).contains(&frac),
                    "jitter fraction must lie in [0, 1), got {frac}"
                );
            }
        }
    }
}

/// A uniform draw in `[0, 1)` hashed from `(seed, worker, task)` — the
/// service-jitter analog of the budget/noise derivations: a pure
/// function of logical ids, never of window indices or wall clocks.
fn jitter_unit(seed: u64, worker: u32, task: u32) -> f64 {
    // splitmix64 finalizer over the salted key; the salt keeps the
    // stream independent of the budget and noise derivations that hash
    // the same ids.
    const SALT: u64 = 0x9e2a_57f3_11c8_46d1;
    let mut x = seed ^ SALT ^ ((worker as u64) << 32) ^ (task as u64).rotate_left(17);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// One typed event of the session's outcome log, drained via
/// [`StreamSession::poll_outcomes`]. Everything the per-window reports
/// aggregate is emitted here first, as it happens.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// A task was matched to a worker.
    Assigned {
        /// Logical task id.
        task: u32,
        /// Logical worker id.
        worker: u32,
        /// Window in which the match happened.
        window: usize,
        /// Seconds from task arrival to the matching window's close.
        latency: f64,
    },
    /// A task was dropped unserved (time-to-live exhausted).
    Expired {
        /// Logical task id.
        task: u32,
        /// Window after which the task was dropped.
        window: usize,
    },
    /// A worker's lifetime privacy budget ran out; he left the system.
    Retired {
        /// Logical worker id.
        worker: u32,
        /// Window at whose close the retirement fired.
        window: usize,
    },
    /// A matched worker left the pool to serve.
    EnteredService {
        /// Logical worker id.
        worker: u32,
        /// Window in which the match happened.
        window: usize,
        /// When the worker re-enters the pool, or `None` under
        /// [`ServiceModel::Never`] (departs for good).
        returns_at: Option<f64>,
    },
    /// A worker completed a service cycle and re-entered the pool.
    Returned {
        /// Logical worker id.
        worker: u32,
        /// Window that re-admitted the worker.
        window: usize,
        /// Completion time (seconds) at which the worker came free.
        at: f64,
        /// Completed service cycles so far (1 on the first return).
        cycle: usize,
    },
    /// Admission control held a task out of the window: the pool's
    /// aggregate remaining budget could not have served the backlog, so
    /// the task waits (burning no time-to-live) and is admitted into a
    /// later window once budget frees up. Emitted once, at the first
    /// deferral; re-deferrals of an already-waiting task are silent.
    Deferred {
        /// Logical task id.
        task: u32,
        /// Window that declined the admission.
        window: usize,
    },
}

/// One worker held out of the pool while serving a match.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub(crate) struct InService {
    return_time: f64,
    cycle: usize,
    worker: WorkerArrival,
}

/// The protocol state carried between windows for warm-start engines.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct CarriedBoard {
    board: Board,
    task_ids: Vec<u32>,
    worker_ids: Vec<u32>,
}

/// One window's stream-observable signals, handed back to the adaptive
/// window controller after the window settles. The sharded runners
/// merge one per shard into a single global [`WindowFeedback`], which
/// is what keeps adaptive cuts identical across flat, drop-pairs and
/// halo execution.
pub(crate) struct StepSignals {
    /// Seconds from arrival to window close of every task present in
    /// the window (matched, expired and carried alike).
    pub(crate) ages: Vec<f64>,
    /// Unserved tasks carried out of the window.
    pub(crate) backlog: usize,
    /// Workers on duty after the window settled.
    pub(crate) pool: usize,
}

impl StepSignals {
    /// Merges per-shard signals into the global controller feedback.
    /// The percentile sorts, so shard order never affects the merge —
    /// concatenating shard age vectors reproduces the flat run's
    /// feedback exactly on shard-disjoint input.
    pub(crate) fn merge(signals: &[StepSignals]) -> WindowFeedback {
        let ages: Vec<f64> = signals
            .iter()
            .flat_map(|s| s.ages.iter().copied())
            .collect();
        WindowFeedback {
            p95_age: percentile(&ages, 0.95),
            backlog: signals.iter().map(|s| s.backlog).sum(),
            pool: signals.iter().map(|s| s.pool).sum(),
        }
    }
}

/// The mutable state of one driven stream: pool, pending tasks,
/// in-service set, lifetime accounting and carried protocol state,
/// stepped one window at a time. [`StreamSession`] wraps it behind the
/// push API; [`StreamDriver::run`](crate::StreamDriver::run) drains it
/// over a whole stream; the sharded runners step one core per shard in
/// lockstep so a single adaptive controller can window every shard
/// identically.
pub(crate) struct SessionCore<'e> {
    engine: &'e dyn AssignmentEngine,
    cfg: StreamConfig,
    warm: bool,
    /// Worker re-entry on: matched workers keep their accountant entry
    /// and the lifetime charge goes through the id-keyed dedup set even
    /// on warm boards (a returned worker's carried history was dropped
    /// with his column, so his bit-identical re-publications must be
    /// filtered by the dedup, not the board spend delta).
    reentry: bool,
    budget_gen: BudgetGen,
    pool: Vec<WorkerArrival>,
    pending: Vec<PendingTask>,
    /// Tasks held back by admission control: arrived, not yet admitted
    /// into any window, burning no TTL. FIFO — the oldest deferral is
    /// readmitted first once budget frees up.
    deferred: VecDeque<PendingTask>,
    in_service: VecDeque<InService>,
    cycles: BTreeMap<u32, usize>,
    ledger: LedgerState,
    /// Per-worker pacing state (trailing burn-rate estimate), only
    /// maintained when [`StreamConfig::pacing`] is set.
    pace: BTreeMap<u32, PaceState>,
    carried: Option<CarriedBoard>,
    charged: ReleaseDedup,
    /// The pool and pending set as a maintained PA-TA instance: every
    /// admission/settlement below mirrors into it, so forming a
    /// window's [`Instance`](dpta_core::Instance) is an O(live +
    /// feasible pairs) emission instead of an all-pairs rebuild.
    delta: DeltaInstance,
    /// Task id → fate, hash-interned for O(1) per-settlement updates;
    /// every observable artefact (report, snapshot) re-sorts by id.
    fates: FastMap<u32, TaskFate>,
    /// Worker id → lifetime spend, same interned representation.
    spend_by_worker: FastMap<u32, f64>,
    reports: Vec<WindowReport>,
    outcomes: VecDeque<Outcome>,
}

/// The serializable state of a [`SessionCore`] at a window boundary.
///
/// Everything not here is reconstructed on restore: `warm`/`reentry`
/// are pure functions of the configuration and engine, `budget_gen` is
/// a pure keyed generator re-derived from the seed, and the
/// [`DeltaInstance`] caches are rebuilt by re-inserting the live pool
/// and pending set in their maintained order — which *is* the insertion
/// order a live session would have reached (pool/pending only append
/// and retain), so the rebuilt instance emits bit-identically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct CoreSnapshot {
    pub(crate) pool: Vec<WorkerArrival>,
    pub(crate) pending: Vec<PendingTask>,
    pub(crate) deferred: VecDeque<PendingTask>,
    pub(crate) in_service: VecDeque<InService>,
    pub(crate) cycles: BTreeMap<u32, usize>,
    pub(crate) ledger: LedgerState,
    pub(crate) pace: BTreeMap<u32, PaceState>,
    pub(crate) carried: Option<CarriedBoard>,
    pub(crate) charged: ReleaseDedup,
    pub(crate) fates: BTreeMap<u32, TaskFate>,
    pub(crate) spend_by_worker: BTreeMap<u32, f64>,
    pub(crate) reports: Vec<WindowReport>,
    pub(crate) outcomes: VecDeque<Outcome>,
}

/// Per-worker budget-pacing state: the trailing per-window spend
/// estimate the throttle compares against the worker's remaining
/// budget. An exponential moving average (α = ½) keeps the forecast
/// responsive to bursts while damping one-window spikes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct PaceState {
    /// Ledger spend at the last window close (the delta baseline).
    pub(crate) last_spent: f64,
    /// Trailing per-window spend estimate, ε per window.
    pub(crate) ema: f64,
}

impl<'e> SessionCore<'e> {
    /// A fresh session core for `engine` under `cfg`.
    pub(crate) fn new(engine: &'e dyn AssignmentEngine, cfg: StreamConfig) -> Self {
        cfg.service.validate();
        let warm = cfg.carry_releases && engine.supports_warm_start();
        let reentry = cfg.service.reenters();
        let budget_gen = BudgetGen::new(
            cfg.params.seed ^ 0x5712_EA11,
            0,
            cfg.budget_range,
            cfg.budget_group_size,
        );
        let ledger = cfg.ledger.state();
        SessionCore {
            engine,
            cfg,
            warm,
            reentry,
            budget_gen,
            pool: Vec::new(),
            pending: Vec::new(),
            deferred: VecDeque::new(),
            in_service: VecDeque::new(),
            cycles: BTreeMap::new(),
            ledger,
            pace: BTreeMap::new(),
            carried: None,
            charged: ReleaseDedup::default(),
            delta: DeltaInstance::new(),
            fates: FastMap::default(),
            spend_by_worker: FastMap::default(),
            reports: Vec::new(),
            outcomes: VecDeque::new(),
        }
    }

    /// Drains the outcome log accumulated since the last drain.
    pub(crate) fn drain_outcomes(&mut self) -> Vec<Outcome> {
        self.outcomes.drain(..).collect()
    }

    /// Captures the core's window-boundary state for a session
    /// snapshot.
    pub(crate) fn snapshot(&self) -> CoreSnapshot {
        CoreSnapshot {
            pool: self.pool.clone(),
            pending: self.pending.clone(),
            deferred: self.deferred.clone(),
            in_service: self.in_service.clone(),
            cycles: self.cycles.clone(),
            ledger: self.ledger.clone(),
            pace: self.pace.clone(),
            carried: self.carried.clone(),
            charged: self.charged.clone(),
            fates: self.fates.iter().map(|(&id, f)| (id, *f)).collect(),
            spend_by_worker: self
                .spend_by_worker
                .iter()
                .map(|(&id, &e)| (id, e))
                .collect(),
            reports: self.reports.clone(),
            outcomes: self.outcomes.clone(),
        }
    }

    /// Rebuilds a core mid-stream from a snapshot. The delta caches are
    /// re-derived by inserting the pool (workers, in pool order) and
    /// the pending set (tasks, in pending order) — the maintained order
    /// equals the live session's insertion order, so the rebuilt
    /// instance emission is bit-identical to the uninterrupted run's.
    pub(crate) fn from_snapshot(
        engine: &'e dyn AssignmentEngine,
        cfg: StreamConfig,
        snap: &CoreSnapshot,
    ) -> Self {
        let mut core = SessionCore::new(engine, cfg);
        core.pool = snap.pool.clone();
        core.pending = snap.pending.clone();
        core.deferred = snap.deferred.clone();
        core.in_service = snap.in_service.clone();
        core.cycles = snap.cycles.clone();
        core.ledger = snap.ledger.clone();
        core.pace = snap.pace.clone();
        core.carried = snap.carried.clone();
        core.charged = snap.charged.clone();
        core.fates = snap.fates.iter().map(|(&id, f)| (id, *f)).collect();
        core.spend_by_worker = snap
            .spend_by_worker
            .iter()
            .map(|(&id, &e)| (id, e))
            .collect();
        core.reports = snap.reports.clone();
        core.outcomes = snap.outcomes.clone();
        for w in &snap.pool {
            core.delta
                .insert_worker(u64::from(w.id), w.worker, |t, wk| {
                    core.budget_gen.vector(t as usize, wk as usize)
                });
        }
        for p in &snap.pending {
            core.delta
                .insert_task(u64::from(p.arrival.id), p.arrival.task, |tk, wk| {
                    core.budget_gen.vector(tk as usize, wk as usize)
                });
        }
        core
    }

    /// Settles remaining fates and assembles the aggregate report.
    pub(crate) fn finish(mut self, task_arrivals: usize, worker_arrivals: usize) -> StreamReport {
        for p in &self.pending {
            self.fates.insert(p.arrival.id, TaskFate::Pending);
        }
        // Tasks still held by admission control never entered a window,
        // but they arrived — the conservation law covers them as
        // pending.
        for p in &self.deferred {
            self.fates.insert(p.arrival.id, TaskFate::Pending);
        }
        StreamReport {
            engine: self.engine.name().to_string(),
            windows: self.reports,
            fates: self.fates.into_iter().collect(),
            task_arrivals,
            worker_arrivals,
            spend_by_worker: self.spend_by_worker.into_iter().collect(),
            warnings: Vec::new(),
        }
    }

    /// One window: re-admit returned workers, admit arrivals, drive the
    /// engine, settle fates. Returns the window's stream-observable
    /// signals for the adaptive controller.
    pub(crate) fn step(&mut self, window: &Window, cut: WindowCutDecision) -> StepSignals {
        let warm = self.warm;
        // Advance the ledger clock to the window start: under sliding-
        // window accounting this reclaims every charge that has aged
        // out of the protection window. Window starts are global across
        // flat, drop-pairs and halo execution, so every driving mode
        // reclaims at identical instants.
        self.ledger.advance_time(window.start);
        let mut returned_now = 0usize;
        // Returned workers re-enter the pool ahead of the window's fresh
        // arrivals, in (completion time, id) order — the same rule every
        // driving mode (flat, drop-pairs, halo) applies, so pool order
        // (and hence instance shape) stays identical across them.
        while self
            .in_service
            .front()
            .is_some_and(|s| s.return_time < window.end)
        {
            let s = self.in_service.pop_front().expect("front exists");
            self.outcomes.push_back(Outcome::Returned {
                worker: s.worker.id,
                window: window.index,
                at: s.return_time,
                cycle: s.cycle,
            });
            returned_now += 1;
            self.delta
                .insert_worker(u64::from(s.worker.id), s.worker.worker, |t, w| {
                    self.budget_gen.vector(t as usize, w as usize)
                });
            self.pool.push(s.worker);
        }
        for w in &window.workers {
            self.ledger
                .register(u64::from(w.id), self.cfg.worker_capacity);
        }
        for w in &window.workers {
            self.delta
                .insert_worker(u64::from(w.id), w.worker, |t, wk| {
                    self.budget_gen.vector(t as usize, wk as usize)
                });
            self.pool.push(*w);
        }
        // Admission control: when configured, the window admits only as
        // many tasks as the pool's aggregate remaining budget could
        // plausibly serve; the excess waits outside the window (no TTL
        // burned), oldest deferral first. Off (the default), every
        // arrival is admitted on the spot.
        let carried_in_now = self.pending.len();
        let mut deferred_now = 0usize;
        let mut readmitted_now = 0usize;
        let admitted: Vec<PendingTask> = match self.cfg.admission {
            Some(ac) => {
                let mut aggregate = 0.0f64;
                for w in &self.pool {
                    aggregate += self.ledger.remaining(u64::from(w.id));
                }
                let serveable = if aggregate.is_finite() {
                    (aggregate / ac.epsilon_per_task) as usize
                } else {
                    usize::MAX
                };
                let mut allowed = serveable.saturating_sub(carried_in_now);
                let waiting: Vec<PendingTask> = self.deferred.drain(..).collect();
                let mut admitted = Vec::with_capacity(waiting.len() + window.tasks.len());
                for (p, fresh) in
                    waiting
                        .into_iter()
                        .map(|p| (p, false))
                        .chain(window.tasks.iter().map(|&arrival| {
                            (
                                PendingTask {
                                    arrival,
                                    ttl: self.cfg.task_ttl,
                                },
                                true,
                            )
                        }))
                {
                    if allowed > 0 {
                        allowed -= 1;
                        if !fresh {
                            readmitted_now += 1;
                        }
                        admitted.push(p);
                    } else {
                        if fresh {
                            deferred_now += 1;
                            self.outcomes.push_back(Outcome::Deferred {
                                task: p.arrival.id,
                                window: window.index,
                            });
                        }
                        self.deferred.push_back(p);
                    }
                }
                admitted
            }
            None => window
                .tasks
                .iter()
                .map(|&arrival| PendingTask {
                    arrival,
                    ttl: self.cfg.task_ttl,
                })
                .collect(),
        };
        for p in &admitted {
            self.delta
                .insert_task(u64::from(p.arrival.id), p.arrival.task, |tk, wk| {
                    self.budget_gen.vector(tk as usize, wk as usize)
                });
        }
        self.pending.extend(admitted);
        let (pool, pending) = (&mut self.pool, &mut self.pending);
        let (ledger, carried) = (&mut self.ledger, &mut self.carried);
        let pace = &mut self.pace;
        let (charged, fates) = (&mut self.charged, &mut self.fates);
        let spend_by_worker = &mut self.spend_by_worker;
        let delta = &mut self.delta;

        // Observed stream state at window close: how long every task
        // present has been waiting. Matched or not, the formula is the
        // same — it is the age the window width controls. Only the
        // adaptive controller consumes it, so static-policy runs skip
        // the per-window allocation entirely.
        let ages: Vec<f64> = if matches!(self.cfg.policy, WindowPolicy::Adaptive(_)) {
            pending
                .iter()
                .map(|p| window.end - p.arrival.time)
                .collect()
        } else {
            Vec::new()
        };

        let mut report = WindowReport {
            index: window.index,
            start: window.start,
            end: window.end,
            tasks_arrived: window.tasks.len(),
            carried_in: carried_in_now + readmitted_now,
            workers_available: pool.len(),
            matched: 0,
            expired: 0,
            carried_out: 0,
            utility: 0.0,
            distance: 0.0,
            epsilon_spent: 0.0,
            publications: 0,
            rounds: 0,
            drive_time: std::time::Duration::ZERO,
            workers_retired: 0,
            workers_departed: 0,
            workers_returned: returned_now,
            workers_throttled: 0,
            tasks_deferred: deferred_now,
            cut,
        };

        // (pending index, pool index, worker id) of every match.
        let mut matched_tasks: Vec<(usize, usize, u32)> = Vec::new();
        if !pending.is_empty() && !pool.is_empty() {
            let task_ids: Vec<u32> = pending.iter().map(|p| p.arrival.id).collect();
            let worker_ids: Vec<u32> = pool.iter().map(|w| w.id).collect();
            // The maintained delta emits the window's instance — reach
            // sets and budget rows were resolved incrementally at each
            // arrival/return, and emission order equals the pool/pending
            // order `Instance::from_locations` would see, bit for bit
            // (pinned by the incremental property suite).
            let inst = delta.instance();
            debug_assert_eq!(inst.n_tasks(), pending.len());
            debug_assert_eq!(inst.n_workers(), pool.len());
            // Lifetime accounts, interned once per window: the guard
            // and charge loops below do dense-slot lookups instead of
            // per-worker tree descents.
            let worker_handles: Vec<AccountId> = pool
                .iter()
                .map(|w| {
                    ledger
                        .resolve(u64::from(w.id))
                        .expect("pooled worker is registered")
                })
                .collect();
            let noise = IdStableNoise {
                base: SeededNoise::new(self.cfg.params.seed),
                task_ids: &task_ids,
                worker_ids: &worker_ids,
            };

            let board = match carried.take() {
                Some(prev) if warm => {
                    let task_to_new: FastMap<u32, usize> = task_ids
                        .iter()
                        .enumerate()
                        .map(|(i, &id)| (id, i))
                        .collect();
                    let worker_to_new: FastMap<u32, usize> = worker_ids
                        .iter()
                        .enumerate()
                        .map(|(j, &id)| (id, j))
                        .collect();
                    prev.board.carry(
                        inst.n_tasks(),
                        inst.n_workers(),
                        |t_old| task_to_new.get(&prev.task_ids[t_old]).copied(),
                        |j_old| worker_to_new.get(&prev.worker_ids[j_old]).copied(),
                    )
                }
                _ => Board::new(inst.n_tasks(), inst.n_workers()),
            };
            // Only the delta-charging path below reads the pre-drive
            // spend snapshot; skip the scan everywhere else.
            let pre_spend: Option<Vec<f64>> = (warm && !self.reentry).then(|| {
                (0..inst.n_workers())
                    .map(|j| board.spent_total(j))
                    .collect()
            });
            let pre_pubs = board.publications();

            // With a finite lifetime capacity, warm drives run under
            // the engine-level remaining-budget hook: every proposal
            // whose ε would overshoot the worker's remaining lifetime
            // budget is skipped, so the cap is exact rather than
            // retire-at-window-close. (Fresh-board drives re-publish
            // already-charged releases the hook cannot distinguish from
            // novel spend, so they keep the window-close semantics.)
            let pacing = (warm && self.cfg.worker_capacity.is_finite())
                .then_some(self.cfg.pacing)
                .flatten();
            let guard: Option<Vec<f64>> =
                (warm && self.cfg.worker_capacity.is_finite()).then(|| {
                    worker_handles
                        .iter()
                        .zip(worker_ids.iter())
                        .map(|(&h, &wid)| {
                            let mut g = ledger.remaining_at(h);
                            // Pacing: when the trailing burn rate would
                            // exhaust the worker within the forecast
                            // horizon, cap this window's guard to an
                            // even slice of what remains, stretching
                            // the budget across the horizon.
                            if let Some(p) = pacing {
                                if let Some(st) = pace.get(&wid) {
                                    let horizon = p.horizon_windows as f64;
                                    if st.ema > 0.0 && g > 0.0 && st.ema * horizon > g {
                                        g /= horizon;
                                        report.workers_throttled += 1;
                                    }
                                }
                            }
                            g
                        })
                        .collect()
                });

            // dpta-lint: allow(no-wall-clock) -- drive_time is observability-only; no windowing or matching decision reads it
            let start = Instant::now();
            let outcome = if self.engine.supports_warm_start() {
                match &guard {
                    Some(g) => self.engine.resume_capped(&inst, board, &noise, g),
                    None => self.engine.resume(&inst, board, &noise),
                }
            } else {
                // One-shot engines require (and here always get) a
                // fresh board.
                let mut board = board;
                self.engine.assign(&inst, &mut board, &noise)
            };
            report.drive_time = start.elapsed();

            if let Some(pre_spend) = &pre_spend {
                // Warm board, serve-and-leave: a carried board never
                // re-publishes (slots only advance), so the spend delta
                // is exactly the novel information released this
                // window.
                for (j, w) in pool.iter().enumerate() {
                    let novel = (outcome.board.spent_total(j) - pre_spend[j]).max(0.0);
                    ledger.charge_at(worker_handles[j], novel);
                    report.epsilon_spent += novel;
                    if novel > 0.0 {
                        *spend_by_worker.entry(w.id).or_insert(0.0) += novel;
                    }
                }
            } else if warm {
                // Warm board under re-entry: a returned worker's column
                // is fresh (his history left the board with his old
                // column), so bit-identical re-publications to
                // still-pending tasks show up as board spend again. The
                // shared ledger-ordered dedup — the same helper the
                // halo coordinator charges through — filters them, so
                // each release is charged once per lifetime, service
                // cycles included, and flat and sharded runs sum spend
                // in the same order.
                for (j, &wid) in worker_ids.iter().enumerate() {
                    let novel = novel_ledger_spend(&outcome.board, j, wid, &task_ids, charged);
                    ledger.charge_at(worker_handles[j], novel);
                    report.epsilon_spent += novel;
                    if novel > 0.0 {
                        *spend_by_worker.entry(wid).or_insert(0.0) += novel;
                    }
                }
            } else {
                // Fresh boards re-publish for pairs still pending from
                // earlier windows. Under id-keyed noise and budgets the
                // repeat is bit-identical to the original release —
                // zero new information — so each distinct release is
                // charged exactly once over the stream's lifetime.
                // Deliberately NOT `novel_ledger_spend`: this path
                // predates re-entry and iterates `inst.reach(j)` —
                // switching to ledger order would reorder the float
                // sums and move serve-and-leave spend off its
                // historical bit pattern.
                for (j, &wid) in worker_ids.iter().enumerate() {
                    let mut novel = 0.0;
                    for &i in inst.reach(j) {
                        if let Some(set) = outcome.board.releases(i, j) {
                            for (u, rel) in set.releases().iter().enumerate() {
                                if charged.charge_pair(wid, task_ids[i], u as u32) {
                                    novel += rel.epsilon;
                                }
                            }
                        }
                    }
                    // Whole-location releases (Geo-I) appear only on
                    // the ledger, one per drive.
                    let loc = outcome.board.ledger(j).spent_on(LOCATION_RELEASE);
                    if loc > 0.0 && charged.charge_location(wid, loc.to_bits()) {
                        novel += loc;
                    }
                    ledger.charge_at(worker_handles[j], novel);
                    report.epsilon_spent += novel;
                    if novel > 0.0 {
                        *spend_by_worker.entry(wid).or_insert(0.0) += novel;
                    }
                }
            }
            let m = measure(
                &inst,
                &outcome,
                self.cfg.params.alpha,
                self.cfg.params.beta,
                self.engine.accounts_privacy(),
            );
            report.matched = m.matched;
            report.utility = m.total_utility;
            report.distance = m.total_distance;
            report.rounds = outcome.rounds;
            report.publications = outcome.board.publications() - pre_pubs;

            for (i, j) in outcome.assignment.pairs() {
                let worker_id = worker_ids[j];
                let latency = window.end - pending[i].arrival.time;
                fates.insert(
                    task_ids[i],
                    TaskFate::Assigned {
                        window: window.index,
                        worker: worker_id,
                        latency,
                    },
                );
                self.outcomes.push_back(Outcome::Assigned {
                    task: task_ids[i],
                    worker: worker_id,
                    window: window.index,
                    latency,
                });
                matched_tasks.push((i, j, worker_id));
            }

            if warm {
                *carried = Some(CarriedBoard {
                    board: outcome.board,
                    task_ids,
                    worker_ids,
                });
            }
        }

        // Settle the pool: matched workers depart to serve — for good
        // under `ServiceModel::Never`, into the in-service set
        // otherwise — and exhausted workers retire.
        let departed: BTreeSet<u32> = matched_tasks.iter().map(|&(_, _, w)| w).collect();
        for &(i, j, wid) in &matched_tasks {
            let pickup = pending[i]
                .arrival
                .task
                .location
                .distance(&pool[j].worker.location);
            match self.cfg.service.duration_keyed(
                pickup,
                pending[i].arrival.task.value,
                wid,
                pending[i].arrival.id,
                self.cfg.params.seed,
            ) {
                Some(d) => {
                    let return_time = window.end + d;
                    let cycle = {
                        let c = self.cycles.entry(wid).or_insert(0);
                        *c += 1;
                        *c
                    };
                    let entry = InService {
                        return_time,
                        cycle,
                        worker: pool[j],
                    };
                    // Kept sorted by (completion time, id) so re-entry
                    // order is a pure function of the run.
                    let pos = self
                        .in_service
                        .partition_point(|s| (s.return_time, s.worker.id) < (return_time, wid));
                    self.in_service.insert(pos, entry);
                    self.outcomes.push_back(Outcome::EnteredService {
                        worker: wid,
                        window: window.index,
                        returns_at: Some(return_time),
                    });
                }
                None => {
                    ledger.forget(u64::from(wid));
                    self.outcomes.push_back(Outcome::EnteredService {
                        worker: wid,
                        window: window.index,
                        returns_at: None,
                    });
                }
            }
        }
        report.workers_departed = departed.len();
        // Sliding-window (renewable) accounting never retires: an
        // exhausted worker idles — the remaining-budget guard stops his
        // releases — until old charges age out of the protection
        // window. An infinite protection window is not renewable, so
        // `Windowed { window_secs: ∞ }` retires exactly like lifetime
        // accounting (the bit-for-bit equivalence the property suite
        // pins).
        let renewable = ledger.renewable();
        let mut retired: BTreeSet<u64> = if renewable {
            BTreeSet::new()
        } else {
            ledger.drain_exhausted().into_iter().collect()
        };
        if !renewable && warm && self.cfg.worker_capacity.is_finite() {
            // Hard-cap mode never overshoots, so spend rarely reaches
            // the capacity exactly; instead a worker is effectively
            // exhausted once his remaining budget cannot cover even the
            // cheapest possible release (the draw range's lower bound).
            for w in pool.iter() {
                let id = u64::from(w.id);
                if !departed.contains(&w.id)
                    && !retired.contains(&id)
                    && ledger.remaining(id) + 1e-12 < self.cfg.budget_range.0
                {
                    ledger.forget(id);
                    retired.insert(id);
                }
            }
        }
        // An in-service worker can exhaust his budget at the very match
        // that sent him out (re-entry keeps him tracked): he finishes
        // the trip he is on but retires instead of returning.
        if self.reentry && !retired.is_empty() {
            self.in_service
                .retain(|s| !retired.contains(&u64::from(s.worker.id)));
        }
        report.workers_retired = retired.len();
        for &id in &retired {
            self.outcomes.push_back(Outcome::Retired {
                worker: id as u32,
                window: window.index,
            });
        }
        pool.retain(|w| !departed.contains(&w.id) && !retired.contains(&u64::from(w.id)));
        // Mirror the pool settlement into the maintained instance.
        // Removal is idempotent, so retired ids that were never pooled
        // (e.g. workers retiring mid-service) fall through harmlessly.
        for &wid in &departed {
            delta.remove_worker(u64::from(wid));
        }
        for &id in &retired {
            delta.remove_worker(id);
        }

        // Settle the tasks: matched leave, survivors age, the too-old
        // expire.
        let mut matched_mask = vec![false; pending.len()];
        for &(i, _, _) in &matched_tasks {
            matched_mask[i] = true;
        }
        let mut next_pending = Vec::with_capacity(pending.len());
        for (i, mut p) in pending.drain(..).enumerate() {
            if matched_mask[i] {
                delta.remove_task(u64::from(p.arrival.id));
                continue;
            }
            p.ttl -= 1;
            if p.ttl == 0 {
                delta.remove_task(u64::from(p.arrival.id));
                fates.insert(
                    p.arrival.id,
                    TaskFate::Expired {
                        window: window.index,
                    },
                );
                self.outcomes.push_back(Outcome::Expired {
                    task: p.arrival.id,
                    window: window.index,
                });
                report.expired += 1;
            } else {
                next_pending.push(p);
            }
        }
        *pending = next_pending;
        report.carried_out = pending.len();
        // Refresh the pacing forecast from this window's realized
        // spend: EMA over the per-window spend delta (clamped at zero —
        // window-`W` reclamation can shrink recorded spend, which is
        // not negative burn).
        if self.cfg.pacing.is_some() {
            let tracked = ledger.tracked_ids();
            for &id in &tracked {
                let spent = ledger.spent(id);
                let st = pace.entry(id as u32).or_insert(PaceState {
                    last_spent: 0.0,
                    ema: 0.0,
                });
                let burned = (spent - st.last_spent).max(0.0);
                st.ema = 0.5 * st.ema + 0.5 * burned;
                st.last_spent = spent;
            }
            pace.retain(|&id, _| tracked.binary_search(&u64::from(id)).is_ok());
        }
        let signals = StepSignals {
            ages,
            backlog: pending.len(),
            pool: pool.len(),
        };
        self.reports.push(report);
        signals
    }
}

/// The push-based streaming interface: feed arrival events, advance
/// the event-time watermark, poll typed [`Outcome`]s, close for the
/// aggregate report. [`StreamDriver::run`](crate::StreamDriver::run)
/// is exactly `push* → close` over a pre-built stream.
///
/// # Watermark contract
///
/// [`advance_to(t)`](StreamSession::advance_to) declares that every
/// event strictly before `t` has been pushed; pushing an event whose
/// timestamp lies below the watermark afterwards panics (the window it
/// belonged to may already be driven). This is the standard
/// out-of-orderness bound of streaming systems: events may be pushed
/// in any order ahead of the watermark, and the session sorts them
/// into windows exactly as [`ArrivalStream`](crate::ArrivalStream)
/// construction would.
///
/// # Examples
///
/// ```
/// use dpta_core::{Method, Task, Worker};
/// use dpta_spatial::Point;
/// use dpta_stream::{
///     ArrivalEvent, Outcome, StreamConfig, StreamSession, TaskArrival, WindowPolicy,
///     WorkerArrival,
/// };
///
/// let cfg = StreamConfig {
///     policy: WindowPolicy::ByTime { width: 60.0 },
///     ..StreamConfig::default()
/// };
/// let engine = Method::Grd.engine(&cfg.params);
/// let mut session = StreamSession::new(engine.as_ref(), cfg);
/// session.push(ArrivalEvent::Worker(WorkerArrival {
///     id: 0,
///     time: 0.0,
///     worker: Worker::new(Point::new(0.0, 0.0), 2.0),
/// }));
/// session.push(ArrivalEvent::Task(TaskArrival {
///     id: 0,
///     time: 10.0,
///     task: Task::new(Point::new(0.5, 0.0), 4.5),
/// }));
/// // Nothing is driven until the watermark passes a window boundary.
/// session.advance_to(59.0);
/// assert!(session.poll_outcomes().is_empty());
/// session.advance_to(61.0);
/// let outcomes = session.poll_outcomes();
/// assert!(matches!(outcomes[0], Outcome::Assigned { task: 0, worker: 0, .. }));
/// let report = session.close();
/// assert_eq!(report.matched(), 1);
/// ```
pub struct StreamSession<'e> {
    core: Option<SessionCore<'e>>,
    former: PushWindower,
    residual: VecDeque<Outcome>,
    n_tasks: usize,
    n_workers: usize,
    /// Arrival ids seen so far, interned to dense symbols — the
    /// uniqueness check is one hash probe however many entities the
    /// stream has carried.
    task_ids: Interner,
    worker_ids: Interner,
}

impl<'e> StreamSession<'e> {
    /// Opens a session for `engine` under `cfg`. Panics on degenerate
    /// configuration (zero TTL, empty budget group, non-positive
    /// capacity or window knobs).
    pub fn new(engine: &'e dyn AssignmentEngine, cfg: StreamConfig) -> Self {
        assert!(cfg.task_ttl >= 1, "task_ttl must be at least 1");
        assert!(cfg.budget_group_size >= 1, "budget group must be non-empty");
        assert!(
            cfg.worker_capacity > 0.0,
            "worker_capacity must be positive"
        );
        let former = PushWindower::new(cfg.policy, cfg.horizon);
        StreamSession {
            core: Some(SessionCore::new(engine, cfg)),
            former,
            residual: VecDeque::new(),
            n_tasks: 0,
            n_workers: 0,
            task_ids: Interner::new(),
            worker_ids: Interner::new(),
        }
    }

    /// The configuration this session runs under. Panics once closed.
    pub fn config(&self) -> &StreamConfig {
        &self.core.as_ref().expect("session closed").cfg
    }

    /// The current event-time watermark.
    pub fn now(&self) -> f64 {
        self.former.watermark
    }

    /// Pre-sizes the windower's event buffer for `additional` more
    /// pushes. Purely an allocation hint: a drain over a pre-built
    /// stream knows its length up front, and reserving once spares the
    /// buffer its ~log n doubling copies on the way to 10⁵⁺ buffered
    /// events.
    pub fn reserve(&mut self, additional: usize) {
        self.former.buffer.reserve(additional);
    }

    /// Feeds one arrival event. Panics on a non-finite or negative
    /// timestamp, a timestamp below the watermark (its window may
    /// already be closed), a duplicate id within an entity kind, or a
    /// closed session — the same invariants
    /// [`ArrivalStream::new`](crate::ArrivalStream::new) enforces,
    /// checked incrementally.
    pub fn push(&mut self, event: ArrivalEvent) {
        assert!(self.core.is_some(), "push on a closed session");
        let t = event.time();
        assert!(
            t.is_finite() && t >= 0.0,
            "arrival time must be finite and >= 0, got {t}"
        );
        assert!(
            t >= self.former.watermark,
            "late arrival: event at t = {t} is below the watermark {} \
             (its window may already be driven)",
            self.former.watermark
        );
        let fresh = match &event {
            ArrivalEvent::Task(a) => {
                self.n_tasks += 1;
                let seen = self.task_ids.len();
                self.task_ids.intern(u64::from(a.id)) as usize == seen
            }
            ArrivalEvent::Worker(a) => {
                self.n_workers += 1;
                let seen = self.worker_ids.len();
                self.worker_ids.intern(u64::from(a.id)) as usize == seen
            }
        };
        assert!(fresh, "arrival ids must be unique per entity kind");
        self.former.push(event);
    }

    /// Advances the watermark to `t` (monotone; lower values are
    /// no-ops) and drives every window that closes before it. Outcomes
    /// accumulate for [`poll_outcomes`](Self::poll_outcomes).
    pub fn advance_to(&mut self, t: f64) {
        assert!(self.core.is_some(), "advance_to on a closed session");
        assert!(
            t.is_finite() && t >= 0.0,
            "watermark must be finite, got {t}"
        );
        if t <= self.former.watermark {
            return;
        }
        self.former.watermark = t;
        self.former.any_input = true;
        self.drive_ready(false);
    }

    /// Drains the typed outcome log accumulated since the last poll.
    pub fn poll_outcomes(&mut self) -> Vec<Outcome> {
        let mut out: Vec<Outcome> = self.residual.drain(..).collect();
        if let Some(core) = self.core.as_mut() {
            out.extend(core.drain_outcomes());
        }
        out
    }

    /// Drives every remaining window (trailing empties included, up to
    /// the configured horizon), settles the final fates and returns the
    /// aggregate report. Outcomes emitted while closing stay pollable.
    /// Panics if called twice.
    pub fn close(&mut self) -> StreamReport {
        assert!(self.core.is_some(), "close on a closed session");
        self.drive_ready(true);
        let mut core = self.core.take().expect("core present");
        self.residual.extend(core.drain_outcomes());
        core.finish(self.n_tasks, self.n_workers)
    }

    /// Captures the session's full state — buffered events, watermark,
    /// adaptive-controller trajectory, pool/pending/in-service sets,
    /// the lifetime-budget ledger with its dedup set, carried protocol
    /// boards, fates and per-window reports — as a versioned, stable
    /// [`SessionSnapshot`]. Restoring it with
    /// [`StreamSession::restore`] and draining reproduces the
    /// uninterrupted run bit for bit. Panics on a closed session.
    pub fn snapshot(&self) -> SessionSnapshot {
        let core = self.core.as_ref().expect("snapshot on a closed session");
        SessionSnapshot {
            version: SNAPSHOT_VERSION,
            engine: core.engine.name().to_string(),
            config: core.cfg.clone(),
            windower: self.former.snapshot(),
            core: core.snapshot(),
            residual: self.residual.clone(),
            n_tasks: self.n_tasks,
            n_workers: self.n_workers,
            task_ids: self.task_ids.ids().iter().map(|&id| id as u32).collect(),
            worker_ids: self.worker_ids.ids().iter().map(|&id| id as u32).collect(),
        }
    }

    /// Reopens a session from a snapshot taken by
    /// [`StreamSession::snapshot`]. The caller supplies the engine and
    /// configuration; both must match what the snapshot was taken
    /// under — a different snapshot format version is rejected as
    /// [`SnapshotError::VersionMismatch`], and any differing
    /// configuration field (engine, policy, capacity, service model,
    /// ...) as [`SnapshotError::ConfigMismatch`] naming the field.
    /// Everything derivable is reconstructed: budget generators from
    /// the seed, delta-instance caches from the live pool/pending
    /// order.
    pub fn restore(
        engine: &'e dyn AssignmentEngine,
        cfg: StreamConfig,
        snapshot: &SessionSnapshot,
    ) -> Result<Self, SnapshotError> {
        snapshot.validate(engine.name(), &cfg)?;
        let former = PushWindower::from_snapshot(cfg.policy, cfg.horizon, &snapshot.windower)?;
        let core = SessionCore::from_snapshot(engine, cfg, &snapshot.core);
        Ok(StreamSession {
            core: Some(core),
            former,
            residual: snapshot.residual.clone(),
            n_tasks: snapshot.n_tasks,
            n_workers: snapshot.n_workers,
            task_ids: snapshot.task_ids.iter().map(|&id| u64::from(id)).collect(),
            worker_ids: snapshot
                .worker_ids
                .iter()
                .map(|&id| u64::from(id))
                .collect(),
        })
    }

    /// Extends the covered span to at least `t` — the sharded wrapper
    /// injects the *global* span before closing so every shard forms
    /// the same trailing windows, exactly like the batch runner's
    /// horizon injection.
    pub(crate) fn extend_horizon(&mut self, t: f64) {
        let h = self.former.horizon.unwrap_or(0.0).max(t);
        self.former.horizon = Some(h);
        self.former.any_input = true;
    }

    fn drive_ready(&mut self, drain: bool) {
        let core = self.core.as_mut().expect("core present");
        while let Some(window) = self.former.next_ready(drain) {
            let signals = core.step(&window, self.former.last_decision);
            if self.former.needs_feedback() {
                self.former
                    .observe(&StepSignals::merge(std::slice::from_ref(&signals)));
            }
        }
    }
}

/// The serializable state of a [`PushWindower`]: the buffered events
/// still waiting for their window, the watermark/grid cursors, and the
/// adaptive controller's PID state. The policy and configured horizon
/// are *not* here — they are reconstructed from the restore-time
/// [`StreamConfig`], which a snapshot validates against field by field.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct WindowerSnapshot {
    pub(crate) buffer: VecDeque<ArrivalEvent>,
    pub(crate) watermark: f64,
    pub(crate) next_start: f64,
    pub(crate) index: usize,
    pub(crate) controller: Option<ControllerState>,
    pub(crate) last_decision: WindowCutDecision,
    pub(crate) max_event_time: f64,
    pub(crate) any_input: bool,
}

/// Incremental window former over pushed events — the push-mode
/// counterpart of [`Windower`](crate::Windower), forming *identical*
/// window sequences (same spans, same memberships, same adaptive cuts)
/// once the same events have gone past it.
pub(crate) struct PushWindower {
    policy: WindowPolicy,
    /// Buffered events, sorted by `(time, workers-before-tasks, id)` —
    /// the [`ArrivalStream`](crate::ArrivalStream) order.
    buffer: VecDeque<ArrivalEvent>,
    pub(crate) watermark: f64,
    next_start: f64,
    index: usize,
    controller: Option<AdaptiveController>,
    pub(crate) last_decision: WindowCutDecision,
    /// Highest event timestamp seen.
    max_event_time: f64,
    /// Explicit horizon from the configuration.
    horizon: Option<f64>,
    /// Anything observed at all (events, an advanced watermark, or an
    /// explicit horizon): an untouched session closes to zero windows,
    /// like the batch former on an empty stream.
    pub(crate) any_input: bool,
}

impl PushWindower {
    pub(crate) fn new(policy: WindowPolicy, horizon: Option<f64>) -> Self {
        let controller = match policy {
            WindowPolicy::Adaptive(p) => Some(AdaptiveController::new(p)),
            WindowPolicy::ByTime { width } => {
                assert!(
                    width > 0.0 && width.is_finite(),
                    "window width must be positive, got {width}"
                );
                None
            }
            WindowPolicy::ByCount { tasks } => {
                assert!(tasks > 0, "count threshold must be positive");
                None
            }
        };
        PushWindower {
            policy,
            buffer: VecDeque::new(),
            watermark: 0.0,
            next_start: 0.0,
            index: 0,
            controller,
            last_decision: WindowCutDecision::Scheduled,
            max_event_time: 0.0,
            horizon,
            any_input: horizon.is_some(),
        }
    }

    /// Captures the windower's state for a session snapshot.
    pub(crate) fn snapshot(&self) -> WindowerSnapshot {
        WindowerSnapshot {
            buffer: self.buffer.clone(),
            watermark: self.watermark,
            next_start: self.next_start,
            index: self.index,
            controller: self.controller.as_ref().map(AdaptiveController::state),
            last_decision: self.last_decision,
            max_event_time: self.max_event_time,
            any_input: self.any_input,
        }
    }

    /// Rebuilds a windower mid-stream from a snapshot, under the
    /// restore-time policy and horizon (already validated to match the
    /// snapshotted configuration).
    pub(crate) fn from_snapshot(
        policy: WindowPolicy,
        horizon: Option<f64>,
        snap: &WindowerSnapshot,
    ) -> Result<Self, SnapshotError> {
        let mut w = PushWindower::new(policy, horizon);
        w.controller = match (&policy, &snap.controller) {
            (WindowPolicy::Adaptive(p), Some(state)) => {
                Some(AdaptiveController::from_state(*p, *state))
            }
            (WindowPolicy::Adaptive(_), None) => {
                return Err(SnapshotError::Malformed(
                    "adaptive policy but no controller state in snapshot".to_string(),
                ))
            }
            (_, Some(_)) => {
                return Err(SnapshotError::Malformed(
                    "controller state in snapshot under a static policy".to_string(),
                ))
            }
            (_, None) => None,
        };
        let sorted = snap
            .buffer
            .iter()
            .zip(snap.buffer.iter().skip(1))
            .all(|(a, b)| (a.time(), a.kind_rank(), a.id()) <= (b.time(), b.kind_rank(), b.id()));
        if !sorted {
            return Err(SnapshotError::Malformed(
                "windower buffer is not in stream order".to_string(),
            ));
        }
        w.buffer = snap.buffer.clone();
        w.watermark = snap.watermark;
        w.next_start = snap.next_start;
        w.index = snap.index;
        w.last_decision = snap.last_decision;
        w.max_event_time = snap.max_event_time;
        w.any_input = snap.any_input || w.any_input;
        Ok(w)
    }

    pub(crate) fn needs_feedback(&self) -> bool {
        self.controller.is_some()
    }

    pub(crate) fn observe(&mut self, fb: &WindowFeedback) {
        if let Some(c) = self.controller.as_mut() {
            c.observe(fb);
        }
    }

    pub(crate) fn push(&mut self, event: ArrivalEvent) {
        self.any_input = true;
        self.max_event_time = self.max_event_time.max(event.time());
        // Insertion keeps the stream sort order; pushes are usually
        // near the tail, so walk back from the end.
        let key = |e: &ArrivalEvent| (e.time(), e.kind_rank(), e.id());
        let k = key(&event);
        let mut pos = self.buffer.len();
        while pos > 0 && key(&self.buffer[pos - 1]) > k {
            pos -= 1;
        }
        self.buffer.insert(pos, event);
    }

    /// Last instant the window sequence must cover once closing.
    pub(crate) fn span(&self) -> f64 {
        self.max_event_time
            .max(self.horizon.unwrap_or(0.0))
            .max(self.watermark)
    }

    /// The next window that is certainly complete: bounded by the
    /// watermark in streaming mode, by the span in drain mode.
    pub(crate) fn next_ready(&mut self, drain: bool) -> Option<Window> {
        if !self.any_input {
            return None;
        }
        assert!(
            self.index <= MAX_WINDOWS,
            "windowing generated more than {MAX_WINDOWS} windows — widen the window"
        );
        match self.policy {
            WindowPolicy::ByTime { width } => self.next_by_time(width, drain),
            WindowPolicy::ByCount { tasks } => self.next_by_count(tasks, drain),
            WindowPolicy::Adaptive(_) => self.next_adaptive(drain),
        }
    }

    fn take_window(&mut self, start: f64, end: f64, upto: usize) -> Window {
        let n_tasks = self
            .buffer
            .iter()
            .take(upto)
            .filter(|e| matches!(e, ArrivalEvent::Task(_)))
            .count();
        let mut window = Window {
            index: self.index,
            start,
            end,
            tasks: Vec::with_capacity(n_tasks),
            workers: Vec::with_capacity(upto - n_tasks),
        };
        for e in self.buffer.drain(..upto) {
            match e {
                ArrivalEvent::Task(t) => window.tasks.push(t),
                ArrivalEvent::Worker(w) => window.workers.push(w),
            }
        }
        self.index += 1;
        self.next_start = end;
        window
    }

    fn next_by_time(&mut self, width: f64, drain: bool) -> Option<Window> {
        // Boundaries are `k·width`, never accumulated addition: the
        // batch former anchors windows the same way, and for widths
        // with no exact binary representation an accumulated
        // `end + width` would drift off the `k·width` grid after a few
        // windows — enough to put boundary-timed events in different
        // windows than the sharded runners (which window through the
        // batch former) and break the bit-for-bit equivalence gates.
        let start = self.index as f64 * width;
        let end = (self.index + 1) as f64 * width;
        // Fail fast on degenerate widths, like the batch former's
        // span/width guard, instead of grinding through 2^20 driven
        // windows before the index backstop fires.
        let covered = if drain { self.span() } else { self.watermark };
        assert!(
            covered / width < MAX_WINDOWS as f64,
            "width {width} s over a {covered} s span would generate more than \
             {MAX_WINDOWS} windows — widen the window"
        );
        if drain {
            if self.buffer.is_empty() && start > self.span() {
                return None;
            }
        } else if end > self.watermark {
            return None;
        }
        let upto = self.buffer.partition_point(|e| e.time() < end);
        self.last_decision = WindowCutDecision::Scheduled;
        Some(self.take_window(start, end, upto))
    }

    fn next_by_count(&mut self, tasks: usize, drain: bool) -> Option<Window> {
        // The n-th buffered task closes the window at its timestamp;
        // everything after it (ties included) falls to the next window,
        // exactly like the batch former's stream-order cut.
        let mut seen = 0usize;
        let mut cut: Option<(usize, f64)> = None;
        for (k, e) in self.buffer.iter().enumerate() {
            if let ArrivalEvent::Task(t) = e {
                seen += 1;
                if seen == tasks {
                    cut = Some((k, t.time));
                    break;
                }
            }
        }
        self.last_decision = WindowCutDecision::Scheduled;
        match cut {
            // Streaming mode can only cut strictly below the watermark:
            // a still-unpushed event could tie with the closing task.
            Some((k, t)) if drain || t < self.watermark => {
                Some(self.take_window(self.next_start, t, k + 1))
            }
            _ if drain && !self.buffer.is_empty() => {
                // Final partial window: everything left, closed at the
                // covered span (the batch former's trailing rule).
                let end = self.span().max(self.next_start);
                let upto = self.buffer.len();
                Some(self.take_window(self.next_start, end, upto))
            }
            _ => None,
        }
    }

    fn next_adaptive(&mut self, drain: bool) -> Option<Window> {
        let controller = self.controller.as_ref().expect("adaptive former");
        let start = self.next_start;
        let sched_end = start + controller.width;
        let complete = drain || sched_end <= self.watermark;
        if drain && self.buffer.is_empty() && start > self.span() {
            return None;
        }
        // Scan for a burst cut among events that are certainly final:
        // all of them when the scheduled end is covered, only those
        // strictly below the watermark otherwise.
        let limit = if complete {
            sched_end
        } else {
            self.watermark.min(sched_end)
        };
        let mut cut: Option<(usize, f64)> = None;
        if !controller.starved {
            let mut seen = 0usize;
            for (k, e) in self.buffer.iter().enumerate() {
                if e.time() >= limit {
                    break;
                }
                if let ArrivalEvent::Task(t) = e {
                    seen += 1;
                    if seen == controller.policy.burst_tasks {
                        cut = Some((k, t.time));
                        break;
                    }
                }
            }
        }
        match cut {
            Some((k, t)) => {
                // ByCount-style cut: the closing task's time is the
                // boundary, and the cut also narrows the width through
                // the controller — the count trigger firing first is
                // direct evidence the width is too wide for the
                // current arrival rate.
                let c = self.controller.as_mut().expect("adaptive former");
                c.burst_narrow();
                self.last_decision = WindowCutDecision::Burst;
                Some(self.take_window(start, t, k + 1))
            }
            None if complete => {
                let decision = controller.width_decision();
                let upto = self.buffer.partition_point(|e| e.time() < sched_end);
                self.last_decision = decision;
                Some(self.take_window(start, sched_end, upto))
            }
            None => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::StreamDriver;
    use crate::event::{ArrivalStream, TaskArrival};
    use crate::window::AdaptivePolicy;
    use dpta_core::{Method, Task, Worker};
    use dpta_spatial::Point;

    fn task(id: u32, time: f64, x: f64) -> ArrivalEvent {
        ArrivalEvent::Task(TaskArrival {
            id,
            time,
            task: Task::new(Point::new(x, 0.5), 4.5),
        })
    }

    fn worker(id: u32, time: f64, x: f64, r: f64) -> ArrivalEvent {
        ArrivalEvent::Worker(WorkerArrival {
            id,
            time,
            worker: Worker::new(Point::new(x, 0.0), r),
        })
    }

    fn busy_stream() -> ArrivalStream {
        let mut events = Vec::new();
        for k in 0..5u32 {
            events.push(worker(k, 7.0 * k as f64, k as f64, 2.5));
        }
        for k in 0..12u32 {
            events.push(task(k, 5.0 + 23.0 * k as f64, (k % 5) as f64));
        }
        ArrivalStream::new(events)
    }

    /// Pushing a stream's events and closing must reproduce
    /// `StreamDriver::run` exactly, for every policy family.
    #[test]
    fn session_drain_equals_driver_run_across_policies() {
        let stream = busy_stream();
        for policy in [
            WindowPolicy::ByTime { width: 60.0 },
            WindowPolicy::ByCount { tasks: 4 },
            WindowPolicy::Adaptive(AdaptivePolicy {
                base_width: 60.0,
                min_width: 10.0,
                max_width: 240.0,
                burst_tasks: 3,
                target_p95: 45.0,
            }),
        ] {
            let cfg = StreamConfig {
                policy,
                ..StreamConfig::default()
            };
            for method in [Method::Puce, Method::Grd] {
                let engine = method.engine(&cfg.params);
                let direct = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&stream);
                let mut session = StreamSession::new(engine.as_ref(), cfg.clone());
                for e in stream.events() {
                    session.push(*e);
                }
                let pushed = session.close();
                assert_eq!(
                    direct.without_timing(),
                    pushed.without_timing(),
                    "{method} under {policy:?}"
                );
            }
        }
    }

    /// Interleaving pushes with watermark advances must not change the
    /// run: windows close identically whether events are drained in one
    /// go or as time passes.
    #[test]
    fn incremental_advance_matches_one_shot_close() {
        let stream = busy_stream();
        let cfg = StreamConfig {
            policy: WindowPolicy::ByTime { width: 45.0 },
            ..StreamConfig::default()
        };
        let engine = Method::Puce.engine(&cfg.params);
        let direct = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&stream);

        let mut session = StreamSession::new(engine.as_ref(), cfg);
        let mut outcomes = Vec::new();
        for e in stream.events() {
            // Watermark trails the event times: everything before this
            // arrival is final.
            session.advance_to(e.time());
            session.push(*e);
            outcomes.extend(session.poll_outcomes());
        }
        let report = session.close();
        outcomes.extend(session.poll_outcomes());
        assert_eq!(direct.without_timing(), report.without_timing());
        let assigned = outcomes
            .iter()
            .filter(|o| matches!(o, Outcome::Assigned { .. }))
            .count();
        assert_eq!(assigned, report.matched());
        let expired = outcomes
            .iter()
            .filter(|o| matches!(o, Outcome::Expired { .. }))
            .count();
        assert_eq!(expired, report.expired());
    }

    #[test]
    fn by_time_boundaries_stay_on_the_k_width_grid() {
        // Regression: a width with no exact binary representation must
        // not drift off the `k·width` grid the batch former (and hence
        // the sharded runners) anchors to — accumulated addition did.
        let stream = busy_stream();
        let cfg = StreamConfig {
            policy: WindowPolicy::ByTime { width: 0.7 },
            ..StreamConfig::default()
        };
        let engine = Method::Grd.engine(&cfg.params);
        let report = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&stream);
        let batch = crate::window::WindowPolicy::windows(&cfg.policy, &stream, None);
        assert_eq!(report.windows.len(), batch.len());
        for (w, b) in report.windows.iter().zip(&batch) {
            assert_eq!((w.start, w.end), (b.start, b.end), "window {}", w.index);
        }
    }

    #[test]
    #[should_panic(expected = "widen the window")]
    fn degenerate_widths_fail_fast() {
        let cfg = StreamConfig {
            policy: WindowPolicy::ByTime { width: 1e-6 },
            ..StreamConfig::default()
        };
        let engine = Method::Grd.engine(&cfg.params);
        let mut session = StreamSession::new(engine.as_ref(), cfg);
        session.push(task(0, 100_000.0, 0.0));
        let _ = session.close();
    }

    #[test]
    #[should_panic(expected = "late arrival")]
    fn late_pushes_panic() {
        let cfg = StreamConfig::default();
        let engine = Method::Grd.engine(&cfg.params);
        let mut session = StreamSession::new(engine.as_ref(), cfg);
        session.advance_to(100.0);
        session.push(task(0, 50.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "unique per entity kind")]
    fn duplicate_ids_panic() {
        let cfg = StreamConfig::default();
        let engine = Method::Grd.engine(&cfg.params);
        let mut session = StreamSession::new(engine.as_ref(), cfg);
        session.push(task(3, 1.0, 0.0));
        session.push(task(3, 2.0, 0.0));
    }

    #[test]
    fn untouched_session_closes_to_an_empty_report() {
        let cfg = StreamConfig::default();
        let engine = Method::Grd.engine(&cfg.params);
        let mut session = StreamSession::new(engine.as_ref(), cfg);
        let report = session.close();
        assert!(report.windows.is_empty());
        assert_eq!(report.task_arrivals, 0);
    }

    #[test]
    fn out_of_order_pushes_ahead_of_the_watermark_are_sorted() {
        let cfg = StreamConfig {
            policy: WindowPolicy::ByTime { width: 50.0 },
            ..StreamConfig::default()
        };
        let engine = Method::Grd.engine(&cfg.params);
        let mut session = StreamSession::new(engine.as_ref(), cfg.clone());
        // Pushed out of order; the stream constructor would sort them.
        session.push(task(1, 80.0, 1.0));
        session.push(worker(0, 0.0, 1.0, 2.0));
        session.push(task(0, 10.0, 1.0));
        let pushed = session.close();
        let stream = ArrivalStream::new(vec![
            worker(0, 0.0, 1.0, 2.0),
            task(0, 10.0, 1.0),
            task(1, 80.0, 1.0),
        ]);
        let direct = StreamDriver::new(engine.as_ref(), cfg).run(&stream);
        assert_eq!(direct.without_timing(), pushed.without_timing());
    }

    #[test]
    fn reentry_recycles_the_worker_with_the_same_id() {
        // One worker, three reachable tasks spread over time: under
        // serve-and-leave only the first is served; with a short fixed
        // service the same worker (same id) returns and serves all.
        let events: Vec<ArrivalEvent> = vec![
            worker(7, 0.0, 0.0, 3.0),
            task(0, 10.0, 0.5),
            task(1, 130.0, 0.6),
            task(2, 250.0, 0.4),
        ];
        let stream = ArrivalStream::new(events);
        let base = StreamConfig {
            policy: WindowPolicy::ByTime { width: 60.0 },
            task_ttl: 10,
            ..StreamConfig::default()
        };
        let engine = Method::Grd.engine(&base.params);

        let never = StreamDriver::new(engine.as_ref(), base.clone()).run(&stream);
        assert_eq!(never.matched(), 1, "serve-and-leave serves once");
        assert_eq!(never.returns(), 0);

        let cfg = StreamConfig {
            service: ServiceModel::Fixed { secs: 30.0 },
            ..base
        };
        let reentry = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&stream);
        reentry.assert_conservation();
        assert_eq!(reentry.matched(), 3, "the recycled worker serves all");
        assert_eq!(reentry.returns(), 2, "two completed cycles re-admitted");
        for fate in reentry.fates.values() {
            assert!(
                matches!(fate, TaskFate::Assigned { worker: 7, .. }),
                "every match must carry the same logical worker id"
            );
        }
        // The outcome log narrates the cycles.
        let mut session = StreamSession::new(engine.as_ref(), cfg);
        for e in stream.events() {
            session.push(*e);
        }
        let _ = session.close();
        let outcomes = session.poll_outcomes();
        let cycles: Vec<usize> = outcomes
            .iter()
            .filter_map(|o| match o {
                Outcome::Returned {
                    worker: 7, cycle, ..
                } => Some(*cycle),
                _ => None,
            })
            .collect();
        assert_eq!(cycles, vec![1, 2]);
    }

    #[test]
    fn huge_service_durations_degenerate_to_serve_and_leave() {
        // A duration beyond the stream horizon means nobody ever
        // returns: fates, spend and window cuts must equal the
        // serve-and-leave run's exactly.
        let stream = busy_stream();
        let base = StreamConfig {
            policy: WindowPolicy::ByTime { width: 60.0 },
            ..StreamConfig::default()
        };
        for method in [Method::Puce, Method::Pgt, Method::Grd] {
            let engine = method.engine(&base.params);
            let never = StreamDriver::new(engine.as_ref(), base.clone()).run(&stream);
            let parked = StreamDriver::new(
                engine.as_ref(),
                StreamConfig {
                    service: ServiceModel::Fixed { secs: 1e9 },
                    ..base.clone()
                },
            )
            .run(&stream);
            assert_eq!(never.fates, parked.fates, "{method}");
            assert_eq!(never.spend_by_worker, parked.spend_by_worker, "{method}");
            let cuts = |r: &StreamReport| {
                r.windows
                    .iter()
                    .map(|w| (w.start, w.end, w.cut))
                    .collect::<Vec<_>>()
            };
            assert_eq!(cuts(&never), cuts(&parked), "{method}");
            assert_eq!(parked.returns(), 0, "{method}");
        }
    }

    #[test]
    fn per_trip_service_durations_scale_with_the_task_value() {
        let value_model = ValueModel::PerTripKm {
            base: 2.0,
            per_km: 0.8,
        };
        let service = ServiceModel::PerTripKm {
            value_model,
            secs_per_km: 60.0,
        };
        // A 6-value task encodes a 5 km trip; with a 1 km pickup leg the
        // service runs 6 km at 60 s/km.
        assert_eq!(service.duration(1.0, 6.0), Some(360.0));
        // Constant-value tasks carry no trip: pickup leg only.
        let service = ServiceModel::PerTripKm {
            value_model: ValueModel::Constant,
            secs_per_km: 60.0,
        };
        assert_eq!(service.duration(2.0, 4.5), Some(120.0));
    }

    #[test]
    #[should_panic(expected = "service duration must be positive")]
    fn degenerate_service_durations_panic() {
        let cfg = StreamConfig {
            service: ServiceModel::Fixed { secs: 0.0 },
            ..StreamConfig::default()
        };
        let engine = Method::Grd.engine(&cfg.params);
        let _ = StreamSession::new(engine.as_ref(), cfg);
    }
}
