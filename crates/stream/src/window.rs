//! Windowing: turning the arrival log into a sequence of batches.
//!
//! The paper batches "at most 1000 orders ... by timestamp"
//! (Section VII-B); a [`WindowPolicy`] generalises that into the two
//! standard streaming triggers — a fixed time width or a task-count
//! threshold — and produces the [`Window`]s the
//! [`StreamDriver`](crate::StreamDriver) replays.

use crate::event::{ArrivalEvent, ArrivalStream, TaskArrival, WorkerArrival};

/// When a window closes.
///
/// # Examples
///
/// ```
/// use dpta_core::Task;
/// use dpta_spatial::Point;
/// use dpta_stream::{ArrivalEvent, ArrivalStream, TaskArrival, WindowPolicy};
///
/// let stream = ArrivalStream::new(
///     (0..6)
///         .map(|k| {
///             ArrivalEvent::Task(TaskArrival {
///                 id: k,
///                 time: k as f64 * 10.0,
///                 task: Task::new(Point::new(0.0, 0.0), 1.0),
///             })
///         })
///         .collect(),
/// );
/// // Time windows of 25 s: [0,25) holds 3 arrivals, [25,50) two, [50,75) one.
/// let windows = WindowPolicy::ByTime { width: 25.0 }.windows(&stream, None);
/// assert_eq!(
///     windows.iter().map(|w| w.tasks.len()).collect::<Vec<_>>(),
///     vec![3, 2, 1]
/// );
/// // Count windows of 4 tasks close as soon as the threshold fills.
/// let windows = WindowPolicy::ByCount { tasks: 4 }.windows(&stream, None);
/// assert_eq!(
///     windows.iter().map(|w| w.tasks.len()).collect::<Vec<_>>(),
///     vec![4, 2]
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowPolicy {
    /// Fixed-width time windows `[k·width, (k+1)·width)` anchored at
    /// `t = 0`. Boundaries are global, so every shard of a partitioned
    /// stream forms the *same* windows — the property the sharded mode
    /// relies on for exact agreement with unsharded execution.
    ByTime {
        /// Window width in seconds.
        width: f64,
    },
    /// A window closes as soon as it holds `tasks` task arrivals (the
    /// paper's "at most 1000 orders" trigger). Boundaries depend on the
    /// events, so sharded runs form different windows than unsharded
    /// ones; use [`WindowPolicy::ByTime`] when the two must agree.
    ByCount {
        /// Task arrivals per window.
        tasks: usize,
    },
}

/// One closed window: its nominal time span and the arrivals in it.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    /// Window sequence number, from zero.
    pub index: usize,
    /// Nominal start time (inclusive).
    pub start: f64,
    /// Nominal end time (exclusive for [`WindowPolicy::ByTime`],
    /// the closing arrival's timestamp for [`WindowPolicy::ByCount`]).
    pub end: f64,
    /// Task arrivals of this window, in stream order.
    pub tasks: Vec<TaskArrival>,
    /// Worker arrivals of this window, in stream order.
    pub workers: Vec<WorkerArrival>,
}

/// Hard ceiling on generated windows: a width far below the stream's
/// time scale would otherwise materialise millions of empty windows
/// (and drive each of them) before anyone notices the mistake.
pub const MAX_WINDOWS: usize = 1 << 20;

impl WindowPolicy {
    /// Splits `stream` into consecutive windows covering every event.
    ///
    /// `horizon` extends the windowed span beyond the stream's last
    /// event (time policies emit trailing empty windows up to it) — the
    /// sharded runner passes the *global* horizon so every shard forms
    /// the same window sequence even when its local events end early.
    /// Interior empty windows are always emitted: a window in which
    /// nothing arrives still advances waiting-task lifetimes. Panics
    /// when the span/width ratio would exceed [`MAX_WINDOWS`].
    pub fn windows(&self, stream: &ArrivalStream, horizon: Option<f64>) -> Vec<Window> {
        if stream.events().is_empty() && horizon.is_none() {
            return Vec::new();
        }
        match *self {
            WindowPolicy::ByTime { width } => {
                assert!(
                    width > 0.0 && width.is_finite(),
                    "window width must be positive, got {width}"
                );
                let span = stream.horizon().max(horizon.unwrap_or(0.0));
                assert!(
                    span / width < MAX_WINDOWS as f64,
                    "width {width} s over a {span} s span would generate more than \
                     {MAX_WINDOWS} windows — widen the window"
                );
                let k_max = (span / width) as usize;
                let mut windows: Vec<Window> = (0..=k_max)
                    .map(|k| Window {
                        index: k,
                        start: k as f64 * width,
                        end: (k + 1) as f64 * width,
                        tasks: Vec::new(),
                        workers: Vec::new(),
                    })
                    .collect();
                for e in stream.events() {
                    let k = ((e.time() / width) as usize).min(k_max);
                    match e {
                        ArrivalEvent::Task(t) => windows[k].tasks.push(*t),
                        ArrivalEvent::Worker(w) => windows[k].workers.push(*w),
                    }
                }
                windows
            }
            WindowPolicy::ByCount { tasks } => {
                assert!(tasks > 0, "count threshold must be positive");
                let mut windows = Vec::new();
                let mut cur = Window {
                    index: 0,
                    start: 0.0,
                    end: 0.0,
                    tasks: Vec::new(),
                    workers: Vec::new(),
                };
                for e in stream.events() {
                    match e {
                        ArrivalEvent::Worker(w) => cur.workers.push(*w),
                        ArrivalEvent::Task(t) => {
                            cur.tasks.push(*t);
                            if cur.tasks.len() == tasks {
                                cur.end = t.time;
                                let start_next = t.time;
                                let index_next = cur.index + 1;
                                windows.push(std::mem::replace(
                                    &mut cur,
                                    Window {
                                        index: index_next,
                                        start: start_next,
                                        end: start_next,
                                        tasks: Vec::new(),
                                        workers: Vec::new(),
                                    },
                                ));
                            }
                        }
                    }
                }
                if !cur.tasks.is_empty() || !cur.workers.is_empty() {
                    cur.end = stream.horizon().max(horizon.unwrap_or(0.0));
                    windows.push(cur);
                }
                windows
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpta_core::{Task, Worker};
    use dpta_spatial::Point;

    fn task(id: u32, time: f64) -> ArrivalEvent {
        ArrivalEvent::Task(TaskArrival {
            id,
            time,
            task: Task::new(Point::new(0.0, 0.0), 1.0),
        })
    }

    fn worker(id: u32, time: f64) -> ArrivalEvent {
        ArrivalEvent::Worker(WorkerArrival {
            id,
            time,
            worker: Worker::new(Point::new(0.0, 0.0), 1.0),
        })
    }

    #[test]
    fn time_windows_include_interior_empties() {
        let s = ArrivalStream::new(vec![task(0, 5.0), task(1, 35.0)]);
        let w = WindowPolicy::ByTime { width: 10.0 }.windows(&s, None);
        assert_eq!(w.len(), 4); // [0,10) [10,20) [20,30) [30,40)
        assert_eq!(w[0].tasks.len(), 1);
        assert!(w[1].tasks.is_empty() && w[2].tasks.is_empty());
        assert_eq!(w[3].tasks.len(), 1);
        assert_eq!(w[3].start, 30.0);
        assert_eq!(w[3].end, 40.0);
    }

    #[test]
    fn time_windows_extend_to_the_passed_horizon() {
        let s = ArrivalStream::new(vec![task(0, 5.0)]);
        let w = WindowPolicy::ByTime { width: 10.0 }.windows(&s, Some(45.0));
        assert_eq!(w.len(), 5);
        assert!(w[4].tasks.is_empty());
    }

    #[test]
    fn count_windows_keep_same_instant_workers_with_their_task() {
        // Worker 1 arrives at the same instant as the closing task and
        // sorts before it, so it lands in the first window.
        let s = ArrivalStream::new(vec![
            worker(0, 0.0),
            task(0, 1.0),
            worker(1, 2.0),
            task(1, 2.0),
            task(2, 3.0),
        ]);
        let w = WindowPolicy::ByCount { tasks: 2 }.windows(&s, None);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].tasks.len(), 2);
        assert_eq!(w[0].workers.len(), 2);
        assert_eq!(w[0].end, 2.0);
        assert_eq!(w[1].tasks.len(), 1);
        assert_eq!(w[1].index, 1);
    }

    #[test]
    #[should_panic(expected = "widen the window")]
    fn absurdly_narrow_windows_panic() {
        let s = ArrivalStream::new(vec![task(0, 100_000.0)]);
        let _ = WindowPolicy::ByTime { width: 1e-6 }.windows(&s, None);
    }

    #[test]
    fn empty_stream_yields_no_windows() {
        let s = ArrivalStream::new(Vec::new());
        assert!(WindowPolicy::ByTime { width: 5.0 }
            .windows(&s, None)
            .is_empty());
        assert!(WindowPolicy::ByCount { tasks: 3 }
            .windows(&s, None)
            .is_empty());
    }
}
