//! Windowing: turning the arrival log into a sequence of batches.
//!
//! The paper batches "at most 1000 orders ... by timestamp"
//! (Section VII-B); a [`WindowPolicy`] generalises that into the two
//! standard streaming triggers — a fixed time width or a task-count
//! threshold — plus an *adaptive* latency-targeting controller
//! ([`WindowPolicy::Adaptive`]), and produces the [`Window`]s the
//! [`StreamDriver`](crate::StreamDriver) replays.
//!
//! Static policies are pure functions of the stream
//! ([`WindowPolicy::windows`]); the adaptive policy is a *feedback
//! loop* — the driver hands realized backlog/latency back to the
//! controller after every window via [`Windower::observe`], and the
//! controller decides where the next cut lands. Everything it consumes
//! is deterministic replay state (never wall-clock time), so adaptive
//! runs stay bit-for-bit reproducible and the sharded/halo equivalence
//! gates keep holding.

use crate::event::{ArrivalEvent, ArrivalStream, TaskArrival, WorkerArrival};
use crate::metrics::{WindowCutDecision, WindowFeedback};
use serde::{Deserialize, Serialize};

/// When a window closes.
///
/// # Examples
///
/// ```
/// use dpta_core::Task;
/// use dpta_spatial::Point;
/// use dpta_stream::{ArrivalEvent, ArrivalStream, TaskArrival, WindowPolicy};
///
/// let stream = ArrivalStream::new(
///     (0..6)
///         .map(|k| {
///             ArrivalEvent::Task(TaskArrival {
///                 id: k,
///                 time: k as f64 * 10.0,
///                 task: Task::new(Point::new(0.0, 0.0), 1.0),
///             })
///         })
///         .collect(),
/// );
/// // Time windows of 25 s: [0,25) holds 3 arrivals, [25,50) two, [50,75) one.
/// let windows = WindowPolicy::ByTime { width: 25.0 }.windows(&stream, None);
/// assert_eq!(
///     windows.iter().map(|w| w.tasks.len()).collect::<Vec<_>>(),
///     vec![3, 2, 1]
/// );
/// // Count windows of 4 tasks close as soon as the threshold fills.
/// let windows = WindowPolicy::ByCount { tasks: 4 }.windows(&stream, None);
/// assert_eq!(
///     windows.iter().map(|w| w.tasks.len()).collect::<Vec<_>>(),
///     vec![4, 2]
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowPolicy {
    /// Fixed-width time windows `[k·width, (k+1)·width)` anchored at
    /// `t = 0`. Boundaries are global, so every shard of a partitioned
    /// stream forms the *same* windows — the property the sharded mode
    /// relies on for exact agreement with unsharded execution.
    ByTime {
        /// Window width in seconds.
        width: f64,
    },
    /// A window closes as soon as it holds `tasks` task arrivals (the
    /// paper's "at most 1000 orders" trigger). Boundaries depend on the
    /// events, so sharded runs form different windows than unsharded
    /// ones; use [`WindowPolicy::ByTime`] when the two must agree.
    ByCount {
        /// Task arrivals per window.
        tasks: usize,
    },
    /// Latency-targeting adaptive windows: a damped PID controller
    /// starts from [`AdaptivePolicy::base_width`], closes a window
    /// early when within-window task arrivals hit the burst threshold
    /// (and the pool can absorb them), narrows under latency
    /// overshoots in proportion to how far observed waiting ages
    /// exceed the p95 target, widens under pool starvation, and steers
    /// back toward the base width once the backlog clears. Driven by the
    /// [`StreamDriver`](crate::StreamDriver)'s per-window feedback —
    /// use [`Windower`]; [`WindowPolicy::windows`] panics for this
    /// variant. Sharded and halo execution window the *merged global*
    /// stream with one shared controller, so all three driving modes
    /// form identical windows.
    Adaptive(AdaptivePolicy),
}

// Hand-written externally-tagged representation: the `Adaptive` variant
// is a newtype, which the derive does not cover. Struct variants use
// the derive's `{"Variant": {fields...}}` shape so the three encodings
// stay uniform in snapshot files.
impl Serialize for WindowPolicy {
    fn serialize_value(&self) -> serde::Value {
        let (tag, body) = match self {
            WindowPolicy::ByTime { width } => (
                "ByTime",
                serde::Value::Object(vec![("width".to_string(), width.serialize_value())]),
            ),
            WindowPolicy::ByCount { tasks } => (
                "ByCount",
                serde::Value::Object(vec![("tasks".to_string(), tasks.serialize_value())]),
            ),
            WindowPolicy::Adaptive(p) => ("Adaptive", p.serialize_value()),
        };
        serde::Value::Object(vec![(tag.to_string(), body)])
    }
}

impl Deserialize for WindowPolicy {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(fields) = v else {
            return Err(serde::Error::expected("WindowPolicy object", v));
        };
        if fields.len() != 1 {
            return Err(serde::Error::expected("single-variant WindowPolicy", v));
        }
        let (tag, body) = &fields[0];
        match tag.as_str() {
            "ByTime" => {
                let width = body
                    .get("width")
                    .ok_or_else(|| serde::Error("ByTime missing width".to_string()))?;
                Ok(WindowPolicy::ByTime {
                    width: f64::deserialize_value(width)?,
                })
            }
            "ByCount" => {
                let tasks = body
                    .get("tasks")
                    .ok_or_else(|| serde::Error("ByCount missing tasks".to_string()))?;
                Ok(WindowPolicy::ByCount {
                    tasks: usize::deserialize_value(tasks)?,
                })
            }
            "Adaptive" => Ok(WindowPolicy::Adaptive(AdaptivePolicy::deserialize_value(
                body,
            )?)),
            other => Err(serde::Error(format!(
                "unknown WindowPolicy variant {other:?}"
            ))),
        }
    }
}

/// Tuning knobs of [`WindowPolicy::Adaptive`].
///
/// The controller trades assignment utility against matching latency:
/// wide windows batch more options per assignment round (better
/// matchings, longer task lifetimes under a window-counted TTL), short
/// windows bound how long an arrival waits for its first matching
/// attempt. Widths always stay inside `[min_width, max_width]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptivePolicy {
    /// Width the controller starts from (and reports as
    /// [`WindowCutDecision::Scheduled`] when running at it).
    pub base_width: f64,
    /// Floor when narrowing under a latency overshoot.
    pub min_width: f64,
    /// Ceiling when widening under pool starvation.
    pub max_width: f64,
    /// Close the forming window early once it holds this many task
    /// arrivals — unless the last feedback said the pool was starved
    /// (cutting early with nobody to match just burns task TTL).
    pub burst_tasks: usize,
    /// Target p95 of task waiting age at window close, seconds. The
    /// controller narrows the width while observations overshoot it,
    /// in proportion to the size of the overshoot.
    pub target_p95: f64,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            base_width: 600.0,
            min_width: 75.0,
            max_width: 2400.0,
            burst_tasks: 20,
            target_p95: 240.0,
        }
    }
}

impl AdaptivePolicy {
    fn validate(&self) {
        assert!(
            self.min_width > 0.0 && self.min_width.is_finite(),
            "min_width must be positive and finite, got {}",
            self.min_width
        );
        assert!(
            self.min_width <= self.base_width && self.base_width <= self.max_width,
            "widths must satisfy min <= base <= max, got {} / {} / {}",
            self.min_width,
            self.base_width,
            self.max_width
        );
        assert!(self.max_width.is_finite(), "max_width must be finite");
        assert!(self.burst_tasks >= 1, "burst_tasks must be at least 1");
        assert!(
            self.target_p95 > 0.0 && self.target_p95.is_finite(),
            "target_p95 must be positive and finite, got {}",
            self.target_p95
        );
    }
}

/// One closed window: its nominal time span and the arrivals in it.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    /// Window sequence number, from zero.
    pub index: usize,
    /// Nominal start time (inclusive).
    pub start: f64,
    /// Nominal end time (exclusive for [`WindowPolicy::ByTime`],
    /// the closing arrival's timestamp for [`WindowPolicy::ByCount`]).
    pub end: f64,
    /// Task arrivals of this window, in stream order.
    pub tasks: Vec<TaskArrival>,
    /// Worker arrivals of this window, in stream order.
    pub workers: Vec<WorkerArrival>,
}

/// Hard ceiling on generated windows: a width far below the stream's
/// time scale would otherwise materialise millions of empty windows
/// (and drive each of them) before anyone notices the mistake.
pub const MAX_WINDOWS: usize = 1 << 20;

impl WindowPolicy {
    /// Splits `stream` into consecutive windows covering every event.
    ///
    /// `horizon` extends the windowed span beyond the stream's last
    /// event (time policies emit trailing empty windows up to it) — the
    /// sharded runner passes the *global* horizon so every shard forms
    /// the same window sequence even when its local events end early.
    /// Interior empty windows are always emitted: a window in which
    /// nothing arrives still advances waiting-task lifetimes. Panics
    /// when the span/width ratio would exceed [`MAX_WINDOWS`].
    ///
    /// # Panics
    ///
    /// [`WindowPolicy::Adaptive`] windows depend on the driver's
    /// per-window feedback and cannot be precomputed; calling this on
    /// the adaptive variant panics — drive through
    /// [`StreamDriver`](crate::StreamDriver) (which runs the
    /// [`Windower`] feedback loop) instead.
    pub fn windows(&self, stream: &ArrivalStream, horizon: Option<f64>) -> Vec<Window> {
        if stream.events().is_empty() && horizon.is_none() {
            return Vec::new();
        }
        match *self {
            WindowPolicy::Adaptive(_) => panic!(
                "adaptive windows are formed by the driver's feedback loop; \
                 use Windower (via StreamDriver) instead of WindowPolicy::windows"
            ),
            WindowPolicy::ByTime { width } => {
                assert!(
                    width > 0.0 && width.is_finite(),
                    "window width must be positive, got {width}"
                );
                let span = stream.horizon().max(horizon.unwrap_or(0.0));
                assert!(
                    span / width < MAX_WINDOWS as f64,
                    "width {width} s over a {span} s span would generate more than \
                     {MAX_WINDOWS} windows — widen the window"
                );
                let k_max = (span / width) as usize;
                let mut windows: Vec<Window> = (0..=k_max)
                    .map(|k| Window {
                        index: k,
                        start: k as f64 * width,
                        end: (k + 1) as f64 * width,
                        tasks: Vec::new(),
                        workers: Vec::new(),
                    })
                    .collect();
                for e in stream.events() {
                    let k = ((e.time() / width) as usize).min(k_max);
                    match e {
                        ArrivalEvent::Task(t) => windows[k].tasks.push(*t),
                        ArrivalEvent::Worker(w) => windows[k].workers.push(*w),
                    }
                }
                windows
            }
            WindowPolicy::ByCount { tasks } => {
                assert!(tasks > 0, "count threshold must be positive");
                let mut windows = Vec::new();
                let mut cur = Window {
                    index: 0,
                    start: 0.0,
                    end: 0.0,
                    tasks: Vec::new(),
                    workers: Vec::new(),
                };
                for e in stream.events() {
                    match e {
                        ArrivalEvent::Worker(w) => cur.workers.push(*w),
                        ArrivalEvent::Task(t) => {
                            cur.tasks.push(*t);
                            if cur.tasks.len() == tasks {
                                cur.end = t.time;
                                let start_next = t.time;
                                let index_next = cur.index + 1;
                                windows.push(std::mem::replace(
                                    &mut cur,
                                    Window {
                                        index: index_next,
                                        start: start_next,
                                        end: start_next,
                                        tasks: Vec::new(),
                                        workers: Vec::new(),
                                    },
                                ));
                            }
                        }
                    }
                }
                if !cur.tasks.is_empty() || !cur.workers.is_empty() {
                    cur.end = stream.horizon().max(horizon.unwrap_or(0.0));
                    windows.push(cur);
                }
                windows
            }
        }
    }
}

/// Proportional gain of the width controller.
const KP: f64 = 0.5;
/// Integral gain: accumulated error keeps pushing while a condition
/// persists, so a sustained overshoot still reaches the floor (and a
/// sustained starvation the ceiling) even though single steps are
/// gentler than the old halve/double rule.
const KI: f64 = 0.25;
/// Derivative gain: damps the response when the error is already
/// shrinking, so the width does not slosh between the starvation and
/// overshoot regimes on bursty streams.
const KD: f64 = 0.125;
/// Anti-windup clamp on the accumulated error (in doublings).
const INTEGRAL_CLAMP: f64 = 2.0;

/// The adaptive controller's mutable half: current width, the last
/// feedback's starvation flag (which gates the burst cut), and the
/// damped-PID state driving width updates. Shared with the push-based
/// [`StreamSession`](crate::StreamSession) windower, which replays
/// exactly this state machine incrementally.
///
/// The control variable is `log2(width)`: each update multiplies the
/// width by `2^u`, where `u` is the clamped PID response to an error
/// signal measured in doublings. Calm feedback at the base width
/// produces an error of exactly `0.0`, so a never-perturbed controller
/// reproduces the `ByTime` sequence bit for bit — the degeneration
/// gates depend on that.
#[derive(Debug, Clone)]
pub(crate) struct AdaptiveController {
    pub(crate) policy: AdaptivePolicy,
    pub(crate) width: f64,
    pub(crate) starved: bool,
    /// Accumulated clamped error — the I term's memory.
    integral: f64,
    /// Previous error — the D term's memory.
    prev_error: f64,
}

/// The serializable mutable state of an [`AdaptiveController`]: every
/// field that is not a pure function of the policy. Snapshots capture
/// this so a restored controller resumes the PID trajectory bit for
/// bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct ControllerState {
    pub(crate) width: f64,
    pub(crate) starved: bool,
    pub(crate) integral: f64,
    pub(crate) prev_error: f64,
}

impl AdaptiveController {
    pub(crate) fn new(policy: AdaptivePolicy) -> Self {
        policy.validate();
        AdaptiveController {
            policy,
            width: policy.base_width,
            starved: false,
            integral: 0.0,
            prev_error: 0.0,
        }
    }

    /// The controller's mutable state, for session snapshots.
    pub(crate) fn state(&self) -> ControllerState {
        ControllerState {
            width: self.width,
            starved: self.starved,
            integral: self.integral,
            prev_error: self.prev_error,
        }
    }

    /// Rebuilds a controller mid-trajectory from a snapshotted state.
    pub(crate) fn from_state(policy: AdaptivePolicy, state: ControllerState) -> Self {
        let mut c = AdaptiveController::new(policy);
        c.width = state.width.clamp(policy.min_width, policy.max_width);
        c.starved = state.starved;
        c.integral = state.integral;
        c.prev_error = state.prev_error;
        c
    }

    /// Applies one round of feedback. Starvation wins over the latency
    /// target: with no workers to match, narrow windows cannot reduce
    /// matched latency — they only burn task TTL — so the controller
    /// widens to accumulate arriving workers (error `+1`). Otherwise a
    /// waiting-age overshoot narrows in proportion to its size (error
    /// `-log2(p95/target)`, at most one halving per step). Calm
    /// feedback with tasks still in flight freezes the controller — a
    /// calm narrow width keeps their latency low for free, so giving
    /// width back would only re-trade latency for cost. Only once the
    /// backlog clears does the width steer back toward the base (a
    /// bit-exact no-op when it already sits there): nobody is waiting,
    /// so the relaxation is free.
    pub(crate) fn observe(&mut self, fb: &WindowFeedback) {
        self.starved = fb.backlog > fb.pool && fb.backlog > 0;
        let error = if self.starved {
            1.0
        } else if fb.p95_age > self.policy.target_p95 {
            (-(fb.p95_age / self.policy.target_p95).log2()).clamp(-1.0, 0.0)
        } else if fb.backlog == 0 {
            (self.policy.base_width / self.width)
                .log2()
                .clamp(-1.0, 1.0)
        } else {
            // Calm with work in flight: hold the width and the PID
            // memory exactly as they are.
            return;
        };
        self.apply(error);
    }

    /// The burst-cut width adjustment: the count trigger firing before
    /// the time trigger is direct evidence the width is too wide for
    /// the current arrival rate, so the cut feeds a full-halving error
    /// into the controller. Without it, every burst's tail waits out
    /// one more full-width window before the latency feedback lands.
    pub(crate) fn burst_narrow(&mut self) {
        self.apply(-1.0);
    }

    /// One damped PID step over the log-width control variable.
    fn apply(&mut self, error: f64) {
        let derivative = error - self.prev_error;
        self.prev_error = error;
        self.integral = (self.integral + error).clamp(-INTEGRAL_CLAMP, INTEGRAL_CLAMP);
        let u = (KP * error + KI * self.integral + KD * derivative).clamp(-1.0, 1.0);
        self.width = (self.width * u.exp2()).clamp(self.policy.min_width, self.policy.max_width);
    }

    /// The decision label for a window of the current width.
    pub(crate) fn width_decision(&self) -> WindowCutDecision {
        if self.width < self.policy.base_width {
            WindowCutDecision::Narrowed
        } else if self.width > self.policy.base_width {
            WindowCutDecision::Widened
        } else {
            WindowCutDecision::Scheduled
        }
    }
}

/// Incremental window former — the stream-side half of the adaptive
/// feedback loop.
///
/// [`next_window`](Windower::next_window) yields consecutive windows
/// covering every event (and trailing empty windows up to the
/// horizon); for [`WindowPolicy::Adaptive`] the caller feeds realized
/// backlog/latency back through [`observe`](Windower::observe) after
/// driving each window, and the controller adjusts the next cut.
/// Static policies precompute their windows and ignore feedback, so
/// one loop shape drives all three policies.
///
/// # Examples
///
/// ```
/// use dpta_core::Task;
/// use dpta_spatial::Point;
/// use dpta_stream::{
///     AdaptivePolicy, ArrivalEvent, ArrivalStream, TaskArrival, WindowFeedback, WindowPolicy,
///     Windower,
/// };
///
/// let stream = ArrivalStream::new(
///     (0..8)
///         .map(|k| {
///             ArrivalEvent::Task(TaskArrival {
///                 id: k,
///                 time: k as f64,
///                 task: Task::new(Point::new(0.0, 0.0), 1.0),
///             })
///         })
///         .collect(),
/// );
/// let policy = WindowPolicy::Adaptive(AdaptivePolicy {
///     base_width: 10.0,
///     min_width: 2.5,
///     max_width: 20.0,
///     burst_tasks: 4,
///     target_p95: 100.0,
/// });
/// let mut former = Windower::new(policy, &stream, None);
/// // Four tasks arrive within the first nominal window: burst cut.
/// let w = former.next_window().unwrap();
/// assert_eq!((w.start, w.end), (0.0, 3.0));
/// assert_eq!(w.tasks.len(), 4);
/// former.observe(&WindowFeedback { p95_age: 0.0, backlog: 0, pool: 4 });
/// let w = former.next_window().unwrap();
/// assert_eq!(w.start, 3.0);
/// ```
pub struct Windower<'a> {
    events: &'a [ArrivalEvent],
    /// Last instant the window sequence must cover.
    span: f64,
    state: FormerState,
    last_decision: WindowCutDecision,
}

enum FormerState {
    /// Static policies: precomputed, feedback ignored.
    Static(std::vec::IntoIter<Window>),
    Adaptive {
        controller: AdaptiveController,
        /// Next unconsumed event (cursor-based membership: an event
        /// belongs to the window that consumed it, exactly like the
        /// count policy's stream-order cut).
        cursor: usize,
        next_start: f64,
        index: usize,
        /// Set once the stream and span are exhausted.
        done: bool,
    },
}

impl<'a> Windower<'a> {
    /// Creates a former for `policy` over `stream`, extending the
    /// covered span to `horizon` when given (the sharded runner passes
    /// the global horizon). Panics when an adaptive `min_width` over
    /// the span would exceed [`MAX_WINDOWS`].
    pub fn new(policy: WindowPolicy, stream: &'a ArrivalStream, horizon: Option<f64>) -> Self {
        let span = stream.horizon().max(horizon.unwrap_or(0.0));
        let state = match policy {
            WindowPolicy::Adaptive(p) => {
                let controller = AdaptiveController::new(p);
                assert!(
                    span / p.min_width < MAX_WINDOWS as f64,
                    "min_width {} s over a {span} s span would generate more than \
                     {MAX_WINDOWS} windows — raise the floor",
                    p.min_width
                );
                FormerState::Adaptive {
                    controller,
                    cursor: 0,
                    next_start: 0.0,
                    index: 0,
                    done: stream.events().is_empty() && horizon.is_none(),
                }
            }
            _ => FormerState::Static(policy.windows(stream, horizon).into_iter()),
        };
        Windower {
            events: stream.events(),
            span,
            state,
            last_decision: WindowCutDecision::Scheduled,
        }
    }

    /// Why the window most recently returned by
    /// [`next_window`](Windower::next_window) closed where it did.
    pub fn last_decision(&self) -> WindowCutDecision {
        self.last_decision
    }

    /// Whether this former consumes feedback at all — true only for
    /// [`WindowPolicy::Adaptive`]. Callers use it to skip assembling
    /// the per-window [`WindowFeedback`] (age vectors, percentile
    /// sorts) on static-policy runs, where it would be discarded.
    pub fn needs_feedback(&self) -> bool {
        matches!(self.state, FormerState::Adaptive { .. })
    }

    /// Feeds one window's realized feedback to the controller. No-op
    /// for static policies.
    pub fn observe(&mut self, fb: &WindowFeedback) {
        if let FormerState::Adaptive { controller, .. } = &mut self.state {
            controller.observe(fb);
        }
    }

    /// The next window, or `None` once every event is consumed and the
    /// span is covered. Every returned window either consumes at least
    /// one event or advances time by at least the policy's minimum
    /// width, so the sequence always terminates (no zero-width
    /// livelock).
    pub fn next_window(&mut self) -> Option<Window> {
        let span = self.span;
        let events = self.events;
        match &mut self.state {
            FormerState::Static(iter) => {
                self.last_decision = WindowCutDecision::Scheduled;
                iter.next()
            }
            FormerState::Adaptive {
                controller,
                cursor,
                next_start,
                index,
                done,
            } => {
                if *done {
                    return None;
                }
                let start = *next_start;
                let width = controller.width;
                let sched_end = start + width;
                let mut window = Window {
                    index: *index,
                    start,
                    end: sched_end,
                    tasks: Vec::new(),
                    workers: Vec::new(),
                };
                let mut decision = controller.width_decision();
                // Consume events in stream order up to the scheduled
                // end, cutting early at the burst threshold (unless the
                // pool is starved — then cutting early only burns TTL).
                while *cursor < events.len() && events[*cursor].time() < sched_end {
                    match &events[*cursor] {
                        ArrivalEvent::Worker(w) => window.workers.push(*w),
                        ArrivalEvent::Task(t) => window.tasks.push(*t),
                    }
                    let burst =
                        !controller.starved && window.tasks.len() >= controller.policy.burst_tasks;
                    *cursor += 1;
                    if burst {
                        // ByCount-style cut: the closing task's time is
                        // the boundary; later events (ties included)
                        // fall to the next window via the cursor. The
                        // cut also narrows the width through the
                        // controller (see `burst_narrow`).
                        window.end = window.tasks.last().expect("burst saw a task").time;
                        decision = WindowCutDecision::Burst;
                        controller.burst_narrow();
                        break;
                    }
                }
                *next_start = window.end;
                *index += 1;
                assert!(
                    *index <= MAX_WINDOWS,
                    "adaptive windowing generated more than {MAX_WINDOWS} windows"
                );
                // Mirror the time policy's trailing rule: windows are
                // emitted while their start lies inside the span, so a
                // constant-width adaptive run forms exactly the
                // `ByTime` sequence.
                if *cursor >= events.len() && *next_start > span {
                    *done = true;
                }
                self.last_decision = decision;
                Some(window)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpta_core::{Task, Worker};
    use dpta_spatial::Point;

    fn task(id: u32, time: f64) -> ArrivalEvent {
        ArrivalEvent::Task(TaskArrival {
            id,
            time,
            task: Task::new(Point::new(0.0, 0.0), 1.0),
        })
    }

    fn worker(id: u32, time: f64) -> ArrivalEvent {
        ArrivalEvent::Worker(WorkerArrival {
            id,
            time,
            worker: Worker::new(Point::new(0.0, 0.0), 1.0),
        })
    }

    #[test]
    fn time_windows_include_interior_empties() {
        let s = ArrivalStream::new(vec![task(0, 5.0), task(1, 35.0)]);
        let w = WindowPolicy::ByTime { width: 10.0 }.windows(&s, None);
        assert_eq!(w.len(), 4); // [0,10) [10,20) [20,30) [30,40)
        assert_eq!(w[0].tasks.len(), 1);
        assert!(w[1].tasks.is_empty() && w[2].tasks.is_empty());
        assert_eq!(w[3].tasks.len(), 1);
        assert_eq!(w[3].start, 30.0);
        assert_eq!(w[3].end, 40.0);
    }

    #[test]
    fn time_windows_extend_to_the_passed_horizon() {
        let s = ArrivalStream::new(vec![task(0, 5.0)]);
        let w = WindowPolicy::ByTime { width: 10.0 }.windows(&s, Some(45.0));
        assert_eq!(w.len(), 5);
        assert!(w[4].tasks.is_empty());
    }

    #[test]
    fn count_windows_keep_same_instant_workers_with_their_task() {
        // Worker 1 arrives at the same instant as the closing task and
        // sorts before it, so it lands in the first window.
        let s = ArrivalStream::new(vec![
            worker(0, 0.0),
            task(0, 1.0),
            worker(1, 2.0),
            task(1, 2.0),
            task(2, 3.0),
        ]);
        let w = WindowPolicy::ByCount { tasks: 2 }.windows(&s, None);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].tasks.len(), 2);
        assert_eq!(w[0].workers.len(), 2);
        assert_eq!(w[0].end, 2.0);
        assert_eq!(w[1].tasks.len(), 1);
        assert_eq!(w[1].index, 1);
    }

    #[test]
    #[should_panic(expected = "widen the window")]
    fn absurdly_narrow_windows_panic() {
        let s = ArrivalStream::new(vec![task(0, 100_000.0)]);
        let _ = WindowPolicy::ByTime { width: 1e-6 }.windows(&s, None);
    }

    #[test]
    fn empty_stream_yields_no_windows() {
        let s = ArrivalStream::new(Vec::new());
        assert!(WindowPolicy::ByTime { width: 5.0 }
            .windows(&s, None)
            .is_empty());
        assert!(WindowPolicy::ByCount { tasks: 3 }
            .windows(&s, None)
            .is_empty());
        let mut former = Windower::new(WindowPolicy::Adaptive(tiny_adaptive()), &s, None);
        assert!(former.next_window().is_none());
    }

    fn tiny_adaptive() -> AdaptivePolicy {
        AdaptivePolicy {
            base_width: 10.0,
            min_width: 2.5,
            max_width: 40.0,
            burst_tasks: 3,
            target_p95: 8.0,
        }
    }

    fn drain(former: &mut Windower) -> Vec<(f64, f64, WindowCutDecision)> {
        let mut out = Vec::new();
        while let Some(w) = former.next_window() {
            out.push((w.start, w.end, former.last_decision()));
        }
        out
    }

    #[test]
    #[should_panic(expected = "feedback loop")]
    fn adaptive_windows_cannot_be_precomputed() {
        let s = ArrivalStream::new(vec![task(0, 1.0)]);
        let _ = WindowPolicy::Adaptive(tiny_adaptive()).windows(&s, None);
    }

    #[test]
    fn adaptive_without_feedback_matches_by_time_at_base_width() {
        let s = ArrivalStream::new(vec![task(0, 5.0), task(1, 35.0), worker(0, 12.0)]);
        let fixed = WindowPolicy::ByTime { width: 10.0 }.windows(&s, Some(45.0));
        let mut former = Windower::new(
            WindowPolicy::Adaptive(AdaptivePolicy {
                burst_tasks: 100,
                target_p95: 1e6,
                ..tiny_adaptive()
            }),
            &s,
            Some(45.0),
        );
        let mut got = Vec::new();
        while let Some(w) = former.next_window() {
            assert_eq!(former.last_decision(), WindowCutDecision::Scheduled);
            former.observe(&WindowFeedback {
                p95_age: 3.0,
                backlog: 0,
                pool: 5,
            });
            got.push(w);
        }
        assert_eq!(got, fixed);
    }

    #[test]
    fn adaptive_burst_cut_closes_on_the_threshold_task() {
        // Four tasks inside the first nominal window; threshold 3 cuts
        // at the third task's timestamp, ByCount style.
        let s = ArrivalStream::new(vec![task(0, 1.0), task(1, 2.0), task(2, 3.0), task(3, 4.0)]);
        let mut former = Windower::new(WindowPolicy::Adaptive(tiny_adaptive()), &s, None);
        let w = former.next_window().unwrap();
        assert_eq!(former.last_decision(), WindowCutDecision::Burst);
        assert_eq!((w.start, w.end), (0.0, 3.0));
        assert_eq!(w.tasks.len(), 3);
        former.observe(&WindowFeedback {
            p95_age: 1.0,
            backlog: 0,
            pool: 5,
        });
        let w = former.next_window().unwrap();
        assert_eq!(w.start, 3.0);
        assert_eq!(w.tasks.len(), 1, "the fourth task falls to the next window");
    }

    #[test]
    fn starvation_widens_and_suppresses_the_burst_cut() {
        let s = ArrivalStream::new(vec![
            task(0, 1.0),
            task(1, 12.0),
            task(2, 13.0),
            task(3, 14.0),
            task(4, 15.0),
        ]);
        let mut former = Windower::new(WindowPolicy::Adaptive(tiny_adaptive()), &s, None);
        let w = former.next_window().unwrap();
        assert_eq!((w.start, w.end), (0.0, 10.0));
        // Starved: backlog outnumbers the pool → the controller widens
        // past the base and the next window must NOT burst-cut despite
        // holding 4 tasks (threshold is 3).
        former.observe(&WindowFeedback {
            p95_age: 9.0,
            backlog: 1,
            pool: 0,
        });
        let w = former.next_window().unwrap();
        assert_eq!(former.last_decision(), WindowCutDecision::Widened);
        assert_eq!(w.start, 10.0);
        assert!(
            w.end - w.start > 10.0,
            "starvation must widen past the base width, got {}",
            w.end - w.start
        );
        assert_eq!(w.tasks.len(), 4);
    }

    #[test]
    fn latency_overshoot_narrows_down_to_the_floor() {
        let s = ArrivalStream::new(vec![task(0, 1.0)]);
        let mut former = Windower::new(WindowPolicy::Adaptive(tiny_adaptive()), &s, Some(400.0));
        // 4× the target: a full-halving error every round.
        let overshoot = WindowFeedback {
            p95_age: 32.0,
            backlog: 0,
            pool: 5,
        };
        let w = former.next_window().unwrap();
        assert_eq!((w.start, w.end), (0.0, 10.0));
        // Sustained overshoot: widths fall monotonically (the integral
        // term keeps pushing) until the floor pins them.
        let mut prev = w.end - w.start;
        for round in 0..8 {
            former.observe(&overshoot);
            let w = former.next_window().unwrap();
            assert_eq!(former.last_decision(), WindowCutDecision::Narrowed);
            let width = w.end - w.start;
            assert!(
                width <= prev,
                "round {round}: sustained overshoot widened {prev} -> {width}"
            );
            prev = width;
        }
        // Floor reached: 2.5 s is the minimum width.
        assert_eq!(prev, 2.5);
    }

    #[test]
    fn adaptive_covers_the_span_and_terminates() {
        let s = ArrivalStream::new(vec![task(0, 0.0), task(1, 0.0), task(2, 0.0)]);
        let mut former = Windower::new(WindowPolicy::Adaptive(tiny_adaptive()), &s, Some(25.0));
        let seq = drain(&mut former);
        // A zero-width burst window at t = 0 still consumes its events
        // and the sequence still reaches the horizon.
        assert_eq!(seq[0], (0.0, 0.0, WindowCutDecision::Burst));
        assert!(seq.last().unwrap().1 >= 25.0);
        assert!(seq.len() < 10, "must not livelock at the zero-width cut");
    }

    #[test]
    #[should_panic(expected = "min <= base <= max")]
    fn inverted_adaptive_widths_panic() {
        let s = ArrivalStream::new(vec![task(0, 1.0)]);
        let _ = Windower::new(
            WindowPolicy::Adaptive(AdaptivePolicy {
                base_width: 1.0,
                ..tiny_adaptive()
            }),
            &s,
            None,
        );
    }
}
