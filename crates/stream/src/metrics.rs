//! Stream-level reporting: per-window measures, task fates, and the
//! aggregate throughput/latency/utility view of a whole run.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// Why a window closed when it did — the visible half of the adaptive
/// feedback loop ([`WindowPolicy::Adaptive`](crate::WindowPolicy)).
///
/// Static policies always report [`Scheduled`](WindowCutDecision);
/// adaptive windows record the controller's decision so a run's report
/// shows where windows were cut early (burst backlog) or ran at a
/// widened/narrowed width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum WindowCutDecision {
    /// The window ran at its policy's nominal width (static policies
    /// always; adaptive windows whose width sat at the base width).
    #[default]
    Scheduled,
    /// Adaptive: the window closed early because within-window task
    /// arrivals hit the burst threshold while the pool could absorb
    /// them.
    Burst,
    /// Adaptive: the window ran at a narrowed width (observed task
    /// waiting ages above the latency target).
    Narrowed,
    /// Adaptive: the window ran at a widened width (starved worker
    /// pool — backlog exceeded the on-duty pool).
    Widened,
}

impl WindowCutDecision {
    /// One-letter marker for the per-window table (`S`/`B`/`N`/`W`).
    pub fn marker(&self) -> char {
        match self {
            WindowCutDecision::Scheduled => 'S',
            WindowCutDecision::Burst => 'B',
            WindowCutDecision::Narrowed => 'N',
            WindowCutDecision::Widened => 'W',
        }
    }
}

/// What the driver feeds back to the adaptive window controller after
/// each window — observed stream state only (task waiting ages,
/// backlog, pool size), all deterministic functions of the seeded run,
/// never wall-clock time. That is what keeps adaptive cuts replayable
/// bit for bit across flat, sharded and halo execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowFeedback {
    /// p95 of seconds-from-arrival-to-window-close over every task
    /// present in the window (matched, expired or carried alike).
    pub p95_age: f64,
    /// Unserved tasks carried out of the window.
    pub backlog: usize,
    /// Workers still on duty after the window settled.
    pub pool: usize,
}

/// Nearest-rank percentile of `values` (q in `[0, 1]`); zero when
/// empty. Sorts a copy, so input order never matters — the property
/// the sharded feedback merge relies on.
///
/// # Examples
///
/// ```
/// use dpta_stream::percentile;
///
/// let xs = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(percentile(&xs, 0.5), 2.0);
/// assert_eq!(percentile(&xs, 0.95), 4.0);
/// assert_eq!(percentile(&[], 0.95), 0.0);
/// ```
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "percentile wants q in [0,1]");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// What ultimately happened to one task arrival.
///
/// The conservation law of the pipeline: every arrival ends in exactly
/// one of these states, checked by
/// [`StreamReport::assert_conservation`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TaskFate {
    /// Matched to a worker in the given window.
    Assigned {
        /// Window in which the match happened.
        window: usize,
        /// Logical id of the winning worker.
        worker: u32,
        /// Seconds from arrival to the close of the matching window.
        latency: f64,
    },
    /// Dropped unserved after exhausting its time-to-live.
    Expired {
        /// Window after which the task was dropped.
        window: usize,
    },
    /// Still waiting when the stream ended.
    Pending,
}

/// Measures of one driven window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowReport {
    /// Window sequence number.
    pub index: usize,
    /// Nominal window start, seconds.
    pub start: f64,
    /// Nominal window end, seconds.
    pub end: f64,
    /// Task arrivals admitted this window.
    pub tasks_arrived: usize,
    /// Unserved tasks carried in from earlier windows.
    pub carried_in: usize,
    /// Workers on duty when the window was driven.
    pub workers_available: usize,
    /// Matches made.
    pub matched: usize,
    /// Tasks dropped at window close (time-to-live exhausted).
    pub expired: usize,
    /// Unserved tasks carried to the next window.
    pub carried_out: usize,
    /// Sum of matched-pair utilities (Section VII-C accounting).
    pub utility: f64,
    /// Sum of matched-pair real travel distances.
    pub distance: f64,
    /// Privacy budget published during this window.
    pub epsilon_spent: f64,
    /// Obfuscated-distance publications during this window.
    pub publications: usize,
    /// Protocol rounds the engine ran.
    pub rounds: usize,
    /// Wall time of the engine drive (windowing excluded).
    pub drive_time: Duration,
    /// Workers retired at window close (lifetime budget exhausted).
    pub workers_retired: usize,
    /// Workers departed at window close (matched, now serving).
    pub workers_departed: usize,
    /// Workers who completed a service cycle and re-entered the pool
    /// during this window ([`ServiceModel`](crate::ServiceModel) re-entry;
    /// always zero under `ServiceModel::Never`).
    pub workers_returned: usize,
    /// Workers whose remaining-budget guard was capped by the pacing
    /// controller this window (burn rate would have exhausted them
    /// within the forecast horizon). Zero unless
    /// [`StreamConfig::pacing`](crate::StreamConfig::pacing) is set.
    pub workers_throttled: usize,
    /// Fresh task arrivals held out of the window by admission control
    /// (first-time deferrals only). Zero unless
    /// [`StreamConfig::admission`](crate::StreamConfig::admission) is
    /// set.
    pub tasks_deferred: usize,
    /// Why the window closed when it did (adaptive windowing).
    pub cut: WindowCutDecision,
}

// Hand-written because `Duration` has no shim serde impl: `drive_time`
// round-trips as `{"secs": u64, "nanos": u32}`, everything else exactly
// as the derive would emit it.
impl Serialize for WindowReport {
    fn serialize_value(&self) -> serde::Value {
        let drive_time = serde::Value::Object(vec![
            (
                "secs".to_string(),
                self.drive_time.as_secs().serialize_value(),
            ),
            (
                "nanos".to_string(),
                self.drive_time.subsec_nanos().serialize_value(),
            ),
        ]);
        serde::Value::Object(vec![
            ("index".to_string(), self.index.serialize_value()),
            ("start".to_string(), self.start.serialize_value()),
            ("end".to_string(), self.end.serialize_value()),
            (
                "tasks_arrived".to_string(),
                self.tasks_arrived.serialize_value(),
            ),
            ("carried_in".to_string(), self.carried_in.serialize_value()),
            (
                "workers_available".to_string(),
                self.workers_available.serialize_value(),
            ),
            ("matched".to_string(), self.matched.serialize_value()),
            ("expired".to_string(), self.expired.serialize_value()),
            (
                "carried_out".to_string(),
                self.carried_out.serialize_value(),
            ),
            ("utility".to_string(), self.utility.serialize_value()),
            ("distance".to_string(), self.distance.serialize_value()),
            (
                "epsilon_spent".to_string(),
                self.epsilon_spent.serialize_value(),
            ),
            (
                "publications".to_string(),
                self.publications.serialize_value(),
            ),
            ("rounds".to_string(), self.rounds.serialize_value()),
            ("drive_time".to_string(), drive_time),
            (
                "workers_retired".to_string(),
                self.workers_retired.serialize_value(),
            ),
            (
                "workers_departed".to_string(),
                self.workers_departed.serialize_value(),
            ),
            (
                "workers_returned".to_string(),
                self.workers_returned.serialize_value(),
            ),
            (
                "workers_throttled".to_string(),
                self.workers_throttled.serialize_value(),
            ),
            (
                "tasks_deferred".to_string(),
                self.tasks_deferred.serialize_value(),
            ),
            ("cut".to_string(), self.cut.serialize_value()),
        ])
    }
}

impl Deserialize for WindowReport {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        fn field<'v>(v: &'v serde::Value, name: &str) -> Result<&'v serde::Value, serde::Error> {
            v.get(name)
                .ok_or_else(|| serde::Error(format!("WindowReport missing field {name:?}")))
        }
        let dt = field(v, "drive_time")?;
        let drive_time = Duration::new(
            u64::deserialize_value(field(dt, "secs")?)?,
            u32::deserialize_value(field(dt, "nanos")?)?,
        );
        Ok(WindowReport {
            index: usize::deserialize_value(field(v, "index")?)?,
            start: f64::deserialize_value(field(v, "start")?)?,
            end: f64::deserialize_value(field(v, "end")?)?,
            tasks_arrived: usize::deserialize_value(field(v, "tasks_arrived")?)?,
            carried_in: usize::deserialize_value(field(v, "carried_in")?)?,
            workers_available: usize::deserialize_value(field(v, "workers_available")?)?,
            matched: usize::deserialize_value(field(v, "matched")?)?,
            expired: usize::deserialize_value(field(v, "expired")?)?,
            carried_out: usize::deserialize_value(field(v, "carried_out")?)?,
            utility: f64::deserialize_value(field(v, "utility")?)?,
            distance: f64::deserialize_value(field(v, "distance")?)?,
            epsilon_spent: f64::deserialize_value(field(v, "epsilon_spent")?)?,
            publications: usize::deserialize_value(field(v, "publications")?)?,
            rounds: usize::deserialize_value(field(v, "rounds")?)?,
            drive_time,
            workers_retired: usize::deserialize_value(field(v, "workers_retired")?)?,
            workers_departed: usize::deserialize_value(field(v, "workers_departed")?)?,
            workers_returned: usize::deserialize_value(field(v, "workers_returned")?)?,
            workers_throttled: usize::deserialize_value(field(v, "workers_throttled")?)?,
            tasks_deferred: usize::deserialize_value(field(v, "tasks_deferred")?)?,
            cut: WindowCutDecision::deserialize_value(field(v, "cut")?)?,
        })
    }
}

/// The aggregate outcome of one stream run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StreamReport {
    /// Engine display name (paper legend style).
    pub engine: String,
    /// Per-window measures, in window order.
    pub windows: Vec<WindowReport>,
    /// Final fate of every task arrival, keyed by logical task id.
    pub fates: BTreeMap<u32, TaskFate>,
    /// Task arrivals observed.
    pub task_arrivals: usize,
    /// Worker arrivals observed.
    pub worker_arrivals: usize,
    /// Lifetime privacy budget charged per worker id (entries only for
    /// workers with non-zero committed spend). Under a finite
    /// `worker_capacity` with warm-start carry this never exceeds the
    /// capacity — the hard-cap guarantee the property tests pin.
    pub spend_by_worker: BTreeMap<u32, f64>,
    /// Semantic warnings attached by the pipeline (e.g. count windows
    /// under drop-pairs sharding close on shard-local arrivals and
    /// cannot align with an unsharded run). Surfaced by [`render`]
    /// and escalated to a hard error by `--strict` gating in the
    /// `stream` subcommand.
    ///
    /// [`render`]: StreamReport::render
    pub warnings: Vec<String>,
}

impl StreamReport {
    /// Tasks matched across all windows.
    pub fn matched(&self) -> usize {
        self.windows.iter().map(|w| w.matched).sum()
    }

    /// Tasks dropped unserved.
    pub fn expired(&self) -> usize {
        self.windows.iter().map(|w| w.expired).sum()
    }

    /// Tasks still waiting at stream end.
    pub fn pending(&self) -> usize {
        self.fates
            .values()
            .filter(|f| matches!(f, TaskFate::Pending))
            .count()
    }

    /// Total utility over all matches.
    pub fn total_utility(&self) -> f64 {
        self.windows.iter().map(|w| w.utility).sum()
    }

    /// Total real travel distance over all matches.
    pub fn total_distance(&self) -> f64 {
        self.windows.iter().map(|w| w.distance).sum()
    }

    /// Total privacy budget published.
    pub fn total_epsilon(&self) -> f64 {
        self.windows.iter().map(|w| w.epsilon_spent).sum()
    }

    /// Total engine wall time (the drain time of the stream).
    pub fn drive_time(&self) -> Duration {
        self.windows.iter().map(|w| w.drive_time).sum()
    }

    /// Matches per second of engine time; zero when nothing ran.
    pub fn throughput(&self) -> f64 {
        let secs = self.drive_time().as_secs_f64();
        if secs > 0.0 {
            self.matched() as f64 / secs
        } else {
            0.0
        }
    }

    /// Mean utility per match; zero when nothing matched.
    pub fn avg_utility(&self) -> f64 {
        let m = self.matched();
        if m > 0 {
            self.total_utility() / m as f64
        } else {
            0.0
        }
    }

    /// Mean seconds from task arrival to the close of its matching
    /// window; zero when nothing matched.
    pub fn mean_latency(&self) -> f64 {
        let (mut sum, mut n) = (0.0, 0usize);
        for f in self.fates.values() {
            if let TaskFate::Assigned { latency, .. } = f {
                sum += latency;
                n += 1;
            }
        }
        if n > 0 {
            sum / n as f64
        } else {
            0.0
        }
    }

    /// p95 of seconds from task arrival to the close of the matching
    /// window, over matched tasks; zero when nothing matched. The
    /// headline number the adaptive windowing controller targets.
    pub fn p95_latency(&self) -> f64 {
        let latencies: Vec<f64> = self
            .fates
            .values()
            .filter_map(|f| match f {
                TaskFate::Assigned { latency, .. } => Some(*latency),
                _ => None,
            })
            .collect();
        percentile(&latencies, 0.95)
    }

    /// Windows closed early by the adaptive burst trigger.
    pub fn windows_cut_early(&self) -> usize {
        self.windows
            .iter()
            .filter(|w| w.cut == WindowCutDecision::Burst)
            .count()
    }

    /// Windows run at a widened width (starved-pool adaptation).
    pub fn windows_widened(&self) -> usize {
        self.windows
            .iter()
            .filter(|w| w.cut == WindowCutDecision::Widened)
            .count()
    }

    /// Windows run at a narrowed width (latency-target adaptation).
    pub fn windows_narrowed(&self) -> usize {
        self.windows
            .iter()
            .filter(|w| w.cut == WindowCutDecision::Narrowed)
            .count()
    }

    /// Completed service cycles: workers who returned to the pool after
    /// serving a match. Zero under `ServiceModel::Never`
    /// (serve-and-leave).
    pub fn returns(&self) -> usize {
        self.windows.iter().map(|w| w.workers_returned).sum()
    }

    /// Worker-window throttle events applied by the budget-pacing
    /// controller. Zero unless
    /// [`StreamConfig::pacing`](crate::StreamConfig::pacing) is set.
    pub fn throttled(&self) -> usize {
        self.windows.iter().map(|w| w.workers_throttled).sum()
    }

    /// First-time task deferrals applied by admission control. Zero
    /// unless [`StreamConfig::admission`](crate::StreamConfig::admission)
    /// is set.
    pub fn deferred(&self) -> usize {
        self.windows.iter().map(|w| w.tasks_deferred).sum()
    }

    /// Matches per worker arrival — the fleet-utilization measure the
    /// `stream --reentry` gate compares across service models (worker
    /// re-entry recycles the fleet, so utilization can exceed what
    /// serve-and-leave reaches with the same arrivals). Zero when no
    /// workers arrived.
    pub fn utilization(&self) -> f64 {
        if self.worker_arrivals > 0 {
            self.matched() as f64 / self.worker_arrivals as f64
        } else {
            0.0
        }
    }

    /// Asserts the pipeline's conservation law: every task arrival has
    /// exactly one fate, and the per-window counters agree with the
    /// fate map. Returns `(matched, expired, pending)`.
    pub fn assert_conservation(&self) -> (usize, usize, usize) {
        assert_eq!(
            self.fates.len(),
            self.task_arrivals,
            "every task arrival must have exactly one fate"
        );
        let mut by_fate = (0usize, 0usize, 0usize);
        for f in self.fates.values() {
            match f {
                TaskFate::Assigned { .. } => by_fate.0 += 1,
                TaskFate::Expired { .. } => by_fate.1 += 1,
                TaskFate::Pending => by_fate.2 += 1,
            }
        }
        assert_eq!(by_fate.0, self.matched(), "fate map vs window matches");
        assert_eq!(by_fate.1, self.expired(), "fate map vs window expiries");
        assert_eq!(
            by_fate.0 + by_fate.1 + by_fate.2,
            self.task_arrivals,
            "assigned + expired + pending must cover every arrival"
        );
        by_fate
    }

    /// A copy with every wall-clock timing zeroed — the semantic view
    /// of the run. Two runs with the same seed must agree on this view
    /// exactly (engine wall time is the only thing allowed to vary).
    pub fn without_timing(&self) -> StreamReport {
        let mut r = self.clone();
        for w in &mut r.windows {
            w.drive_time = Duration::ZERO;
        }
        r
    }

    /// Renders the per-window table and the aggregate line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} — {} windows, {} tasks, {} workers\n",
            self.engine,
            self.windows.len(),
            self.task_arrivals,
            self.worker_arrivals
        ));
        out.push_str(
            "  win cut      span(s)  arr  carry  pool  match  exp  ret  util/match   eps  drive(ms)\n",
        );
        for w in &self.windows {
            let per_match = if w.matched > 0 {
                w.utility / w.matched as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {:>3}  {}  {:>6.0}-{:<6.0} {:>4} {:>6} {:>5} {:>6} {:>4} {:>4} {:>11.3} {:>5.1} {:>10.2}\n",
                w.index,
                w.cut.marker(),
                w.start,
                w.end,
                w.tasks_arrived,
                w.carried_in,
                w.workers_available,
                w.matched,
                w.expired,
                w.workers_returned,
                per_match,
                w.epsilon_spent,
                w.drive_time.as_secs_f64() * 1e3,
            ));
        }
        out.push_str(&format!(
            "  total: {} matched / {} expired / {} pending · utility {:.2} \
             (avg {:.3}) · latency mean {:.0} s / p95 {:.0} s · {:.0} matches/s\n",
            self.matched(),
            self.expired(),
            self.pending(),
            self.total_utility(),
            self.avg_utility(),
            self.mean_latency(),
            self.p95_latency(),
            self.throughput(),
        ));
        for w in &self.warnings {
            out.push_str(&format!("  warning: {w}\n"));
        }
        out
    }
}

/// The outcome of a sharded run: per-shard reports plus merged totals.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShardedReport {
    /// One report per shard, in shard-id order (empty shards included).
    pub shards: Vec<StreamReport>,
}

impl ShardedReport {
    /// Tasks matched across all shards.
    pub fn matched(&self) -> usize {
        self.shards.iter().map(StreamReport::matched).sum()
    }

    /// Total utility across all shards.
    pub fn total_utility(&self) -> f64 {
        self.shards.iter().map(StreamReport::total_utility).sum()
    }

    /// Total travel distance across all shards.
    pub fn total_distance(&self) -> f64 {
        self.shards.iter().map(StreamReport::total_distance).sum()
    }

    /// Total privacy budget published across all shards.
    pub fn total_epsilon(&self) -> f64 {
        self.shards.iter().map(StreamReport::total_epsilon).sum()
    }

    /// Wall time of the slowest shard — the parallel drain time.
    pub fn critical_path(&self) -> Duration {
        self.shards
            .iter()
            .map(StreamReport::drive_time)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Summed engine time across shards (the sequential-equivalent cost).
    pub fn total_drive_time(&self) -> Duration {
        self.shards.iter().map(StreamReport::drive_time).sum()
    }

    /// A copy with every shard's wall-clock timing zeroed — the
    /// semantic view of the sharded run (see
    /// [`StreamReport::without_timing`]).
    pub fn without_timing(&self) -> ShardedReport {
        ShardedReport {
            shards: self
                .shards
                .iter()
                .map(StreamReport::without_timing)
                .collect(),
        }
    }

    /// Distinct warnings across all shard reports, in first-seen order.
    pub fn warnings(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for s in &self.shards {
            for w in &s.warnings {
                if !seen.contains(w) {
                    seen.push(w.clone());
                }
            }
        }
        seen
    }

    /// Renders the shard summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "sharded × {}: {} matched · utility {:.2} · critical path {:.2} ms \
             (sum {:.2} ms)\n",
            self.shards.len(),
            self.matched(),
            self.total_utility(),
            self.critical_path().as_secs_f64() * 1e3,
            self.total_drive_time().as_secs_f64() * 1e3,
        ));
        for (k, s) in self.shards.iter().enumerate() {
            if s.task_arrivals == 0 && s.worker_arrivals == 0 {
                continue;
            }
            out.push_str(&format!(
                "  shard {:>2}: {} tasks, {} workers → {} matched, utility {:.2}\n",
                k,
                s.task_arrivals,
                s.worker_arrivals,
                s.matched(),
                s.total_utility(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(matched: usize, expired: usize, utility: f64) -> WindowReport {
        WindowReport {
            index: 0,
            start: 0.0,
            end: 1.0,
            tasks_arrived: matched + expired,
            carried_in: 0,
            workers_available: 3,
            matched,
            expired,
            carried_out: 0,
            utility,
            distance: 1.0,
            epsilon_spent: 0.5,
            publications: 2,
            rounds: 1,
            drive_time: Duration::from_millis(2),
            workers_retired: 0,
            workers_departed: matched,
            workers_returned: 0,
            workers_throttled: 0,
            tasks_deferred: 0,
            cut: WindowCutDecision::Scheduled,
        }
    }

    #[test]
    fn report_aggregates_windows_and_checks_conservation() {
        let mut fates = BTreeMap::new();
        fates.insert(
            0,
            TaskFate::Assigned {
                window: 0,
                worker: 9,
                latency: 30.0,
            },
        );
        fates.insert(1, TaskFate::Expired { window: 1 });
        fates.insert(2, TaskFate::Pending);
        let r = StreamReport {
            engine: "PUCE".into(),
            windows: vec![window(1, 0, 2.5), window(0, 1, 0.0)],
            fates,
            task_arrivals: 3,
            worker_arrivals: 2,
            spend_by_worker: BTreeMap::new(),
            warnings: Vec::new(),
        };
        assert_eq!(r.assert_conservation(), (1, 1, 1));
        assert_eq!(r.matched(), 1);
        assert_eq!(r.expired(), 1);
        assert_eq!(r.pending(), 1);
        assert!((r.total_utility() - 2.5).abs() < 1e-12);
        assert!((r.avg_utility() - 2.5).abs() < 1e-12);
        assert!((r.mean_latency() - 30.0).abs() < 1e-12);
        assert!(r.throughput() > 0.0);
        let text = r.render();
        assert!(text.contains("PUCE"));
        assert!(text.contains("1 matched / 1 expired / 1 pending"));
    }

    #[test]
    #[should_panic(expected = "exactly one fate")]
    fn missing_fate_fails_conservation() {
        let r = StreamReport {
            engine: "GRD".into(),
            windows: Vec::new(),
            fates: BTreeMap::new(),
            task_arrivals: 1,
            worker_arrivals: 0,
            spend_by_worker: BTreeMap::new(),
            warnings: Vec::new(),
        };
        r.assert_conservation();
    }

    #[test]
    fn sharded_report_merges_totals() {
        let one = StreamReport {
            engine: "GRD".into(),
            windows: vec![window(2, 0, 4.0)],
            fates: BTreeMap::new(),
            task_arrivals: 2,
            worker_arrivals: 2,
            spend_by_worker: BTreeMap::new(),
            warnings: Vec::new(),
        };
        let merged = ShardedReport {
            shards: vec![one.clone(), StreamReport::default(), one],
        };
        assert_eq!(merged.matched(), 4);
        assert!((merged.total_utility() - 8.0).abs() < 1e-12);
        assert!(merged.critical_path() >= Duration::from_millis(2));
        assert!(merged.total_drive_time() >= merged.critical_path());
        assert!(merged.render().contains("sharded × 3"));
    }
}
