//! Sharded execution: one engine run per spatial grid cell.
//!
//! Task assignment is spatially local — a worker only ever interacts
//! with tasks inside his service disc — so a stream whose workers'
//! discs never cross cell boundaries decomposes *exactly*: running one
//! driver per [`GridPartition`] cell on scoped threads produces, pair
//! for pair, the run the single-threaded driver would have produced,
//! at a wall-clock cost of the slowest shard instead of the sum.
//!
//! When discs do cross boundaries, the [`ShardStrategy`] decides what
//! happens: [`DropPairs`](ShardStrategy::DropPairs) never considers
//! cross-cell pairs (exact only on shard-disjoint input), while
//! [`Halo`](ShardStrategy::Halo) extends each shard with the foreign
//! workers whose service discs reach into its cell and reconciles the
//! shards' competing claims deterministically — near-exact on general
//! input, bit-for-bit equal to the unsharded run on disjoint input.
//! The protocol is documented in `ARCHITECTURE.md` ("Sharding & the
//! halo protocol").

use crate::driver::{StreamConfig, StreamDriver};
use crate::event::{ArrivalEvent, ArrivalStream};
use crate::halo::{self, HaloCore};
use crate::metrics::{ShardedReport, StreamReport};
use crate::session::{PushWindower, SessionCore, StepSignals, StreamSession};
use crate::snapshot::{ShardedModeSnapshot, ShardedSnapshot, SnapshotError, SNAPSHOT_VERSION};
use crate::window::{Window, WindowPolicy, Windower};
use dpta_core::AssignmentEngine;
use dpta_spatial::GridPartition;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The warning drop-pairs sharding attaches to every shard report when
/// it runs under a count policy: count windows close on shard-local
/// arrivals, so the sharded windows cannot align with an unsharded run
/// (or across shards). The `stream` subcommand's witness gate coerces
/// such runs to time windows and, under `--strict`, turns the coercion
/// into a hard error.
pub const COUNT_WINDOW_SHARD_WARNING: &str =
    "count windows close on shard-local arrivals: sharded windows do not align \
     with an unsharded run (use a time or adaptive policy for exact agreement)";

/// How sharded execution treats feasible pairs that cross cell
/// boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ShardStrategy {
    /// Route every entity to the cell owning its location and run the
    /// shards fully independently: cross-boundary pairs are silently
    /// dropped. Exact only on
    /// [shard-disjoint](ArrivalStream::is_shard_disjoint) input; the
    /// cheapest mode, and the baseline the halo protocol's recovered
    /// utility is measured against.
    #[default]
    DropPairs,
    /// The boundary-halo protocol: each shard's windows additionally
    /// include the foreign workers whose service discs reach into its
    /// cell ([`GridPartition::halo_shards`]), shards propose matches
    /// over interior ∪ halo, and a deterministic reconciliation pass
    /// resolves competing claims on shared workers (id-keyed,
    /// home-shard priority) so no worker is ever assigned twice and
    /// every release is charged exactly once. Bit-for-bit equal to the
    /// unsharded run on shard-disjoint input, near-exact in general.
    Halo,
}

/// Runs `stream` sharded by `partition` under the
/// [`DropPairs`](ShardStrategy::DropPairs) strategy: one independent
/// driver per cell, each on its own scoped thread sharing the one
/// `engine`. Cross-boundary pairs are never formed — use
/// [`run_sharded_halo`] (or [`run_sharded_with`]) when the workload is
/// not shard-disjoint; the halo protocol and its guarantees are
/// documented in `ARCHITECTURE.md` ("Sharding & the halo protocol").
///
/// Every shard is forced onto the same window sequence: the global
/// stream horizon is injected into each shard's configuration, so
/// [`WindowPolicy::ByTime`](crate::WindowPolicy::ByTime) windows line
/// up across shards (and with an
/// unsharded run of the same configuration). With a time policy and a
/// [shard-disjoint](ArrivalStream::is_shard_disjoint) stream, the
/// merged totals equal the unsharded run's exactly — asserted by the
/// crate's equivalence tests.
///
/// # Examples
///
/// ```
/// use dpta_core::Method;
/// use dpta_spatial::{Aabb, GridPartition};
/// use dpta_stream::{run_sharded, StreamConfig, StreamDriver, StreamScenario, WindowPolicy};
/// use dpta_workloads::{Dataset, Scenario};
///
/// let stream = StreamScenario::new(Scenario {
///     batch_size: 30,
///     n_batches: 2,
///     worker_range: 1.0,
///     ..Scenario::for_dataset(Dataset::Uniform)
/// })
/// .stream();
/// let cfg = StreamConfig {
///     policy: WindowPolicy::ByTime { width: 60.0 },
///     ..StreamConfig::default()
/// };
/// let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 100.0, 100.0), 2, 2);
/// let engine = Method::Grd.engine(&cfg.params);
/// let sharded = run_sharded(engine.as_ref(), &stream, &cfg, &part);
/// assert_eq!(sharded.shards.len(), 4);
/// let direct: usize = sharded.shards.iter().map(|s| s.task_arrivals).sum();
/// assert_eq!(direct, stream.n_tasks());
/// ```
pub fn run_sharded(
    engine: &dyn AssignmentEngine,
    stream: &ArrivalStream,
    cfg: &StreamConfig,
    partition: &GridPartition,
) -> ShardedReport {
    run_sharded_with(engine, stream, cfg, partition, ShardStrategy::DropPairs)
}

/// Runs `stream` sharded by `partition` under the boundary-halo
/// protocol ([`ShardStrategy::Halo`]): cross-boundary pairs are
/// recovered by replicating boundary workers into every cell their
/// service disc reaches and reconciling the shards' claims
/// deterministically. See [`run_sharded_with`] and the "Sharding & the
/// halo protocol" section of `ARCHITECTURE.md`.
///
/// # Examples
///
/// ```
/// use dpta_core::{Method, Task, Worker};
/// use dpta_spatial::{Aabb, GridPartition, Point};
/// use dpta_stream::{
///     run_sharded, run_sharded_halo, ArrivalEvent, ArrivalStream, StreamConfig, TaskArrival,
///     WindowPolicy, WorkerArrival,
/// };
///
/// // One worker left of x = 5, one task right of it: the only feasible
/// // pair crosses the shard boundary.
/// let stream = ArrivalStream::new(vec![
///     ArrivalEvent::Worker(WorkerArrival {
///         id: 0,
///         time: 0.0,
///         worker: Worker::new(Point::new(4.5, 5.0), 2.0),
///     }),
///     ArrivalEvent::Task(TaskArrival {
///         id: 0,
///         time: 1.0,
///         task: Task::new(Point::new(5.5, 5.0), 4.5),
///     }),
/// ]);
/// let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 10.0, 10.0), 2, 1);
/// let cfg = StreamConfig {
///     policy: WindowPolicy::ByTime { width: 10.0 },
///     ..StreamConfig::default()
/// };
/// let engine = Method::Grd.engine(&cfg.params);
/// // Drop-pairs sharding loses the pair; the halo recovers it.
/// assert_eq!(run_sharded(engine.as_ref(), &stream, &cfg, &part).matched(), 0);
/// assert_eq!(run_sharded_halo(engine.as_ref(), &stream, &cfg, &part).matched(), 1);
/// ```
pub fn run_sharded_halo(
    engine: &dyn AssignmentEngine,
    stream: &ArrivalStream,
    cfg: &StreamConfig,
    partition: &GridPartition,
) -> ShardedReport {
    run_sharded_with(engine, stream, cfg, partition, ShardStrategy::Halo)
}

/// Runs `stream` sharded by `partition` under an explicit
/// [`ShardStrategy`]. [`run_sharded`] and [`run_sharded_halo`] are the
/// two named conveniences.
pub fn run_sharded_with(
    engine: &dyn AssignmentEngine,
    stream: &ArrivalStream,
    cfg: &StreamConfig,
    partition: &GridPartition,
    strategy: ShardStrategy,
) -> ShardedReport {
    run_sharded_pooled(engine, stream, cfg, partition, strategy, None)
}

/// [`run_sharded_with`] with an explicit worker-pool size.
///
/// `pool` bounds the number of OS threads executing shard jobs
/// (`None` = one per available core). The report is **byte-identical
/// for every pool size**: each shard's run is a deterministic function
/// of its sub-stream alone, and results land in a slot fixed by shard
/// index, so neither the thread that ran a shard nor the order shards
/// finished is observable — pinned across pool sizes 1/2/8 by the
/// scale-properties suite. The knob only applies to static-policy
/// [`DropPairs`](ShardStrategy::DropPairs) runs; adaptive drop-pairs
/// and the halo protocol window globally and coordinate shards
/// sequentially, so they ignore it.
pub fn run_sharded_pooled(
    engine: &dyn AssignmentEngine,
    stream: &ArrivalStream,
    cfg: &StreamConfig,
    partition: &GridPartition,
    strategy: ShardStrategy,
    pool: Option<usize>,
) -> ShardedReport {
    match strategy {
        ShardStrategy::DropPairs => run_drop_pairs(engine, stream, cfg, partition, pool),
        ShardStrategy::Halo => halo::run_halo(engine, stream, cfg, partition),
    }
}

/// The independent-drivers implementation behind
/// [`ShardStrategy::DropPairs`]: a deterministic work-stealing pool.
///
/// Populated shards become jobs in one shared queue, ordered largest
/// first (longest-processing-time): under static striping one hotspot
/// cell landing late in a thread's stripe serializes the whole run,
/// while here every idle thread steals the next-heaviest remaining
/// shard, so the makespan approaches the max(shard, total/threads)
/// lower bound on skewed input. Determinism is by construction, not by
/// scheduling: each shard's report is a pure function of its sub-stream
/// and the shared configuration, and reports land in `slots[k]` keyed
/// by shard index — which thread ran a shard, and in which order shards
/// finished, is unobservable in the merged output.
fn run_drop_pairs(
    engine: &dyn AssignmentEngine,
    stream: &ArrivalStream,
    cfg: &StreamConfig,
    partition: &GridPartition,
    pool: Option<usize>,
) -> ShardedReport {
    if matches!(cfg.policy, WindowPolicy::Adaptive(_)) {
        // Adaptive cuts depend on run feedback, so shards cannot window
        // their sub-streams independently: one controller windows the
        // merged global stream and every shard steps in lockstep.
        return run_drop_pairs_adaptive(engine, stream, cfg, partition);
    }
    let horizon = cfg.horizon.unwrap_or_else(|| stream.horizon());
    let shard_cfg = StreamConfig {
        horizon: Some(horizon),
        ..cfg.clone()
    };
    let sub_streams = stream.shard(partition);

    // Empty cells cost nothing: no job, no drive, an empty report.
    // Heaviest shards first (ties broken by shard index, so the queue
    // order itself is deterministic).
    let mut jobs: Vec<usize> = sub_streams
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.events().is_empty())
        .map(|(k, _)| k)
        .collect();
    jobs.sort_by_key(|&k| (std::cmp::Reverse(sub_streams[k].events().len()), k));
    let threads = jobs.len().min(
        pool.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(8)
        })
        .max(1),
    );

    let mut slots: Vec<Option<StreamReport>> = sub_streams
        .iter()
        .map(|_| {
            Some(StreamReport {
                engine: engine.name().to_string(),
                ..StreamReport::default()
            })
        })
        .collect();
    if threads > 0 {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let driven: Vec<(usize, StreamReport)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let jobs = &jobs;
                    let next = &next;
                    let sub_streams = &sub_streams;
                    let shard_cfg = &shard_cfg;
                    s.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(&k) = jobs.get(i) else { break };
                            let driver = StreamDriver::new(engine, shard_cfg.clone());
                            out.push((k, driver.run(&sub_streams[k])));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("shard thread panicked"))
                .collect()
        });
        for (k, report) in driven {
            slots[k] = Some(report);
        }
    }
    let mut shards: Vec<StreamReport> = slots.into_iter().map(|s| s.expect("shard ran")).collect();
    // ROADMAP leftover, now explicit: count windows close on shard-local
    // arrivals and silently misalign across shards — say so on every
    // populated shard's report instead of leaving it to folklore.
    if matches!(cfg.policy, WindowPolicy::ByCount { .. }) && partition.n_shards() > 1 {
        for s in shards
            .iter_mut()
            .filter(|s| s.task_arrivals > 0 || s.worker_arrivals > 0)
        {
            s.warnings.push(COUNT_WINDOW_SHARD_WARNING.to_string());
        }
    }
    ShardedReport { shards }
}

/// Lockstep drop-pairs execution for [`WindowPolicy::Adaptive`]: one
/// [`Windower`] forms windows off the merged global stream, each window
/// is projected onto every shard (tasks and workers filtered by owning
/// cell), all shard sessions step it, and the *merged* shard signals
/// feed the controller — so the cut sequence equals the unsharded
/// run's on shard-disjoint input bit for bit. Shards step sequentially
/// inside a window (the controller needs every shard's signals before
/// the next cut); the engine drives stay the dominant cost, exactly as
/// in the halo coordinator.
fn run_drop_pairs_adaptive(
    engine: &dyn AssignmentEngine,
    stream: &ArrivalStream,
    cfg: &StreamConfig,
    partition: &GridPartition,
) -> ShardedReport {
    let horizon = cfg.horizon.unwrap_or_else(|| stream.horizon());
    let mut former = Windower::new(cfg.policy, stream, Some(horizon));
    let n_shards = partition.n_shards();
    let mut sessions: Vec<SessionCore> = (0..n_shards)
        .map(|_| SessionCore::new(engine, cfg.clone()))
        .collect();
    let mut shard_tasks = vec![0usize; n_shards];
    let mut shard_workers = vec![0usize; n_shards];
    while let Some(window) = former.next_window() {
        let cut = former.last_decision();
        let signals: Vec<StepSignals> = sessions
            .iter_mut()
            .enumerate()
            .map(|(k, session)| {
                let projected = project_window(&window, partition, k);
                shard_tasks[k] += projected.tasks.len();
                shard_workers[k] += projected.workers.len();
                session.step(&projected, cut)
            })
            .collect();
        former.observe(&StepSignals::merge(&signals));
    }
    ShardedReport {
        shards: sessions
            .into_iter()
            .enumerate()
            .map(|(k, session)| session.finish(shard_tasks[k], shard_workers[k]))
            .collect(),
    }
}

/// Shard `k`'s view of a globally-formed window: the same span, holding
/// only the tasks and workers whose locations the cell owns. Relative
/// event order is preserved.
fn project_window(window: &Window, partition: &GridPartition, k: usize) -> Window {
    Window {
        index: window.index,
        start: window.start,
        end: window.end,
        tasks: window
            .tasks
            .iter()
            .filter(|t| partition.shard_of(&t.task.location) == k)
            .copied()
            .collect(),
        workers: window
            .workers
            .iter()
            .filter(|w| partition.shard_of(&w.worker.location) == k)
            .copied()
            .collect(),
    }
}

/// The push-based counterpart of [`run_sharded_with`]: one durable
/// session over a spatial partition, fed events one at a time.
///
/// `push(event)` routes by the entity's location, `advance_to(t)`
/// declares the global event-time watermark, and `close()` settles the
/// per-shard [`ShardedReport`] — draining a pre-built stream through a
/// `ShardedSession` reproduces the batch runner of the same strategy
/// bit for bit (the crash-resume suite pins this). Like
/// [`StreamSession`](crate::StreamSession), a mid-run session can be
/// captured with [`snapshot`](Self::snapshot) and reopened with
/// [`restore`](Self::restore); execution mode follows the batch
/// runners: independent per-shard sessions for static drop-pairs
/// policies, one lockstep windower for adaptive drop-pairs, and the
/// halo coordinator for [`ShardStrategy::Halo`].
///
/// The typed per-event outcome log is a flat-session feature; the
/// sharded session reports through its per-shard window reports and
/// fates instead.
///
/// # Examples
///
/// ```
/// use dpta_core::Method;
/// use dpta_spatial::{Aabb, GridPartition};
/// use dpta_stream::{
///     run_sharded, ShardStrategy, ShardedSession, StreamConfig, StreamScenario, WindowPolicy,
/// };
/// use dpta_workloads::{Dataset, Scenario};
///
/// let stream = StreamScenario::new(Scenario {
///     batch_size: 30,
///     n_batches: 2,
///     worker_range: 1.0,
///     ..Scenario::for_dataset(Dataset::Uniform)
/// })
/// .stream();
/// let cfg = StreamConfig {
///     policy: WindowPolicy::ByTime { width: 60.0 },
///     ..StreamConfig::default()
/// };
/// let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 100.0, 100.0), 2, 2);
/// let engine = Method::Grd.engine(&cfg.params);
///
/// let mut session = ShardedSession::new(engine.as_ref(), cfg.clone(), &part, ShardStrategy::DropPairs);
/// for &event in stream.events() {
///     session.push(event);
/// }
/// let pushed = session.close();
/// let batch = run_sharded(engine.as_ref(), &stream, &cfg, &part);
/// assert_eq!(pushed.matched(), batch.matched());
/// ```
pub struct ShardedSession<'e, 'p> {
    engine: &'e dyn AssignmentEngine,
    cfg: StreamConfig,
    partition: &'p GridPartition,
    strategy: ShardStrategy,
    watermark: f64,
    task_ids: BTreeSet<u32>,
    worker_ids: BTreeSet<u32>,
    /// `None` once closed.
    mode: Option<Mode<'e>>,
}

/// The three sharded execution modes, mirroring the batch runners.
// One mode lives per session and is never collected, so the size skew
// between variants costs nothing — boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
enum Mode<'e> {
    /// Static drop-pairs policies: fully independent per-shard
    /// sessions, the global span injected at close (the batch runner's
    /// horizon injection).
    PerShard {
        shards: Vec<StreamSession<'e>>,
        /// Events routed to each shard so far — only shards that
        /// received input are horizon-extended and watermarked (empty
        /// cells must close to empty reports, exactly like the batch
        /// runner's undriven slots).
        received: Vec<usize>,
        max_event_time: f64,
    },
    /// Adaptive drop-pairs: one global windower cuts for every shard,
    /// fed the merged shard signals.
    Lockstep {
        former: PushWindower,
        cores: Vec<SessionCore<'e>>,
        shard_tasks: Vec<usize>,
        shard_workers: Vec<usize>,
    },
    /// The boundary-halo protocol behind a push windower.
    Halo {
        former: PushWindower,
        core: HaloCore<'e>,
    },
}

/// Per-shard sessions never see the user's horizon directly: the batch
/// runner injects the *global* span into populated shards only, so the
/// wrapper strips the horizon at construction and injects it via
/// [`StreamSession::extend_horizon`] at close.
fn per_shard_config(cfg: &StreamConfig) -> StreamConfig {
    StreamConfig {
        horizon: None,
        ..cfg.clone()
    }
}

impl<'e, 'p> ShardedSession<'e, 'p> {
    /// Opens a sharded session for `engine` under `cfg`, partitioned by
    /// `partition` under `strategy`. Panics on degenerate configuration
    /// (the same invariants as
    /// [`StreamSession::new`](crate::StreamSession::new)).
    pub fn new(
        engine: &'e dyn AssignmentEngine,
        cfg: StreamConfig,
        partition: &'p GridPartition,
        strategy: ShardStrategy,
    ) -> Self {
        assert!(cfg.task_ttl >= 1, "task_ttl must be at least 1");
        assert!(cfg.budget_group_size >= 1, "budget group must be non-empty");
        assert!(
            cfg.worker_capacity > 0.0,
            "worker_capacity must be positive"
        );
        cfg.service.validate();
        let n = partition.n_shards();
        let mode = match (strategy, cfg.policy) {
            (ShardStrategy::Halo, _) => Mode::Halo {
                former: PushWindower::new(cfg.policy, cfg.horizon),
                core: HaloCore::new(engine, cfg.clone(), n),
            },
            (ShardStrategy::DropPairs, WindowPolicy::Adaptive(_)) => Mode::Lockstep {
                former: PushWindower::new(cfg.policy, cfg.horizon),
                cores: (0..n)
                    .map(|_| SessionCore::new(engine, cfg.clone()))
                    .collect(),
                shard_tasks: vec![0; n],
                shard_workers: vec![0; n],
            },
            (ShardStrategy::DropPairs, _) => Mode::PerShard {
                shards: (0..n)
                    .map(|_| StreamSession::new(engine, per_shard_config(&cfg)))
                    .collect(),
                received: vec![0; n],
                max_event_time: 0.0,
            },
        };
        ShardedSession {
            engine,
            cfg,
            partition,
            strategy,
            watermark: 0.0,
            task_ids: BTreeSet::new(),
            worker_ids: BTreeSet::new(),
            mode: Some(mode),
        }
    }

    /// The configuration this session runs under.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// The current global event-time watermark.
    pub fn now(&self) -> f64 {
        self.watermark
    }

    /// Feeds one arrival event, routed to the shard owning its
    /// location. Panics under the same invariants as
    /// [`StreamSession::push`](crate::StreamSession::push) — ids are
    /// unique per entity kind *globally*, across shards.
    pub fn push(&mut self, event: ArrivalEvent) {
        let t = event.time();
        assert!(
            t.is_finite() && t >= 0.0,
            "arrival time must be finite and >= 0, got {t}"
        );
        assert!(
            t >= self.watermark,
            "late arrival: event at t = {t} is below the watermark {} \
             (its window may already be driven)",
            self.watermark
        );
        let fresh = match &event {
            ArrivalEvent::Task(a) => self.task_ids.insert(a.id),
            ArrivalEvent::Worker(a) => self.worker_ids.insert(a.id),
        };
        assert!(fresh, "arrival ids must be unique per entity kind");
        let partition = self.partition;
        match self.mode.as_mut().expect("push on a closed session") {
            Mode::PerShard {
                shards,
                received,
                max_event_time,
            } => {
                *max_event_time = max_event_time.max(t);
                let loc = match &event {
                    ArrivalEvent::Task(a) => a.task.location,
                    ArrivalEvent::Worker(a) => a.worker.location,
                };
                let k = partition.shard_of(&loc);
                shards[k].push(event);
                received[k] += 1;
            }
            Mode::Lockstep { former, .. } | Mode::Halo { former, .. } => former.push(event),
        }
    }

    /// Advances the global watermark to `t` (monotone; lower values are
    /// no-ops) and drives every window that closes before it, in every
    /// shard.
    pub fn advance_to(&mut self, t: f64) {
        assert!(self.mode.is_some(), "advance_to on a closed session");
        assert!(
            t.is_finite() && t >= 0.0,
            "watermark must be finite, got {t}"
        );
        if t <= self.watermark {
            return;
        }
        self.watermark = t;
        let partition = self.partition;
        match self.mode.as_mut().expect("mode present") {
            Mode::PerShard {
                shards, received, ..
            } => {
                for (k, s) in shards.iter_mut().enumerate() {
                    if received[k] > 0 {
                        s.advance_to(t);
                    }
                }
            }
            Mode::Lockstep {
                former,
                cores,
                shard_tasks,
                shard_workers,
            } => {
                former.watermark = t;
                former.any_input = true;
                drive_lockstep(former, cores, partition, shard_tasks, shard_workers, false);
            }
            Mode::Halo { former, core } => {
                former.watermark = t;
                former.any_input = true;
                drive_halo(former, core, partition, false);
            }
        }
    }

    /// Drives every remaining window in every shard (trailing empties
    /// included) and settles the per-shard reports. Panics if called
    /// twice.
    pub fn close(&mut self) -> ShardedReport {
        let mode = self.mode.take().expect("close on a closed session");
        match mode {
            Mode::PerShard {
                mut shards,
                received,
                max_event_time,
            } => {
                // The batch runner's horizon injection: every populated
                // shard is forced onto the window grid of the *global*
                // span, so windows line up across shards.
                let inject = self
                    .cfg
                    .horizon
                    .unwrap_or_else(|| max_event_time.max(self.watermark));
                let mut reports = Vec::with_capacity(shards.len());
                for (k, s) in shards.iter_mut().enumerate() {
                    if received[k] > 0 {
                        s.extend_horizon(inject);
                    }
                    reports.push(s.close());
                }
                if matches!(self.cfg.policy, WindowPolicy::ByCount { .. }) && reports.len() > 1 {
                    for s in reports
                        .iter_mut()
                        .filter(|s| s.task_arrivals > 0 || s.worker_arrivals > 0)
                    {
                        s.warnings.push(COUNT_WINDOW_SHARD_WARNING.to_string());
                    }
                }
                ShardedReport { shards: reports }
            }
            Mode::Lockstep {
                mut former,
                cores,
                mut shard_tasks,
                mut shard_workers,
            } => {
                let mut cores = cores;
                drive_lockstep(
                    &mut former,
                    &mut cores,
                    self.partition,
                    &mut shard_tasks,
                    &mut shard_workers,
                    true,
                );
                ShardedReport {
                    shards: cores
                        .into_iter()
                        .enumerate()
                        .map(|(k, core)| core.finish(shard_tasks[k], shard_workers[k]))
                        .collect(),
                }
            }
            Mode::Halo {
                mut former,
                mut core,
            } => {
                drive_halo(&mut former, &mut core, self.partition, true);
                core.finish(self.partition)
            }
        }
    }

    /// Captures the sharded session's full state — every shard's
    /// windower and pipeline state, or the halo coordinator's global
    /// protocol state — as a versioned [`ShardedSnapshot`]. Panics on a
    /// closed session.
    pub fn snapshot(&self) -> ShardedSnapshot {
        let mode = self.mode.as_ref().expect("snapshot on a closed session");
        let mode_snap = match mode {
            Mode::PerShard {
                shards,
                max_event_time,
                ..
            } => ShardedModeSnapshot::PerShard {
                shards: shards.iter().map(StreamSession::snapshot).collect(),
                max_event_time: *max_event_time,
            },
            Mode::Lockstep {
                former,
                cores,
                shard_tasks,
                shard_workers,
            } => ShardedModeSnapshot::Lockstep {
                windower: former.snapshot(),
                cores: cores.iter().map(SessionCore::snapshot).collect(),
                shard_tasks: shard_tasks.clone(),
                shard_workers: shard_workers.clone(),
            },
            Mode::Halo { former, core } => ShardedModeSnapshot::Halo {
                windower: former.snapshot(),
                core: core.snapshot(),
            },
        };
        ShardedSnapshot {
            version: SNAPSHOT_VERSION,
            engine: self.engine.name().to_string(),
            config: self.cfg.clone(),
            strategy: self.strategy,
            n_shards: self.partition.n_shards(),
            watermark: self.watermark,
            task_ids: self.task_ids.clone(),
            worker_ids: self.worker_ids.clone(),
            mode: mode_snap,
        }
    }

    /// Reopens a sharded session from a snapshot taken by
    /// [`ShardedSession::snapshot`]. Engine, configuration, strategy
    /// and partition shard count must all match what the snapshot was
    /// taken under — mismatches are rejected with the same typed errors
    /// as [`StreamSession::restore`](crate::StreamSession::restore),
    /// with `"strategy"` and `"partition"` as additional
    /// [`SnapshotError::ConfigMismatch`] fields.
    pub fn restore(
        engine: &'e dyn AssignmentEngine,
        cfg: StreamConfig,
        partition: &'p GridPartition,
        strategy: ShardStrategy,
        snapshot: &ShardedSnapshot,
    ) -> Result<Self, SnapshotError> {
        snapshot.validate(engine.name(), &cfg, partition.n_shards(), strategy)?;
        let n = partition.n_shards();
        let bad_len = |what: &str| {
            Err(SnapshotError::Malformed(format!(
                "sharded snapshot's {what} does not cover every shard of the partition"
            )))
        };
        let mode = match (&snapshot.mode, strategy, cfg.policy) {
            (
                ShardedModeSnapshot::PerShard {
                    shards,
                    max_event_time,
                },
                ShardStrategy::DropPairs,
                policy,
            ) if !matches!(policy, WindowPolicy::Adaptive(_)) => {
                if shards.len() != n {
                    return bad_len("per-shard session list");
                }
                let received = shards.iter().map(|s| s.n_tasks + s.n_workers).collect();
                let sessions = shards
                    .iter()
                    .map(|s| StreamSession::restore(engine, per_shard_config(&cfg), s))
                    .collect::<Result<Vec<_>, _>>()?;
                Mode::PerShard {
                    shards: sessions,
                    received,
                    max_event_time: *max_event_time,
                }
            }
            (
                ShardedModeSnapshot::Lockstep {
                    windower,
                    cores,
                    shard_tasks,
                    shard_workers,
                },
                ShardStrategy::DropPairs,
                WindowPolicy::Adaptive(_),
            ) => {
                if cores.len() != n || shard_tasks.len() != n || shard_workers.len() != n {
                    return bad_len("lockstep core list");
                }
                Mode::Lockstep {
                    former: PushWindower::from_snapshot(cfg.policy, cfg.horizon, windower)?,
                    cores: cores
                        .iter()
                        .map(|c| SessionCore::from_snapshot(engine, cfg.clone(), c))
                        .collect(),
                    shard_tasks: shard_tasks.clone(),
                    shard_workers: shard_workers.clone(),
                }
            }
            (ShardedModeSnapshot::Halo { windower, core }, ShardStrategy::Halo, _) => Mode::Halo {
                former: PushWindower::from_snapshot(cfg.policy, cfg.horizon, windower)?,
                core: HaloCore::from_snapshot(engine, cfg.clone(), partition, core)?,
            },
            _ => {
                return Err(SnapshotError::Malformed(
                    "snapshot execution mode does not match the strategy/policy mode".to_string(),
                ))
            }
        };
        Ok(ShardedSession {
            engine,
            cfg,
            partition,
            strategy,
            watermark: snapshot.watermark,
            task_ids: snapshot.task_ids.clone(),
            worker_ids: snapshot.worker_ids.clone(),
            mode: Some(mode),
        })
    }
}

/// The lockstep drive loop shared by `advance_to` and `close`: project
/// every ready global window onto every shard, step all cores, feed
/// the merged signals back — the push-mode mirror of the batch
/// adaptive runner.
fn drive_lockstep(
    former: &mut PushWindower,
    cores: &mut [SessionCore],
    partition: &GridPartition,
    shard_tasks: &mut [usize],
    shard_workers: &mut [usize],
    drain: bool,
) {
    while let Some(window) = former.next_ready(drain) {
        let cut = former.last_decision;
        let signals: Vec<StepSignals> = cores
            .iter_mut()
            .enumerate()
            .map(|(k, core)| {
                let projected = project_window(&window, partition, k);
                shard_tasks[k] += projected.tasks.len();
                shard_workers[k] += projected.workers.len();
                core.step(&projected, cut)
            })
            .collect();
        former.observe(&StepSignals::merge(&signals));
    }
}

/// The halo drive loop shared by `advance_to` and `close`: step the
/// coordinator over every ready globally-formed window.
fn drive_halo(
    former: &mut PushWindower,
    core: &mut HaloCore,
    partition: &GridPartition,
    drain: bool,
) {
    while let Some(window) = former.next_ready(drain) {
        let cut = former.last_decision;
        let signals = core.step_window(partition, &window, cut);
        if former.needs_feedback() {
            former.observe(&StepSignals::merge(std::slice::from_ref(&signals)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ArrivalEvent, TaskArrival, WorkerArrival};
    use crate::window::WindowPolicy;
    use dpta_core::{Method, Task, Worker};
    use dpta_spatial::{Aabb, Point};

    /// Two clusters, one per cell of a 2×1 partition, discs interior.
    fn disjoint_stream() -> ArrivalStream {
        let mut events = Vec::new();
        for (k, cx) in [2.5f64, 7.5].into_iter().enumerate() {
            events.push(ArrivalEvent::Worker(WorkerArrival {
                id: k as u32,
                time: 0.0,
                worker: Worker::new(Point::new(cx, 5.0), 1.0),
            }));
            events.push(ArrivalEvent::Task(TaskArrival {
                id: k as u32,
                time: 3.0 + k as f64,
                task: Task::new(Point::new(cx + 0.5, 5.0), 4.5),
            }));
        }
        ArrivalStream::new(events)
    }

    #[test]
    fn sharded_totals_match_unsharded_on_disjoint_input() {
        let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 10.0, 10.0), 2, 1);
        let stream = disjoint_stream();
        assert!(stream.is_shard_disjoint(&part));
        let cfg = StreamConfig {
            policy: WindowPolicy::ByTime { width: 5.0 },
            ..StreamConfig::default()
        };
        for method in [Method::Puce, Method::Grd] {
            let engine = method.engine(&cfg.params);
            let flat = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&stream);
            let sharded = run_sharded(engine.as_ref(), &stream, &cfg, &part);
            assert_eq!(sharded.matched(), flat.matched(), "{method}");
            assert!(
                (sharded.total_utility() - flat.total_utility()).abs() < 1e-9,
                "{method}: {} vs {}",
                sharded.total_utility(),
                flat.total_utility()
            );
            assert!(
                (sharded.total_epsilon() - flat.total_epsilon()).abs() < 1e-9,
                "{method}"
            );
        }
    }

    #[test]
    fn halo_matches_flat_exactly_on_disjoint_input() {
        // On shard-disjoint input no worker has a halo, so the halo
        // coordinator must reproduce the unsharded run fate for fate —
        // private engines included.
        let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 10.0, 10.0), 2, 1);
        let stream = disjoint_stream();
        assert!(stream.is_shard_disjoint(&part));
        let cfg = StreamConfig {
            policy: WindowPolicy::ByTime { width: 5.0 },
            ..StreamConfig::default()
        };
        for method in [Method::Puce, Method::Pgt, Method::Grd] {
            let engine = method.engine(&cfg.params);
            let flat = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&stream);
            let halo = run_sharded_halo(engine.as_ref(), &stream, &cfg, &part);
            assert_eq!(halo.matched(), flat.matched(), "{method}");
            assert!(
                (halo.total_utility() - flat.total_utility()).abs() < 1e-9,
                "{method}"
            );
            assert!(
                (halo.total_epsilon() - flat.total_epsilon()).abs() < 1e-9,
                "{method}"
            );
            let mut halo_fates: Vec<(u32, crate::TaskFate)> = halo
                .shards
                .iter()
                .flat_map(|s| s.fates.iter().map(|(&id, &f)| (id, f)))
                .collect();
            halo_fates.sort_by_key(|&(id, _)| id);
            let flat_fates: Vec<(u32, crate::TaskFate)> =
                flat.fates.iter().map(|(&id, &f)| (id, f)).collect();
            assert_eq!(halo_fates, flat_fates, "{method}: fates must be identical");
        }
    }

    #[test]
    fn halo_recovers_cross_boundary_pairs_dropped_by_default_sharding() {
        // Workers sit left of x = 5, their only reachable tasks right
        // of it: drop-pairs sharding matches nothing, the halo protocol
        // matches everything.
        let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 10.0, 10.0), 2, 1);
        let mut events = Vec::new();
        for k in 0..3u32 {
            let y = 2.0 + 2.0 * k as f64;
            events.push(ArrivalEvent::Worker(WorkerArrival {
                id: k,
                time: 0.0,
                worker: Worker::new(Point::new(4.6, y), 1.0),
            }));
            events.push(ArrivalEvent::Task(TaskArrival {
                id: k,
                time: 1.0 + k as f64,
                task: Task::new(Point::new(5.2, y), 4.5),
            }));
        }
        let stream = ArrivalStream::new(events);
        assert!(!stream.is_shard_disjoint(&part));
        let cfg = StreamConfig {
            policy: WindowPolicy::ByTime { width: 10.0 },
            ..StreamConfig::default()
        };
        for method in [Method::Puce, Method::Pgt, Method::Grd] {
            let engine = method.engine(&cfg.params);
            let flat = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&stream);
            let dropped = run_sharded(engine.as_ref(), &stream, &cfg, &part);
            let halo = run_sharded_halo(engine.as_ref(), &stream, &cfg, &part);
            assert_eq!(
                dropped.matched(),
                0,
                "{method}: drop-pairs loses everything"
            );
            // Here every feasible pair crosses the boundary, so the
            // halo recovers exactly what the unsharded run matches —
            // which is everything the (noisy) engine accepts.
            assert_eq!(
                halo.matched(),
                flat.matched(),
                "{method}: the halo must recover the unsharded matching"
            );
            assert!(flat.matched() > 0, "{method}: nothing matched at all");
            assert!(
                (halo.total_utility() - flat.total_utility()).abs() < 1e-9,
                "{method}"
            );
            assert!(halo.total_utility() > dropped.total_utility(), "{method}");
            // Every shard's report still conserves its own tasks.
            for s in &halo.shards {
                s.assert_conservation();
            }
        }
    }

    #[test]
    fn halo_reconciliation_gives_contested_workers_to_their_home_shard() {
        // One worker on the boundary reachable-by both cells' tasks;
        // both shards propose him. Home-shard priority must win, the
        // loser's task must carry over (and expire under its TTL), and
        // the worker must be assigned exactly once.
        let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 10.0, 10.0), 2, 1);
        let events = vec![
            ArrivalEvent::Worker(WorkerArrival {
                id: 0,
                time: 0.0,
                worker: Worker::new(Point::new(4.8, 5.0), 1.0),
            }),
            // Home-cell task (left of x = 5).
            ArrivalEvent::Task(TaskArrival {
                id: 0,
                time: 1.0,
                task: Task::new(Point::new(4.2, 5.0), 4.5),
            }),
            // Foreign-cell task (right of x = 5), same distance class.
            ArrivalEvent::Task(TaskArrival {
                id: 1,
                time: 1.0,
                task: Task::new(Point::new(5.4, 5.0), 4.5),
            }),
        ];
        let stream = ArrivalStream::new(events);
        let cfg = StreamConfig {
            policy: WindowPolicy::ByTime { width: 10.0 },
            task_ttl: 1,
            ..StreamConfig::default()
        };
        let engine = Method::Grd.engine(&cfg.params);
        let halo = run_sharded_halo(engine.as_ref(), &stream, &cfg, &part);
        assert_eq!(halo.matched(), 1, "one worker serves exactly one task");
        // The home shard (0) won the contested worker.
        assert_eq!(halo.shards[0].matched(), 1);
        assert_eq!(halo.shards[1].matched(), 0);
        assert!(matches!(
            halo.shards[0].fates[&0],
            crate::TaskFate::Assigned { worker: 0, .. }
        ));
        assert!(matches!(
            halo.shards[1].fates[&1],
            crate::TaskFate::Expired { .. }
        ));
    }

    #[test]
    fn halo_resolves_mutual_loss_cycles_even_beside_clean_commits() {
        // Shards 0 and 1 each claim both boundary workers: worker 0
        // (home 1) and worker 1 (home 0) go to their home shards and
        // each shard loses one claim — a mutual-loss cycle with no
        // clean candidate. Shard 2 holds an unrelated interior pair
        // that commits cleanly with no losers in the same pass.
        // Regression: reconciliation must not treat that loser-free
        // clean pass as "window done" and abandon the cycle — both
        // boundary workers must still end up matched.
        let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 30.0, 10.0), 3, 1);
        let mut events = vec![
            ArrivalEvent::Worker(WorkerArrival {
                id: 0,
                time: 0.0,
                worker: Worker::new(Point::new(10.5, 5.0), 3.0), // home shard 1
            }),
            ArrivalEvent::Worker(WorkerArrival {
                id: 1,
                time: 0.0,
                worker: Worker::new(Point::new(9.5, 5.0), 3.0), // home shard 0
            }),
            ArrivalEvent::Worker(WorkerArrival {
                id: 2,
                time: 0.0,
                worker: Worker::new(Point::new(25.0, 5.0), 1.0), // interior, shard 2
            }),
            ArrivalEvent::Task(TaskArrival {
                id: 4,
                time: 1.0,
                task: Task::new(Point::new(25.5, 5.0), 4.5), // shard 2
            }),
        ];
        // Two tasks per boundary shard, all reachable by both boundary
        // workers, so each shard's engine claims both workers.
        for (id, x) in [(0u32, 9.0), (1, 9.8), (2, 10.2), (3, 11.0)] {
            events.push(ArrivalEvent::Task(TaskArrival {
                id,
                time: 1.0,
                task: Task::new(Point::new(x, 5.0), 4.5),
            }));
        }
        let stream = ArrivalStream::new(events);
        let cfg = StreamConfig {
            policy: WindowPolicy::ByTime { width: 10.0 },
            ..StreamConfig::default()
        };
        let engine = Method::Grd.engine(&cfg.params);
        let dropped = run_sharded(engine.as_ref(), &stream, &cfg, &part);
        let halo = run_sharded_halo(engine.as_ref(), &stream, &cfg, &part);
        // Drop-pairs: one worker per boundary shard plus the interior
        // pair. The halo must do no worse.
        assert_eq!(dropped.matched(), 3);
        assert_eq!(
            halo.matched(),
            3,
            "the mutual-loss cycle was abandoned mid-reconciliation"
        );
        assert!(halo.total_utility() + 1e-9 >= dropped.total_utility());
        // Every worker served exactly one task.
        let mut served: Vec<u32> = halo
            .shards
            .iter()
            .flat_map(|s| s.fates.values())
            .filter_map(|f| match f {
                crate::TaskFate::Assigned { worker, .. } => Some(*worker),
                _ => None,
            })
            .collect();
        served.sort_unstable();
        assert_eq!(served, vec![0, 1, 2]);
    }

    #[test]
    fn empty_cells_produce_empty_reports() {
        let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 10.0, 10.0), 3, 3);
        let stream = disjoint_stream();
        let cfg = StreamConfig {
            policy: WindowPolicy::ByTime { width: 5.0 },
            ..StreamConfig::default()
        };
        let engine = Method::Grd.engine(&cfg.params);
        let sharded = run_sharded(engine.as_ref(), &stream, &cfg, &part);
        assert_eq!(sharded.shards.len(), 9);
        let populated = sharded
            .shards
            .iter()
            .filter(|s| s.task_arrivals > 0)
            .count();
        assert_eq!(populated, 2);
    }
}
