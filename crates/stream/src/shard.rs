//! Sharded execution: one engine run per spatial grid cell.
//!
//! Task assignment is spatially local — a worker only ever interacts
//! with tasks inside his service disc — so a stream whose workers'
//! discs never cross cell boundaries decomposes *exactly*: running one
//! driver per [`GridPartition`] cell on scoped threads produces, pair
//! for pair, the run the single-threaded driver would have produced,
//! at a wall-clock cost of the slowest shard instead of the sum.
//!
//! When discs do cross boundaries the decomposition is an
//! approximation (cross-cell pairs are never considered); the reports
//! make the loss visible rather than hiding it.

use crate::driver::{StreamConfig, StreamDriver};
use crate::event::ArrivalStream;
use crate::metrics::{ShardedReport, StreamReport};
use dpta_core::AssignmentEngine;
use dpta_spatial::GridPartition;

/// Runs `stream` sharded by `partition`, one driver per cell, each on
/// its own scoped thread sharing the one `engine`.
///
/// Every shard is forced onto the same window sequence: the global
/// stream horizon is injected into each shard's configuration, so
/// [`WindowPolicy::ByTime`](crate::WindowPolicy::ByTime) windows line
/// up across shards (and with an
/// unsharded run of the same configuration). With a time policy and a
/// [shard-disjoint](ArrivalStream::is_shard_disjoint) stream, the
/// merged totals equal the unsharded run's exactly — asserted by the
/// crate's equivalence tests.
///
/// # Examples
///
/// ```
/// use dpta_core::Method;
/// use dpta_spatial::{Aabb, GridPartition};
/// use dpta_stream::{run_sharded, StreamConfig, StreamDriver, StreamScenario, WindowPolicy};
/// use dpta_workloads::{Dataset, Scenario};
///
/// let stream = StreamScenario::new(Scenario {
///     batch_size: 30,
///     n_batches: 2,
///     worker_range: 1.0,
///     ..Scenario::for_dataset(Dataset::Uniform)
/// })
/// .stream();
/// let cfg = StreamConfig {
///     policy: WindowPolicy::ByTime { width: 60.0 },
///     ..StreamConfig::default()
/// };
/// let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 100.0, 100.0), 2, 2);
/// let engine = Method::Grd.engine(&cfg.params);
/// let sharded = run_sharded(engine.as_ref(), &stream, &cfg, &part);
/// assert_eq!(sharded.shards.len(), 4);
/// let direct: usize = sharded.shards.iter().map(|s| s.task_arrivals).sum();
/// assert_eq!(direct, stream.n_tasks());
/// ```
pub fn run_sharded(
    engine: &dyn AssignmentEngine,
    stream: &ArrivalStream,
    cfg: &StreamConfig,
    partition: &GridPartition,
) -> ShardedReport {
    let horizon = cfg.horizon.unwrap_or_else(|| stream.horizon());
    let shard_cfg = StreamConfig {
        horizon: Some(horizon),
        ..cfg.clone()
    };
    let sub_streams = stream.shard(partition);

    // Empty cells cost nothing: no thread, no drive, an empty report.
    // Populated cells are striped over a bounded pool — a fine-grained
    // partition must not translate into thousands of OS threads.
    let jobs: Vec<usize> = sub_streams
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.events().is_empty())
        .map(|(k, _)| k)
        .collect();
    let threads = jobs.len().min(
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(8),
    );

    let mut slots: Vec<Option<StreamReport>> = sub_streams
        .iter()
        .map(|_| {
            Some(StreamReport {
                engine: engine.name().to_string(),
                ..StreamReport::default()
            })
        })
        .collect();
    if threads > 0 {
        let driven: Vec<(usize, StreamReport)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let jobs = &jobs;
                    let sub_streams = &sub_streams;
                    let shard_cfg = &shard_cfg;
                    s.spawn(move || {
                        jobs.iter()
                            .skip(t)
                            .step_by(threads)
                            .map(|&k| {
                                let driver = StreamDriver::new(engine, shard_cfg.clone());
                                (k, driver.run(&sub_streams[k]))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("shard thread panicked"))
                .collect()
        });
        for (k, report) in driven {
            slots[k] = Some(report);
        }
    }
    ShardedReport {
        shards: slots.into_iter().map(|s| s.expect("shard ran")).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ArrivalEvent, TaskArrival, WorkerArrival};
    use crate::window::WindowPolicy;
    use dpta_core::{Method, Task, Worker};
    use dpta_spatial::{Aabb, Point};

    /// Two clusters, one per cell of a 2×1 partition, discs interior.
    fn disjoint_stream() -> ArrivalStream {
        let mut events = Vec::new();
        for (k, cx) in [2.5f64, 7.5].into_iter().enumerate() {
            events.push(ArrivalEvent::Worker(WorkerArrival {
                id: k as u32,
                time: 0.0,
                worker: Worker::new(Point::new(cx, 5.0), 1.0),
            }));
            events.push(ArrivalEvent::Task(TaskArrival {
                id: k as u32,
                time: 3.0 + k as f64,
                task: Task::new(Point::new(cx + 0.5, 5.0), 4.5),
            }));
        }
        ArrivalStream::new(events)
    }

    #[test]
    fn sharded_totals_match_unsharded_on_disjoint_input() {
        let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 10.0, 10.0), 2, 1);
        let stream = disjoint_stream();
        assert!(stream.is_shard_disjoint(&part));
        let cfg = StreamConfig {
            policy: WindowPolicy::ByTime { width: 5.0 },
            ..StreamConfig::default()
        };
        for method in [Method::Puce, Method::Grd] {
            let engine = method.engine(&cfg.params);
            let flat = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&stream);
            let sharded = run_sharded(engine.as_ref(), &stream, &cfg, &part);
            assert_eq!(sharded.matched(), flat.matched(), "{method}");
            assert!(
                (sharded.total_utility() - flat.total_utility()).abs() < 1e-9,
                "{method}: {} vs {}",
                sharded.total_utility(),
                flat.total_utility()
            );
            assert!(
                (sharded.total_epsilon() - flat.total_epsilon()).abs() < 1e-9,
                "{method}"
            );
        }
    }

    #[test]
    fn empty_cells_produce_empty_reports() {
        let part = GridPartition::new(Aabb::from_extents(0.0, 0.0, 10.0, 10.0), 3, 3);
        let stream = disjoint_stream();
        let cfg = StreamConfig {
            policy: WindowPolicy::ByTime { width: 5.0 },
            ..StreamConfig::default()
        };
        let engine = Method::Grd.engine(&cfg.params);
        let sharded = run_sharded(engine.as_ref(), &stream, &cfg, &part);
        assert_eq!(sharded.shards.len(), 9);
        let populated = sharded
            .shards
            .iter()
            .filter(|s| s.task_arrivals > 0)
            .count();
        assert_eq!(populated, 2);
    }
}
