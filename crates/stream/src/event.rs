//! Timestamped arrival events and the time-ordered arrival stream.
//!
//! The batch experiments replay pre-built instances; the streaming
//! pipeline instead starts from *events*: workers coming on duty and
//! tasks being requested, each stamped with a release time. An
//! [`ArrivalStream`] is the canonical, sorted event log every
//! downstream stage (windowing, driving, sharding) consumes.

use dpta_core::{Task, Worker};
use dpta_spatial::GridPartition;
use serde::{Deserialize, Serialize};

/// A task arriving at `time` with a stable logical id.
///
/// Ids are the stream's identity space: budget vectors, noise draws and
/// fate accounting are keyed by id, not by per-window instance index,
/// so a task keeps its privacy state while it is carried across
/// windows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskArrival {
    /// Stable logical task id, unique among the stream's tasks.
    pub id: u32,
    /// Arrival time in seconds from stream start.
    pub time: f64,
    /// The task itself (location + value).
    pub task: Task,
}

/// A worker coming on duty at `time` with a stable logical id.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerArrival {
    /// Stable logical worker id, unique among the stream's workers.
    pub id: u32,
    /// Arrival time in seconds from stream start.
    pub time: f64,
    /// The worker itself (location + service radius).
    pub worker: Worker,
}

/// One event of the arrival log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalEvent {
    /// A worker comes on duty.
    Worker(WorkerArrival),
    /// A task is requested.
    Task(TaskArrival),
}

// Hand-written externally-tagged representation — `{"Worker": {...}}` /
// `{"Task": {...}}`, matching what the derive would emit if it
// supported newtype variants. Session snapshots persist the windower's
// buffered events through these.
impl Serialize for ArrivalEvent {
    fn serialize_value(&self) -> serde::Value {
        let (tag, body) = match self {
            ArrivalEvent::Worker(w) => ("Worker", w.serialize_value()),
            ArrivalEvent::Task(t) => ("Task", t.serialize_value()),
        };
        serde::Value::Object(vec![(tag.to_string(), body)])
    }
}

impl Deserialize for ArrivalEvent {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Object(fields) if fields.len() == 1 => {
                let (tag, body) = &fields[0];
                match tag.as_str() {
                    "Worker" => Ok(ArrivalEvent::Worker(WorkerArrival::deserialize_value(
                        body,
                    )?)),
                    "Task" => Ok(ArrivalEvent::Task(TaskArrival::deserialize_value(body)?)),
                    other => Err(serde::Error(format!(
                        "unknown ArrivalEvent variant {other:?}"
                    ))),
                }
            }
            other => Err(serde::Error::expected("ArrivalEvent object", other)),
        }
    }
}

impl ArrivalEvent {
    /// The event's timestamp.
    pub fn time(&self) -> f64 {
        match self {
            ArrivalEvent::Worker(w) => w.time,
            ArrivalEvent::Task(t) => t.time,
        }
    }

    /// Sort rank at equal timestamps: workers before tasks, so a worker
    /// arriving at the same instant as a task can serve it.
    pub(crate) fn kind_rank(&self) -> u8 {
        match self {
            ArrivalEvent::Worker(_) => 0,
            ArrivalEvent::Task(_) => 1,
        }
    }

    pub(crate) fn id(&self) -> u32 {
        match self {
            ArrivalEvent::Worker(w) => w.id,
            ArrivalEvent::Task(t) => t.id,
        }
    }
}

/// A validated, time-ordered arrival log.
///
/// Construction sorts events by `(time, workers-before-tasks, id)` and
/// enforces the invariants the pipeline depends on: finite non-negative
/// timestamps and unique ids per entity kind.
///
/// # Examples
///
/// ```
/// use dpta_core::{Task, Worker};
/// use dpta_spatial::Point;
/// use dpta_stream::{ArrivalEvent, ArrivalStream, TaskArrival, WorkerArrival};
///
/// let stream = ArrivalStream::new(vec![
///     ArrivalEvent::Task(TaskArrival {
///         id: 0,
///         time: 60.0,
///         task: Task::new(Point::new(1.0, 1.0), 4.5),
///     }),
///     ArrivalEvent::Worker(WorkerArrival {
///         id: 0,
///         time: 0.0,
///         worker: Worker::new(Point::new(0.0, 0.0), 2.0),
///     }),
/// ]);
/// assert_eq!(stream.n_tasks(), 1);
/// assert_eq!(stream.n_workers(), 1);
/// assert_eq!(stream.events()[0].time(), 0.0); // sorted on construction
/// assert_eq!(stream.horizon(), 60.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ArrivalStream {
    events: Vec<ArrivalEvent>,
}

impl ArrivalStream {
    /// Builds a stream from events in any order. Panics on non-finite
    /// or negative timestamps and on duplicate ids within a kind.
    pub fn new(mut events: Vec<ArrivalEvent>) -> Self {
        for e in &events {
            let t = e.time();
            assert!(
                t.is_finite() && t >= 0.0,
                "arrival time must be finite and >= 0, got {t}"
            );
        }
        events.sort_by(|a, b| {
            a.time()
                .total_cmp(&b.time())
                .then(a.kind_rank().cmp(&b.kind_rank()))
                .then(a.id().cmp(&b.id()))
        });
        let mut task_ids: Vec<u32> = Vec::new();
        let mut worker_ids: Vec<u32> = Vec::new();
        for e in &events {
            match e {
                ArrivalEvent::Task(t) => task_ids.push(t.id),
                ArrivalEvent::Worker(w) => worker_ids.push(w.id),
            }
        }
        for ids in [&mut task_ids, &mut worker_ids] {
            ids.sort_unstable();
            assert!(
                ids.windows(2).all(|w| w[0] != w[1]),
                "arrival ids must be unique per entity kind"
            );
        }
        ArrivalStream { events }
    }

    /// The events, ascending by `(time, workers-first, id)`.
    pub fn events(&self) -> &[ArrivalEvent] {
        &self.events
    }

    /// Number of task arrivals.
    pub fn n_tasks(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, ArrivalEvent::Task(_)))
            .count()
    }

    /// Number of worker arrivals.
    pub fn n_workers(&self) -> usize {
        self.events.len() - self.n_tasks()
    }

    /// Timestamp of the last event (zero for an empty stream).
    pub fn horizon(&self) -> f64 {
        self.events.last().map_or(0.0, ArrivalEvent::time)
    }

    /// Splits the stream into one sub-stream per shard of `partition`,
    /// routing every event to the shard owning its location. The
    /// concatenation of the shards is a permutation of the original
    /// stream; relative event order within a shard is preserved.
    pub fn shard(&self, partition: &GridPartition) -> Vec<ArrivalStream> {
        let mut shards: Vec<Vec<ArrivalEvent>> = vec![Vec::new(); partition.n_shards()];
        for e in &self.events {
            let loc = match e {
                ArrivalEvent::Worker(w) => w.worker.location,
                ArrivalEvent::Task(t) => t.task.location,
            };
            shards[partition.shard_of(&loc)].push(*e);
        }
        // Sub-streams of a sorted stream are sorted; `new` re-validates.
        shards.into_iter().map(ArrivalStream::new).collect()
    }

    /// Whether every worker's service disc lies strictly inside its
    /// shard cell — the precondition under which sharded and unsharded
    /// execution agree exactly (no feasible pair ever crosses a shard
    /// boundary).
    pub fn is_shard_disjoint(&self, partition: &GridPartition) -> bool {
        self.events.iter().all(|e| match e {
            ArrivalEvent::Worker(w) => partition.is_interior(&w.worker.location, w.worker.radius),
            ArrivalEvent::Task(_) => true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpta_spatial::{Aabb, Point};

    fn task(id: u32, time: f64, x: f64) -> ArrivalEvent {
        ArrivalEvent::Task(TaskArrival {
            id,
            time,
            task: Task::new(Point::new(x, 0.0), 1.0),
        })
    }

    fn worker(id: u32, time: f64, x: f64, r: f64) -> ArrivalEvent {
        ArrivalEvent::Worker(WorkerArrival {
            id,
            time,
            worker: Worker::new(Point::new(x, 0.0), r),
        })
    }

    #[test]
    fn stream_sorts_workers_before_tasks_at_ties() {
        let s = ArrivalStream::new(vec![task(0, 5.0, 0.0), worker(0, 5.0, 0.0, 1.0)]);
        assert!(matches!(s.events()[0], ArrivalEvent::Worker(_)));
        assert!(matches!(s.events()[1], ArrivalEvent::Task(_)));
    }

    #[test]
    fn ids_may_repeat_across_kinds_but_not_within() {
        let s = ArrivalStream::new(vec![task(3, 1.0, 0.0), worker(3, 2.0, 0.0, 1.0)]);
        assert_eq!(s.n_tasks(), 1);
        assert_eq!(s.n_workers(), 1);
    }

    #[test]
    #[should_panic(expected = "unique per entity kind")]
    fn duplicate_task_ids_panic() {
        let _ = ArrivalStream::new(vec![task(1, 0.0, 0.0), task(1, 1.0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "arrival time")]
    fn negative_time_panics() {
        let _ = ArrivalStream::new(vec![task(0, -1.0, 0.0)]);
    }

    #[test]
    fn sharding_partitions_events_and_checks_disjointness() {
        let part = GridPartition::new(Aabb::from_extents(0.0, -5.0, 10.0, 5.0), 2, 1);
        let s = ArrivalStream::new(vec![
            worker(0, 0.0, 2.5, 1.0), // interior of left cell
            worker(1, 0.0, 7.5, 1.0), // interior of right cell
            task(0, 1.0, 2.0),
            task(1, 2.0, 8.0),
        ]);
        let shards = s.shard(&part);
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].n_tasks(), 1);
        assert_eq!(shards[0].n_workers(), 1);
        assert_eq!(shards[1].n_tasks(), 1);
        assert!(s.is_shard_disjoint(&part));
        // A worker whose disc crosses the x = 5 boundary breaks it.
        let crossing = ArrivalStream::new(vec![worker(2, 0.0, 4.9, 1.0)]);
        assert!(!crossing.is_shard_disjoint(&part));
    }
}
