//! The boundary-halo protocol: cross-shard routing for sharded
//! streaming without dropped pairs.
//!
//! Drop-pairs sharding ([`ShardStrategy::DropPairs`]) is exact only
//! when every worker's service disc stays inside its grid cell. Real
//! spatial workloads are not like that — demand concentrates exactly
//! where cells meet — so this module implements the recovery protocol:
//!
//! 1. **Halo membership.** Each window, every shard's instance holds
//!    its own tasks plus every worker — interior *or foreign* — whose
//!    service disc reaches into its cell
//!    ([`GridPartition::reach_shards`]). Tasks are never replicated
//!    (each lives in exactly the cell owning its location), so every
//!    feasible pair, cross-boundary or not, is seen by exactly one
//!    shard: the task's. Membership is resolved once per worker —
//!    locations are immutable — and each shard's instance is
//!    *maintained* as a [`DeltaInstance`] across windows and
//!    reconciliation passes, so building a shard's window costs
//!    O(arrivals + departures), not a from-scratch rebuild.
//! 2. **Propose.** Shards drive the engine over interior ∪ halo and
//!    *propose* their matches. A worker reaching `k` cells can be
//!    claimed by up to `k` shards.
//! 3. **Reconcile.** Competing claims on a worker are resolved by a
//!    deterministic, id-keyed priority rule: the worker's *home* shard
//!    (the cell owning his location) wins; a foreign-only worker goes
//!    to the lowest claiming shard id. A winning claim is *committed*
//!    only when it is clean — neither the winning shard nor the
//!    worker's home shard lost a conflict in the same pass (a losing
//!    shard reruns, and its rerun may claim differently); when every
//!    candidate is entangled in mutual-loss cycles, the smallest
//!    worker id is forced through. Committed claims are final; shards
//!    that lost a committed worker rerun over their remaining
//!    entities, and the loop repeats until no claim is rejected. Every
//!    pass commits at least one worker, so the loop terminates within
//!    `|pool|` passes.
//! 4. **Incremental reruns.** Engine interactions flow only along
//!    feasibility-graph edges, and noise/budgets are keyed by logical
//!    ids — so a rerun over the remaining entities can differ from the
//!    previous pass only inside the connected components that lost an
//!    entity. The coordinator therefore tracks the components of each
//!    shard's last full drive ([`PairComponents`]) and, on a
//!    reconciliation pass, re-drives *only the dirty components*: the
//!    undisturbed components keep their previous claims, spend and
//!    board columns, which are bit-identical to what a full rerun
//!    would re-derive. A shard none of whose remaining entities sit in
//!    a dirty component skips the drive entirely — the PR-5
//!    zero-feasible early-out is the trivial case, now an O(1) check
//!    off the maintained instance. The next window's carried board is
//!    stitched per entity from the last drive that covered it; the
//!    stitch is exact because a worker's whole release history lives
//!    inside his own component. Full reruns are kept in two cases:
//!    under a finite hard cap (the budget guard reads the live
//!    accountant, whose reservations move between passes, so a rerun
//!    is guard-sensitive beyond its own components) and under
//!    [`StreamConfig::halo_full_rerun`] (the reference semantics the
//!    incremental property suite compares against).
//! 5. **Charge once.** Per-pair releases are deterministic functions
//!    of `(worker id, task id, slot)`, so a rerun re-derives
//!    bit-identical publications. A global release dedup
//!    ([`ReleaseDedup`]) keys a
//!    [`BudgetLedger::reserve`](dpta_dp::BudgetLedger::reserve) for
//!    each *novel* release; after reconciliation the window's
//!    reservations are committed exactly once per worker
//!    ([`BudgetLedger::commit`](dpta_dp::BudgetLedger::commit)).
//!    Whole-location releases (the Geo-I baseline) are the one
//!    exception: their ε is the mean over the worker's reach set, so a
//!    rerun over fewer reachable tasks publishes a *genuinely new*
//!    noisy location — real additional leakage, reserved and charged
//!    as such. One-shot location engines therefore pay per
//!    reconciliation rerun; that is the honest price, not a dedup
//!    miss.
//!
//! On shard-disjoint input no worker has a halo, no claim ever
//! conflicts, and the run settles in one pass per window — matching the
//! unsharded run assignment for assignment, fate for fate. On general
//! input the protocol is near-exact: the only utility left unrecovered
//! is what reconciliation rejects in the final pass of a window.
//! `ARCHITECTURE.md` ("Sharding & the halo protocol", "Incremental
//! instance maintenance") documents the guarantees and their limits.
//!
//! [`ShardStrategy::DropPairs`]: crate::ShardStrategy::DropPairs
//! [`ReleaseDedup`]: crate::driver::ReleaseDedup

use crate::driver::{novel_ledger_spend, IdStableNoise, PendingTask, ReleaseDedup, StreamConfig};
use crate::event::{ArrivalStream, WorkerArrival};
use crate::metrics::{ShardedReport, StreamReport, TaskFate, WindowCutDecision, WindowReport};
use crate::session::{PaceState, StepSignals};
use crate::snapshot::SnapshotError;
use crate::window::{Window, WindowPolicy, Windower};
use dpta_core::board::LOCATION_RELEASE;
use dpta_core::{AssignmentEngine, Board, DeltaInstance, Instance, RunOutcome};
use dpta_dp::{BudgetLedger, FastMap, LedgerState, SeededNoise};
use dpta_matching::repair::PairComponents;
use dpta_spatial::GridPartition;
use dpta_workloads::budgets::BudgetGen;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::{Duration, Instant};

/// Protocol state a shard carries across windows (warm-start engines).
///
/// After an incremental window this is a *stitched* view: the base
/// full drive plus every component-restricted re-drive, later sources
/// overriding earlier ones per entity. [`carry_board`] flattens the
/// stack onto the next window's board; the result is bit-identical to
/// carrying a monolithic full-rerun board because an entity's release
/// history never leaves its own feasibility component.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Carried {
    sources: Vec<CarrySource>,
}

/// One board in the carried stack, keyed by the logical ids it was
/// built over.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CarrySource {
    board: Board,
    task_ids: Vec<u32>,
    worker_ids: Vec<u32>,
}

/// One worker held out of the pool while serving a committed match —
/// the halo coordinator's half of [`ServiceModel`] re-entry, mirroring
/// the session stepper's rules exactly (same completion-time ordering,
/// same re-admission boundary) so flat and halo runs stay bit-for-bit
/// on shard-disjoint input.
///
/// [`ServiceModel`]: crate::ServiceModel
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub(crate) struct Serving {
    return_time: f64,
    worker: WorkerArrival,
}

/// One shard's engine run inside one reconciliation pass.
struct ShardRun {
    task_ids: Vec<u32>,
    worker_ids: Vec<u32>,
    outcome: RunOutcome,
    /// Publications already on the board before the drive (carried
    /// history), subtracted from the reported publication count.
    pre_pubs: usize,
    /// Feasibility components of the driven instance, resolved to a
    /// root per entity id. Computed for full drives on the incremental
    /// path; `None` for sub-drives (which inherit the base's roots)
    /// and for full-rerun / capped runs (which never consult them).
    roots: Option<RunRoots>,
}

/// Component roots of one driven instance, by logical id.
struct RunRoots {
    task_root: FastMap<u32, u32>,
    worker_root: FastMap<u32, u32>,
}

/// A shard's reconciliation state for the current window.
#[derive(Default)]
struct ShardPassState {
    /// The last *full* drive of this window.
    base: Option<ShardRun>,
    /// Component-restricted re-drives since `base`, in pass order.
    subs: Vec<ShardRun>,
    /// Roots (of `base`'s components) that lost an entity since the
    /// shard last drove. Cleared whenever the shard drives or proves a
    /// skip.
    dirty: BTreeSet<u32>,
    /// Latest board spend per driven worker id — what the commit step
    /// prices privacy cost from, regardless of which (full or sub) run
    /// last covered the worker.
    spent: FastMap<u32, f64>,
}

/// A shard's proposed match, by logical id.
#[derive(Debug, Clone, Copy)]
struct Claim {
    task: u32,
    worker: u32,
}

/// The inputs of one shard run, assembled before the (possibly
/// parallel) drive.
struct PreparedRun {
    shard: usize,
    task_ids: Vec<u32>,
    worker_ids: Vec<u32>,
    inst: Instance,
    board: Board,
    pre_pubs: usize,
    /// Remaining lifetime budget per worker (finite caps only).
    guard: Option<Vec<f64>>,
    /// Component roots of `inst` (incremental full drives only).
    roots: Option<RunRoots>,
}

/// What component analysis concludes about a flagged shard's rerun.
enum IncrementalPlan {
    /// No remaining entity shares a component with a removed one (or
    /// the dirty side has only tasks / only workers, which cannot form
    /// a pair): the rerun is a proven no-op. Keep the previous run —
    /// claims, spend, board — minus the departed workers' claims.
    Keep,
    /// Re-drive exactly the listed entities — the remaining members of
    /// every dirty component, in instance order.
    Redrive {
        task_ids: Vec<u32>,
        worker_ids: Vec<u32>,
    },
}

/// A worker's shard membership, resolved once on arrival (locations
/// are immutable): the cell owning his location and every cell his
/// service disc reaches.
struct Membership {
    home: usize,
    reach: Vec<usize>,
}

/// Drives `stream` under the halo protocol (see the module docs) and
/// returns one [`StreamReport`] per shard. Fates, arrivals and spend
/// are attributed to the entity's *home* shard, so per-shard
/// conservation holds and the merged totals are globally correct;
/// matches (and their utility) land on the shard owning the task, which
/// is always the shard that claimed it.
pub(crate) fn run_halo(
    engine: &dyn AssignmentEngine,
    stream: &ArrivalStream,
    cfg: &StreamConfig,
    partition: &GridPartition,
) -> ShardedReport {
    // The halo coordinator always windows the *merged global* stream,
    // so the adaptive controller (like count windows) aligns across
    // shards by construction; its feedback is computed from the global
    // pool/pending state inside the stepper, mirroring the unsharded
    // driver.
    let mut former = Windower::new(cfg.policy, stream, cfg.horizon);
    let mut core = HaloCore::new(engine, cfg.clone(), partition.n_shards());
    while let Some(window) = former.next_window() {
        let cut = former.last_decision();
        let signals = core.step_window(partition, &window, cut);
        if former.needs_feedback() {
            former.observe(&StepSignals::merge(std::slice::from_ref(&signals)));
        }
    }
    core.finish(partition)
}

/// The halo coordinator's cross-window state, stepped one globally
/// formed window at a time. [`run_halo`] drains a pre-built stream
/// through it; the sharded session drives it from a push windower, and
/// [`HaloCore::snapshot`] / [`HaloCore::from_snapshot`] make a mid-run
/// coordinator durable — a restored shard re-enters reconciliation
/// coherently because the whole protocol state (pool, pending,
/// in-service set, lifetime ledger, release dedup, carried board
/// stacks) lives here, while the per-shard membership and maintained
/// instances are deterministically rebuilt from it.
pub(crate) struct HaloCore<'e> {
    engine: &'e dyn AssignmentEngine,
    cfg: StreamConfig,
    warm: bool,
    capped: bool,
    incremental: bool,
    reentry: bool,
    budget_gen: BudgetGen,
    // Per-shard report state.
    shard_windows: Vec<Vec<WindowReport>>,
    shard_fates: Vec<BTreeMap<u32, TaskFate>>,
    shard_tasks: Vec<usize>,
    shard_workers: Vec<usize>,
    shard_spend: Vec<BTreeMap<u32, f64>>,
    // Global pipeline state — one pool, one pending list, one
    // accountant, one in-service set, exactly like the unsharded
    // driver.
    pool: Vec<WorkerArrival>,
    pending: Vec<PendingTask>,
    /// Tasks held back by admission control (FIFO, no TTL burned) —
    /// the session stepper's rule, applied to the global backlog.
    deferred: VecDeque<PendingTask>,
    in_service: VecDeque<Serving>,
    ledger: LedgerState,
    /// Per-worker pacing state, maintained only under
    /// [`StreamConfig::pacing`].
    pace: BTreeMap<u32, PaceState>,
    charged: ReleaseDedup,
    carried: Vec<Option<Carried>>,
    // The maintained per-shard instances: shard `k`'s delta holds its
    // uncommitted owned tasks and every uncommitted worker whose disc
    // reaches cell `k`, in pool/pending order. All pool and pending
    // mutations below are mirrored into them, so preparing a shard run
    // is an O(live + pairs) emission instead of a from-scratch rebuild.
    deltas: Vec<DeltaInstance>,
    member: FastMap<u32, Membership>,
}

impl<'e> HaloCore<'e> {
    /// A fresh coordinator for `engine` under `cfg` over `n_shards`
    /// cells.
    pub(crate) fn new(
        engine: &'e dyn AssignmentEngine,
        cfg: StreamConfig,
        n_shards: usize,
    ) -> Self {
        let warm = cfg.carry_releases && engine.supports_warm_start();
        let capped = warm && cfg.worker_capacity.is_finite();
        // Component-restricted reruns are sound only when a rerun's
        // inputs beyond the instance itself are pass-invariant: a
        // finite hard cap reads the live accountant (reservations move
        // between passes), so capped reruns stay full.
        // `halo_full_rerun` is the debugging / reference override.
        let incremental = !capped && !cfg.halo_full_rerun;
        let reentry = cfg.service.reenters();
        let budget_gen = BudgetGen::new(
            cfg.params.seed ^ 0x5712_EA11,
            0,
            cfg.budget_range,
            cfg.budget_group_size,
        );
        let ledger = cfg.ledger.state();
        HaloCore {
            engine,
            cfg,
            warm,
            capped,
            incremental,
            reentry,
            budget_gen,
            shard_windows: vec![Vec::new(); n_shards],
            shard_fates: vec![BTreeMap::new(); n_shards],
            shard_tasks: vec![0; n_shards],
            shard_workers: vec![0; n_shards],
            shard_spend: vec![BTreeMap::new(); n_shards],
            pool: Vec::new(),
            pending: Vec::new(),
            deferred: VecDeque::new(),
            in_service: VecDeque::new(),
            ledger,
            pace: BTreeMap::new(),
            charged: ReleaseDedup::default(),
            carried: (0..n_shards).map(|_| None).collect(),
            deltas: (0..n_shards).map(|_| DeltaInstance::new()).collect(),
            member: FastMap::default(),
        }
    }

    /// One globally-formed window: admit, propose, reconcile, settle.
    /// Returns the window's stream-observable signals for the adaptive
    /// controller.
    pub(crate) fn step_window(
        &mut self,
        partition: &GridPartition,
        window: &Window,
        cut: WindowCutDecision,
    ) -> StepSignals {
        let HaloCore {
            engine,
            cfg,
            warm,
            capped,
            incremental,
            reentry,
            budget_gen,
            shard_windows,
            shard_fates,
            shard_tasks,
            shard_workers,
            shard_spend,
            pool,
            pending,
            deferred,
            in_service,
            ledger,
            pace,
            charged,
            carried,
            deltas,
            member,
        } = self;
        let engine: &dyn AssignmentEngine = *engine;
        let cfg: &StreamConfig = cfg;
        let (warm, capped, incremental, reentry) = (*warm, *capped, *incremental, *reentry);
        let n_shards = deltas.len();
        // Advance the ledger clock to the (globally formed) window
        // start: sliding-window reclamation fires at the same instants
        // the flat stepper's does, keeping the agreement gates exact.
        ledger.advance_time(window.start);
        // ── Re-admit returned workers ─────────────────────────────────
        // Completed service cycles re-enter the pool ahead of the
        // window's fresh arrivals, in (completion time, id) order — the
        // session stepper's rule, so pool order matches the flat run's
        // on shard-disjoint input.
        let mut returned_by_home = vec![0usize; n_shards];
        while in_service
            .front()
            .is_some_and(|s| s.return_time < window.end)
        {
            let s = in_service.pop_front().expect("front exists");
            let m = &member[&s.worker.id];
            returned_by_home[m.home] += 1;
            for &k in &m.reach {
                deltas[k].insert_worker(u64::from(s.worker.id), s.worker.worker, |t, w| {
                    budget_gen.vector(t as usize, w as usize)
                });
            }
            pool.push(s.worker);
        }
        // ── Admit arrivals ────────────────────────────────────────────
        for w in &window.workers {
            ledger.register(u64::from(w.id), cfg.worker_capacity);
            let m = Membership {
                home: partition.shard_of(&w.worker.location),
                reach: partition.reach_shards(&w.worker.location, w.worker.radius),
            };
            shard_workers[m.home] += 1;
            for &k in &m.reach {
                deltas[k].insert_worker(u64::from(w.id), w.worker, |t, wk| {
                    budget_gen.vector(t as usize, wk as usize)
                });
            }
            member.insert(w.id, m);
            pool.push(*w);
        }
        // Unserved tasks already maintained per shard, before this
        // window's admissions (the report's carried-in view).
        let carried_by_shard: Vec<usize> = deltas.iter().map(DeltaInstance::n_tasks).collect();
        let mut arrived_by_shard = vec![0usize; n_shards];
        let mut deferred_by_shard = vec![0usize; n_shards];
        let mut readmitted_by_shard = vec![0usize; n_shards];
        for &arrival in &window.tasks {
            let home = partition.shard_of(&arrival.task.location);
            shard_tasks[home] += 1;
            arrived_by_shard[home] += 1;
        }
        // Admission control: the session stepper's rule over the global
        // pool — admit only what the aggregate remaining budget could
        // serve, oldest deferral first. (The coordinator keeps no
        // outcome log; the per-shard `tasks_deferred` counters carry
        // the observability.)
        let admitted: Vec<(PendingTask, bool)> = match cfg.admission {
            Some(ac) => {
                let mut aggregate = 0.0f64;
                for w in pool.iter() {
                    aggregate += ledger.remaining(u64::from(w.id));
                }
                let serveable = if aggregate.is_finite() {
                    (aggregate / ac.epsilon_per_task) as usize
                } else {
                    usize::MAX
                };
                let mut allowed = serveable.saturating_sub(pending.len());
                let waiting: Vec<PendingTask> = deferred.drain(..).collect();
                let mut admitted = Vec::with_capacity(waiting.len() + window.tasks.len());
                for (p, fresh) in
                    waiting
                        .into_iter()
                        .map(|p| (p, false))
                        .chain(window.tasks.iter().map(|&arrival| {
                            (
                                PendingTask {
                                    arrival,
                                    ttl: cfg.task_ttl,
                                },
                                true,
                            )
                        }))
                {
                    if allowed > 0 {
                        allowed -= 1;
                        admitted.push((p, fresh));
                    } else {
                        if fresh {
                            deferred_by_shard[task_home_of(partition, &p)] += 1;
                        }
                        deferred.push_back(p);
                    }
                }
                admitted
            }
            None => window
                .tasks
                .iter()
                .map(|&arrival| {
                    (
                        PendingTask {
                            arrival,
                            ttl: cfg.task_ttl,
                        },
                        true,
                    )
                })
                .collect(),
        };
        for &(p, fresh) in &admitted {
            let home = task_home_of(partition, &p);
            if !fresh {
                readmitted_by_shard[home] += 1;
            }
            deltas[home].insert_task(u64::from(p.arrival.id), p.arrival.task, |t, w| {
                budget_gen.vector(t as usize, w as usize)
            });
            pending.push(p);
        }
        // Observed stream state at window close (identical to the
        // unsharded driver's: one global pending list, same formula).
        // Static policies never read it, so skip the allocation there.
        let ages: Vec<f64> = if matches!(cfg.policy, WindowPolicy::Adaptive(_)) {
            pending
                .iter()
                .map(|p| window.end - p.arrival.time)
                .collect()
        } else {
            Vec::new()
        };

        // Per-window id → index maps (pool and pending are frozen for
        // the duration of the reconciliation loop).
        let pend_at: FastMap<u32, usize> = pending
            .iter()
            .enumerate()
            .map(|(i, p)| (p.arrival.id, i))
            .collect();
        let pool_at: FastMap<u32, usize> =
            pool.iter().enumerate().map(|(j, w)| (w.id, j)).collect();
        let mut avail = vec![0usize; n_shards];
        for w in pool.iter() {
            for &k in &member[&w.id].reach {
                avail[k] += 1;
            }
        }

        let mut reports: Vec<WindowReport> = (0..n_shards)
            .map(|k| WindowReport {
                index: window.index,
                start: window.start,
                end: window.end,
                tasks_arrived: arrived_by_shard[k],
                carried_in: carried_by_shard[k] + readmitted_by_shard[k],
                workers_available: avail[k],
                matched: 0,
                expired: 0,
                carried_out: 0,
                utility: 0.0,
                distance: 0.0,
                epsilon_spent: 0.0,
                publications: 0,
                rounds: 0,
                drive_time: Duration::ZERO,
                workers_retired: 0,
                workers_departed: 0,
                workers_returned: returned_by_home[k],
                workers_throttled: 0,
                tasks_deferred: deferred_by_shard[k],
                cut,
            })
            .collect();

        // Budget pacing: cap a worker's remaining-budget guard when his
        // trailing burn rate would exhaust him within the forecast
        // horizon. Computed once from the pre-window ledger, so every
        // reconciliation pass reads the same caps.
        let pace_caps: Option<BTreeMap<u32, f64>> = cfg.pacing.filter(|_| capped).map(|p| {
            let horizon = p.horizon_windows as f64;
            let mut caps = BTreeMap::new();
            for w in pool.iter() {
                if let Some(st) = pace.get(&w.id) {
                    let rem = ledger.remaining(u64::from(w.id));
                    if st.ema > 0.0 && rem > 0.0 && st.ema * horizon > rem {
                        caps.insert(w.id, rem / horizon);
                    }
                }
            }
            caps
        });
        if let Some(caps) = &pace_caps {
            for &wid in caps.keys() {
                reports[member[&wid].home].workers_throttled += 1;
            }
        }

        // ── Propose / reconcile loop ──────────────────────────────────
        let mut committed_tasks: BTreeSet<u32> = BTreeSet::new();
        let mut committed_workers: BTreeSet<u32> = BTreeSet::new();
        // Per committed worker: the service duration of his match (the
        // settle step turns it into a return time or a departure).
        let mut service_of: BTreeMap<u32, Option<f64>> = BTreeMap::new();
        let mut window_spend: BTreeMap<u32, f64> = BTreeMap::new();
        let mut needs_run = vec![true; n_shards];
        let mut claims: Vec<Vec<Claim>> = vec![Vec::new(); n_shards];
        let mut states: Vec<ShardPassState> =
            (0..n_shards).map(|_| ShardPassState::default()).collect();
        let pool_size = pool.len();
        let mut passes = 0usize;

        loop {
            passes += 1;
            assert!(
                passes <= pool_size + 2,
                "halo reconciliation failed to converge in {passes} passes"
            );
            let rerun = passes > 1;

            // (a) Run every flagged shard over its remaining entities.
            let flagged_now: Vec<usize> = (0..n_shards).filter(|&k| needs_run[k]).collect();
            let mut prepared: Vec<PreparedRun> = Vec::new();
            let mut sub_driven: Vec<(usize, ShardRun, Duration)> = Vec::new();
            for &k in &flagged_now {
                needs_run[k] = false;
                if deltas[k].n_tasks() == 0 || deltas[k].n_workers() == 0 {
                    claims[k].clear();
                    continue;
                }
                if rerun && deltas[k].feasible_pairs() == 0 {
                    // Losing a boundary worker often leaves a shard
                    // whose remaining tasks nobody can reach. Driving
                    // that instance is a guaranteed no-op — engines
                    // publish and claim only over feasible pairs — so
                    // skip it. O(1) off the maintained pair count; the
                    // trivial case of the component skip below. Never
                    // taken on first-pass runs: those mirror the
                    // unsharded drive bit for bit, and location engines
                    // (Geo-I) may legitimately publish there.
                    claims[k].clear();
                    continue;
                }
                if rerun && incremental {
                    match plan_incremental(&states[k], &deltas[k]) {
                        Some(IncrementalPlan::Keep) => {
                            // Proven no-op: every remaining entity sits
                            // in an undisturbed component, so a full
                            // rerun would reproduce the previous run
                            // exactly. Keep it; only the departed
                            // workers' claims are withdrawn.
                            claims[k].retain(|c| !committed_workers.contains(&c.worker));
                            states[k].dirty.clear();
                            continue;
                        }
                        Some(IncrementalPlan::Redrive {
                            task_ids,
                            worker_ids,
                        }) => {
                            let p = prepare_sub_run(
                                k,
                                task_ids,
                                worker_ids,
                                &pend_at,
                                &pool_at,
                                pending,
                                pool,
                                budget_gen,
                                &carried[k],
                                warm,
                            );
                            let (run, dt) = drive_prepared(engine, cfg, p);
                            sub_driven.push((k, run, dt));
                            continue;
                        }
                        None => {}
                    }
                }
                claims[k].clear();
                let built = prepare_run(
                    budget_gen,
                    k,
                    &deltas[k],
                    &carried[k],
                    warm,
                    capped.then_some(&*ledger),
                    pace_caps.as_ref(),
                    incremental,
                );
                if let Some(p) = built {
                    if capped {
                        // Finite caps gate on the live accountant
                        // (reservations included), so capped shard runs
                        // execute sequentially in ascending shard id.
                        let (run, dt) = drive_prepared(engine, cfg, p);
                        account_run(&run, charged, ledger, &mut window_spend, &mut reports[k]);
                        finish_run(k, run, dt, &mut reports, &mut claims, &mut states);
                    } else {
                        prepared.push(p);
                    }
                }
            }
            if !prepared.is_empty() || !sub_driven.is_empty() {
                // Uncapped: inputs were fixed above, so the full drives
                // can fan out over a bounded thread pool without
                // changing the result; sub-drives already ran inline.
                // Charge accounting stays sequential in ascending shard
                // order so the dedup set is deterministic.
                let mut driven: Vec<(usize, ShardRun, Duration, bool)> =
                    drive_parallel(engine, cfg, prepared)
                        .into_iter()
                        .map(|(k, run, dt)| (k, run, dt, false))
                        .collect();
                driven.extend(
                    sub_driven
                        .into_iter()
                        .map(|(k, run, dt)| (k, run, dt, true)),
                );
                driven.sort_by_key(|&(k, _, _, _)| k);
                for (k, run, dt, is_sub) in driven {
                    account_run(&run, charged, ledger, &mut window_spend, &mut reports[k]);
                    if is_sub {
                        finish_sub_run(
                            k,
                            run,
                            dt,
                            &mut reports,
                            &mut claims,
                            &mut states,
                            &committed_workers,
                        );
                    } else {
                        finish_run(k, run, dt, &mut reports, &mut claims, &mut states);
                    }
                }
            }

            // (b) Resolve claims: group by worker, pick winners.
            let mut by_worker: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
            for (k, shard_claims) in claims.iter().enumerate() {
                for c in shard_claims {
                    by_worker.entry(c.worker).or_default().push(k);
                }
            }
            if by_worker.is_empty() {
                break;
            }

            // Candidate winner per claimed worker: the home shard when
            // it claims him (id-keyed priority), else the lowest
            // claiming shard id. Losers of any conflict must rerun, and
            // a rerunning shard's claims are provisional — so a commit
            // is *clean* only when neither the winning shard nor the
            // worker's home shard lost a conflict this pass. Committing
            // only clean candidates protects the drop-pairs baseline:
            // a shard never loses a worker to a claim that a rerun
            // would have withdrawn. When every candidate is entangled
            // (mutual-loss cycles), the smallest worker id is forced
            // through so each pass still commits at least one worker
            // and the loop terminates.
            let cands: Vec<(u32, usize, Vec<usize>)> = by_worker
                .iter()
                .map(|(&w, ks)| {
                    let home = member[&w].home;
                    let winner = if ks.contains(&home) { home } else { ks[0] };
                    let losers = ks.iter().copied().filter(|&k| k != winner).collect();
                    (w, winner, losers)
                })
                .collect();
            let contested: BTreeSet<usize> = cands
                .iter()
                .flat_map(|(_, _, losers)| losers.iter().copied())
                .collect();
            let clean: Vec<&(u32, usize, Vec<usize>)> = cands
                .iter()
                .filter(|(w, winner, _)| {
                    !contested.contains(winner) && !contested.contains(&member[w].home)
                })
                .collect();
            let to_commit: Vec<&(u32, usize, Vec<usize>)> = if clean.is_empty() {
                vec![&cands[0]] // forced progress: smallest worker id
            } else {
                clean
            };
            let mut winners: Vec<(u32, usize)> = Vec::new();
            let mut flagged: BTreeSet<usize> = BTreeSet::new();
            for (w, winner, losers) in to_commit {
                winners.push((*w, *winner));
                flagged.extend(losers.iter().copied());
            }

            // (c) Apply commits: the pair is final, the task completes,
            // the worker departs to serve.
            for &(w, k) in &winners {
                let claim = claims[k]
                    .iter()
                    .find(|c| c.worker == w)
                    .copied()
                    .expect("winner shard holds a claim on the worker");
                let task = &pending[pend_at[&claim.task]];
                let worker = &pool[pool_at[&w]];
                let d = task.arrival.task.location.distance(&worker.worker.location);
                let privacy_cost = if engine.accounts_privacy() {
                    cfg.params.beta
                        * states[k]
                            .spent
                            .get(&w)
                            .copied()
                            .expect("claimed worker was driven")
                } else {
                    0.0
                };
                reports[k].matched += 1;
                reports[k].utility += task.arrival.task.value - cfg.params.alpha * d - privacy_cost;
                reports[k].distance += d;
                shard_fates[k].insert(
                    claim.task,
                    TaskFate::Assigned {
                        window: window.index,
                        worker: w,
                        latency: window.end - task.arrival.time,
                    },
                );
                committed_tasks.insert(claim.task);
                committed_workers.insert(w);
                service_of.insert(
                    w,
                    cfg.service.duration_keyed(
                        d,
                        task.arrival.task.value,
                        w,
                        claim.task,
                        cfg.params.seed,
                    ),
                );
                claims[k].retain(|c| c.worker != w);
                // The committed pair leaves every maintained instance
                // that sees it, and its components become dirty: any
                // shard later flagged re-drives exactly the components
                // that lost an entity.
                deltas[k].remove_task(u64::from(claim.task));
                if incremental {
                    if let Some(roots) = states[k].base.as_ref().and_then(|b| b.roots.as_ref()) {
                        if let Some(&r) = roots.task_root.get(&claim.task) {
                            states[k].dirty.insert(r);
                        }
                    }
                }
                for &k2 in &member[&w].reach {
                    deltas[k2].remove_worker(u64::from(w));
                    if incremental {
                        if let Some(roots) = states[k2].base.as_ref().and_then(|b| b.roots.as_ref())
                        {
                            if let Some(&r) = roots.worker_root.get(&w) {
                                states[k2].dirty.insert(r);
                            }
                        }
                    }
                }
            }
            // The window is reconciled only when no claim is left
            // pending: a pass can commit clean candidates and flag
            // nobody while a mutual-loss cycle is still outstanding —
            // those claims persist, and the next pass (with the clean
            // candidates gone) resolves them via the forced-progress
            // path. Breaking on "nothing flagged" here would silently
            // abandon them.
            if flagged.is_empty() && claims.iter().all(Vec::is_empty) {
                break;
            }
            for &k in &flagged {
                needs_run[k] = true;
            }
        }

        // ── Settle the window ─────────────────────────────────────────
        // Commit this window's reservations — exactly once per worker —
        // then depart matched workers and retire exhausted ones.
        for (&wid, &eps) in &window_spend {
            ledger.commit(u64::from(wid));
            *shard_spend[member[&wid].home].entry(wid).or_insert(0.0) += eps;
        }
        for &w in &committed_workers {
            reports[member[&w].home].workers_departed += 1;
            match service_of.get(&w).copied().flatten() {
                Some(d) => {
                    // Re-entry: the worker keeps his accountant entry
                    // (lifetime budgets span service cycles) and waits
                    // out his service duration.
                    let return_time = window.end + d;
                    let arrival = pool[pool_at[&w]];
                    let pos = in_service
                        .partition_point(|s| (s.return_time, s.worker.id) < (return_time, w));
                    in_service.insert(
                        pos,
                        Serving {
                            return_time,
                            worker: arrival,
                        },
                    );
                }
                None => {
                    ledger.forget(u64::from(w));
                }
            }
        }
        // Sliding-window (renewable) accounting never retires — an
        // exhausted worker idles behind the guard until old charges age
        // out. An infinite protection window is not renewable, so
        // `Windowed { window_secs: ∞ }` retires exactly like lifetime
        // accounting.
        let renewable = ledger.renewable();
        let mut retired: BTreeSet<u64> = if renewable {
            BTreeSet::new()
        } else {
            ledger.drain_exhausted().into_iter().collect()
        };
        if !renewable && capped {
            // Mirror the unsharded driver: under a hard cap a worker is
            // effectively exhausted once his remaining budget cannot
            // cover even the cheapest possible release.
            for w in pool.iter() {
                let id = u64::from(w.id);
                if !committed_workers.contains(&w.id)
                    && !retired.contains(&id)
                    && ledger.remaining(id) + 1e-12 < cfg.budget_range.0
                {
                    ledger.forget(id);
                    retired.insert(id);
                }
            }
        }
        // An in-service worker can exhaust his budget at the very match
        // that sent him out: he finishes the trip but retires instead
        // of returning (the session stepper's rule). Home shards come
        // off the membership cache — every tracked worker was admitted
        // through it, pooled or serving alike.
        for &id in &retired {
            let m = &member[&(id as u32)];
            for &k2 in &m.reach {
                deltas[k2].remove_worker(id);
            }
            reports[m.home].workers_retired += 1;
        }
        if reentry && !retired.is_empty() {
            in_service.retain(|s| !retired.contains(&u64::from(s.worker.id)));
        }
        pool.retain(|w| !committed_workers.contains(&w.id) && !retired.contains(&u64::from(w.id)));

        // Carry each shard's last drives into the next window: the base
        // full run plus its component re-drives, later sources owning
        // the entities they cover.
        if warm {
            for (k, st) in states.iter_mut().enumerate() {
                if let Some(base) = st.base.take() {
                    let mut sources = Vec::with_capacity(1 + st.subs.len());
                    sources.push(CarrySource {
                        board: base.outcome.board,
                        task_ids: base.task_ids,
                        worker_ids: base.worker_ids,
                    });
                    sources.extend(st.subs.drain(..).map(|sub| CarrySource {
                        board: sub.outcome.board,
                        task_ids: sub.task_ids,
                        worker_ids: sub.worker_ids,
                    }));
                    carried[k] = Some(Carried { sources });
                }
            }
        }

        // Matched tasks leave, survivors age, the too-old expire.
        let mut next_pending = Vec::with_capacity(pending.len());
        for mut p in pending.drain(..) {
            if committed_tasks.contains(&p.arrival.id) {
                continue;
            }
            p.ttl -= 1;
            if p.ttl == 0 {
                let home = task_home_of(partition, &p);
                deltas[home].remove_task(u64::from(p.arrival.id));
                shard_fates[home].insert(
                    p.arrival.id,
                    TaskFate::Expired {
                        window: window.index,
                    },
                );
                reports[home].expired += 1;
            } else {
                next_pending.push(p);
            }
        }
        *pending = next_pending;
        for p in pending.iter() {
            reports[task_home_of(partition, p)].carried_out += 1;
        }
        // Refresh the pacing forecast from this window's realized
        // spend (clamped at zero: window-`W` reclamation shrinking the
        // recorded spend is not negative burn).
        if cfg.pacing.is_some() {
            let tracked = ledger.tracked_ids();
            for &id in &tracked {
                let spent = ledger.spent(id);
                let st = pace.entry(id as u32).or_insert(PaceState {
                    last_spent: 0.0,
                    ema: 0.0,
                });
                let burned = (spent - st.last_spent).max(0.0);
                st.ema = 0.5 * st.ema + 0.5 * burned;
                st.last_spent = spent;
            }
            pace.retain(|&id, _| tracked.binary_search(&u64::from(id)).is_ok());
        }
        for (k, report) in reports.into_iter().enumerate() {
            shard_windows[k].push(report);
        }
        StepSignals {
            ages,
            backlog: pending.len(),
            pool: pool.len(),
        }
    }

    /// Settles the remaining pending fates and assembles the per-shard
    /// reports.
    pub(crate) fn finish(mut self, partition: &GridPartition) -> ShardedReport {
        for p in &self.pending {
            self.shard_fates[task_home_of(partition, p)].insert(p.arrival.id, TaskFate::Pending);
        }
        for p in &self.deferred {
            self.shard_fates[task_home_of(partition, p)].insert(p.arrival.id, TaskFate::Pending);
        }
        let engine_name = self.engine.name().to_string();
        ShardedReport {
            shards: (0..self.shard_windows.len())
                .map(|k| StreamReport {
                    engine: engine_name.clone(),
                    windows: std::mem::take(&mut self.shard_windows[k]),
                    fates: std::mem::take(&mut self.shard_fates[k]),
                    task_arrivals: self.shard_tasks[k],
                    worker_arrivals: self.shard_workers[k],
                    spend_by_worker: std::mem::take(&mut self.shard_spend[k]),
                    warnings: Vec::new(),
                })
                .collect(),
        }
    }

    /// Captures the coordinator's window-boundary state. The per-shard
    /// maintained instances and the membership cache are *not* here —
    /// both are pure functions of the partition and the serialized
    /// pool / pending / in-service sets, rebuilt on restore.
    pub(crate) fn snapshot(&self) -> HaloSnapshot {
        HaloSnapshot {
            shard_windows: self.shard_windows.clone(),
            shard_fates: self.shard_fates.clone(),
            shard_tasks: self.shard_tasks.clone(),
            shard_workers: self.shard_workers.clone(),
            shard_spend: self.shard_spend.clone(),
            pool: self.pool.clone(),
            pending: self.pending.clone(),
            deferred: self.deferred.clone(),
            in_service: self.in_service.clone(),
            ledger: self.ledger.clone(),
            pace: self.pace.clone(),
            charged: self.charged.clone(),
            carried: self.carried.clone(),
        }
    }

    /// Rebuilds a coordinator mid-stream from a snapshot. Membership is
    /// re-resolved from the partition for every tracked worker (pooled
    /// or serving — locations are immutable, so the result is
    /// identical), and each shard's maintained instance is re-derived
    /// by inserting the pool and pending set in their maintained order,
    /// which equals the live coordinator's insertion order — so the
    /// rebuilt instances emit bit-identically.
    pub(crate) fn from_snapshot(
        engine: &'e dyn AssignmentEngine,
        cfg: StreamConfig,
        partition: &GridPartition,
        snap: &HaloSnapshot,
    ) -> Result<Self, SnapshotError> {
        let n_shards = partition.n_shards();
        let per_shard = [
            snap.shard_windows.len(),
            snap.shard_fates.len(),
            snap.shard_tasks.len(),
            snap.shard_workers.len(),
            snap.shard_spend.len(),
            snap.carried.len(),
        ];
        if per_shard.iter().any(|&n| n != n_shards) {
            return Err(SnapshotError::Malformed(format!(
                "halo snapshot holds per-shard state for {} shards, partition has {n_shards}",
                per_shard[0]
            )));
        }
        let sorted = snap
            .in_service
            .iter()
            .zip(snap.in_service.iter().skip(1))
            .all(|(a, b)| (a.return_time, a.worker.id) <= (b.return_time, b.worker.id));
        if !sorted {
            return Err(SnapshotError::Malformed(
                "halo in-service set is not in (completion time, id) order".to_string(),
            ));
        }
        let mut core = HaloCore::new(engine, cfg, n_shards);
        core.shard_windows = snap.shard_windows.clone();
        core.shard_fates = snap.shard_fates.clone();
        core.shard_tasks = snap.shard_tasks.clone();
        core.shard_workers = snap.shard_workers.clone();
        core.shard_spend = snap.shard_spend.clone();
        core.pool = snap.pool.clone();
        core.pending = snap.pending.clone();
        core.deferred = snap.deferred.clone();
        core.in_service = snap.in_service.clone();
        core.ledger = snap.ledger.clone();
        core.pace = snap.pace.clone();
        core.charged = snap.charged.clone();
        core.carried = snap.carried.clone();
        for w in &snap.pool {
            let m = Membership {
                home: partition.shard_of(&w.worker.location),
                reach: partition.reach_shards(&w.worker.location, w.worker.radius),
            };
            for &k in &m.reach {
                core.deltas[k].insert_worker(u64::from(w.id), w.worker, |t, wk| {
                    core.budget_gen.vector(t as usize, wk as usize)
                });
            }
            core.member.insert(w.id, m);
        }
        for s in &snap.in_service {
            // Serving workers left the maintained instances with their
            // commit, but settle still consults their membership (home
            // attribution, retirement mid-service).
            core.member.insert(
                s.worker.id,
                Membership {
                    home: partition.shard_of(&s.worker.worker.location),
                    reach: partition
                        .reach_shards(&s.worker.worker.location, s.worker.worker.radius),
                },
            );
        }
        for p in &snap.pending {
            let home = partition.shard_of(&p.arrival.task.location);
            core.deltas[home].insert_task(u64::from(p.arrival.id), p.arrival.task, |t, w| {
                core.budget_gen.vector(t as usize, w as usize)
            });
        }
        Ok(core)
    }
}

/// The serializable window-boundary state of a [`HaloCore`]: per-shard
/// report accumulators plus the global protocol state. Maintained
/// instances and worker membership are deliberately absent — they are
/// rebuild markers, re-derived on restore from the partition and the
/// pool / pending order (see [`HaloCore::from_snapshot`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct HaloSnapshot {
    pub(crate) shard_windows: Vec<Vec<WindowReport>>,
    pub(crate) shard_fates: Vec<BTreeMap<u32, TaskFate>>,
    pub(crate) shard_tasks: Vec<usize>,
    pub(crate) shard_workers: Vec<usize>,
    pub(crate) shard_spend: Vec<BTreeMap<u32, f64>>,
    pub(crate) pool: Vec<WorkerArrival>,
    pub(crate) pending: Vec<PendingTask>,
    pub(crate) deferred: VecDeque<PendingTask>,
    pub(crate) in_service: VecDeque<Serving>,
    pub(crate) ledger: LedgerState,
    pub(crate) pace: BTreeMap<u32, PaceState>,
    pub(crate) charged: ReleaseDedup,
    pub(crate) carried: Vec<Option<Carried>>,
}

/// Home shard of a pending task.
fn task_home_of(partition: &GridPartition, p: &PendingTask) -> usize {
    partition.shard_of(&p.arrival.task.location)
}

/// Decides how much of a flagged shard's rerun is actually needed.
///
/// Every remaining entity of the shard was present in its last full
/// drive (instances only shrink within a window), so each resolves to
/// a component root there. Entities in undisturbed components keep
/// their previous outcome bit for bit — engine interactions flow only
/// along feasibility edges and noise/budgets are id-keyed — so only
/// the dirty components need re-driving. Returns `None` when the shard
/// has no component information (no full drive yet), forcing a full
/// drive.
fn plan_incremental(st: &ShardPassState, delta: &DeltaInstance) -> Option<IncrementalPlan> {
    let roots = st.base.as_ref()?.roots.as_ref()?;
    let mut task_ids: Vec<u32> = Vec::new();
    let mut worker_ids: Vec<u32> = Vec::new();
    for key in delta.task_keys() {
        let id = key as u32;
        match roots.task_root.get(&id) {
            Some(r) if st.dirty.contains(r) => task_ids.push(id),
            Some(_) => {}
            None => return None,
        }
    }
    for key in delta.worker_keys() {
        let id = key as u32;
        match roots.worker_root.get(&id) {
            Some(r) if st.dirty.contains(r) => worker_ids.push(id),
            Some(_) => {}
            None => return None,
        }
    }
    // A dirty side without a counterpart cannot form a feasible pair
    // (components are edge-closed), so its re-drive is a no-op too.
    if task_ids.is_empty() || worker_ids.is_empty() {
        Some(IncrementalPlan::Keep)
    } else {
        Some(IncrementalPlan::Redrive {
            task_ids,
            worker_ids,
        })
    }
}

/// Resolves the feasibility components of a driven instance to a root
/// per entity id.
fn compute_roots(inst: &Instance, task_ids: &[u32], worker_ids: &[u32]) -> RunRoots {
    let mut comp = PairComponents::new(inst.n_tasks(), inst.n_workers());
    for j in 0..inst.n_workers() {
        for &i in inst.reach(j) {
            comp.join(i, j);
        }
    }
    RunRoots {
        task_root: task_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, comp.find_task(i)))
            .collect(),
        worker_root: worker_ids
            .iter()
            .enumerate()
            .map(|(j, &id)| (id, comp.find_worker(j)))
            .collect(),
    }
}

/// Transplants the carried protocol state onto a fresh board for the
/// given id lists, flattening the carried stack: the *last* source
/// covering an entity owns its columns. With a single source this is
/// exactly [`Board::carry`]; with re-drive sources the stitch is still
/// bit-identical to carrying a monolithic full-rerun board, because a
/// worker's release history never crosses his feasibility component
/// (geometry is immutable, so a carried pair's edge persists) and
/// ledger iteration is ascending in task index either way.
fn carry_board(
    carried: &Option<Carried>,
    warm: bool,
    task_ids: &[u32],
    worker_ids: &[u32],
    n_tasks: usize,
    n_workers: usize,
) -> Board {
    let Some(prev) = carried else {
        return Board::new(n_tasks, n_workers);
    };
    if !warm {
        return Board::new(n_tasks, n_workers);
    }
    let task_to_new: FastMap<u32, usize> = task_ids
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i))
        .collect();
    let worker_to_new: FastMap<u32, usize> = worker_ids
        .iter()
        .enumerate()
        .map(|(j, &id)| (id, j))
        .collect();
    let mut task_owner: FastMap<u32, usize> = FastMap::default();
    let mut worker_owner: FastMap<u32, usize> = FastMap::default();
    for (s, src) in prev.sources.iter().enumerate() {
        for &id in &src.task_ids {
            task_owner.insert(id, s);
        }
        for &id in &src.worker_ids {
            worker_owner.insert(id, s);
        }
    }
    let mut next = Board::new(n_tasks, n_workers);
    for (s, src) in prev.sources.iter().enumerate() {
        for (j_old, &wid) in src.worker_ids.iter().enumerate() {
            if worker_owner[&wid] != s {
                continue;
            }
            let Some(&j_new) = worker_to_new.get(&wid) else {
                continue;
            };
            for t in src.board.ledger(j_old).tasks() {
                if t == LOCATION_RELEASE {
                    continue;
                }
                let t_old = t as usize;
                let Some(&t_new) = task_to_new.get(&src.task_ids[t_old]) else {
                    continue;
                };
                if let Some(set) = src.board.releases(t_old, j_old) {
                    for r in set.releases() {
                        next.publish(t_new, j_new, r.value, r.epsilon);
                    }
                }
            }
        }
    }
    for (s, src) in prev.sources.iter().enumerate() {
        for (t_old, w) in src.board.alloc().iter().enumerate() {
            let Some(j_old) = *w else {
                continue;
            };
            if task_owner[&src.task_ids[t_old]] != s {
                continue;
            }
            if let (Some(&t_new), Some(&j_new)) = (
                task_to_new.get(&src.task_ids[t_old]),
                worker_to_new.get(&src.worker_ids[j_old]),
            ) {
                next.set_winner(t_new, Some(j_new));
            }
        }
    }
    next
}

/// Builds shard `k`'s full run from its maintained instance, carrying
/// protocol state from the pre-window board. Returns `None` when the
/// shard has nothing to drive.
#[allow(clippy::too_many_arguments)]
fn prepare_run(
    budget_gen: &BudgetGen,
    k: usize,
    delta: &DeltaInstance,
    carried: &Option<Carried>,
    warm: bool,
    guard_from: Option<&LedgerState>,
    pace_caps: Option<&BTreeMap<u32, f64>>,
    track_components: bool,
) -> Option<PreparedRun> {
    if delta.n_tasks() == 0 || delta.n_workers() == 0 {
        return None;
    }
    let _ = budget_gen; // budgets were cached at insertion time
    let task_ids: Vec<u32> = delta.task_keys().map(|key| key as u32).collect();
    let worker_ids: Vec<u32> = delta.worker_keys().map(|key| key as u32).collect();
    let inst = delta.instance();
    let roots = track_components.then(|| compute_roots(&inst, &task_ids, &worker_ids));
    let board = carry_board(
        carried,
        warm,
        &task_ids,
        &worker_ids,
        inst.n_tasks(),
        inst.n_workers(),
    );
    let pre_pubs = board.publications();
    // The cap guard reads the live accountant, reservations included.
    // On a *rerun* this is deliberately conservative: the shard's own
    // earlier pass already reserved the releases it published, and the
    // engine counts their bit-identical re-derivations as novel board
    // spend again, so a worker near his cap may publish less than the
    // ideal continuation would. The alternative — refunding the
    // shard's own reservations — could let a rerun that takes a
    // different proposal path overshoot the lifetime cap, which is the
    // one thing the hard cap must never do. Conservative, deterministic
    // under-publishing in the (rare) rerun case is the chosen trade.
    let guard = guard_from.map(|acc| {
        worker_ids
            .iter()
            .map(|&id| {
                let mut g = acc.remaining(u64::from(id));
                // Pacing cap, when the controller flagged the worker
                // for this window.
                if let Some(caps) = pace_caps {
                    if let Some(&c) = caps.get(&id) {
                        g = g.min(c);
                    }
                }
                g
            })
            .collect()
    });
    Some(PreparedRun {
        shard: k,
        task_ids,
        worker_ids,
        inst,
        board,
        pre_pubs,
        guard,
        roots,
    })
}

/// Builds the component-restricted re-drive of a flagged shard: the
/// instance over exactly the dirty components' remaining entities, in
/// instance order, with the carried board restricted to them. Exact by
/// the component-locality argument in the module docs; only reached on
/// uncapped runs, so no guard.
#[allow(clippy::too_many_arguments)]
fn prepare_sub_run(
    k: usize,
    task_ids: Vec<u32>,
    worker_ids: Vec<u32>,
    pend_at: &FastMap<u32, usize>,
    pool_at: &FastMap<u32, usize>,
    pending: &[PendingTask],
    pool: &[WorkerArrival],
    budget_gen: &BudgetGen,
    carried: &Option<Carried>,
    warm: bool,
) -> PreparedRun {
    let inst = Instance::from_locations(
        task_ids
            .iter()
            .map(|&id| pending[pend_at[&id]].arrival.task)
            .collect(),
        worker_ids
            .iter()
            .map(|&id| pool[pool_at[&id]].worker)
            .collect(),
        |i, j| budget_gen.vector(task_ids[i] as usize, worker_ids[j] as usize),
    );
    let board = carry_board(
        carried,
        warm,
        &task_ids,
        &worker_ids,
        inst.n_tasks(),
        inst.n_workers(),
    );
    let pre_pubs = board.publications();
    PreparedRun {
        shard: k,
        task_ids,
        worker_ids,
        inst,
        board,
        pre_pubs,
        guard: None,
        roots: None,
    }
}

/// Drives one prepared shard run. Mirrors the unsharded driver: warm
/// engines resume (capped when a guard is set), one-shot engines assign
/// from their fresh board.
fn drive_prepared(
    engine: &dyn AssignmentEngine,
    cfg: &StreamConfig,
    p: PreparedRun,
) -> (ShardRun, Duration) {
    let noise = IdStableNoise {
        base: SeededNoise::new(cfg.params.seed),
        task_ids: &p.task_ids,
        worker_ids: &p.worker_ids,
    };
    // dpta-lint: allow(no-wall-clock) -- drive_time is observability-only; no windowing or matching decision reads it
    let start = Instant::now();
    let outcome = if engine.supports_warm_start() {
        match &p.guard {
            Some(g) => engine.resume_capped(&p.inst, p.board, &noise, g),
            None => engine.resume(&p.inst, p.board, &noise),
        }
    } else {
        let mut board = p.board;
        engine.assign(&p.inst, &mut board, &noise)
    };
    let dt = start.elapsed();
    (
        ShardRun {
            task_ids: p.task_ids,
            worker_ids: p.worker_ids,
            outcome,
            pre_pubs: p.pre_pubs,
            roots: p.roots,
        },
        dt,
    )
}

/// Fans a pass's prepared runs over a bounded scoped-thread pool and
/// returns `(shard, run, wall time)` tuples in completion order.
fn drive_parallel(
    engine: &dyn AssignmentEngine,
    cfg: &StreamConfig,
    prepared: Vec<PreparedRun>,
) -> Vec<(usize, ShardRun, Duration)> {
    let threads = prepared.len().min(
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(8),
    );
    if threads <= 1 {
        return prepared
            .into_iter()
            .map(|p| {
                let k = p.shard;
                let (run, dt) = drive_prepared(engine, cfg, p);
                (k, run, dt)
            })
            .collect();
    }
    let mut buckets: Vec<Vec<PreparedRun>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, p) in prepared.into_iter().enumerate() {
        buckets[i % threads].push(p);
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                s.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|p| {
                            let k = p.shard;
                            let (run, dt) = drive_prepared(engine, cfg, p);
                            (k, run, dt)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("halo shard thread panicked"))
            .collect()
    })
}

/// Reserves the run's *novel* releases against the lifetime accountant.
/// Reruns and carried history re-derive bit-identical releases, which
/// the global dedup filters out, so each release is charged at most
/// once over the stream's lifetime.
fn account_run(
    run: &ShardRun,
    charged: &mut ReleaseDedup,
    ledger: &mut LedgerState,
    window_spend: &mut BTreeMap<u32, f64>,
    report: &mut WindowReport,
) {
    let board = &run.outcome.board;
    for (j, &wid) in run.worker_ids.iter().enumerate() {
        let novel = novel_ledger_spend(board, j, wid, &run.task_ids, charged);
        if novel > 0.0 {
            ledger.reserve(u64::from(wid), novel);
            report.epsilon_spent += novel;
            *window_spend.entry(wid).or_insert(0.0) += novel;
        }
    }
}

/// Records a finished full run: claims, rounds, publications, wall
/// time, per-worker spend, and the component baseline for later
/// incremental passes.
fn finish_run(
    k: usize,
    run: ShardRun,
    dt: Duration,
    reports: &mut [WindowReport],
    claims: &mut [Vec<Claim>],
    states: &mut [ShardPassState],
) {
    reports[k].rounds += run.outcome.rounds;
    reports[k].drive_time += dt;
    reports[k].publications += run.outcome.board.publications() - run.pre_pubs;
    claims[k] = run
        .outcome
        .assignment
        .pairs()
        .map(|(i, j)| Claim {
            task: run.task_ids[i],
            worker: run.worker_ids[j],
        })
        .collect();
    let st = &mut states[k];
    for (j, &wid) in run.worker_ids.iter().enumerate() {
        st.spent.insert(wid, run.outcome.board.spent_total(j));
    }
    st.subs.clear();
    st.dirty.clear();
    st.base = Some(run);
}

/// Records a finished component re-drive: stats and spend like a full
/// run, but claims *merge* — the re-driven components' claims replace
/// only their own tasks' previous claims, everything undisturbed (and
/// not departed) stays.
fn finish_sub_run(
    k: usize,
    run: ShardRun,
    dt: Duration,
    reports: &mut [WindowReport],
    claims: &mut [Vec<Claim>],
    states: &mut [ShardPassState],
    committed_workers: &BTreeSet<u32>,
) {
    reports[k].rounds += run.outcome.rounds;
    reports[k].drive_time += dt;
    reports[k].publications += run.outcome.board.publications() - run.pre_pubs;
    let redriven: BTreeSet<u32> = run.task_ids.iter().copied().collect();
    claims[k].retain(|c| !redriven.contains(&c.task) && !committed_workers.contains(&c.worker));
    let fresh: Vec<Claim> = run
        .outcome
        .assignment
        .pairs()
        .map(|(i, j)| Claim {
            task: run.task_ids[i],
            worker: run.worker_ids[j],
        })
        .collect();
    claims[k].extend(fresh);
    let st = &mut states[k];
    for (j, &wid) in run.worker_ids.iter().enumerate() {
        st.spent.insert(wid, run.outcome.board.spent_total(j));
    }
    st.dirty.clear();
    st.subs.push(run);
}
