//! The boundary-halo protocol: cross-shard routing for sharded
//! streaming without dropped pairs.
//!
//! Drop-pairs sharding ([`ShardStrategy::DropPairs`]) is exact only
//! when every worker's service disc stays inside its grid cell. Real
//! spatial workloads are not like that — demand concentrates exactly
//! where cells meet — so this module implements the recovery protocol:
//!
//! 1. **Halo membership.** Each window, every shard's instance holds
//!    its own tasks plus every worker — interior *or foreign* — whose
//!    service disc reaches into its cell
//!    ([`GridPartition::reach_shards`]). Tasks are never replicated
//!    (each lives in exactly the cell owning its location), so every
//!    feasible pair, cross-boundary or not, is seen by exactly one
//!    shard: the task's.
//! 2. **Propose.** Shards drive the engine over interior ∪ halo and
//!    *propose* their matches. A worker reaching `k` cells can be
//!    claimed by up to `k` shards.
//! 3. **Reconcile.** Competing claims on a worker are resolved by a
//!    deterministic, id-keyed priority rule: the worker's *home* shard
//!    (the cell owning his location) wins; a foreign-only worker goes
//!    to the lowest claiming shard id. A winning claim is *committed*
//!    only when it is clean — neither the winning shard nor the
//!    worker's home shard lost a conflict in the same pass (a losing
//!    shard reruns, and its rerun may claim differently); when every
//!    candidate is entangled in mutual-loss cycles, the smallest
//!    worker id is forced through. Committed claims are final; shards
//!    that lost a committed worker rerun over their remaining
//!    entities, and the loop repeats until no claim is rejected. Every
//!    pass commits at least one worker, so the loop terminates within
//!    `|pool|` passes.
//! 4. **Charge once.** Per-pair releases are deterministic functions
//!    of `(worker id, task id, slot)`, so a rerun re-derives
//!    bit-identical publications. A global
//!    `(worker, task, slot, ε-bits)` dedup set keys a
//!    [`CumulativeAccountant::reserve`] for each *novel* release;
//!    after reconciliation the window's reservations are committed
//!    exactly once per worker ([`CumulativeAccountant::commit`]).
//!    Whole-location releases (the Geo-I baseline) are the one
//!    exception: their ε is the mean over the shard instance's reach
//!    set, so a rerun over fewer tasks publishes a *genuinely new*
//!    noisy location — real additional leakage, reserved and charged
//!    as such. One-shot location engines therefore pay per
//!    reconciliation rerun; that is the honest price, not a dedup
//!    miss.
//!
//! On shard-disjoint input no worker has a halo, no claim ever
//! conflicts, and the run settles in one pass per window — matching the
//! unsharded run assignment for assignment, fate for fate. On general
//! input the protocol is near-exact: the only utility left unrecovered
//! is what reconciliation rejects in the final pass of a window.
//! `ARCHITECTURE.md` ("Sharding & the halo protocol") documents the
//! guarantees and their limits.
//!
//! [`ShardStrategy::DropPairs`]: crate::ShardStrategy::DropPairs

use crate::driver::{novel_ledger_spend, ChargeKey, IdStableNoise, PendingTask, StreamConfig};
use crate::event::{ArrivalStream, WorkerArrival};
use crate::metrics::{
    percentile, ShardedReport, StreamReport, TaskFate, WindowFeedback, WindowReport,
};
use crate::window::Windower;
use dpta_core::{AssignmentEngine, Board, Instance, RunOutcome};
use dpta_dp::{CumulativeAccountant, SeededNoise};
use dpta_spatial::GridPartition;
use dpta_workloads::budgets::BudgetGen;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::{Duration, Instant};

/// Protocol state a shard carries across windows (warm-start engines):
/// the final board of its last actual run, keyed by the logical ids it
/// was built over.
struct Carried {
    board: Board,
    task_ids: Vec<u32>,
    worker_ids: Vec<u32>,
}

/// One worker held out of the pool while serving a committed match —
/// the halo coordinator's half of [`ServiceModel`] re-entry, mirroring
/// the session stepper's rules exactly (same completion-time ordering,
/// same re-admission boundary) so flat and halo runs stay bit-for-bit
/// on shard-disjoint input.
struct Serving {
    return_time: f64,
    worker: WorkerArrival,
}

/// One shard's engine run inside one reconciliation pass.
struct ShardRun {
    task_ids: Vec<u32>,
    worker_ids: Vec<u32>,
    outcome: RunOutcome,
    /// Publications already on the board before the drive (carried
    /// history), subtracted from the reported publication count.
    pre_pubs: usize,
}

/// A shard's proposed match, by logical id.
#[derive(Debug, Clone, Copy)]
struct Claim {
    task: u32,
    worker: u32,
}

/// The inputs of one shard run, assembled before the (possibly
/// parallel) drive.
struct PreparedRun {
    shard: usize,
    task_ids: Vec<u32>,
    worker_ids: Vec<u32>,
    inst: Instance,
    board: Board,
    pre_pubs: usize,
    /// Remaining lifetime budget per worker (finite caps only).
    guard: Option<Vec<f64>>,
}

/// Drives `stream` under the halo protocol (see the module docs) and
/// returns one [`StreamReport`] per shard. Fates, arrivals and spend
/// are attributed to the entity's *home* shard, so per-shard
/// conservation holds and the merged totals are globally correct;
/// matches (and their utility) land on the shard owning the task, which
/// is always the shard that claimed it.
pub(crate) fn run_halo(
    engine: &dyn AssignmentEngine,
    stream: &ArrivalStream,
    cfg: &StreamConfig,
    partition: &GridPartition,
) -> ShardedReport {
    // The halo coordinator always windows the *merged global* stream,
    // so the adaptive controller (like count windows) aligns across
    // shards by construction; its feedback is computed from the global
    // pool/pending state below, mirroring the unsharded driver.
    let mut former = Windower::new(cfg.policy, stream, cfg.horizon);
    let n_shards = partition.n_shards();
    let warm = cfg.carry_releases && engine.supports_warm_start();
    let capped = warm && cfg.worker_capacity.is_finite();
    let budget_gen = BudgetGen::new(
        cfg.params.seed ^ 0x5712_EA11,
        0,
        cfg.budget_range,
        cfg.budget_group_size,
    );

    // Per-shard report state.
    let mut shard_windows: Vec<Vec<WindowReport>> = vec![Vec::new(); n_shards];
    let mut shard_fates: Vec<BTreeMap<u32, TaskFate>> = vec![BTreeMap::new(); n_shards];
    let mut shard_tasks = vec![0usize; n_shards];
    let mut shard_workers = vec![0usize; n_shards];
    let mut shard_spend: Vec<BTreeMap<u32, f64>> = vec![BTreeMap::new(); n_shards];

    // Global pipeline state — one pool, one pending list, one
    // accountant, one in-service set, exactly like the unsharded
    // driver.
    let reentry = cfg.service.reenters();
    let mut pool: Vec<WorkerArrival> = Vec::new();
    let mut pending: Vec<PendingTask> = Vec::new();
    let mut in_service: VecDeque<Serving> = VecDeque::new();
    let mut accountant = CumulativeAccountant::new();
    let mut charged: BTreeSet<ChargeKey> = BTreeSet::new();
    let mut carried: Vec<Option<Carried>> = (0..n_shards).map(|_| None).collect();

    while let Some(window) = former.next_window() {
        let window = &window;
        let cut = former.last_decision();
        // ── Re-admit returned workers ─────────────────────────────────
        // Completed service cycles re-enter the pool ahead of the
        // window's fresh arrivals, in (completion time, id) order — the
        // session stepper's rule, so pool order matches the flat run's
        // on shard-disjoint input.
        let mut returned_by_home = vec![0usize; n_shards];
        while in_service
            .front()
            .is_some_and(|s| s.return_time < window.end)
        {
            let s = in_service.pop_front().expect("front exists");
            returned_by_home[partition.shard_of(&s.worker.worker.location)] += 1;
            pool.push(s.worker);
        }
        // ── Admit arrivals ────────────────────────────────────────────
        for w in &window.workers {
            accountant.register(u64::from(w.id), cfg.worker_capacity);
            shard_workers[partition.shard_of(&w.worker.location)] += 1;
            pool.push(*w);
        }
        for &arrival in &window.tasks {
            shard_tasks[partition.shard_of(&arrival.task.location)] += 1;
            pending.push(PendingTask {
                arrival,
                ttl: cfg.task_ttl,
            });
        }
        // Observed stream state at window close (identical to the
        // unsharded driver's: one global pending list, same formula).
        // Static policies never read it, so skip the allocation there.
        let ages: Vec<f64> = if former.needs_feedback() {
            pending
                .iter()
                .map(|p| window.end - p.arrival.time)
                .collect()
        } else {
            Vec::new()
        };

        // ── Membership ────────────────────────────────────────────────
        let task_home: Vec<usize> = pending
            .iter()
            .map(|p| partition.shard_of(&p.arrival.task.location))
            .collect();
        let worker_reach: Vec<Vec<usize>> = pool
            .iter()
            .map(|w| partition.reach_shards(&w.worker.location, w.worker.radius))
            .collect();
        let worker_home: BTreeMap<u32, usize> = pool
            .iter()
            .map(|w| (w.id, partition.shard_of(&w.worker.location)))
            .collect();

        let mut reports: Vec<WindowReport> = (0..n_shards)
            .map(|k| {
                let owned = task_home.iter().filter(|&&h| h == k).count();
                let arrived = window
                    .tasks
                    .iter()
                    .filter(|t| partition.shard_of(&t.task.location) == k)
                    .count();
                WindowReport {
                    index: window.index,
                    start: window.start,
                    end: window.end,
                    tasks_arrived: arrived,
                    carried_in: owned - arrived,
                    workers_available: worker_reach.iter().filter(|r| r.contains(&k)).count(),
                    matched: 0,
                    expired: 0,
                    carried_out: 0,
                    utility: 0.0,
                    distance: 0.0,
                    epsilon_spent: 0.0,
                    publications: 0,
                    rounds: 0,
                    drive_time: Duration::ZERO,
                    workers_retired: 0,
                    workers_departed: 0,
                    workers_returned: returned_by_home[k],
                    cut,
                }
            })
            .collect();

        // ── Propose / reconcile loop ──────────────────────────────────
        let mut committed_tasks: BTreeSet<u32> = BTreeSet::new();
        let mut committed_workers: BTreeSet<u32> = BTreeSet::new();
        // Per committed worker: the service duration of his match (the
        // settle step turns it into a return time or a departure).
        let mut service_of: BTreeMap<u32, Option<f64>> = BTreeMap::new();
        let mut window_spend: BTreeMap<u32, f64> = BTreeMap::new();
        let mut needs_run = vec![true; n_shards];
        let mut claims: Vec<Vec<Claim>> = vec![Vec::new(); n_shards];
        let mut runs: Vec<Option<ShardRun>> = (0..n_shards).map(|_| None).collect();
        let pool_size = pool.len();
        let mut passes = 0usize;

        loop {
            passes += 1;
            assert!(
                passes <= pool_size + 2,
                "halo reconciliation failed to converge in {passes} passes"
            );

            // (a) Run every flagged shard over its remaining entities.
            let flagged_now: Vec<usize> = (0..n_shards).filter(|&k| needs_run[k]).collect();
            let mut prepared: Vec<PreparedRun> = Vec::new();
            for &k in &flagged_now {
                needs_run[k] = false;
                claims[k].clear();
                let built = prepare_run(
                    &budget_gen,
                    k,
                    &pending,
                    &task_home,
                    &pool,
                    &worker_reach,
                    &committed_tasks,
                    &committed_workers,
                    &carried[k],
                    warm,
                    capped.then_some(&accountant),
                    passes > 1,
                );
                if let Some(p) = built {
                    if capped {
                        // Finite caps gate on the live accountant
                        // (reservations included), so capped shard runs
                        // execute sequentially in ascending shard id.
                        let (run, dt) = drive_prepared(engine, cfg, p);
                        account_run(
                            &run,
                            &mut charged,
                            &mut accountant,
                            &mut window_spend,
                            &mut reports[k],
                        );
                        finish_run(k, run, dt, &mut reports, &mut claims, &mut runs);
                    } else {
                        prepared.push(p);
                    }
                }
            }
            if !prepared.is_empty() {
                // Uncapped: inputs were fixed above, so the drives can
                // fan out over a bounded thread pool without changing
                // the result. Charge accounting stays sequential in
                // shard order so the dedup set is deterministic.
                let mut driven = drive_parallel(engine, cfg, prepared);
                driven.sort_by_key(|&(k, _, _)| k);
                for (k, run, dt) in driven {
                    account_run(
                        &run,
                        &mut charged,
                        &mut accountant,
                        &mut window_spend,
                        &mut reports[k],
                    );
                    finish_run(k, run, dt, &mut reports, &mut claims, &mut runs);
                }
            }

            // (b) Resolve claims: group by worker, pick winners.
            let mut by_worker: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
            for (k, shard_claims) in claims.iter().enumerate() {
                for c in shard_claims {
                    by_worker.entry(c.worker).or_default().push(k);
                }
            }
            if by_worker.is_empty() {
                break;
            }

            // Candidate winner per claimed worker: the home shard when
            // it claims him (id-keyed priority), else the lowest
            // claiming shard id. Losers of any conflict must rerun, and
            // a rerunning shard's claims are provisional — so a commit
            // is *clean* only when neither the winning shard nor the
            // worker's home shard lost a conflict this pass. Committing
            // only clean candidates protects the drop-pairs baseline:
            // a shard never loses a worker to a claim that a rerun
            // would have withdrawn. When every candidate is entangled
            // (mutual-loss cycles), the smallest worker id is forced
            // through so each pass still commits at least one worker
            // and the loop terminates.
            let cands: Vec<(u32, usize, Vec<usize>)> = by_worker
                .iter()
                .map(|(&w, ks)| {
                    let home = worker_home[&w];
                    let winner = if ks.contains(&home) { home } else { ks[0] };
                    let losers = ks.iter().copied().filter(|&k| k != winner).collect();
                    (w, winner, losers)
                })
                .collect();
            let contested: BTreeSet<usize> = cands
                .iter()
                .flat_map(|(_, _, losers)| losers.iter().copied())
                .collect();
            let clean: Vec<&(u32, usize, Vec<usize>)> = cands
                .iter()
                .filter(|(w, winner, _)| {
                    !contested.contains(winner) && !contested.contains(&worker_home[w])
                })
                .collect();
            let to_commit: Vec<&(u32, usize, Vec<usize>)> = if clean.is_empty() {
                vec![&cands[0]] // forced progress: smallest worker id
            } else {
                clean
            };
            let mut winners: Vec<(u32, usize)> = Vec::new();
            let mut flagged: BTreeSet<usize> = BTreeSet::new();
            for (w, winner, losers) in to_commit {
                winners.push((*w, *winner));
                flagged.extend(losers.iter().copied());
            }

            // (c) Apply commits: the pair is final, the task completes,
            // the worker departs to serve.
            for &(w, k) in &winners {
                let claim = claims[k]
                    .iter()
                    .find(|c| c.worker == w)
                    .copied()
                    .expect("winner shard holds a claim on the worker");
                let run = runs[k].as_ref().expect("claiming shard has run");
                let j = run
                    .worker_ids
                    .iter()
                    .position(|&id| id == w)
                    .expect("claimed worker indexed by the run");
                let task = pending
                    .iter()
                    .find(|p| p.arrival.id == claim.task)
                    .expect("claimed task is pending");
                let worker = pool.iter().find(|wa| wa.id == w).expect("worker pooled");
                let d = task.arrival.task.location.distance(&worker.worker.location);
                let privacy_cost = if engine.accounts_privacy() {
                    cfg.params.beta * run.outcome.board.spent_total(j)
                } else {
                    0.0
                };
                reports[k].matched += 1;
                reports[k].utility += task.arrival.task.value - cfg.params.alpha * d - privacy_cost;
                reports[k].distance += d;
                shard_fates[k].insert(
                    claim.task,
                    TaskFate::Assigned {
                        window: window.index,
                        worker: w,
                        latency: window.end - task.arrival.time,
                    },
                );
                committed_tasks.insert(claim.task);
                committed_workers.insert(w);
                service_of.insert(w, cfg.service.duration(d, task.arrival.task.value));
                claims[k].retain(|c| c.worker != w);
            }
            // The window is reconciled only when no claim is left
            // pending: a pass can commit clean candidates and flag
            // nobody while a mutual-loss cycle is still outstanding —
            // those claims persist, and the next pass (with the clean
            // candidates gone) resolves them via the forced-progress
            // path. Breaking on "nothing flagged" here would silently
            // abandon them.
            if flagged.is_empty() && claims.iter().all(Vec::is_empty) {
                break;
            }
            for &k in &flagged {
                needs_run[k] = true;
            }
        }

        // ── Settle the window ─────────────────────────────────────────
        // Commit this window's reservations — exactly once per worker —
        // then depart matched workers and retire exhausted ones.
        for (&wid, &eps) in &window_spend {
            accountant.commit(u64::from(wid));
            *shard_spend[worker_home[&wid]].entry(wid).or_insert(0.0) += eps;
        }
        for &w in &committed_workers {
            reports[worker_home[&w]].workers_departed += 1;
            match service_of.get(&w).copied().flatten() {
                Some(d) => {
                    // Re-entry: the worker keeps his accountant entry
                    // (lifetime budgets span service cycles) and waits
                    // out his service duration.
                    let return_time = window.end + d;
                    let arrival = *pool
                        .iter()
                        .find(|wa| wa.id == w)
                        .expect("committed worker pooled");
                    let pos = in_service
                        .partition_point(|s| (s.return_time, s.worker.id) < (return_time, w));
                    in_service.insert(
                        pos,
                        Serving {
                            return_time,
                            worker: arrival,
                        },
                    );
                }
                None => {
                    accountant.forget(u64::from(w));
                }
            }
        }
        let mut retired: BTreeSet<u64> = accountant.drain_exhausted().into_iter().collect();
        if capped {
            // Mirror the unsharded driver: under a hard cap a worker is
            // effectively exhausted once his remaining budget cannot
            // cover even the cheapest possible release.
            for w in pool.iter() {
                let id = u64::from(w.id);
                if !committed_workers.contains(&w.id)
                    && !retired.contains(&id)
                    && accountant.remaining(id) + 1e-12 < cfg.budget_range.0
                {
                    accountant.forget(id);
                    retired.insert(id);
                }
            }
        }
        // An in-service worker can exhaust his budget at the very match
        // that sent him out: he finishes the trip but retires instead
        // of returning (the session stepper's rule). His home shard is
        // read off his own location — he may not be in this window's
        // pool-derived `worker_home` map.
        let mut retired_home: BTreeMap<u64, usize> = retired
            .iter()
            .filter_map(|&id| worker_home.get(&(id as u32)).map(|&h| (id, h)))
            .collect();
        if reentry && !retired.is_empty() {
            in_service.retain(|s| {
                let id = u64::from(s.worker.id);
                if retired.contains(&id) {
                    retired_home.insert(id, partition.shard_of(&s.worker.worker.location));
                    false
                } else {
                    true
                }
            });
        }
        for &id in &retired {
            reports[retired_home[&id]].workers_retired += 1;
        }
        pool.retain(|w| !committed_workers.contains(&w.id) && !retired.contains(&u64::from(w.id)));

        // Carry each shard's last actual run into the next window.
        if warm {
            for (k, run) in runs.into_iter().enumerate() {
                if let Some(r) = run {
                    carried[k] = Some(Carried {
                        board: r.outcome.board,
                        task_ids: r.task_ids,
                        worker_ids: r.worker_ids,
                    });
                }
            }
        }

        // Matched tasks leave, survivors age, the too-old expire.
        let mut next_pending = Vec::with_capacity(pending.len());
        for mut p in pending.drain(..) {
            if committed_tasks.contains(&p.arrival.id) {
                continue;
            }
            p.ttl -= 1;
            if p.ttl == 0 {
                let home = task_home_of(partition, &p);
                shard_fates[home].insert(
                    p.arrival.id,
                    TaskFate::Expired {
                        window: window.index,
                    },
                );
                reports[home].expired += 1;
            } else {
                next_pending.push(p);
            }
        }
        pending = next_pending;
        for p in &pending {
            reports[task_home_of(partition, p)].carried_out += 1;
        }
        for (k, report) in reports.into_iter().enumerate() {
            shard_windows[k].push(report);
        }
        if former.needs_feedback() {
            former.observe(&WindowFeedback {
                p95_age: percentile(&ages, 0.95),
                backlog: pending.len(),
                pool: pool.len(),
            });
        }
    }

    for p in &pending {
        shard_fates[task_home_of(partition, p)].insert(p.arrival.id, TaskFate::Pending);
    }

    ShardedReport {
        shards: (0..n_shards)
            .map(|k| StreamReport {
                engine: engine.name().to_string(),
                windows: std::mem::take(&mut shard_windows[k]),
                fates: std::mem::take(&mut shard_fates[k]),
                task_arrivals: shard_tasks[k],
                worker_arrivals: shard_workers[k],
                spend_by_worker: std::mem::take(&mut shard_spend[k]),
                warnings: Vec::new(),
            })
            .collect(),
    }
}

/// Home shard of a pending task.
fn task_home_of(partition: &GridPartition, p: &PendingTask) -> usize {
    partition.shard_of(&p.arrival.task.location)
}

/// Builds shard `k`'s instance over its remaining tasks and interior ∪
/// halo workers, carrying protocol state from the pre-window board.
/// Returns `None` when the shard has nothing to drive.
#[allow(clippy::too_many_arguments)]
fn prepare_run(
    budget_gen: &BudgetGen,
    k: usize,
    pending: &[PendingTask],
    task_home: &[usize],
    pool: &[WorkerArrival],
    worker_reach: &[Vec<usize>],
    committed_tasks: &BTreeSet<u32>,
    committed_workers: &BTreeSet<u32>,
    carried: &Option<Carried>,
    warm: bool,
    guard_from: Option<&CumulativeAccountant>,
    rerun: bool,
) -> Option<PreparedRun> {
    let task_idx: Vec<usize> = (0..pending.len())
        .filter(|&i| task_home[i] == k && !committed_tasks.contains(&pending[i].arrival.id))
        .collect();
    let worker_idx: Vec<usize> = (0..pool.len())
        .filter(|&j| worker_reach[j].contains(&k) && !committed_workers.contains(&pool[j].id))
        .collect();
    if task_idx.is_empty() || worker_idx.is_empty() {
        return None;
    }
    // Cheap early-out on reconciliation reruns: losing a boundary
    // worker often leaves a shard whose remaining tasks no remaining
    // member can reach. Driving that instance is a guaranteed no-op —
    // every engine publishes and claims only over feasible pairs — so
    // skip the carry + drive and let the shard's previous run keep its
    // claims (none left here) and its carried board. First-pass runs
    // are never skipped: on shard-disjoint input they are what mirrors
    // the unsharded drive bit for bit, and location engines (Geo-I)
    // may legitimately publish for any reachable pair there.
    if rerun {
        let feasible = task_idx.iter().any(|&i| {
            let t = &pending[i].arrival.task;
            worker_idx.iter().any(|&j| {
                let w = &pool[j].worker;
                t.location.distance(&w.location) <= w.radius
            })
        });
        if !feasible {
            return None;
        }
    }
    let task_ids: Vec<u32> = task_idx.iter().map(|&i| pending[i].arrival.id).collect();
    let worker_ids: Vec<u32> = worker_idx.iter().map(|&j| pool[j].id).collect();
    let inst = Instance::from_locations(
        task_idx.iter().map(|&i| pending[i].arrival.task).collect(),
        worker_idx.iter().map(|&j| pool[j].worker).collect(),
        |i, j| budget_gen.vector(task_ids[i] as usize, worker_ids[j] as usize),
    );
    let board = match carried {
        Some(prev) if warm => {
            let task_to_new: BTreeMap<u32, usize> = task_ids
                .iter()
                .enumerate()
                .map(|(i, &id)| (id, i))
                .collect();
            let worker_to_new: BTreeMap<u32, usize> = worker_ids
                .iter()
                .enumerate()
                .map(|(j, &id)| (id, j))
                .collect();
            prev.board.carry(
                inst.n_tasks(),
                inst.n_workers(),
                |t_old| task_to_new.get(&prev.task_ids[t_old]).copied(),
                |j_old| worker_to_new.get(&prev.worker_ids[j_old]).copied(),
            )
        }
        _ => Board::new(inst.n_tasks(), inst.n_workers()),
    };
    let pre_pubs = board.publications();
    // The cap guard reads the live accountant, reservations included.
    // On a *rerun* this is deliberately conservative: the shard's own
    // earlier pass already reserved the releases it published, and the
    // engine counts their bit-identical re-derivations as novel board
    // spend again, so a worker near his cap may publish less than the
    // ideal continuation would. The alternative — refunding the
    // shard's own reservations — could let a rerun that takes a
    // different proposal path overshoot the lifetime cap, which is the
    // one thing the hard cap must never do. Conservative, deterministic
    // under-publishing in the (rare) rerun case is the chosen trade.
    let guard = guard_from.map(|acc| {
        worker_ids
            .iter()
            .map(|&id| acc.remaining(u64::from(id)))
            .collect()
    });
    Some(PreparedRun {
        shard: k,
        task_ids,
        worker_ids,
        inst,
        board,
        pre_pubs,
        guard,
    })
}

/// Drives one prepared shard run. Mirrors the unsharded driver: warm
/// engines resume (capped when a guard is set), one-shot engines assign
/// from their fresh board.
fn drive_prepared(
    engine: &dyn AssignmentEngine,
    cfg: &StreamConfig,
    p: PreparedRun,
) -> (ShardRun, Duration) {
    let noise = IdStableNoise {
        base: SeededNoise::new(cfg.params.seed),
        task_ids: &p.task_ids,
        worker_ids: &p.worker_ids,
    };
    let start = Instant::now();
    let outcome = if engine.supports_warm_start() {
        match &p.guard {
            Some(g) => engine.resume_capped(&p.inst, p.board, &noise, g),
            None => engine.resume(&p.inst, p.board, &noise),
        }
    } else {
        let mut board = p.board;
        engine.assign(&p.inst, &mut board, &noise)
    };
    let dt = start.elapsed();
    (
        ShardRun {
            task_ids: p.task_ids,
            worker_ids: p.worker_ids,
            outcome,
            pre_pubs: p.pre_pubs,
        },
        dt,
    )
}

/// Fans a pass's prepared runs over a bounded scoped-thread pool and
/// returns `(shard, run, wall time)` tuples in completion order.
fn drive_parallel(
    engine: &dyn AssignmentEngine,
    cfg: &StreamConfig,
    prepared: Vec<PreparedRun>,
) -> Vec<(usize, ShardRun, Duration)> {
    let threads = prepared.len().min(
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(8),
    );
    if threads <= 1 {
        return prepared
            .into_iter()
            .map(|p| {
                let k = p.shard;
                let (run, dt) = drive_prepared(engine, cfg, p);
                (k, run, dt)
            })
            .collect();
    }
    let mut buckets: Vec<Vec<PreparedRun>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, p) in prepared.into_iter().enumerate() {
        buckets[i % threads].push(p);
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                s.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|p| {
                            let k = p.shard;
                            let (run, dt) = drive_prepared(engine, cfg, p);
                            (k, run, dt)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("halo shard thread panicked"))
            .collect()
    })
}

/// Reserves the run's *novel* releases against the lifetime accountant.
/// Reruns and carried history re-derive bit-identical releases, which
/// the global dedup set filters out, so each release is charged at most
/// once over the stream's lifetime.
fn account_run(
    run: &ShardRun,
    charged: &mut BTreeSet<ChargeKey>,
    accountant: &mut CumulativeAccountant,
    window_spend: &mut BTreeMap<u32, f64>,
    report: &mut WindowReport,
) {
    let board = &run.outcome.board;
    for (j, &wid) in run.worker_ids.iter().enumerate() {
        let novel = novel_ledger_spend(board, j, wid, &run.task_ids, charged);
        if novel > 0.0 {
            accountant.reserve(u64::from(wid), novel);
            report.epsilon_spent += novel;
            *window_spend.entry(wid).or_insert(0.0) += novel;
        }
    }
}

/// Records a finished run: claims, rounds, publications, wall time.
fn finish_run(
    k: usize,
    run: ShardRun,
    dt: Duration,
    reports: &mut [WindowReport],
    claims: &mut [Vec<Claim>],
    runs: &mut [Option<ShardRun>],
) {
    reports[k].rounds += run.outcome.rounds;
    reports[k].drive_time += dt;
    reports[k].publications += run.outcome.board.publications() - run.pre_pubs;
    claims[k] = run
        .outcome
        .assignment
        .pairs()
        .map(|(i, j)| Claim {
            task: run.task_ids[i],
            worker: run.worker_ids[j],
        })
        .collect();
    runs[k] = Some(run);
}
