//! Durable sessions: versioned snapshot/restore of streaming state.
//!
//! A [`SessionSnapshot`] captures everything a
//! [`StreamSession`](crate::StreamSession) needs to resume after a
//! process restart *bit for bit*: the windower (buffered events,
//! watermark, grid cursors, the adaptive controller's PID trajectory),
//! the pool / pending / in-service sets, the lifetime-budget ledger
//! with its release-dedup set, carried warm-start boards, fates and
//! per-window reports. Pure-function state is deliberately *not*
//! serialized — budget generators are re-derived from the seed, and
//! the incremental delta-instance caches are rebuilt from the live
//! pool/pending order — so the format stays small and stable.
//!
//! # Versioning rules
//!
//! Snapshots carry [`SNAPSHOT_VERSION`]. The version is bumped on any
//! change that alters the meaning or encoding of an existing field;
//! restoring a snapshot with a different version is rejected with
//! [`SnapshotError::VersionMismatch`] rather than guessed at. Adding a
//! *new* field with a restore-time default does not bump the version.
//! A committed golden fixture pins the v2 wire format. (v2 replaced
//! the bare accountant section with a tagged
//! [`LedgerState`](dpta_dp::LedgerState) — lifetime or sliding-window
//! — and added the deferred-task queue and pacing state; v1 snapshots
//! are rejected with [`SnapshotError::VersionMismatch`].)
//!
//! # Exactly-once across restart
//!
//! Snapshots are taken at window boundaries, where every privacy
//! charge of the preceding window has already been committed to the
//! serialized [`LedgerState`](dpta_dp::LedgerState)
//! and recorded in the serialized release-dedup set. A restored
//! session therefore re-charges nothing: re-derived publications of
//! already-charged releases are filtered by the dedup exactly as they
//! are in an uninterrupted run, so each release is charged once per
//! worker lifetime *across restarts*, and total spend is bit-identical
//! to the run that never stopped.

use crate::driver::StreamConfig;
use crate::halo::HaloSnapshot;
use crate::session::{CoreSnapshot, Outcome, WindowerSnapshot};
use crate::shard::ShardStrategy;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};

/// Current snapshot format version, embedded in every snapshot.
pub const SNAPSHOT_VERSION: u32 = 2;

/// The full serializable state of a [`StreamSession`] at a window
/// boundary, produced by [`StreamSession::snapshot`] and consumed by
/// [`StreamSession::restore`].
///
/// [`StreamSession`]: crate::StreamSession
/// [`StreamSession::snapshot`]: crate::StreamSession::snapshot
/// [`StreamSession::restore`]: crate::StreamSession::restore
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionSnapshot {
    pub(crate) version: u32,
    pub(crate) engine: String,
    pub(crate) config: StreamConfig,
    pub(crate) windower: WindowerSnapshot,
    pub(crate) core: CoreSnapshot,
    pub(crate) residual: VecDeque<Outcome>,
    pub(crate) n_tasks: usize,
    pub(crate) n_workers: usize,
    pub(crate) task_ids: BTreeSet<u32>,
    pub(crate) worker_ids: BTreeSet<u32>,
}

impl SessionSnapshot {
    /// The snapshot format version this snapshot was written under.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Display name of the engine the session was running.
    pub fn engine(&self) -> &str {
        &self.engine
    }

    /// The configuration the session was running under. Restore
    /// requires an equal configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Serializes the snapshot to its canonical JSON form. The
    /// encoding is deterministic: the same session state always
    /// produces the same bytes (map keys are sorted, float bit
    /// patterns round-trip exactly).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization is infallible")
    }

    /// Parses a snapshot from its JSON form. Returns
    /// [`SnapshotError::Malformed`] on syntax or schema violations and
    /// [`SnapshotError::VersionMismatch`] when the format version is
    /// not [`SNAPSHOT_VERSION`].
    pub fn from_json(text: &str) -> Result<Self, SnapshotError> {
        let value = serde_json::from_str(text).map_err(|e| SnapshotError::Malformed(e.0))?;
        let snap = SessionSnapshot::deserialize_value(&value)
            .map_err(|e| SnapshotError::Malformed(e.0))?;
        if snap.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: snap.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        Ok(snap)
    }

    /// Validates the snapshot against a restore-time engine and
    /// configuration: version first, then engine, then every
    /// configuration field — the error names the first mismatch.
    pub(crate) fn validate(&self, engine: &str, cfg: &StreamConfig) -> Result<(), SnapshotError> {
        if self.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: self.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        if self.engine != engine {
            return Err(SnapshotError::ConfigMismatch { field: "engine" });
        }
        check_config(&self.config, cfg)
    }
}

/// Field-by-field configuration comparison, naming the first differing
/// field. Restoring under a changed configuration would silently
/// diverge from the uninterrupted run (different windows, budgets or
/// retirement points), so every field must match exactly.
pub(crate) fn check_config(snap: &StreamConfig, cfg: &StreamConfig) -> Result<(), SnapshotError> {
    let mismatch = |field| Err(SnapshotError::ConfigMismatch { field });
    if snap.policy != cfg.policy {
        return mismatch("policy");
    }
    if snap.params != cfg.params {
        return mismatch("params");
    }
    if snap.budget_range != cfg.budget_range {
        return mismatch("budget_range");
    }
    if snap.budget_group_size != cfg.budget_group_size {
        return mismatch("budget_group_size");
    }
    if snap.worker_capacity != cfg.worker_capacity {
        return mismatch("worker_capacity");
    }
    if snap.task_ttl != cfg.task_ttl {
        return mismatch("task_ttl");
    }
    if snap.carry_releases != cfg.carry_releases {
        return mismatch("carry_releases");
    }
    if snap.service != cfg.service {
        return mismatch("service");
    }
    if snap.horizon != cfg.horizon {
        return mismatch("horizon");
    }
    if snap.halo_full_rerun != cfg.halo_full_rerun {
        return mismatch("halo_full_rerun");
    }
    if snap.ledger != cfg.ledger {
        return mismatch("ledger");
    }
    if snap.pacing != cfg.pacing {
        return mismatch("pacing");
    }
    if snap.admission != cfg.admission {
        return mismatch("admission");
    }
    Ok(())
}

/// The full serializable state of a
/// [`ShardedSession`](crate::ShardedSession) at a window boundary,
/// produced by [`ShardedSession::snapshot`] and consumed by
/// [`ShardedSession::restore`].
///
/// [`ShardedSession::snapshot`]: crate::ShardedSession::snapshot
/// [`ShardedSession::restore`]: crate::ShardedSession::restore
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardedSnapshot {
    pub(crate) version: u32,
    pub(crate) engine: String,
    pub(crate) config: StreamConfig,
    pub(crate) strategy: ShardStrategy,
    pub(crate) n_shards: usize,
    pub(crate) watermark: f64,
    pub(crate) task_ids: BTreeSet<u32>,
    pub(crate) worker_ids: BTreeSet<u32>,
    pub(crate) mode: ShardedModeSnapshot,
}

/// Per-execution-mode state inside a [`ShardedSnapshot`], mirroring the
/// sharded session's three run modes.
// One per snapshot, never collected — variant size skew is harmless.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum ShardedModeSnapshot {
    /// Independent per-shard sessions (static drop-pairs policies).
    PerShard {
        /// One full session snapshot per shard, in shard order.
        shards: Vec<SessionSnapshot>,
        /// Largest event time pushed so far, for horizon injection at
        /// close.
        max_event_time: f64,
    },
    /// One global windower over per-shard cores (adaptive drop-pairs).
    Lockstep {
        /// The shared global windower.
        windower: WindowerSnapshot,
        /// One pipeline core per shard, in shard order.
        cores: Vec<CoreSnapshot>,
        /// Tasks projected into each shard so far.
        shard_tasks: Vec<usize>,
        /// Workers projected into each shard so far.
        shard_workers: Vec<usize>,
    },
    /// The boundary-halo coordinator.
    Halo {
        /// The shared global windower.
        windower: WindowerSnapshot,
        /// The coordinator's protocol state.
        core: HaloSnapshot,
    },
}

impl ShardedSnapshot {
    /// The snapshot format version this snapshot was written under.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Display name of the engine the session was running.
    pub fn engine(&self) -> &str {
        &self.engine
    }

    /// The configuration the session was running under. Restore
    /// requires an equal configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// The sharding strategy the session was running under.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// Serializes the snapshot to its canonical JSON form (same
    /// determinism guarantees as [`SessionSnapshot::to_json`]).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization is infallible")
    }

    /// Parses a snapshot from its JSON form, with the same error
    /// contract as [`SessionSnapshot::from_json`].
    pub fn from_json(text: &str) -> Result<Self, SnapshotError> {
        let value = serde_json::from_str(text).map_err(|e| SnapshotError::Malformed(e.0))?;
        let snap = ShardedSnapshot::deserialize_value(&value)
            .map_err(|e| SnapshotError::Malformed(e.0))?;
        if snap.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: snap.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        Ok(snap)
    }

    /// Validates the snapshot against a restore-time engine,
    /// configuration, partition size and strategy: version first, then
    /// engine, then every configuration field, then strategy and shard
    /// count — the error names the first mismatch.
    pub(crate) fn validate(
        &self,
        engine: &str,
        cfg: &StreamConfig,
        n_shards: usize,
        strategy: ShardStrategy,
    ) -> Result<(), SnapshotError> {
        if self.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: self.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        if self.engine != engine {
            return Err(SnapshotError::ConfigMismatch { field: "engine" });
        }
        check_config(&self.config, cfg)?;
        if self.strategy != strategy {
            return Err(SnapshotError::ConfigMismatch { field: "strategy" });
        }
        if self.n_shards != n_shards {
            return Err(SnapshotError::ConfigMismatch { field: "partition" });
        }
        Ok(())
    }
}

/// Why a snapshot could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot was written under a different format version.
    VersionMismatch {
        /// Version found in the snapshot.
        found: u32,
        /// Version this build reads ([`SNAPSHOT_VERSION`]).
        expected: u32,
    },
    /// The restore-time engine or configuration differs from what the
    /// snapshot was taken under; carries the first mismatching field.
    ConfigMismatch {
        /// Name of the first differing configuration field (`"engine"`
        /// when the engine itself differs).
        field: &'static str,
    },
    /// The snapshot bytes do not parse or violate a state invariant.
    Malformed(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::VersionMismatch { found, expected } => write!(
                f,
                "snapshot format version {found} cannot be restored by this build \
                 (expected {expected})"
            ),
            SnapshotError::ConfigMismatch { field } => write!(
                f,
                "snapshot was taken under a different configuration: field `{field}` differs"
            ),
            SnapshotError::Malformed(why) => write!(f, "malformed snapshot: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}
