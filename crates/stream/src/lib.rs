//! **dpta-stream** — the *dynamic* in Dynamic Private Task Assignment.
//!
//! The batch experiments replay pre-built instances; this crate builds
//! the online setting the paper's title promises and the related
//! batch-assignment literature (Li et al., arXiv:2108.09019; Qiu & Yi,
//! arXiv:2209.01387) frames as the one that matters: tasks and workers
//! *arrive over time*, are grouped into windows, matched in batches
//! under a depleting privacy budget, and retired when that budget runs
//! out. The pipeline has four stages, each usable on its own:
//!
//! * [`ArrivalStream`] / [`StreamScenario`] / [`ArrivalModel`] — a
//!   time-ordered log of [`TaskArrival`]/[`WorkerArrival`] events,
//!   generated from the Table X workload scenarios plus Poisson and
//!   bursty (rush-hour) arrival processes;
//! * [`WindowPolicy`] — batch formation by time window, task-count
//!   threshold (the paper's "at most 1000 orders by timestamp"), or an
//!   adaptive latency-targeting controller
//!   ([`WindowPolicy::Adaptive`]) fed realized backlog/latency by the
//!   driver after every window;
//! * [`StreamSession`] — the primary, push-based interface:
//!   `push(event)` / `advance_to(t)` / `poll_outcomes()` / `close()`,
//!   emitting assignments, expiries, retirements and worker returns as
//!   a typed [`Outcome`] log. Warm-start engines resume from carried
//!   protocol state per the engine trait's warm-start contract, a
//!   [`BudgetLedger`](dpta_dp::BudgetLedger) tracks budget depletion —
//!   lifetime by default, or a sliding protection window
//!   ([`LedgerMode::Windowed`]) with optional pacing
//!   ([`PacingConfig`]) and admission control ([`AdmissionConfig`]) —
//!   exhausted workers retire (or idle until reclamation), unserved
//!   tasks carry over until a time-to-live expires, and a
//!   [`ServiceModel`] returns matched workers to the pool after their
//!   service duration (serve-and-leave is `ServiceModel::Never`);
//! * [`StreamDriver`] — the batch-shaped drain loop over the session:
//!   replays a pre-built stream to completion;
//! * [`run_sharded`] / [`run_sharded_halo`] — partition the stream by
//!   spatial grid cell
//!   ([`GridPartition`](dpta_spatial::GridPartition)) and run one
//!   engine per shard on scoped threads. Drop-pairs mode is exact on
//!   shard-disjoint input; the boundary-halo protocol
//!   ([`ShardStrategy::Halo`]) additionally recovers cross-boundary
//!   pairs via halo membership and a deterministic reconciliation
//!   pass, staying near-exact on general input.
//!
//! Everything is deterministic in the seed: budget vectors and noise
//! draws are keyed by *logical* entity ids rather than per-window
//! indices, so the same stream replays bit-identically — sharded or
//! not.
//!
//! # Examples
//!
//! ```
//! use dpta_core::Method;
//! use dpta_stream::{StreamConfig, StreamDriver, StreamScenario, WindowPolicy};
//! use dpta_workloads::{Dataset, Scenario};
//!
//! // A small uniform workload, streamed: tasks arrive Poisson, 80 % of
//! // the fleet is on duty from t = 0.
//! let stream = StreamScenario::new(Scenario {
//!     batch_size: 40,
//!     n_batches: 2,
//!     ..Scenario::for_dataset(Dataset::Uniform)
//! })
//! .stream();
//!
//! // Six-minute windows, default Table X budgets, engine = PUCE.
//! let cfg = StreamConfig {
//!     policy: WindowPolicy::ByTime { width: 360.0 },
//!     ..StreamConfig::default()
//! };
//! let engine = Method::Puce.engine(&cfg.params);
//! let report = StreamDriver::new(engine.as_ref(), cfg).run(&stream);
//!
//! // Every arrival is assigned, expired, or still pending — exactly once.
//! let (matched, expired, pending) = report.assert_conservation();
//! assert_eq!(matched + expired + pending, 80);
//! println!("{}", report.render());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod arrival;
mod driver;
mod event;
mod halo;
mod metrics;
mod session;
mod shard;
mod snapshot;
mod window;

pub use arrival::{ArrivalModel, StreamScenario};
pub use driver::{
    AdmissionConfig, ConfigError, LedgerMode, PacingConfig, StreamConfig, StreamConfigBuilder,
    StreamDriver,
};
pub use event::{ArrivalEvent, ArrivalStream, TaskArrival, WorkerArrival};
pub use metrics::{
    percentile, ShardedReport, StreamReport, TaskFate, WindowCutDecision, WindowFeedback,
    WindowReport,
};
pub use session::{Outcome, ServiceModel, StreamSession};
pub use shard::{
    run_sharded, run_sharded_halo, run_sharded_pooled, run_sharded_with, ShardStrategy,
    ShardedSession, COUNT_WINDOW_SHARD_WARNING,
};
pub use snapshot::{SessionSnapshot, ShardedSnapshot, SnapshotError, SNAPSHOT_VERSION};
pub use window::{AdaptivePolicy, Window, WindowPolicy, Windower, MAX_WINDOWS};
