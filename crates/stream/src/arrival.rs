//! Arrival-time models and scenario-backed stream generation.
//!
//! [`ArrivalModel`] turns a count of entities into a deterministic,
//! seeded sequence of arrival timestamps; [`StreamScenario`] marries a
//! Table X [`Scenario`] (which decides *where* tasks and workers are
//! and what they are worth) with arrival models (which decide *when*
//! they appear), producing the [`ArrivalStream`] the pipeline runs on.

use crate::event::{ArrivalEvent, ArrivalStream, TaskArrival, WorkerArrival};
use dpta_workloads::Scenario;

/// SplitMix64 finalizer (same mixing core as the dp noise derivation
/// and the workloads budget generator, which keep private copies for
/// the same reason: arrival times must not silently change if another
/// crate tunes its internal mixer).
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic uniform in (0, 1) keyed by `(seed, index)`.
fn hash_uniform(seed: u64, k: u64) -> f64 {
    let mut h = splitmix64(seed ^ 0xA217_55C5_93D1_E0B7);
    h = splitmix64(h ^ k);
    let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    u.clamp(1e-15, 1.0 - 1e-15)
}

/// How arrival timestamps are laid out over time.
///
/// Every model is a pure function of `(seed, n)`, so streams are
/// reproducible and sharded/unsharded runs see identical timestamps.
///
/// # Examples
///
/// ```
/// use dpta_stream::ArrivalModel;
///
/// let times = ArrivalModel::Poisson { rate: 0.5 }.times(42, 100);
/// assert_eq!(times.len(), 100);
/// assert!(times.windows(2).all(|w| w[0] <= w[1]));
/// // Mean inter-arrival ≈ 1/rate = 2 s.
/// let mean = times.last().unwrap() / 100.0;
/// assert!((mean - 2.0).abs() < 0.8, "mean inter-arrival {mean}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Deterministic spacing: arrival `k` at `(k + 1) / rate`.
    Paced {
        /// Arrivals per second.
        rate: f64,
    },
    /// Homogeneous Poisson process: i.i.d. exponential inter-arrivals.
    Poisson {
        /// Arrivals per second.
        rate: f64,
    },
    /// Rush-hour traffic: a Poisson process whose rate alternates
    /// between a base phase and a burst phase (`burst_fraction` of each
    /// `period` runs at `burst_rate`, the rest at `base_rate`).
    Bursty {
        /// Off-peak arrivals per second.
        base_rate: f64,
        /// Peak arrivals per second.
        burst_rate: f64,
        /// Length of one base+burst cycle, seconds.
        period: f64,
        /// Fraction of each period spent in the burst phase, in (0, 1).
        burst_fraction: f64,
    },
}

impl ArrivalModel {
    /// The first `n` arrival timestamps, ascending from `t = 0`.
    pub fn times(&self, seed: u64, n: usize) -> Vec<f64> {
        match *self {
            ArrivalModel::Paced { rate } => {
                assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
                (0..n).map(|k| (k as f64 + 1.0) / rate).collect()
            }
            ArrivalModel::Poisson { rate } => {
                assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
                let mut t = 0.0;
                (0..n)
                    .map(|k| {
                        t += -hash_uniform(seed, k as u64).ln() / rate;
                        t
                    })
                    .collect()
            }
            ArrivalModel::Bursty {
                base_rate,
                burst_rate,
                period,
                burst_fraction,
            } => {
                assert!(
                    base_rate > 0.0 && burst_rate > 0.0 && period > 0.0,
                    "rates and period must be positive"
                );
                assert!(
                    (0.0..1.0).contains(&burst_fraction) && burst_fraction > 0.0,
                    "burst_fraction must be in (0, 1), got {burst_fraction}"
                );
                let mut t = 0.0;
                (0..n)
                    .map(|k| {
                        // Rate of the phase containing the current time;
                        // a draw that crosses a phase boundary keeps its
                        // departure phase's rate (a deliberate, simple
                        // approximation of the inhomogeneous process).
                        let phase = (t / period).fract();
                        let rate = if phase < burst_fraction {
                            burst_rate
                        } else {
                            base_rate
                        };
                        t += -hash_uniform(seed, k as u64).ln() / rate;
                        t
                    })
                    .collect()
            }
        }
    }
}

/// A Table X scenario lifted into the streaming setting.
///
/// Locations, values and service radii come from the wrapped
/// [`Scenario`] (all of its batches, flattened in batch order); this
/// type adds the missing dimension — time. A `initial_worker_fraction`
/// share of the fleet is on duty at `t = 0` (the paper's
/// always-available taxi groups); the rest trickle in per
/// `worker_model`. The scenario's *budget* settings do not ride along:
/// the driver draws budget vectors itself, so pass them through
/// [`StreamConfig::for_scenario`](crate::StreamConfig::for_scenario)
/// when the scenario sweeps them.
///
/// # Examples
///
/// ```
/// use dpta_stream::{ArrivalModel, StreamScenario};
/// use dpta_workloads::{Dataset, Scenario};
///
/// let stream = StreamScenario {
///     scenario: Scenario {
///         batch_size: 40,
///         n_batches: 2,
///         ..Scenario::for_dataset(Dataset::Uniform)
///     },
///     task_model: ArrivalModel::Poisson { rate: 0.05 },
///     worker_model: ArrivalModel::Paced { rate: 0.1 },
///     initial_worker_fraction: 0.5,
/// }
/// .stream();
/// assert_eq!(stream.n_tasks(), 80);
/// assert!(stream.n_workers() >= 80);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StreamScenario {
    /// Spatial/value/budget configuration (Table X).
    pub scenario: Scenario,
    /// Arrival process of the tasks.
    pub task_model: ArrivalModel,
    /// Arrival process of the late-joining workers.
    pub worker_model: ArrivalModel,
    /// Share of the fleet on duty at `t = 0`, in `[0, 1]`.
    pub initial_worker_fraction: f64,
}

impl StreamScenario {
    /// A streaming view of `scenario` with defaults sized to it: tasks
    /// arrive Poisson at one task per 4 s, 80 % of the fleet starts on
    /// duty and the rest joins at a matching trickle.
    pub fn new(scenario: Scenario) -> Self {
        StreamScenario {
            scenario,
            task_model: ArrivalModel::Poisson { rate: 0.25 },
            worker_model: ArrivalModel::Poisson { rate: 0.05 },
            initial_worker_fraction: 0.8,
        }
    }

    /// Generates the arrival stream: every task and worker of every
    /// scenario batch, stamped with model-drawn times. Deterministic in
    /// the scenario seed.
    pub fn stream(&self) -> ArrivalStream {
        assert!(
            (0.0..=1.0).contains(&self.initial_worker_fraction),
            "initial_worker_fraction must be in [0, 1]"
        );
        let batches = self.scenario.batches();
        let seed = self.scenario.seed;

        let mut events = Vec::new();
        let tasks: Vec<_> = batches
            .iter()
            .flat_map(|b| b.tasks().iter().copied())
            .collect();
        let task_times = self.task_model.times(seed ^ 0x7A5C, tasks.len());
        for (k, (task, time)) in tasks.into_iter().zip(task_times).enumerate() {
            events.push(ArrivalEvent::Task(TaskArrival {
                id: k as u32,
                time,
                task,
            }));
        }

        let workers: Vec<_> = batches
            .iter()
            .flat_map(|b| b.workers().iter().copied())
            .collect();
        let n_initial = ((workers.len() as f64) * self.initial_worker_fraction).round() as usize;
        let late_times = self
            .worker_model
            .times(seed ^ 0x3D1F, workers.len().saturating_sub(n_initial));
        for (k, worker) in workers.into_iter().enumerate() {
            let time = if k < n_initial {
                0.0
            } else {
                late_times[k - n_initial]
            };
            events.push(ArrivalEvent::Worker(WorkerArrival {
                id: k as u32,
                time,
                worker,
            }));
        }
        ArrivalStream::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpta_workloads::Dataset;

    #[test]
    fn paced_times_are_evenly_spaced() {
        let t = ArrivalModel::Paced { rate: 2.0 }.times(0, 4);
        assert_eq!(t, vec![0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn poisson_times_are_deterministic_and_seed_sensitive() {
        let m = ArrivalModel::Poisson { rate: 1.0 };
        assert_eq!(m.times(1, 50), m.times(1, 50));
        assert_ne!(m.times(1, 50), m.times(2, 50));
    }

    #[test]
    fn bursty_bursts_are_denser_than_base() {
        let m = ArrivalModel::Bursty {
            base_rate: 0.1,
            burst_rate: 10.0,
            period: 100.0,
            burst_fraction: 0.3,
        };
        let times = m.times(7, 2000);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // Count arrivals falling in burst vs base phases.
        let burst = times.iter().filter(|t| (*t / 100.0).fract() < 0.3).count();
        let base = times.len() - burst;
        // Burst phases cover 30 % of the time at 100× the rate.
        assert!(
            burst > 5 * base,
            "burst arrivals {burst} not dominating base {base}"
        );
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = ArrivalModel::Poisson { rate: 0.0 }.times(0, 1);
    }

    #[test]
    fn scenario_stream_covers_all_entities() {
        let sc = Scenario {
            batch_size: 30,
            n_batches: 3,
            ..Scenario::for_dataset(Dataset::Normal)
        };
        let ss = StreamScenario::new(sc);
        let stream = ss.stream();
        assert_eq!(stream.n_tasks(), 90);
        assert_eq!(stream.n_workers(), 180);
        // 80 % of the fleet is on duty at t = 0.
        let at_zero = stream
            .events()
            .iter()
            .filter(|e| matches!(e, ArrivalEvent::Worker(w) if w.time == 0.0))
            .count();
        assert_eq!(at_zero, 144);
        // Determinism.
        assert_eq!(stream, ss.stream());
    }
}
