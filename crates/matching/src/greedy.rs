//! Global greedy max-weight matching — the GRD baseline of Table IX.

use crate::Assignment;

/// A weighted candidate edge for [`greedy_max_weight`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Task index.
    pub task: usize,
    /// Worker index.
    pub worker: usize,
    /// Edge weight (utility of the pairing).
    pub weight: f64,
}

/// Greedy matching: repeatedly picks the highest-weight edge whose two
/// endpoints are both free, skipping edges with `weight <= min_weight`.
///
/// The paper's GRD "always greedily chooses the current best worker-task
/// pair (with the highest utility)"; `min_weight = 0.0` reproduces the
/// PA-TA convention that a pairing with non-positive utility is worse
/// than no pairing. Ties are broken by `(task, worker)` index so runs
/// are deterministic.
pub fn greedy_max_weight(m: usize, n: usize, edges: &[Edge], min_weight: f64) -> Assignment {
    let mut sorted: Vec<&Edge> = edges
        .iter()
        .filter(|e| e.weight.is_finite() && e.weight > min_weight)
        .collect();
    sorted.sort_by(|a, b| {
        b.weight
            .partial_cmp(&a.weight)
            .expect("finite weights")
            .then(a.task.cmp(&b.task))
            .then(a.worker.cmp(&b.worker))
    });
    let mut out = Assignment::new(m, n);
    for e in sorted {
        if out.worker_of(e.task).is_none() && out.task_of(e.worker).is_none() {
            out.assign(e.task, e.worker);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn e(task: usize, worker: usize, weight: f64) -> Edge {
        Edge {
            task,
            worker,
            weight,
        }
    }

    #[test]
    fn picks_heaviest_first() {
        let edges = [e(0, 0, 3.0), e(0, 1, 4.0), e(1, 0, 3.0), e(1, 1, 1.0)];
        let a = greedy_max_weight(2, 2, &edges, 0.0);
        // Greedy takes (0,1)=4 then (1,0)=3; total 7 (optimum here too).
        assert_eq!(a.worker_of(0), Some(1));
        assert_eq!(a.worker_of(1), Some(0));
    }

    #[test]
    fn greedy_can_be_suboptimal_but_valid() {
        // Classic trap: greedy takes 10 and blocks 9+9=18.
        let edges = [e(0, 0, 10.0), e(0, 1, 9.0), e(1, 0, 9.0)];
        let a = greedy_max_weight(2, 2, &edges, 0.0);
        assert_eq!(a.worker_of(0), Some(0));
        assert_eq!(a.worker_of(1), None);
        a.check_consistent();
    }

    #[test]
    fn threshold_filters_nonpositive_utilities() {
        let edges = [e(0, 0, 0.0), e(1, 1, -2.0), e(1, 0, 0.5)];
        let a = greedy_max_weight(2, 2, &edges, 0.0);
        assert_eq!(a.pairs().collect::<Vec<_>>(), vec![(1, 0)]);
    }

    #[test]
    fn deterministic_tie_break() {
        let edges = [e(1, 1, 2.0), e(0, 0, 2.0), e(0, 1, 2.0)];
        let a = greedy_max_weight(2, 2, &edges, 0.0);
        // Ties resolve by (task, worker): (0,0) first, then (1,1).
        assert_eq!(a.worker_of(0), Some(0));
        assert_eq!(a.worker_of(1), Some(1));
    }

    #[test]
    fn empty_edges() {
        assert!(greedy_max_weight(3, 3, &[], 0.0).is_empty());
    }

    proptest! {
        #[test]
        fn output_is_one_to_one_and_above_threshold(
            m in 1usize..8, n in 1usize..8,
            raw in proptest::collection::vec((0usize..8, 0usize..8, -3.0f64..5.0), 0..40),
        ) {
            let edges: Vec<Edge> = raw
                .into_iter()
                .filter(|&(t, w, _)| t < m && w < n)
                .map(|(t, w, wt)| e(t, w, wt))
                .collect();
            let a = greedy_max_weight(m, n, &edges, 0.0);
            a.check_consistent();
            for (t, w) in a.pairs() {
                prop_assert!(edges.iter().any(|x| x.task == t && x.worker == w && x.weight > 0.0));
            }
        }
    }
}
