//! The distance rank matrix `A_{m×n}` of Section IV.
//!
//! `a_{i,k} = j` means worker `w_j` is the k-th nearest worker of task
//! `t_i`. CEA (Section IV) is defined over this structure; our
//! generalised CEA consumes per-task candidate lists directly, and this
//! type is the canonical way to build them from raw distances.

use dpta_spatial::DistanceMatrix;

/// Per-task ranking of workers by ascending distance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceRankMatrix {
    /// `ranks[i][k]` = worker index that is the (k+1)-th nearest to task i.
    ranks: Vec<Vec<usize>>,
}

impl DistanceRankMatrix {
    /// Ranks every worker for every task by ascending distance; ties
    /// break toward the lower worker index for determinism.
    pub fn build(distances: &DistanceMatrix) -> Self {
        let ranks = (0..distances.tasks())
            .map(|i| {
                let row = distances.row(i);
                let mut order: Vec<usize> = (0..row.len()).collect();
                order.sort_by(|&a, &b| {
                    row[a]
                        .partial_cmp(&row[b])
                        .expect("distances must not be NaN")
                        .then(a.cmp(&b))
                });
                order
            })
            .collect();
        DistanceRankMatrix { ranks }
    }

    /// The worker at rank `k` (0-based) for `task`: the paper's
    /// `a_{i,k+1}`.
    pub fn worker_at(&self, task: usize, k: usize) -> usize {
        self.ranks[task][k]
    }

    /// The full ranking for `task`, nearest first.
    pub fn row(&self, task: usize) -> &[usize] {
        &self.ranks[task]
    }

    /// Number of tasks.
    pub fn tasks(&self) -> usize {
        self.ranks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table II of the paper, built from its per-rank distances.
    /// t1: w1(9.06) w2(9.85) w3(12.04); t2: w3(2.09) w1(10.44) w2(12.59);
    /// t3: w3(2.00) w2(11.28) w1(18.87).
    fn paper_distances() -> DistanceMatrix {
        DistanceMatrix::from_rows(&[
            &[9.06, 9.85, 12.04],
            &[10.44, 12.59, 2.09],
            &[18.87, 11.28, 2.00],
        ])
    }

    #[test]
    fn paper_table_ii_ranks() {
        let r = DistanceRankMatrix::build(&paper_distances());
        assert_eq!(r.row(0), &[0, 1, 2]); // w1, w2, w3
        assert_eq!(r.row(1), &[2, 0, 1]); // w3, w1, w2
        assert_eq!(r.row(2), &[2, 1, 0]); // w3, w2, w1
        assert_eq!(r.worker_at(1, 0), 2);
        assert_eq!(r.tasks(), 3);
    }

    #[test]
    fn ties_break_to_lower_worker_index() {
        let d = DistanceMatrix::from_rows(&[&[1.0, 1.0, 0.5]]);
        let r = DistanceRankMatrix::build(&d);
        assert_eq!(r.row(0), &[2, 0, 1]);
    }

    #[test]
    fn empty_matrix() {
        let d = DistanceMatrix::from_rows(&[]);
        let r = DistanceRankMatrix::build(&d);
        assert_eq!(r.tasks(), 0);
    }
}
