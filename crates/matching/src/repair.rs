//! Incremental matching repair: feasibility-graph components and
//! augmenting-path re-matching after a vertex deletion.
//!
//! Two pieces back the streaming layer's incremental halo
//! reconciliation:
//!
//! * [`PairComponents`] — a union-find over the bipartite feasibility
//!   graph (tasks ∪ workers, one `join` per feasible pair). Engine
//!   interactions only flow along feasibility edges, so a rerun after
//!   removing entities can differ from the previous run only inside
//!   the removed entities' connected components; the halo coordinator
//!   uses exactly this to skip reruns whose remaining entities are all
//!   in untouched components.
//! * [`repair_after_worker_removal`] — the classical single
//!   augmenting-path repair (cf. [`hungarian`](crate::hungarian)): a
//!   maximum-weight matching, after one worker leaves, is restored to
//!   optimality by the best alternating path from the freed task —
//!   undoing only the departed worker's assignment chain instead of
//!   re-solving the whole instance. Serves as the reference
//!   implementation (and test oracle) for chain-undo re-matching.

use crate::Assignment;

/// Union-find over the bipartite feasibility graph: `m` tasks and `n`
/// workers, connected by `join(task, worker)` per feasible pair.
///
/// Roots are canonical vertex ids (`task` ids `0..m`, worker `j`
/// mapping to `m + j`), so two entities share a component iff their
/// [`find_task`](PairComponents::find_task) /
/// [`find_worker`](PairComponents::find_worker) roots are equal.
///
/// # Examples
///
/// ```
/// use dpta_matching::repair::PairComponents;
///
/// let mut comp = PairComponents::new(3, 2);
/// comp.join(0, 0);
/// comp.join(1, 0); // tasks 0 and 1 share worker 0
/// assert_eq!(comp.find_task(0), comp.find_task(1));
/// assert_ne!(comp.find_task(0), comp.find_task(2)); // task 2 isolated
/// assert_ne!(comp.find_worker(0), comp.find_worker(1));
/// ```
#[derive(Debug, Clone)]
pub struct PairComponents {
    parent: Vec<u32>,
    n_tasks: usize,
}

impl PairComponents {
    /// A fully disconnected graph of `m` tasks and `n` workers.
    pub fn new(m: usize, n: usize) -> Self {
        PairComponents {
            parent: (0..(m + n) as u32).collect(),
            n_tasks: m,
        }
    }

    fn find(&mut self, mut v: u32) -> u32 {
        // Path halving.
        while self.parent[v as usize] != v {
            let g = self.parent[self.parent[v as usize] as usize];
            self.parent[v as usize] = g;
            v = g;
        }
        v
    }

    /// Connects a feasible `(task, worker)` pair.
    pub fn join(&mut self, task: usize, worker: usize) {
        let a = self.find(task as u32);
        let b = self.find((self.n_tasks + worker) as u32);
        if a != b {
            // Deterministic: smaller root wins.
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            self.parent[hi as usize] = lo;
        }
    }

    /// Canonical component root of a task.
    pub fn find_task(&mut self, task: usize) -> u32 {
        self.find(task as u32)
    }

    /// Canonical component root of a worker.
    pub fn find_worker(&mut self, worker: usize) -> u32 {
        self.find((self.n_tasks + worker) as u32)
    }
}

/// Restores a maximum-weight matching to optimality after deleting
/// `removed_worker`, by flipping the single best alternating path from
/// the freed task — the incremental alternative to re-solving the
/// whole instance with [`hungarian::max_weight_matching`].
///
/// `profit(task, worker)` must be the same function the original
/// matching was optimal under, returning `None` for infeasible pairs;
/// the removed worker is excluded internally. If `assignment` was
/// optimal, the result is optimal on the remaining workers (the
/// classical one-augmenting-path theorem: deleting one vertex changes
/// the optimum by at most one alternating path, and an optimal
/// matching admits no improving alternating cycle).
///
/// [`hungarian::max_weight_matching`]: crate::hungarian::max_weight_matching
///
/// # Examples
///
/// ```
/// use dpta_matching::hungarian::max_weight_matching;
/// use dpta_matching::repair::repair_after_worker_removal;
///
/// let p = [[5.0, 4.0], [0.0, 3.0]];
/// let profit = |i: usize, j: usize| Some(p[i][j]);
/// let a = max_weight_matching(2, 2, profit); // t0–w0, t1–w1
/// // Worker 1 leaves: t1 frees w… the chain re-routes t0 to w1? No —
/// // repair finds t1→w0 is worse than t0 keeping w0; t1 goes unmatched.
/// let b = repair_after_worker_removal(2, 2, profit, &a, 1);
/// assert_eq!(b.worker_of(0), Some(0));
/// assert_eq!(b.worker_of(1), None);
/// ```
pub fn repair_after_worker_removal<F>(
    m: usize,
    n: usize,
    profit: F,
    assignment: &Assignment,
    removed_worker: usize,
) -> Assignment
where
    F: Fn(usize, usize) -> Option<f64>,
{
    let profit = |i: usize, j: usize| {
        if j == removed_worker {
            None
        } else {
            profit(i, j)
        }
    };
    // Copy the matching minus the removed worker.
    let mut task_of: Vec<Option<usize>> = vec![None; n];
    let mut worker_of: Vec<Option<usize>> = vec![None; m];
    let mut freed: Option<usize> = None;
    for (t, w) in assignment.pairs() {
        if w == removed_worker {
            freed = Some(t);
        } else {
            task_of[w] = Some(t);
            worker_of[t] = Some(w);
        }
    }
    let rebuild = |worker_of: &[Option<usize>]| {
        let mut out = Assignment::new(m, n);
        for (t, w) in worker_of.iter().enumerate() {
            if let Some(w) = *w {
                out.assign(t, w);
            }
        }
        out.check_consistent();
        out
    };
    let Some(t0) = freed else {
        return rebuild(&worker_of); // the worker served nothing: no chain
    };

    // Best alternating path from the freed task, by Bellman–Ford over
    // "free end" states: gain[t] = best gain of an alternating path
    // leaving task t as the current free end. Stopping at a free task
    // (leaving it unmatched) is always allowed; matching the free end
    // to a *free* worker closes the path with an extra +profit.
    const NEG: f64 = f64::NEG_INFINITY;
    let mut gain = vec![NEG; m];
    let mut pred: Vec<Option<(usize, usize)>> = vec![None; m]; // (prev task, via worker)
    gain[t0] = 0.0;
    let mut best = (0.0, t0, None::<usize>); // (total, end task, closing free worker)
    for _ in 0..m.min(n) + 1 {
        let mut changed = false;
        for t in 0..m {
            if gain[t] == NEG {
                continue;
            }
            for (w, &held) in task_of.iter().enumerate() {
                let Some(p) = profit(t, w) else { continue };
                if p < 0.0 {
                    continue; // never match at a loss (unmatched = 0)
                }
                match held {
                    None => {
                        let total = gain[t] + p;
                        if total > best.0 + 1e-12 {
                            best = (total, t, Some(w));
                        }
                    }
                    Some(t2) => {
                        if t2 == t {
                            continue;
                        }
                        let p2 = profit(t2, w).expect("matched pair is feasible");
                        let g = gain[t] + p - p2;
                        if g > gain[t2] + 1e-12 {
                            gain[t2] = g;
                            pred[t2] = Some((t, w));
                            if g > best.0 + 1e-12 {
                                best = (g, t2, None);
                            }
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Flip the winning path: walk predecessors from the end task back
    // to t0, re-matching each hop's worker to the earlier task.
    let (_, mut t_end, closing) = best;
    if let Some(w) = closing {
        task_of[w] = Some(t_end);
        worker_of[t_end] = Some(w);
    } else {
        worker_of[t_end] = None; // path ends by leaving t_end unmatched
    }
    while t_end != t0 {
        let (t_prev, w) = pred[t_end].expect("path reaches t0");
        task_of[w] = Some(t_prev);
        worker_of[t_prev] = Some(w);
        t_end = t_prev;
    }
    rebuild(&worker_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hungarian::{matching_profit, max_weight_matching};
    use proptest::prelude::*;

    fn comp_brute(m: usize, n: usize, edges: &[(usize, usize)]) -> Vec<Vec<bool>> {
        // Reachability closure over the bipartite graph.
        let mut adj = vec![vec![false; m + n]; m + n];
        for &(t, w) in edges {
            adj[t][m + w] = true;
            adj[m + w][t] = true;
        }
        for k in 0..m + n {
            for i in 0..m + n {
                for j in 0..m + n {
                    if adj[i][k] && adj[k][j] {
                        adj[i][j] = true;
                    }
                }
            }
        }
        adj
    }

    #[test]
    fn components_connect_through_shared_entities() {
        let mut c = PairComponents::new(4, 3);
        c.join(0, 0);
        c.join(1, 0);
        c.join(1, 1); // {t0, t1, w0, w1}
        c.join(2, 2); // {t2, w2}
        assert_eq!(c.find_task(0), c.find_worker(1));
        assert_eq!(c.find_task(2), c.find_worker(2));
        assert_ne!(c.find_task(0), c.find_task(2));
        assert_ne!(c.find_task(3), c.find_task(0)); // isolated task
    }

    #[test]
    fn repair_of_unmatched_worker_is_identity() {
        let p = [[3.0, 1.0], [2.0, 1.5]];
        let profit = |i: usize, j: usize| Some(p[i][j]);
        let a = max_weight_matching(2, 2, profit);
        let b = repair_after_worker_removal(2, 3, |i, j| (j < 2).then(|| p[i][j]), &a, 2);
        assert_eq!(a.pairs().collect::<Vec<_>>(), b.pairs().collect::<Vec<_>>());
    }

    #[test]
    fn repair_reroutes_the_chain() {
        // t0 prefers w0 strongly; with w0 gone t0 takes w1, displacing
        // t1 onto free w2 — a two-hop chain.
        let p = [[9.0, 5.0, 0.0], [0.0, 4.0, 3.0]];
        let profit = |i: usize, j: usize| Some(p[i][j]);
        let a = max_weight_matching(2, 3, profit);
        assert_eq!(a.worker_of(0), Some(0));
        assert_eq!(a.worker_of(1), Some(1));
        let b = repair_after_worker_removal(2, 3, profit, &a, 0);
        assert_eq!(b.worker_of(0), Some(1));
        assert_eq!(b.worker_of(1), Some(2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn union_find_matches_brute_force_connectivity(
            m in 1usize..7, n in 1usize..7,
            picks in proptest::collection::vec((0usize..7, 0usize..7), 0..20),
        ) {
            let edges: Vec<(usize, usize)> =
                picks.into_iter().map(|(t, w)| (t % m, w % n)).collect();
            let mut c = PairComponents::new(m, n);
            for &(t, w) in &edges {
                c.join(t, w);
            }
            let adj = comp_brute(m, n, &edges);
            for (t, row) in adj.iter().enumerate().take(m) {
                for w in 0..n {
                    let connected = row[m + w] || edges.contains(&(t, w));
                    prop_assert_eq!(
                        c.find_task(t) == c.find_worker(w),
                        connected,
                        "t{} w{}", t, w
                    );
                }
            }
        }

        #[test]
        fn repair_equals_scratch_rematch(
            m in 1usize..6, n in 1usize..6,
            weights in proptest::collection::vec(-3.0f64..6.0, 36),
            feasible in proptest::collection::vec(proptest::bool::weighted(0.7), 36),
            removed in 0usize..6,
        ) {
            let removed = removed % n;
            let profit = |i: usize, j: usize| -> Option<f64> {
                feasible[i * 6 + j].then_some(weights[i * 6 + j])
            };
            let original = max_weight_matching(m, n, profit);
            let repaired =
                repair_after_worker_removal(m, n, profit, &original, removed);
            repaired.check_consistent();
            prop_assert!(repaired.task_of(removed).is_none());
            let reduced = |i: usize, j: usize| {
                if j == removed { None } else { profit(i, j) }
            };
            let scratch = max_weight_matching(m, n, reduced);
            let got = matching_profit(&repaired, reduced);
            let best = matching_profit(&scratch, reduced);
            prop_assert!(
                (got - best).abs() < 1e-6,
                "repair {} vs scratch {}", got, best
            );
        }
    }
}
