//! The Hungarian (Kuhn–Munkres) algorithm — exact maximum-weight
//! bipartite matching in O((m+n)³).
//!
//! The paper cites Hungarian matching as the classical exact solution to
//! the assignment problem (Section V); here it serves as the optimal
//! baseline the heuristics are measured against and as an oracle for
//! property tests. The implementation is the Jonker–Volgenant-style
//! shortest-augmenting-path formulation with dual potentials.

use crate::Assignment;

/// Sentinel cost for infeasible pairs; large enough to never be chosen
/// while keeping potential arithmetic well-conditioned.
const BIG: f64 = 1e12;

/// Maximum-weight matching where `profit(task, worker)` returns `None`
/// for infeasible pairs (e.g. the task is outside the worker's service
/// area). Pairs with negative profit are never matched — leaving a task
/// unassigned contributes zero, mirroring the PA-TA objective where
/// `s_{i,j} = 0` is always available.
pub fn max_weight_matching<F>(m: usize, n: usize, profit: F) -> Assignment
where
    F: Fn(usize, usize) -> Option<f64>,
{
    if m == 0 || n == 0 {
        return Assignment::new(m, n);
    }
    // Pad to a square instance of side m+n: real task i can match dummy
    // column n+i at cost 0 (unassigned), and dummy rows absorb the real
    // workers, so a perfect matching always exists and min-cost on
    // negated profits == max-profit with optional assignment.
    let s = m + n;
    let cost = |i: usize, j: usize| -> f64 {
        if i < m && j < n {
            match profit(i, j) {
                Some(p) => {
                    assert!(p.is_finite(), "profit({i},{j}) must be finite, got {p}");
                    -p
                }
                None => BIG,
            }
        } else {
            0.0
        }
    };

    // e-maxx formulation, 1-indexed with column 0 as the virtual root.
    let mut u = vec![0.0f64; s + 1];
    let mut v = vec![0.0f64; s + 1];
    let mut p = vec![0usize; s + 1]; // p[j] = row matched to column j (0 = none)
    let mut way = vec![0usize; s + 1];
    for i in 1..=s {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; s + 1];
        let mut used = vec![false; s + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=s {
                if !used[j] {
                    let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=s {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the recorded path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut out = Assignment::new(m, n);
    for (j, &i) in p.iter().enumerate().skip(1) {
        if i >= 1 && i <= m && j <= n {
            let (task, worker) = (i - 1, j - 1);
            // Only keep genuinely profitable, feasible pairs.
            if let Some(pr) = profit(task, worker) {
                if pr >= 0.0 {
                    out.assign(task, worker);
                }
            }
        }
    }
    out
}

/// Total profit of `assignment` under `profit` (unmatched pairs add 0).
pub fn matching_profit<F>(assignment: &Assignment, profit: F) -> f64
where
    F: Fn(usize, usize) -> Option<f64>,
{
    assignment
        .pairs()
        .map(|(t, w)| profit(t, w).expect("matched pair must be feasible"))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Exhaustive optimum over all partial matchings (for small m, n).
    fn brute_force(m: usize, n: usize, profit: &dyn Fn(usize, usize) -> Option<f64>) -> f64 {
        fn rec(
            task: usize,
            m: usize,
            n: usize,
            used: &mut Vec<bool>,
            profit: &dyn Fn(usize, usize) -> Option<f64>,
        ) -> f64 {
            if task == m {
                return 0.0;
            }
            // Option 1: leave the task unmatched.
            let mut best = rec(task + 1, m, n, used, profit);
            for w in 0..n {
                if !used[w] {
                    if let Some(p) = profit(task, w) {
                        used[w] = true;
                        let cand = p + rec(task + 1, m, n, used, profit);
                        used[w] = false;
                        best = best.max(cand);
                    }
                }
            }
            best
        }
        rec(0, m, n, &mut vec![false; n], profit)
    }

    #[test]
    fn simple_square_instance() {
        let w = [[3.0, 1.0], [1.0, 2.0]];
        let a = max_weight_matching(2, 2, |i, j| Some(w[i][j]));
        assert_eq!(a.worker_of(0), Some(0));
        assert_eq!(a.worker_of(1), Some(1));
        assert_eq!(matching_profit(&a, |i, j| Some(w[i][j])), 5.0);
    }

    #[test]
    fn prefers_cross_assignment_when_better() {
        let w = [[3.0, 4.0], [3.0, 1.0]];
        let a = max_weight_matching(2, 2, |i, j| Some(w[i][j]));
        assert_eq!(a.worker_of(0), Some(1));
        assert_eq!(a.worker_of(1), Some(0));
    }

    #[test]
    fn negative_profits_left_unmatched() {
        let a = max_weight_matching(2, 2, |i, j| Some(if i == j { -1.0 } else { -2.0 }));
        assert!(a.is_empty());
    }

    #[test]
    fn infeasible_pairs_respected() {
        // Only (0,1) and (1,0) feasible.
        let a = max_weight_matching(2, 2, |i, j| (i != j).then_some(1.0));
        assert_eq!(a.worker_of(0), Some(1));
        assert_eq!(a.worker_of(1), Some(0));
    }

    #[test]
    fn rectangular_more_workers() {
        let w = [[1.0, 9.0, 2.0]];
        let a = max_weight_matching(1, 3, |i, j| Some(w[i][j]));
        assert_eq!(a.worker_of(0), Some(1));
    }

    #[test]
    fn rectangular_more_tasks() {
        let w = [[5.0], [7.0], [6.0]];
        let a = max_weight_matching(3, 1, |i, j| Some(w[i][j]));
        assert_eq!(a.worker_of(1), Some(0));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn empty_instances() {
        assert!(max_weight_matching(0, 5, |_, _| Some(1.0)).is_empty());
        assert!(max_weight_matching(5, 0, |_, _| Some(1.0)).is_empty());
        assert!(max_weight_matching(0, 0, |_, _| Some(1.0)).is_empty());
    }

    #[test]
    fn fully_infeasible_instance() {
        let a = max_weight_matching(3, 3, |_, _| None);
        assert!(a.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn matches_brute_force(
            m in 1usize..5, n in 1usize..5,
            weights in proptest::collection::vec(-5.0f64..5.0, 25),
            feasible in proptest::collection::vec(proptest::bool::weighted(0.8), 25),
        ) {
            let profit = |i: usize, j: usize| -> Option<f64> {
                feasible[i * 5 + j].then_some(weights[i * 5 + j])
            };
            let a = max_weight_matching(m, n, profit);
            a.check_consistent();
            let got = matching_profit(&a, profit);
            let best = brute_force(m, n, &profit);
            prop_assert!((got - best).abs() < 1e-6, "got {got}, optimum {best}");
        }
    }
}
