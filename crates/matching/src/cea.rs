//! CEA — the Conflict Elimination Algorithm of Wang et al. \[3\],
//! reviewed in Section IV of the paper and used as the winner-selection
//! subroutine of PUCE (Algorithm 2).
//!
//! Input: per-task candidate lists sorted best-first (in PUCE "best"
//! means highest estimated utility; in PDCE/DCE smallest distance), and
//! a probabilistic comparator `prob_better(a, b) = Pr[a preferable to b]`
//! (PCF/PPCF on obfuscated values, or a 0/1 indicator on real ones).
//!
//! A *winner conflict* arises when several tasks point at the same
//! worker. CEA resolves it with the max-regret rule derived from
//! Equation 1 under the `D(a_{cu,1}) ≃ D(a_{cv,1})` approximation: the
//! conflicted worker stays with the task whose **second choice is
//! worst**, and the other conflicted tasks lose him.
//!
//! What happens to the losers is ambiguous in the paper, so both
//! readings are implemented (see [`CeaFallback`]):
//!
//! * [`CeaFallback::CrossRound`] — losers get nothing this invocation
//!   and re-compete in the next protocol round. This reproduces the
//!   paper's Example 2 trace literally (t₂ ends round 1 unallocated).
//! * [`CeaFallback::WithinRound`] — losers immediately fall to their
//!   next candidate, cascading until conflict-free, the eager reading
//!   of Section IV / Equation 1. On the paper's Table II this cascade
//!   lands exactly on the introduction's improved assignment
//!   {⟨t1,w2⟩, ⟨t2,w1⟩, ⟨t3,w3⟩} — see the tests.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Loser behaviour after a winner conflict (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CeaFallback {
    /// Losers wait for the next protocol round (paper's Example 2).
    CrossRound,
    /// Losers cascade to their next candidates within this invocation
    /// (eager Section IV reading).
    WithinRound,
}

/// Resolves winner conflicts over per-task candidate lists.
///
/// * `rows[i]` — task `i`'s candidates, best first; a worker may appear
///   in many rows but at most once per row.
/// * `n_workers` — worker id upper bound.
/// * `worker_of(c)` — the worker a candidate refers to.
/// * `prob_better(a, b)` — probability that candidate `a` is preferable
///   to candidate `b` (only consulted on *second choices* of distinct
///   tasks, per the Section IV approximation).
///
/// Returns, per task, the index into its row of the winning candidate
/// (`None` when the task won nothing). The result never assigns one
/// worker to two tasks.
pub fn conflict_elimination<T, W, P>(
    rows: &[Vec<T>],
    n_workers: usize,
    worker_of: W,
    prob_better: P,
    fallback: CeaFallback,
) -> Vec<Option<usize>>
where
    W: Fn(&T) -> usize,
    P: Fn(&T, &T) -> f64,
{
    for (i, row) in rows.iter().enumerate() {
        let mut seen = vec![false; n_workers];
        for c in row {
            let w = worker_of(c);
            assert!(
                w < n_workers,
                "row {i} references worker {w} >= {n_workers}"
            );
            assert!(!seen[w], "row {i} lists worker {w} twice");
            seen[w] = true;
        }
    }
    match fallback {
        CeaFallback::CrossRound => cross_round(rows, worker_of, prob_better),
        CeaFallback::WithinRound => within_round(rows, n_workers, worker_of, prob_better),
    }
}

/// Single pass on first choices; conflict losers get `None`.
fn cross_round<T, W, P>(rows: &[Vec<T>], worker_of: W, prob_better: P) -> Vec<Option<usize>>
where
    W: Fn(&T) -> usize,
    P: Fn(&T, &T) -> f64,
{
    let m = rows.len();
    let mut resolved: Vec<Option<usize>> = vec![None; m];
    let mut demand: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (t, row) in rows.iter().enumerate() {
        if let Some(first) = row.first() {
            demand.entry(worker_of(first)).or_default().push(t);
        }
    }
    for (_, ts) in demand {
        if ts.len() == 1 {
            resolved[ts[0]] = Some(0);
            continue;
        }
        // Max-regret tournament on the row-local second choices.
        let keep = tournament(&ts, |t| rows[t].get(1), &prob_better);
        resolved[keep] = Some(0);
    }
    resolved
}

/// Iterative cascade: losers advance to their next free candidate.
fn within_round<T, W, P>(
    rows: &[Vec<T>],
    n_workers: usize,
    worker_of: W,
    prob_better: P,
) -> Vec<Option<usize>>
where
    W: Fn(&T) -> usize,
    P: Fn(&T, &T) -> f64,
{
    let m = rows.len();
    let mut ptr: Vec<usize> = vec![0; m];
    let mut resolved: Vec<Option<usize>> = vec![None; m];
    let mut done: Vec<bool> = rows.iter().map(Vec::is_empty).collect();
    let mut taken: Vec<bool> = vec![false; n_workers];

    // The next candidate index at or after `from` whose worker is free.
    let next_free = |task: usize, from: usize, taken: &[bool]| -> Option<usize> {
        rows[task][from..]
            .iter()
            .position(|c| !taken[worker_of(c)])
            .map(|off| from + off)
    };

    loop {
        for t in 0..m {
            if done[t] {
                continue;
            }
            match next_free(t, ptr[t], &taken) {
                Some(p) => ptr[t] = p,
                None => done[t] = true,
            }
        }

        let mut demand: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for t in 0..m {
            if !done[t] {
                demand
                    .entry(worker_of(&rows[t][ptr[t]]))
                    .or_default()
                    .push(t);
            }
        }
        if demand.is_empty() {
            break;
        }

        let conflicts: Vec<(usize, Vec<usize>)> = demand
            .iter()
            .filter(|(_, ts)| ts.len() > 1)
            .map(|(w, ts)| (*w, ts.clone()))
            .collect();

        if conflicts.is_empty() {
            // Every pointed worker has exactly one suitor: commit them all.
            for (w, ts) in demand {
                let t = ts[0];
                resolved[t] = Some(ptr[t]);
                taken[w] = true;
                done[t] = true;
            }
            break;
        }

        for (w, ts) in conflicts {
            let keep = tournament(
                &ts,
                |t| next_free(t, ptr[t] + 1, &taken).map(|p| &rows[t][p]),
                &prob_better,
            );
            resolved[keep] = Some(ptr[keep]);
            taken[w] = true;
            done[keep] = true;
            // Losers advance past `w` at the top of the next iteration.
        }
    }

    resolved
}

/// Max-regret tournament: returns the task whose second choice is
/// *worst* (a task with no second choice has infinite regret and wins
/// outright; ties keep the earlier task for determinism).
fn tournament<'a, T: 'a, S, P>(tasks: &[usize], second: S, prob_better: &P) -> usize
where
    S: Fn(usize) -> Option<&'a T>,
    P: Fn(&T, &T) -> f64,
{
    let mut keep = tasks[0];
    for &challenger in &tasks[1..] {
        keep = match (second(keep), second(challenger)) {
            (None, _) => keep,
            (_, None) => challenger,
            (Some(sk), Some(sc)) => {
                // The challenger takes the worker only when its own
                // fallback is strictly worse (Pr[challenger's second
                // preferable] < 1/2).
                if prob_better(sc, sk) < 0.5 {
                    challenger
                } else {
                    keep
                }
            }
        };
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Candidate carrying (worker, value); smaller value preferred.
    #[derive(Debug, Clone, Copy)]
    struct C(usize, f64);

    fn run(rows: &[Vec<C>], n_workers: usize, fb: CeaFallback) -> Vec<Option<usize>> {
        conflict_elimination(
            rows,
            n_workers,
            |c: &C| c.0,
            |a: &C, b: &C| {
                if a.1 < b.1 {
                    1.0
                } else if a.1 > b.1 {
                    0.0
                } else {
                    0.5
                }
            },
            fb,
        )
    }

    fn table_ii_rows() -> Vec<Vec<C>> {
        vec![
            vec![C(0, 9.06), C(1, 9.85), C(2, 12.04)],  // t1: w1 w2 w3
            vec![C(2, 2.09), C(0, 10.44), C(1, 12.59)], // t2: w3 w1 w2
            vec![C(2, 2.00), C(1, 11.28), C(0, 18.87)], // t3: w3 w2 w1
        ]
    }

    #[test]
    fn paper_table_ii_within_round_trace() {
        // Section IV resolves the w3 conflict toward t3 (C2), then the
        // induced w1 conflict toward t2, landing on the introduction's
        // final assignment {t1:w2, t2:w1, t3:w3}.
        let rows = table_ii_rows();
        let res = run(&rows, 3, CeaFallback::WithinRound);
        let winners: Vec<usize> = res
            .iter()
            .enumerate()
            .map(|(t, r)| rows[t][r.unwrap()].0)
            .collect();
        assert_eq!(winners, vec![1, 0, 2]);
    }

    #[test]
    fn paper_table_ii_cross_round_stops_after_one_resolution() {
        // Cross-round: t1 keeps its uncontested w1, the w3 conflict goes
        // to t3 (whose fallback 11.28 > ... wait — regret rule keeps w3
        // at the task whose second choice is *worst*: t2's second is
        // 10.44, t3's is 11.28, so t3 keeps w3) and t2 gets nothing.
        let rows = table_ii_rows();
        let res = run(&rows, 3, CeaFallback::CrossRound);
        assert_eq!(res[0], Some(0)); // t1: w1 (uncontested first choice)
        assert_eq!(res[1], None); // t2 lost w3, waits for next round
        assert_eq!(res[2], Some(0)); // t3: w3
    }

    #[test]
    fn no_conflicts_assigns_everyone_their_first_choice() {
        let rows = vec![vec![C(0, 1.0)], vec![C(1, 2.0)], vec![C(2, 3.0)]];
        for fb in [CeaFallback::CrossRound, CeaFallback::WithinRound] {
            assert_eq!(run(&rows, 3, fb), vec![Some(0), Some(0), Some(0)]);
        }
    }

    #[test]
    fn single_shared_worker_goes_to_one_task_only() {
        let rows = vec![vec![C(0, 1.0)], vec![C(0, 2.0)]];
        for fb in [CeaFallback::CrossRound, CeaFallback::WithinRound] {
            let res = run(&rows, 1, fb);
            // Neither task has a second choice: the earlier task keeps.
            assert_eq!(res, vec![Some(0), None]);
        }
    }

    #[test]
    fn task_without_second_choice_wins_the_conflict() {
        // t0 has a fallback, t1 does not: t1 must keep w0.
        let rows = vec![vec![C(0, 1.0), C(1, 5.0)], vec![C(0, 1.5)]];
        let res = run(&rows, 2, CeaFallback::WithinRound);
        assert_eq!(res[1], Some(0)); // t1 keeps w0
        assert_eq!(res[0], Some(1)); // t0 falls back to w1
        let res = run(&rows, 2, CeaFallback::CrossRound);
        assert_eq!(res[1], Some(0));
        assert_eq!(res[0], None); // no within-round fallback
    }

    #[test]
    fn max_regret_keeps_worker_at_task_with_worse_fallback() {
        // Both want w0. t0's fallback is 10.0, t1's fallback is 2.0:
        // t0 regrets more, so t0 keeps w0.
        let rows = vec![vec![C(0, 1.0), C(1, 10.0)], vec![C(0, 1.0), C(2, 2.0)]];
        let res = run(&rows, 3, CeaFallback::WithinRound);
        assert_eq!(res[0], Some(0));
        assert_eq!(res[1], Some(1)); // falls to w2
        let res = run(&rows, 3, CeaFallback::CrossRound);
        assert_eq!(res[0], Some(0));
        assert_eq!(res[1], None);
    }

    #[test]
    fn empty_rows_yield_none() {
        let rows: Vec<Vec<C>> = vec![vec![], vec![C(0, 1.0)]];
        for fb in [CeaFallback::CrossRound, CeaFallback::WithinRound] {
            assert_eq!(run(&rows, 1, fb), vec![None, Some(0)]);
        }
    }

    #[test]
    fn cascading_conflicts_terminate_within_round() {
        // All tasks share the same ranking over three workers.
        let rows: Vec<Vec<C>> = (0..4)
            .map(|_| vec![C(0, 1.0), C(1, 2.0), C(2, 3.0)])
            .collect();
        let res = run(&rows, 3, CeaFallback::WithinRound);
        assert_eq!(res.iter().flatten().count(), 3); // all three workers placed
        let mut seen = [false; 3];
        for (t, r) in res.iter().enumerate() {
            if let Some(k) = r {
                let w = rows[t][*k].0;
                assert!(!seen[w]);
                seen[w] = true;
            }
        }
    }

    #[test]
    fn cross_round_resolves_each_worker_once() {
        let rows: Vec<Vec<C>> = (0..4)
            .map(|_| vec![C(0, 1.0), C(1, 2.0), C(2, 3.0)])
            .collect();
        let res = run(&rows, 3, CeaFallback::CrossRound);
        // Only the w0 conflict is resolved; one winner, three losers.
        assert_eq!(res.iter().flatten().count(), 1);
    }

    #[test]
    #[should_panic(expected = "lists worker 0 twice")]
    fn duplicate_worker_in_row_panics() {
        let rows = vec![vec![C(0, 1.0), C(0, 2.0)]];
        let _ = run(&rows, 1, CeaFallback::WithinRound);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn result_is_one_to_one_in_both_modes(
            m in 1usize..7, n in 1usize..7,
            vals in proptest::collection::vec(0.0f64..10.0, 49),
            present in proptest::collection::vec(proptest::bool::weighted(0.7), 49),
            mode in proptest::bool::ANY,
        ) {
            let rows: Vec<Vec<C>> = (0..m)
                .map(|t| {
                    let mut row: Vec<C> = (0..n)
                        .filter(|w| present[t * 7 + w])
                        .map(|w| C(w, vals[t * 7 + w]))
                        .collect();
                    row.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
                    row
                })
                .collect();
            let fb = if mode { CeaFallback::WithinRound } else { CeaFallback::CrossRound };
            let res = run(&rows, n, fb);
            let mut seen = vec![false; n];
            for (t, r) in res.iter().enumerate() {
                if let Some(k) = r {
                    let w = rows[t][*k].0;
                    prop_assert!(!seen[w], "worker {w} assigned twice");
                    seen[w] = true;
                }
            }
            if fb == CeaFallback::WithinRound {
                // Every task with a non-empty row either wins some worker
                // or all of its candidates were taken by someone else.
                for (t, r) in res.iter().enumerate() {
                    if r.is_none() && !rows[t].is_empty() {
                        prop_assert!(rows[t].iter().all(|c| seen[c.0]));
                    }
                }
            }
        }
    }
}
