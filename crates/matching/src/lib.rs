//! Bipartite-matching substrate for the DPTA workspace.
//!
//! The paper's assignment pipeline needs three matching engines:
//!
//! * [`hungarian`] — the exact Kuhn–Munkres / Hungarian algorithm the
//!   paper cites as the classical optimum (Section V intro). Used as the
//!   optimal baseline and as an oracle in tests;
//! * [`greedy`] — global greedy max-weight matching, the GRD baseline of
//!   Table IX;
//! * [`cea`] — the Conflict Elimination Algorithm of Wang et al. \[3\]
//!   (Section IV), generalised over a probabilistic comparator so the
//!   private (PCF/PPCF) and non-private (real-distance) variants share
//!   one implementation;
//!
//! plus the supporting [`Assignment`] type and the
//! [`DistanceRankMatrix`](rank::DistanceRankMatrix) of Section IV.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod assignment;
pub mod cea;
pub mod greedy;
pub mod hungarian;
pub mod rank;
pub mod repair;

pub use assignment::Assignment;
