//! One-to-one task↔worker assignments (Definition 8 of the paper).

use serde::{Deserialize, Serialize};

/// A one-to-one partial matching between `m` tasks and `n` workers.
///
/// Maintains both directions of the mapping and enforces the
/// one-to-one-ness invariant of Definition 8 on every mutation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    task_to_worker: Vec<Option<usize>>,
    worker_to_task: Vec<Option<usize>>,
}

impl Assignment {
    /// An empty assignment over `m` tasks and `n` workers.
    pub fn new(m: usize, n: usize) -> Self {
        Assignment {
            task_to_worker: vec![None; m],
            worker_to_task: vec![None; n],
        }
    }

    /// Number of tasks.
    pub fn tasks(&self) -> usize {
        self.task_to_worker.len()
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.worker_to_task.len()
    }

    /// The worker matched to `task`, if any.
    #[inline]
    pub fn worker_of(&self, task: usize) -> Option<usize> {
        self.task_to_worker[task]
    }

    /// The task matched to `worker`, if any.
    #[inline]
    pub fn task_of(&self, worker: usize) -> Option<usize> {
        self.worker_to_task[worker]
    }

    /// Matches `task` with `worker`. Panics if either side is already
    /// matched — callers must [`unassign_task`](Self::unassign_task) /
    /// [`unassign_worker`](Self::unassign_worker) first, which keeps
    /// accidental double-bookings loud.
    pub fn assign(&mut self, task: usize, worker: usize) {
        assert!(
            self.task_to_worker[task].is_none(),
            "task {task} is already matched"
        );
        assert!(
            self.worker_to_task[worker].is_none(),
            "worker {worker} is already matched"
        );
        self.task_to_worker[task] = Some(worker);
        self.worker_to_task[worker] = Some(task);
    }

    /// Releases `task` from its worker (no-op when unmatched); returns
    /// the worker that was freed.
    pub fn unassign_task(&mut self, task: usize) -> Option<usize> {
        let w = self.task_to_worker[task].take();
        if let Some(w) = w {
            self.worker_to_task[w] = None;
        }
        w
    }

    /// Releases `worker` from its task (no-op when unmatched); returns
    /// the task that was freed.
    pub fn unassign_worker(&mut self, worker: usize) -> Option<usize> {
        let t = self.worker_to_task[worker].take();
        if let Some(t) = t {
            self.task_to_worker[t] = None;
        }
        t
    }

    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.task_to_worker.iter().flatten().count()
    }

    /// Whether nothing is matched.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates matched `(task, worker)` pairs in task order.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.task_to_worker
            .iter()
            .enumerate()
            .filter_map(|(t, w)| w.map(|w| (t, w)))
    }

    /// Debug-checks that both directions agree; used by tests and the
    /// algorithm drivers after each round.
    pub fn check_consistent(&self) {
        for (t, w) in self.pairs() {
            assert_eq!(
                self.worker_to_task[w],
                Some(t),
                "assignment directions disagree at task {t} / worker {w}"
            );
        }
        for (w, t) in self.worker_to_task.iter().enumerate() {
            if let Some(t) = t {
                assert_eq!(
                    self.task_to_worker[*t],
                    Some(w),
                    "assignment directions disagree at worker {w} / task {t}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_and_lookup() {
        let mut a = Assignment::new(3, 2);
        a.assign(1, 0);
        assert_eq!(a.worker_of(1), Some(0));
        assert_eq!(a.task_of(0), Some(1));
        assert_eq!(a.worker_of(0), None);
        assert_eq!(a.len(), 1);
        a.check_consistent();
    }

    #[test]
    #[should_panic(expected = "task 0 is already matched")]
    fn double_assign_task_panics() {
        let mut a = Assignment::new(1, 2);
        a.assign(0, 0);
        a.assign(0, 1);
    }

    #[test]
    #[should_panic(expected = "worker 0 is already matched")]
    fn double_assign_worker_panics() {
        let mut a = Assignment::new(2, 1);
        a.assign(0, 0);
        a.assign(1, 0);
    }

    #[test]
    fn unassign_frees_both_sides() {
        let mut a = Assignment::new(2, 2);
        a.assign(0, 1);
        assert_eq!(a.unassign_task(0), Some(1));
        assert_eq!(a.worker_of(0), None);
        assert_eq!(a.task_of(1), None);
        assert!(a.is_empty());
        // Re-assignment after unassign must work.
        a.assign(0, 1);
        assert_eq!(a.unassign_worker(1), Some(0));
        assert!(a.is_empty());
        assert_eq!(a.unassign_worker(1), None);
    }

    #[test]
    fn pairs_iterates_in_task_order() {
        let mut a = Assignment::new(4, 4);
        a.assign(2, 0);
        a.assign(0, 3);
        assert_eq!(a.pairs().collect::<Vec<_>>(), vec![(0, 3), (2, 0)]);
    }
}
