//! Differential-privacy substrate for the DPTA workspace.
//!
//! Implements every privacy primitive the paper relies on:
//!
//! * [`Laplace`] — the Laplace distribution (pdf/cdf/quantile/sampling),
//!   the noise model of Definition 6 and the Laplace mechanism of
//!   Definition 11;
//! * [`LaplaceDiff`] — the closed-form distribution of the difference of
//!   two independent zero-mean Laplace variables, which is exactly what
//!   the Probability Compare Function integrates (Lemma X.1);
//! * [`pcf`] — the PCF of Wang et al. \[3\] (Definition 6);
//! * [`ppcf`] — the paper's Partial Probability Compare Function
//!   (Section V-A, Theorem V.1);
//! * [`ReleaseSet`] / [`EffectivePair`] — maximum-likelihood estimation of
//!   the *effective obfuscated distance* and *effective privacy budget*
//!   from a worker's sequence of releases (Section V-A);
//! * [`BudgetVector`] / [`BudgetState`] — the per-(task, worker) privacy
//!   budget vectors `ε_{i,j}` and state vectors `b_{i,j}` of Definition 5;
//! * [`PrivacyLedger`] — per-worker accounting of published budgets,
//!   reproducing the `Σ_{t_i∈R_j} b_{i,j}·ε_{i,j}·r_j` local-DP bound of
//!   Theorems V.2 / VI.4;
//! * [`CumulativeAccountant`] — lifetime budget depletion across a
//!   stream of windows, keyed by stable entity ids (the retirement
//!   authority of the `dpta-stream` pipeline);
//! * [`BudgetLedger`] / [`WindowedAccountant`] / [`LedgerState`] — the
//!   budget-ledger abstraction: lifetime vs sliding-window accounting
//!   (spend older than the protection window `W` is reclaimed, making
//!   workers renewable — the continual-observation model of Qiu & Yi,
//!   arXiv:2209.01387) behind one object-safe trait;
//! * [`NoiseSource`] — deterministic noise derivation so that a proposal
//!   evaluated locally and published later reveals exactly one draw.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod accountant;
mod budget;
mod diff;
mod geo;
pub mod intern;
mod laplace;
mod ledger;
mod noise;
mod pcf;
mod ppcf;
mod release;

pub use accountant::{AccountId, CumulativeAccountant, PrivacyLedger};
pub use budget::{BudgetState, BudgetVector};
pub use diff::LaplaceDiff;
pub use geo::{lambert_w_m1, PlanarLaplace};
pub use intern::{EpochTable, FastMap, FastSet, Interner, Sym};
pub use laplace::Laplace;
pub use ledger::{BudgetLedger, LedgerState, WindowedAccountant};
pub use noise::{NoiseSource, ScriptedNoise, SeededNoise};
pub use pcf::pcf;
pub use ppcf::ppcf;
pub use release::{EffectivePair, Release, ReleaseSet};

/// Validates a privacy budget: must be finite and strictly positive.
///
/// Every public entry point that accepts an `ε` funnels through this so a
/// zero/negative/NaN budget fails loudly instead of silently producing a
/// degenerate distribution.
#[inline]
pub fn validate_epsilon(epsilon: f64) -> f64 {
    assert!(
        epsilon.is_finite() && epsilon > 0.0,
        "privacy budget must be finite and > 0, got {epsilon}"
    );
    epsilon
}
