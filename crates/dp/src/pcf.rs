//! PCF — the Probability Compare Function of Wang et al. \[3\]
//! (Definition 6 in the paper).

use crate::LaplaceDiff;

/// `PCF(d̂_x, d̂_y, ε_x, ε_y)` — the heuristic probability that the true
/// value behind `d̂_x` is smaller than the true value behind `d̂_y`,
/// treating the noises as if independent of the observations:
///
/// `d_x < d_y ⟺ d̂_x − η_x < d̂_y − η_y ⟺ η_y − η_x < d̂_y − d̂_x`,
///
/// so `PCF = Pr[η_y − η_x < d̂_y − d̂_x]`, evaluated in closed form via
/// [`LaplaceDiff`]. By Lemma X.1, `PCF > 1/2 ⟺ d̂_x < d̂_y`, i.e. PCF
/// ranks pairs exactly like the raw obfuscated values but additionally
/// reports a confidence.
pub fn pcf(d_hat_x: f64, d_hat_y: f64, eps_x: f64, eps_y: f64) -> f64 {
    assert!(
        d_hat_x.is_finite() && d_hat_y.is_finite(),
        "obfuscated values must be finite (got {d_hat_x}, {d_hat_y})"
    );
    LaplaceDiff::new(eps_x, eps_y).cdf(d_hat_y - d_hat_x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn equal_observations_give_half() {
        assert!((pcf(3.0, 3.0, 1.0, 2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lemma_x1_threshold() {
        // PCF > 1/2 iff the first obfuscated value is smaller.
        assert!(pcf(1.0, 2.0, 0.7, 1.3) > 0.5);
        assert!(pcf(2.0, 1.0, 0.7, 1.3) < 0.5);
        assert!(pcf(1.0, 2.0, 5.0, 5.0) > 0.5);
    }

    #[test]
    fn confidence_grows_with_gap_and_budget() {
        // Wider gap => more confident.
        assert!(pcf(0.0, 3.0, 1.0, 1.0) > pcf(0.0, 1.0, 1.0, 1.0));
        // Larger budgets (less noise) => more confident for the same gap.
        assert!(pcf(0.0, 1.0, 4.0, 4.0) > pcf(0.0, 1.0, 0.5, 0.5));
    }

    #[test]
    fn works_with_negative_obfuscated_values() {
        // Laplace noise can push a reported distance below zero; PCF must
        // still behave.
        assert!(pcf(-0.5, 0.5, 1.0, 1.0) > 0.5);
        assert!((pcf(-0.5, 0.5, 1.0, 1.0) + pcf(0.5, -0.5, 1.0, 1.0) - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn antisymmetry(
            a in -10.0f64..10.0, b in -10.0f64..10.0,
            ex in 0.05f64..5.0, ey in 0.05f64..5.0
        ) {
            prop_assert!((pcf(a, b, ex, ey) + pcf(b, a, ey, ex) - 1.0).abs() < 1e-12);
        }

        #[test]
        fn bounded_in_unit_interval(
            a in -10.0f64..10.0, b in -10.0f64..10.0,
            ex in 0.05f64..5.0, ey in 0.05f64..5.0
        ) {
            let v = pcf(a, b, ex, ey);
            prop_assert!((0.0..=1.0).contains(&v));
        }

        #[test]
        fn monotone_in_second_argument(
            a in -5.0f64..5.0, b1 in -5.0f64..5.0, b2 in -5.0f64..5.0,
            ex in 0.05f64..5.0, ey in 0.05f64..5.0
        ) {
            let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
            prop_assert!(pcf(a, lo, ex, ey) <= pcf(a, hi, ex, ey) + 1e-12);
        }
    }
}
