//! PPCF — the paper's Partial Probability Compare Function (Section V-A).

use crate::{validate_epsilon, Laplace};

/// `PPCF(d_i, d̂_j, ε_j) = Pr[d_i < d_j]` where `d_i` is a *real* value
/// known to the comparer and `d̂_j = d_j + Lap(0, 1/ε_j)` is an
/// obfuscated one.
///
/// Since `d_i < d_j ⟺ η_j < d̂_j − d_i`, the probability is just the
/// Laplace CDF at the observed gap. Equation 3 of the paper:
/// `PPCF > 1/2 ⟺ d_i < d̂_j`.
///
/// Theorem V.1 proves PPCF is at least as reliable as PCF: when truly
/// `d_x < d_y`, `Pr[PCF(d̂_x, d̂_y, ·) > ½] ≤ Pr[PPCF(d_x, d̂_y, ·) > ½]`
/// — one side of the comparison carries no noise. The property test for
/// that theorem lives in this module.
pub fn ppcf(d_real: f64, d_hat: f64, eps: f64) -> f64 {
    assert!(
        d_real.is_finite() && d_hat.is_finite(),
        "ppcf inputs must be finite (got {d_real}, {d_hat})"
    );
    Laplace::mechanism(validate_epsilon(eps)).cdf(d_hat - d_real)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcf;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn equation_3_threshold() {
        // PPCF > 1/2 iff d_real < d_hat.
        assert!(ppcf(1.0, 1.5, 0.8) > 0.5);
        assert!(ppcf(1.5, 1.0, 0.8) < 0.5);
        assert!((ppcf(2.0, 2.0, 0.8) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn known_closed_form_value() {
        // gap = 1, eps = 1: CDF of Lap(0,1) at 1 = 1 - e^{-1}/2.
        let expected = 1.0 - 0.5 * (-1.0f64).exp();
        assert!((ppcf(0.0, 1.0, 1.0) - expected).abs() < 1e-12);
    }

    #[test]
    fn theorem_v1_ppcf_dominates_pcf_empirically() {
        // For dx < dy, the probability that the comparison function ranks
        // the pair correctly is at least as high for PPCF as for PCF.
        let mut rng = StdRng::seed_from_u64(99);
        let trials = 60_000;
        for (dx, dy, ex, ey) in [
            (0.3, 0.9, 0.5, 0.5),
            (0.3, 0.9, 2.0, 0.7),
            (1.0, 1.2, 1.0, 3.0),
            (0.0, 2.0, 0.2, 0.2),
        ] {
            let lx = Laplace::mechanism(ex);
            let ly = Laplace::mechanism(ey);
            let mut pcf_correct = 0u32;
            let mut ppcf_correct = 0u32;
            for _ in 0..trials {
                let dhx = dx + lx.sample_from_uniform(rng.gen_range(1e-12..1.0 - 1e-12));
                let dhy = dy + ly.sample_from_uniform(rng.gen_range(1e-12..1.0 - 1e-12));
                if pcf(dhx, dhy, ex, ey) > 0.5 {
                    pcf_correct += 1;
                }
                if ppcf(dx, dhy, ey) > 0.5 {
                    ppcf_correct += 1;
                }
            }
            // 3-sigma slack on the Monte-Carlo comparison.
            let slack = 3.0 * (0.25 / trials as f64).sqrt() * trials as f64;
            assert!(
                ppcf_correct as f64 + slack >= pcf_correct as f64,
                "dx={dx} dy={dy} ex={ex} ey={ey}: ppcf={ppcf_correct} pcf={pcf_correct}"
            );
        }
    }

    proptest! {
        #[test]
        fn bounded_in_unit_interval(
            d in -10.0f64..10.0, dh in -10.0f64..10.0, eps in 0.05f64..5.0
        ) {
            let v = ppcf(d, dh, eps);
            prop_assert!((0.0..=1.0).contains(&v));
        }

        #[test]
        fn complement_identity(
            d in -10.0f64..10.0, dh in -10.0f64..10.0, eps in 0.05f64..5.0
        ) {
            // Pr[d < d_j] + Pr[d > d_j] = 1 for continuous noise; reversing
            // the roles flips the gap's sign.
            let fwd = ppcf(d, dh, eps);
            let mirrored = ppcf(-d, -dh, eps);
            prop_assert!((fwd + mirrored - 1.0).abs() < 1e-12);
        }

        #[test]
        fn monotone_in_gap(
            d in -5.0f64..5.0, dh1 in -5.0f64..5.0, dh2 in -5.0f64..5.0,
            eps in 0.05f64..5.0
        ) {
            let (lo, hi) = if dh1 <= dh2 { (dh1, dh2) } else { (dh2, dh1) };
            prop_assert!(ppcf(d, lo, eps) <= ppcf(d, hi, eps) + 1e-12);
        }

        #[test]
        fn sharper_with_bigger_budget_when_gap_positive(
            d in -5.0f64..5.0, gap in 0.01f64..5.0, e1 in 0.05f64..5.0, e2 in 0.05f64..5.0
        ) {
            let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
            prop_assert!(ppcf(d, d + gap, hi) >= ppcf(d, d + gap, lo) - 1e-12);
        }
    }
}
