//! Deterministic noise derivation for proposal releases.
//!
//! A worker in PUCE/PGT *evaluates* a prospective release locally (the
//! PPCF/PCF gates of Algorithm 1, the best-response scan of Algorithm 4)
//! and only *publishes* it if the move is worthwhile. For that to be
//! privacy-sound the draw must be fixed per `(task, worker, slot)`:
//! publishing later reveals exactly one Laplace sample, and re-evaluating
//! an unpublished one leaks nothing new. Deriving the noise as a pure
//! function of `(seed, task, worker, slot)` also makes every run of every
//! algorithm reproducible, which the experiment harness relies on.

use crate::intern::FastMap;
use crate::Laplace;

/// A source of the `u`-th Laplace noise draw for worker `w` proposing to
/// task `t`.
pub trait NoiseSource {
    /// The noise `η` for (task `t`, worker `w`, slot `u`) under privacy
    /// budget `epsilon` (i.e. `η ~ Lap(0, 1/ε)`), deterministic in its
    /// arguments.
    fn noise(&self, task: u32, worker: u32, slot: u32, epsilon: f64) -> f64;

    /// A uniform draw in `(0, 1)` keyed the same way, recovered from the
    /// Laplace draw through its CDF (exact, since the draw is produced
    /// by the inverse CDF). Used by mechanisms that need raw uniforms,
    /// e.g. the planar Laplace of the Geo-I baseline.
    fn uniform(&self, task: u32, worker: u32, slot: u32) -> f64 {
        Laplace::mechanism(1.0).cdf(self.noise(task, worker, slot, 1.0))
    }
}

/// SplitMix64 finalizer — a fast, well-mixed 64-bit hash step.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash-derived deterministic noise: the production [`NoiseSource`].
#[derive(Debug, Clone, Copy)]
pub struct SeededNoise {
    master: u64,
}

impl SeededNoise {
    /// Creates a source from a master seed.
    pub fn new(master: u64) -> Self {
        SeededNoise { master }
    }

    /// Derives a uniform in the open interval (0, 1) for the key.
    fn uniform(&self, task: u32, worker: u32, slot: u32) -> f64 {
        let mut h = splitmix64(self.master ^ 0xD1B5_4A32_D192_ED03);
        h = splitmix64(h ^ u64::from(task));
        h = splitmix64(h ^ (u64::from(worker) << 32));
        h = splitmix64(h ^ u64::from(slot).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // 53 random bits -> (0, 1), nudged off the endpoints so the
        // Laplace quantile stays finite.
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u.clamp(1e-15, 1.0 - 1e-15)
    }
}

impl NoiseSource for SeededNoise {
    fn noise(&self, task: u32, worker: u32, slot: u32, epsilon: f64) -> f64 {
        Laplace::mechanism(epsilon).sample_from_uniform(self.uniform(task, worker, slot))
    }
}

/// A scripted noise table for tests that replay the paper's worked
/// examples with exact obfuscated distances. Keys not present fall back
/// to zero noise (so partially scripted scenarios remain usable).
#[derive(Debug, Clone, Default)]
pub struct ScriptedNoise {
    table: FastMap<(u32, u32, u32), f64>,
}

impl ScriptedNoise {
    /// Creates an empty script (all-zero noise).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the noise value for (task, worker, slot).
    pub fn set(&mut self, task: u32, worker: u32, slot: u32, noise: f64) -> &mut Self {
        self.table.insert((task, worker, slot), noise);
        self
    }

    /// Builds a script from `((task, worker, slot), noise)` entries.
    pub fn from_entries(entries: &[((u32, u32, u32), f64)]) -> Self {
        let mut s = Self::new();
        for &((t, w, u), n) in entries {
            s.set(t, w, u, n);
        }
        s
    }
}

impl NoiseSource for ScriptedNoise {
    fn noise(&self, task: u32, worker: u32, slot: u32, _epsilon: f64) -> f64 {
        self.table
            .get(&(task, worker, slot))
            .copied()
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_noise_is_deterministic() {
        let s = SeededNoise::new(42);
        let a = s.noise(1, 2, 0, 1.0);
        let b = s.noise(1, 2, 0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_keys_give_different_noise() {
        let s = SeededNoise::new(42);
        let base = s.noise(1, 2, 0, 1.0);
        assert_ne!(base, s.noise(1, 2, 1, 1.0));
        assert_ne!(base, s.noise(1, 3, 0, 1.0));
        assert_ne!(base, s.noise(2, 2, 0, 1.0));
        assert_ne!(base, SeededNoise::new(43).noise(1, 2, 0, 1.0));
    }

    #[test]
    fn seeded_noise_scales_with_epsilon() {
        // Same key, bigger budget => same uniform through a tighter
        // quantile, so |noise| shrinks proportionally.
        let s = SeededNoise::new(7);
        let loose = s.noise(0, 0, 0, 0.5);
        let tight = s.noise(0, 0, 0, 5.0);
        assert!((loose / tight - 10.0).abs() < 1e-9);
    }

    #[test]
    fn seeded_noise_is_roughly_centred() {
        let s = SeededNoise::new(2024);
        let n = 50_000;
        let mut sum = 0.0;
        for i in 0..n {
            sum += s.noise(i, i >> 3, i % 7, 1.0);
        }
        assert!((sum / n as f64).abs() < 0.05);
    }

    #[test]
    fn scripted_noise_returns_table_values() {
        let s = ScriptedNoise::from_entries(&[((0, 0, 0), 0.5), ((0, 0, 1), -0.2)]);
        assert_eq!(s.noise(0, 0, 0, 1.0), 0.5);
        assert_eq!(s.noise(0, 0, 1, 99.0), -0.2);
        assert_eq!(s.noise(5, 5, 5, 1.0), 0.0); // default
    }
}
