//! Closed-form distribution of the difference of two independent
//! zero-mean Laplace random variables.
//!
//! `Z = η_y − η_x` with `η_x ~ Lap(0, 1/ε_x)` and `η_y ~ Lap(0, 1/ε_y)`
//! is exactly the quantity the Probability Compare Function integrates
//! over (Lemma X.1 in the paper's appendix):
//! `PCF(d̂_x, d̂_y, ε_x, ε_y) = Pr[Z < d̂_y − d̂_x]`.
//!
//! For `ε_x ≠ ε_y` the density is
//! `f(z) = ε_x ε_y (ε_x e^{−ε_y|z|} − ε_y e^{−ε_x|z|}) / (2(ε_x² − ε_y²))`
//! with survival (z ≥ 0)
//! `S(z) = (ε_x² e^{−ε_y z} − ε_y² e^{−ε_x z}) / (2(ε_x² − ε_y²))`,
//! matching the derivative `∂F/∂s` computed in the proof of Theorem V.1.
//! For `ε_x = ε_y = ε` the limits are
//! `f(z) = (ε/4)(1 + ε|z|) e^{−ε|z|}` and `S(z) = e^{−εz}(2 + εz)/4`.

use crate::validate_epsilon;

/// Relative tolerance below which two budgets are treated as equal and
/// the numerically stable equal-ε branch is used.
const EQUAL_EPS_REL_TOL: f64 = 1e-9;

/// Distribution of `η_y − η_x` for independent zero-mean Laplace noise
/// with budgets `ε_x`, `ε_y`. Symmetric about zero and symmetric in the
/// unordered pair `{ε_x, ε_y}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaplaceDiff {
    eps_x: f64,
    eps_y: f64,
}

impl LaplaceDiff {
    /// Creates the distribution; both budgets must be finite and positive.
    pub fn new(eps_x: f64, eps_y: f64) -> Self {
        LaplaceDiff {
            eps_x: validate_epsilon(eps_x),
            eps_y: validate_epsilon(eps_y),
        }
    }

    fn budgets_equal(&self) -> bool {
        let m = self.eps_x.max(self.eps_y);
        (self.eps_x - self.eps_y).abs() <= EQUAL_EPS_REL_TOL * m
    }

    /// Probability density at `z`.
    pub fn pdf(&self, z: f64) -> f64 {
        let a = z.abs();
        if self.budgets_equal() {
            let e = 0.5 * (self.eps_x + self.eps_y);
            0.25 * e * (1.0 + e * a) * (-e * a).exp()
        } else {
            let (ex, ey) = (self.eps_x, self.eps_y);
            ex * ey * (ex * (-ey * a).exp() - ey * (-ex * a).exp()) / (2.0 * (ex * ex - ey * ey))
        }
    }

    /// Survival function `Pr[Z > z]`.
    pub fn sf(&self, z: f64) -> f64 {
        if z < 0.0 {
            return 1.0 - self.sf(-z);
        }
        if self.budgets_equal() {
            let e = 0.5 * (self.eps_x + self.eps_y);
            (-e * z).exp() * (2.0 + e * z) / 4.0
        } else {
            let (ex, ey) = (self.eps_x, self.eps_y);
            (ex * ex * (-ey * z).exp() - ey * ey * (-ex * z).exp()) / (2.0 * (ex * ex - ey * ey))
        }
    }

    /// Cumulative distribution `Pr[Z <= z]`.
    #[inline]
    pub fn cdf(&self, z: f64) -> f64 {
        1.0 - self.sf(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Laplace;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn numeric_sf(d: &LaplaceDiff, z: f64) -> f64 {
        // Integrate the pdf on [z, z + 40/min_eps] by trapezoid.
        let span = 40.0 / d.eps_x.min(d.eps_y);
        let n = 400_000usize;
        let h = span / n as f64;
        let mut sum = 0.5 * (d.pdf(z) + d.pdf(z + span));
        for i in 1..n {
            sum += d.pdf(z + i as f64 * h);
        }
        sum * h
    }

    #[test]
    fn sf_at_zero_is_half() {
        for (ex, ey) in [(1.0, 1.0), (0.3, 2.0), (5.0, 0.1)] {
            let d = LaplaceDiff::new(ex, ey);
            assert!((d.sf(0.0) - 0.5).abs() < 1e-12, "ex={ex} ey={ey}");
        }
    }

    #[test]
    fn closed_form_matches_numeric_integration_distinct() {
        let d = LaplaceDiff::new(0.7, 1.9);
        for z in [0.0, 0.2, 1.0, 3.0] {
            let num = numeric_sf(&d, z);
            assert!(
                (d.sf(z) - num).abs() < 1e-5,
                "z={z}: closed={} numeric={num}",
                d.sf(z)
            );
        }
    }

    #[test]
    fn closed_form_matches_numeric_integration_equal() {
        let d = LaplaceDiff::new(1.3, 1.3);
        for z in [0.0, 0.5, 2.0] {
            let num = numeric_sf(&d, z);
            assert!((d.sf(z) - num).abs() < 1e-5);
        }
    }

    #[test]
    fn near_equal_budgets_are_stable() {
        // The distinct-ε formula divides by (ε_x² − ε_y²); make sure the
        // equal-branch cutover keeps values sane near the diagonal.
        let exact = LaplaceDiff::new(1.0, 1.0);
        for delta in [1e-12, 1e-10, 1e-7, 1e-5] {
            let d = LaplaceDiff::new(1.0, 1.0 + delta);
            for z in [0.1, 1.0, 4.0] {
                assert!(
                    (d.sf(z) - exact.sf(z)).abs() < 1e-4,
                    "delta={delta} z={z}: {} vs {}",
                    d.sf(z),
                    exact.sf(z)
                );
            }
        }
    }

    #[test]
    fn matches_monte_carlo() {
        let d = LaplaceDiff::new(0.8, 2.5);
        let lx = Laplace::mechanism(0.8);
        let ly = Laplace::mechanism(2.5);
        let mut rng = StdRng::seed_from_u64(123);
        let n = 400_000;
        for z in [-1.0, 0.0, 0.5, 2.0] {
            let mut hits = 0u32;
            for _ in 0..n {
                let nx = lx.sample_from_uniform(rng.gen_range(1e-12..1.0 - 1e-12));
                let ny = ly.sample_from_uniform(rng.gen_range(1e-12..1.0 - 1e-12));
                if ny - nx > z {
                    hits += 1;
                }
            }
            let mc = hits as f64 / n as f64;
            assert!(
                (d.sf(z) - mc).abs() < 5e-3,
                "z={z}: closed={} mc={mc}",
                d.sf(z)
            );
        }
    }

    proptest! {
        #[test]
        fn pdf_nonnegative_and_symmetric(
            ex in 0.05f64..5.0, ey in 0.05f64..5.0, z in -20.0f64..20.0
        ) {
            let d = LaplaceDiff::new(ex, ey);
            prop_assert!(d.pdf(z) >= 0.0);
            prop_assert!((d.pdf(z) - d.pdf(-z)).abs() < 1e-12);
        }

        #[test]
        fn sf_is_monotone_decreasing(
            ex in 0.05f64..5.0, ey in 0.05f64..5.0,
            a in -10.0f64..10.0, b in -10.0f64..10.0
        ) {
            let d = LaplaceDiff::new(ex, ey);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(d.sf(lo) >= d.sf(hi) - 1e-12);
        }

        #[test]
        fn symmetric_in_budget_order(
            ex in 0.05f64..5.0, ey in 0.05f64..5.0, z in -10.0f64..10.0
        ) {
            let d1 = LaplaceDiff::new(ex, ey);
            let d2 = LaplaceDiff::new(ey, ex);
            prop_assert!((d1.sf(z) - d2.sf(z)).abs() < 1e-12);
        }

        #[test]
        fn point_symmetry_of_cdf(
            ex in 0.05f64..5.0, ey in 0.05f64..5.0, z in -10.0f64..10.0
        ) {
            let d = LaplaceDiff::new(ex, ey);
            prop_assert!((d.cdf(z) + d.cdf(-z) - 1.0).abs() < 1e-12);
        }
    }
}
