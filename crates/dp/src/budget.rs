//! Privacy budget vectors `ε_{i,j}` and state vectors `b_{i,j}`
//! (Definition 5 / Table I of the paper).

use crate::validate_epsilon;
use serde::{Deserialize, Serialize};

/// The budget vector `ε_{i,j} = ⟨ε⁽¹⁾, …, ε⁽ᶻ⁾⟩` a worker owns toward one
/// task: the `u`-th proposal to that task spends `ε⁽ᵘ⁾`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetVector {
    slots: Vec<f64>,
}

impl BudgetVector {
    /// Creates a budget vector; every slot must be a valid budget.
    pub fn new(slots: Vec<f64>) -> Self {
        for &e in &slots {
            validate_epsilon(e);
        }
        BudgetVector { slots }
    }

    /// Number of proposal slots `Z`.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the vector has no slots at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The budget of the `u`-th proposal (0-based).
    #[inline]
    pub fn slot(&self, u: usize) -> f64 {
        self.slots[u]
    }

    /// All slots.
    #[inline]
    pub fn slots(&self) -> &[f64] {
        &self.slots
    }

    /// Sum of every slot — the worst-case leak toward this task.
    pub fn total(&self) -> f64 {
        self.slots.iter().sum()
    }
}

/// The consumption state of a [`BudgetVector`] — the paper's 0/1 vector
/// `b_{i,j}`.
///
/// Proposals consume slots strictly in order (the `u`-th proposal uses
/// `ε⁽ᵘ⁾`), so the state is a prefix `⟨1,…,1,0,…,0⟩` and a counter
/// suffices. `b_{1,2} = ⟨1,1,0,0,0⟩` in the paper's example corresponds
/// to `used == 2`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BudgetState {
    used: usize,
}

impl BudgetState {
    /// Fresh state: nothing consumed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of consumed slots (`sum(b)` in the paper's notation).
    #[inline]
    pub fn used(&self) -> usize {
        self.used
    }

    /// Index of the next unconsumed slot, or `None` when exhausted.
    pub fn next_slot(&self, budgets: &BudgetVector) -> Option<usize> {
        (self.used < budgets.len()).then_some(self.used)
    }

    /// Whether every slot has been consumed.
    pub fn exhausted(&self, budgets: &BudgetVector) -> bool {
        self.used >= budgets.len()
    }

    /// Consumes the next slot, returning its budget. Panics when
    /// exhausted — callers must gate on [`BudgetState::next_slot`].
    pub fn consume(&mut self, budgets: &BudgetVector) -> f64 {
        let u = self
            .next_slot(budgets)
            .expect("budget vector exhausted: no slot left to consume");
        self.used += 1;
        budgets.slot(u)
    }

    /// Total budget consumed so far: `b_{i,j} · ε_{i,j}`.
    pub fn spent(&self, budgets: &BudgetVector) -> f64 {
        budgets.slots()[..self.used].iter().sum()
    }

    /// The state as the paper's explicit 0/1 vector (for reports/tests).
    pub fn as_bits(&self, budgets: &BudgetVector) -> Vec<u8> {
        (0..budgets.len())
            .map(|u| u8::from(u < self.used))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn vector() -> BudgetVector {
        BudgetVector::new(vec![0.5, 0.75, 1.0])
    }

    #[test]
    fn consume_in_order() {
        let v = vector();
        let mut st = BudgetState::new();
        assert_eq!(st.next_slot(&v), Some(0));
        assert_eq!(st.consume(&v), 0.5);
        assert_eq!(st.consume(&v), 0.75);
        assert_eq!(st.next_slot(&v), Some(2));
        assert_eq!(st.consume(&v), 1.0);
        assert!(st.exhausted(&v));
        assert_eq!(st.next_slot(&v), None);
    }

    #[test]
    #[should_panic(expected = "budget vector exhausted")]
    fn consume_past_end_panics() {
        let v = BudgetVector::new(vec![1.0]);
        let mut st = BudgetState::new();
        st.consume(&v);
        st.consume(&v);
    }

    #[test]
    fn spent_is_prefix_sum() {
        let v = vector();
        let mut st = BudgetState::new();
        assert_eq!(st.spent(&v), 0.0);
        st.consume(&v);
        assert!((st.spent(&v) - 0.5).abs() < 1e-15);
        st.consume(&v);
        assert!((st.spent(&v) - 1.25).abs() < 1e-15);
    }

    #[test]
    fn bits_match_paper_notation() {
        let v = BudgetVector::new(vec![1.0; 5]);
        let mut st = BudgetState::new();
        st.consume(&v);
        st.consume(&v);
        assert_eq!(st.as_bits(&v), vec![1, 1, 0, 0, 0]); // b = <1,1,0,0,0>
    }

    #[test]
    fn total_sums_all_slots() {
        assert!((vector().total() - 2.25).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "privacy budget must be finite")]
    fn invalid_slot_rejected() {
        let _ = BudgetVector::new(vec![0.5, f64::NAN]);
    }

    #[test]
    fn empty_vector_is_immediately_exhausted() {
        let v = BudgetVector::new(vec![]);
        let st = BudgetState::new();
        assert!(v.is_empty());
        assert!(st.exhausted(&v));
        assert_eq!(st.next_slot(&v), None);
    }

    proptest! {
        #[test]
        fn spent_plus_remaining_is_total(
            slots in proptest::collection::vec(0.05f64..3.0, 1..10),
            take in 0usize..10
        ) {
            let v = BudgetVector::new(slots.clone());
            let mut st = BudgetState::new();
            let take = take.min(v.len());
            for _ in 0..take {
                st.consume(&v);
            }
            let remaining: f64 = v.slots()[take..].iter().sum();
            prop_assert!((st.spent(&v) + remaining - v.total()).abs() < 1e-9);
            prop_assert_eq!(st.used(), take);
        }
    }
}
