//! The Laplace distribution and the Laplace mechanism.

use crate::validate_epsilon;

/// A Laplace distribution `Lap(location, scale)`.
///
/// The paper obfuscates a true distance `d` as `d̂ = d + Lap(0, 1/ε)`
/// (Definition 6); [`Laplace::mechanism`] constructs exactly that noise
/// distribution from a privacy budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    location: f64,
    scale: f64,
}

impl Laplace {
    /// Creates `Lap(location, scale)`. Panics unless `scale` is finite
    /// and strictly positive.
    pub fn new(location: f64, scale: f64) -> Self {
        assert!(
            location.is_finite(),
            "Laplace location must be finite, got {location}"
        );
        assert!(
            scale.is_finite() && scale > 0.0,
            "Laplace scale must be finite and > 0, got {scale}"
        );
        Laplace { location, scale }
    }

    /// The zero-centred noise distribution of the Laplace mechanism with
    /// privacy budget `epsilon` (unit ℓ1-sensitivity): `Lap(0, 1/ε)`.
    pub fn mechanism(epsilon: f64) -> Self {
        Laplace::new(0.0, 1.0 / validate_epsilon(epsilon))
    }

    /// Location parameter (mean and median).
    #[inline]
    pub fn location(&self) -> f64 {
        self.location
    }

    /// Scale parameter `b`; the variance is `2b²`.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Probability density at `x`.
    #[inline]
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.location).abs() / self.scale;
        (-z).exp() / (2.0 * self.scale)
    }

    /// Cumulative distribution `Pr[X <= x]`.
    #[inline]
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.location) / self.scale;
        if z >= 0.0 {
            1.0 - 0.5 * (-z).exp()
        } else {
            0.5 * z.exp()
        }
    }

    /// Survival function `Pr[X > x] = 1 − cdf(x)`, computed without the
    /// cancellation of `1 - cdf` for large `x`.
    #[inline]
    pub fn sf(&self, x: f64) -> f64 {
        let z = (x - self.location) / self.scale;
        if z >= 0.0 {
            0.5 * (-z).exp()
        } else {
            1.0 - 0.5 * z.exp()
        }
    }

    /// Quantile (inverse CDF) at probability `p ∈ (0, 1)`.
    #[inline]
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            p > 0.0 && p < 1.0,
            "quantile probability must be in (0, 1), got {p}"
        );
        let u = p - 0.5;
        self.location - self.scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }

    /// Draws a sample from a uniform `u ∈ (0, 1)` via the inverse CDF.
    ///
    /// Exposed this way (instead of taking an `Rng`) so the deterministic
    /// [`NoiseSource`](crate::NoiseSource) can feed hashed uniforms.
    #[inline]
    pub fn sample_from_uniform(&self, u: f64) -> f64 {
        self.quantile(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pdf_is_symmetric_and_peaks_at_location() {
        let l = Laplace::new(2.0, 0.5);
        assert!((l.pdf(2.0 + 0.7) - l.pdf(2.0 - 0.7)).abs() < 1e-15);
        assert!(l.pdf(2.0) > l.pdf(2.1));
        assert!((l.pdf(2.0) - 1.0).abs() < 1e-15); // 1/(2*0.5)
    }

    #[test]
    fn cdf_known_values() {
        let l = Laplace::new(0.0, 1.0);
        assert!((l.cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((l.cdf(1.0) - (1.0 - 0.5 * (-1.0f64).exp())).abs() < 1e-15);
        assert!((l.cdf(-1.0) - 0.5 * (-1.0f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn cdf_sf_complement() {
        let l = Laplace::new(-1.0, 2.0);
        for x in [-10.0, -1.0, 0.0, 0.3, 5.0] {
            assert!((l.cdf(x) + l.sf(x) - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn mechanism_has_scale_one_over_epsilon() {
        let l = Laplace::mechanism(4.0);
        assert_eq!(l.location(), 0.0);
        assert_eq!(l.scale(), 0.25);
    }

    #[test]
    #[should_panic(expected = "privacy budget must be finite")]
    fn mechanism_rejects_zero_epsilon() {
        let _ = Laplace::mechanism(0.0);
    }

    #[test]
    #[should_panic(expected = "scale must be finite")]
    fn rejects_negative_scale() {
        let _ = Laplace::new(0.0, -1.0);
    }

    #[test]
    fn quantile_median_is_location() {
        let l = Laplace::new(3.5, 0.7);
        assert!((l.quantile(0.5) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn pdf_integrates_to_one() {
        // Trapezoidal integration over +-20 scales.
        let l = Laplace::new(1.0, 0.8);
        let (a, b, n) = (1.0 - 16.0, 1.0 + 16.0, 200_000);
        let h = (b - a) / n as f64;
        let mut sum = 0.5 * (l.pdf(a) + l.pdf(b));
        for i in 1..n {
            sum += l.pdf(a + i as f64 * h);
        }
        assert!((sum * h - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empirical_mean_and_variance() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let l = Laplace::new(0.0, 1.5);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let (mut s, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let x = l.sample_from_uniform(rng.gen_range(1e-12..1.0 - 1e-12));
            s += x;
            s2 += x * x;
        }
        let mean = s / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 2.0 * 1.5 * 1.5).abs() < 0.1, "var {var}");
    }

    proptest! {
        #[test]
        fn quantile_inverts_cdf(p in 0.001f64..0.999, loc in -5.0f64..5.0, scale in 0.1f64..3.0) {
            let l = Laplace::new(loc, scale);
            prop_assert!((l.cdf(l.quantile(p)) - p).abs() < 1e-9);
        }

        #[test]
        fn cdf_is_monotone(a in -10.0f64..10.0, b in -10.0f64..10.0, scale in 0.1f64..3.0) {
            let l = Laplace::new(0.0, scale);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(l.cdf(lo) <= l.cdf(hi) + 1e-15);
        }

        #[test]
        fn dp_ratio_bound_holds(
            eps in 0.1f64..3.0,
            d1 in 0.0f64..2.0,
            d2 in 0.0f64..2.0,
            out in -5.0f64..5.0,
        ) {
            // Laplace mechanism ε-DP check on neighbouring values at
            // distance |d1-d2| (sensitivity |d1-d2|): the density ratio at
            // any output is bounded by exp(ε·|d1-d2|).
            let m = Laplace::mechanism(eps);
            let p1 = m.pdf(out - d1);
            let p2 = m.pdf(out - d2);
            let bound = (eps * (d1 - d2).abs()).exp();
            prop_assert!(p1 <= p2 * bound * (1.0 + 1e-12));
            prop_assert!(p2 <= p1 * bound * (1.0 + 1e-12));
        }
    }
}
