//! Release sets and the MLE *effective obfuscated distance* /
//! *effective privacy budget* (Section V-A of the paper).

use crate::validate_epsilon;
use serde::{Deserialize, Serialize};

/// One published (obfuscated distance, privacy budget) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Release {
    /// The obfuscated distance `d̂` (may be negative — Laplace noise is
    /// unbounded).
    pub value: f64,
    /// The privacy budget `ε` spent on this release.
    pub epsilon: f64,
}

/// The MLE estimate extracted from a release set: the paper's
/// `(d̃, ε̃)` *effective distance-budget pair*.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EffectivePair {
    /// Effective obfuscated distance `d̃`.
    pub distance: f64,
    /// Effective privacy budget `ε̃` (the budget paired with `d̃`).
    pub epsilon: f64,
}

/// A worker's set `DE = {(d̂_1, ε_1), …, (d̂_u, ε_u)}` of releases toward
/// one task, with the cached effective pair.
///
/// The MLE of the true distance under Laplace noise maximises
/// `Π_k (ε_k/2)·exp(−ε_k|d̂_k − d|)`, i.e. minimises `Σ_k ε_k·|d̂_k − d|`
/// — a weighted-median problem whose minimiser is a point or a segment.
/// Following the paper, the domain is restricted to the released values
/// `DE.d̂` so the estimate is always one of the published points and
/// therefore still supports PCF comparison with its paired `ε`.
///
/// **Tie-break.** When the restricted argmin is attained by several
/// released values (the minimising segment of the unrestricted problem
/// has released endpoints), we pick the candidate with the largest `ε`,
/// then the latest release. This matches Table IV of the paper: after
/// the third release of (t₁,w₁) the objective ties between 12.4 and
/// 12.3 and the paper reports (12.3, 0.4) — the larger budget.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReleaseSet {
    releases: Vec<Release>,
    effective: Option<EffectivePair>,
}

impl ReleaseSet {
    /// Creates an empty release set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from `(value, epsilon)` pairs, in release order.
    pub fn from_pairs(pairs: &[(f64, f64)]) -> Self {
        let mut s = Self::new();
        for &(value, epsilon) in pairs {
            s.push(Release { value, epsilon });
        }
        s
    }

    /// Publishes one more release and refreshes the effective pair.
    pub fn push(&mut self, release: Release) {
        assert!(release.value.is_finite(), "release value must be finite");
        validate_epsilon(release.epsilon);
        self.releases.push(release);
        self.effective = Some(Self::mle(&self.releases));
    }

    /// Number of releases published so far.
    pub fn len(&self) -> usize {
        self.releases.len()
    }

    /// Whether nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.releases.is_empty()
    }

    /// The raw releases in publication order.
    pub fn releases(&self) -> &[Release] {
        &self.releases
    }

    /// Total budget spent on this task: `Σ_k ε_k`.
    pub fn spent_epsilon(&self) -> f64 {
        self.releases.iter().map(|r| r.epsilon).sum()
    }

    /// The current effective distance-budget pair, or `None` before any
    /// release.
    pub fn effective(&self) -> Option<EffectivePair> {
        self.effective
    }

    /// Weighted-median MLE restricted to the released points, with the
    /// larger-ε / later-release tie-break described on the type.
    fn mle(releases: &[Release]) -> EffectivePair {
        debug_assert!(!releases.is_empty());
        let objective = |d: f64| -> f64 {
            releases
                .iter()
                .map(|r| r.epsilon * (r.value - d).abs())
                .sum()
        };
        let mut best: Option<(f64, usize)> = None; // (objective, index)
        for (idx, cand) in releases.iter().enumerate() {
            let obj = objective(cand.value);
            let better = match best {
                None => true,
                Some((bobj, bidx)) => {
                    let b = &releases[bidx];
                    let scale = bobj.abs().max(obj.abs()).max(1.0);
                    if (obj - bobj).abs() <= 1e-12 * scale {
                        // Tie: prefer larger ε, then the later release.
                        cand.epsilon > b.epsilon
                            || ((cand.epsilon - b.epsilon).abs() <= f64::EPSILON * b.epsilon.abs()
                                && idx > bidx)
                    } else {
                        obj < bobj
                    }
                }
            };
            if better {
                best = Some((obj, idx));
            }
        }
        let (_, idx) = best.expect("non-empty release set");
        EffectivePair {
            distance: releases[idx].value,
            epsilon: releases[idx].epsilon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_mle_example() {
        // Section V-A: DE = {(0.1,0.2),(0.2,0.9),(0.3,0.1)} => (0.2, 0.9).
        let s = ReleaseSet::from_pairs(&[(0.1, 0.2), (0.2, 0.9), (0.3, 0.1)]);
        let e = s.effective().unwrap();
        assert_eq!(e.distance, 0.2);
        assert_eq!(e.epsilon, 0.9);
    }

    #[test]
    fn paper_table_iv_t1_w1_progression() {
        // Releases (12.7,0.1), (12.4,0.3), (12.3,0.4): effective pair after
        // each release per Table IV is (12.7,0.1), (12.4,0.3), (12.3,0.4).
        let mut s = ReleaseSet::new();
        s.push(Release {
            value: 12.7,
            epsilon: 0.1,
        });
        assert_eq!(s.effective().unwrap().distance, 12.7);
        s.push(Release {
            value: 12.4,
            epsilon: 0.3,
        });
        assert_eq!(s.effective().unwrap().distance, 12.4);
        s.push(Release {
            value: 12.3,
            epsilon: 0.4,
        });
        // Objective ties between 12.4 and 12.3 (both 0.07); the larger-ε
        // tie-break selects the paper's (12.3, 0.4).
        let e = s.effective().unwrap();
        assert_eq!(e.distance, 12.3);
        assert_eq!(e.epsilon, 0.4);
    }

    #[test]
    fn single_release_is_its_own_effective_pair() {
        let s = ReleaseSet::from_pairs(&[(5.5, 4.6)]);
        let e = s.effective().unwrap();
        assert_eq!((e.distance, e.epsilon), (5.5, 4.6));
    }

    #[test]
    fn empty_set_has_no_effective_pair() {
        let s = ReleaseSet::new();
        assert!(s.effective().is_none());
        assert_eq!(s.spent_epsilon(), 0.0);
    }

    #[test]
    fn spent_epsilon_accumulates() {
        let s = ReleaseSet::from_pairs(&[(1.0, 0.5), (2.0, 0.25)]);
        assert!((s.spent_epsilon() - 0.75).abs() < 1e-15);
    }

    #[test]
    fn dominant_weight_wins() {
        // One high-budget release should dominate many low-budget ones.
        let s = ReleaseSet::from_pairs(&[(0.0, 0.01), (0.1, 0.01), (9.0, 10.0), (0.2, 0.01)]);
        assert_eq!(s.effective().unwrap().distance, 9.0);
    }

    #[test]
    #[should_panic(expected = "privacy budget must be finite")]
    fn zero_budget_release_panics() {
        let mut s = ReleaseSet::new();
        s.push(Release {
            value: 1.0,
            epsilon: 0.0,
        });
    }

    proptest! {
        #[test]
        fn effective_minimises_weighted_l1_over_released_points(
            pairs in proptest::collection::vec((-10.0f64..10.0, 0.05f64..5.0), 1..12)
        ) {
            let s = ReleaseSet::from_pairs(&pairs);
            let e = s.effective().unwrap();
            let obj = |d: f64| -> f64 {
                pairs.iter().map(|&(v, w)| w * (v - d).abs()).sum()
            };
            let best = obj(e.distance);
            for &(v, _) in &pairs {
                prop_assert!(best <= obj(v) + 1e-9);
            }
            // The effective pair is one of the releases.
            prop_assert!(pairs.iter().any(|&(v, w)| v == e.distance && w == e.epsilon));
        }

        #[test]
        fn restricted_objective_close_to_unrestricted_weighted_median(
            pairs in proptest::collection::vec((-10.0f64..10.0, 0.05f64..5.0), 1..12)
        ) {
            // The unrestricted minimiser is a weighted median of the
            // released values, which *is* a released value; so restricting
            // the domain must not change the optimum at all.
            let s = ReleaseSet::from_pairs(&pairs);
            let e = s.effective().unwrap();
            let obj = |d: f64| -> f64 {
                pairs.iter().map(|&(v, w)| w * (v - d).abs()).sum()
            };
            // Dense scan over the convex objective's breakpoints.
            let best_unrestricted = pairs
                .iter()
                .map(|&(v, _)| obj(v))
                .fold(f64::INFINITY, f64::min);
            prop_assert!((obj(e.distance) - best_unrestricted).abs() < 1e-9);
        }
    }
}
