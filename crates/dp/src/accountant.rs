//! Per-worker privacy accounting (Theorems V.2 and VI.4).
//!
//! The paper proves PUCE and PGT each satisfy
//! `(Σ_{t_i ∈ R_j} b_{i,j}·ε_{i,j}·r_j)`-local differential privacy for
//! every worker `w_j`: each published obfuscated distance `d̂` with
//! budget `ε` contributes `ε · r_j`, because two neighbouring worker
//! locations inside the service area change any task distance by at most
//! `r_j`. The ledger simply tracks every publication and evaluates that
//! bound, so tests and examples can assert the theorem against the
//! actual protocol trace.

use crate::intern::FastMap;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Ledger of one worker's published privacy budgets, keyed by task.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PrivacyLedger {
    per_task: BTreeMap<u32, Vec<f64>>,
}

impl PrivacyLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one publication toward `task` with budget `epsilon`.
    pub fn record(&mut self, task: u32, epsilon: f64) {
        crate::validate_epsilon(epsilon);
        self.per_task.entry(task).or_default().push(epsilon);
    }

    /// Number of publications recorded in total.
    pub fn publications(&self) -> usize {
        self.per_task.values().map(Vec::len).sum()
    }

    /// Total published budget toward one task: `b_{i,j} · ε_{i,j}`.
    pub fn spent_on(&self, task: u32) -> f64 {
        self.per_task.get(&task).map_or(0.0, |v| v.iter().sum())
    }

    /// Total published budget across all tasks: `Σ_i b_{i,j}·ε_{i,j}`.
    pub fn total_epsilon(&self) -> f64 {
        self.per_task.values().flatten().sum()
    }

    /// The local-DP level of Theorems V.2 / VI.4 for a worker with
    /// service radius `radius`: `Σ_{t_i∈R_j} b_{i,j}·ε_{i,j}·r_j`.
    pub fn ldp_bound(&self, radius: f64) -> f64 {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "service radius must be finite and >= 0, got {radius}"
        );
        self.total_epsilon() * radius
    }

    /// Tasks with at least one publication, ascending.
    pub fn tasks(&self) -> impl Iterator<Item = u32> + '_ {
        self.per_task.keys().copied()
    }
}

/// Cumulative per-entity budget accounting across a stream of windows.
///
/// A [`PrivacyLedger`] audits one worker inside one protocol run; a
/// `CumulativeAccountant` tracks *lifetime* budget depletion of many
/// entities across successive runs — the streaming setting, where the
/// same worker participates in window after window until the budget his
/// lifetime capacity grants is gone and the pipeline retires him.
/// Entities are keyed by caller-chosen `u64` ids (the stream's logical
/// worker ids), not per-instance indices, so accounting survives the
/// re-indexing every new window performs.
///
/// # Two-phase charging
///
/// [`charge`](Self::charge) records spend immediately. Coordinated
/// runs — the streaming pipeline's cross-shard halo mode, where several
/// shards publish on behalf of one worker inside one window — instead
/// use the reserve/commit pair: every shard [`reserve`](Self::reserve)s
/// the budget its publications would cost, reservations count against
/// [`remaining`](Self::remaining) so later proposals see a depleted
/// budget, and after cross-shard reconciliation the coordinator
/// [`commit`](Self::commit)s (or [`rollback`](Self::rollback)s) each
/// entity's pending total exactly once. Retirement
/// ([`is_exhausted`](Self::is_exhausted) /
/// [`drain_exhausted`](Self::drain_exhausted)) looks at *committed*
/// spend only — a reservation can never retire anyone.
///
/// # Examples
///
/// ```
/// use dpta_dp::CumulativeAccountant;
///
/// let mut acc = CumulativeAccountant::new();
/// acc.register(7, 2.0); // worker 7 may spend ε = 2.0 over his lifetime
/// acc.charge(7, 1.5);
/// assert!(!acc.is_exhausted(7));
/// assert!((acc.remaining(7) - 0.5).abs() < 1e-12);
///
/// // Two-phase: a reservation depletes `remaining` but not `spent`
/// // until committed.
/// acc.reserve(7, 0.5);
/// assert_eq!(acc.remaining(7), 0.0);
/// assert!((acc.spent(7) - 1.5).abs() < 1e-12);
/// assert!((acc.commit(7) - 0.5).abs() < 1e-12);
/// assert!(acc.is_exhausted(7));
/// assert_eq!(acc.drain_exhausted(), vec![7]);
/// assert!(acc.tracked().next().is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CumulativeAccountant {
    /// Logical id → slot in `slots`: the ledger's interning table.
    /// One deterministic [`FastMap`] probe per lookup — no tree descent
    /// and no SipHash on the hot per-window resolve/charge paths.
    index: FastMap<u64, u32>,
    /// Dense account storage; slots are never reused, a forgotten or
    /// drained entity leaves a `None` tombstone so outstanding
    /// [`AccountId`]s can never alias a different entity.
    slots: Vec<Option<Account>>,
    /// Live ids, ascending. Every public iteration (`tracked`,
    /// `drain_exhausted`, `total_spent`, serialization) walks this
    /// list, so observable ordering — including float summation order —
    /// is identical to the historical id-sorted map storage. Kept
    /// sorted eagerly: streaming registration is near-monotone in id,
    /// so the common case is an O(1) push.
    live: Vec<u64>,
}

/// One tracked entity: lifetime capacity, committed spend, and budget
/// reserved by an in-flight window awaiting commit.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Account {
    capacity: f64,
    spent: f64,
    reserved: f64,
}

/// A dense handle to one tracked entity, obtained from
/// [`CumulativeAccountant::resolve`].
///
/// Hot per-proposal paths (budget guards, release charging) resolve a
/// worker's logical id once per window and then use the `*_at` methods,
/// which are plain vector lookups — no id hashing or tree descent per
/// proposal. A handle stays valid until its entity is removed
/// ([`forget`](CumulativeAccountant::forget) /
/// [`drain_exhausted`](CumulativeAccountant::drain_exhausted)); after
/// that, read accessors return zero (like unknown ids) and mutating
/// accessors panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccountId(u32);

impl AccountId {
    /// Wraps a dense slot index — shared with the sibling
    /// [`WindowedAccountant`](crate::WindowedAccountant), which uses
    /// the same tombstoned-slot layout and hands out interchangeable
    /// handles.
    pub(crate) fn from_slot(slot: u32) -> Self {
        AccountId(slot)
    }

    /// The dense slot index this handle wraps.
    pub(crate) fn slot(self) -> u32 {
        self.0
    }
}

impl CumulativeAccountant {
    /// Creates an accountant tracking no entities.
    ///
    /// **Deprecation note:** pipeline code should no longer construct a
    /// `CumulativeAccountant` directly. Build a
    /// [`LedgerState`](crate::LedgerState) (for which lifetime
    /// accounting is one policy next to the sliding-window
    /// [`WindowedAccountant`](crate::WindowedAccountant)) and program
    /// against the [`BudgetLedger`](crate::BudgetLedger) trait instead
    /// — that is the path the stream session uses, and the only one
    /// that supports budget renewal. Direct construction remains
    /// supported for audits and tests of the paper's lifetime model.
    pub fn new() -> Self {
        Self::default()
    }

    fn get(&self, id: u64) -> Option<&Account> {
        let slot = *self.index.get(&id)?;
        self.slots[slot as usize].as_ref()
    }

    fn get_mut(&mut self, id: u64) -> Option<&mut Account> {
        let slot = *self.index.get(&id)?;
        self.slots[slot as usize].as_mut()
    }

    /// Starts tracking `id` with the given lifetime budget capacity.
    /// Re-registering an id keeps its spend and raises/lowers only the
    /// capacity, so late capacity adjustments cannot reset history.
    /// `capacity` may be `f64::INFINITY` for never-retiring entities.
    pub fn register(&mut self, id: u64, capacity: f64) {
        assert!(
            capacity > 0.0 && !capacity.is_nan(),
            "capacity must be positive, got {capacity}"
        );
        match self.get_mut(id) {
            Some(a) => a.capacity = capacity,
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Some(Account {
                    capacity,
                    spent: 0.0,
                    reserved: 0.0,
                }));
                self.index.insert(id, slot);
                match self.live.last() {
                    Some(&last) if last >= id => {
                        let at = self.live.partition_point(|&x| x < id);
                        self.live.insert(at, id);
                    }
                    _ => self.live.push(id),
                }
            }
        }
    }

    /// The dense handle for `id`, if it is currently tracked. Resolve
    /// once per window, then use [`charge_at`](Self::charge_at) /
    /// [`remaining_at`](Self::remaining_at) and friends in per-proposal
    /// loops.
    pub fn resolve(&self, id: u64) -> Option<AccountId> {
        let slot = *self.index.get(&id)?;
        self.slots[slot as usize].as_ref().map(|_| AccountId(slot))
    }

    /// Charges `epsilon` (≥ 0) against `id`'s lifetime budget. Panics if
    /// the id was never registered — silent accounting gaps are exactly
    /// what this type exists to prevent.
    pub fn charge(&mut self, id: u64, epsilon: f64) {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "charge must be finite and >= 0, got {epsilon}"
        );
        self.get_mut(id)
            .unwrap_or_else(|| panic!("entity {id} was never registered"))
            .spent += epsilon;
    }

    /// Handle counterpart of [`charge`](Self::charge); panics on a
    /// stale handle.
    pub fn charge_at(&mut self, at: AccountId, epsilon: f64) {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "charge must be finite and >= 0, got {epsilon}"
        );
        self.slots[at.0 as usize]
            .as_mut()
            .expect("stale account handle")
            .spent += epsilon;
    }

    /// Reserves `epsilon` (≥ 0) against `id`'s lifetime budget without
    /// committing it: [`remaining`](Self::remaining) shrinks at once,
    /// [`spent`](Self::spent) moves only on [`commit`](Self::commit).
    /// Panics if the id was never registered.
    pub fn reserve(&mut self, id: u64, epsilon: f64) {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "reservation must be finite and >= 0, got {epsilon}"
        );
        self.get_mut(id)
            .unwrap_or_else(|| panic!("entity {id} was never registered"))
            .reserved += epsilon;
    }

    /// Handle counterpart of [`reserve`](Self::reserve); panics on a
    /// stale handle.
    pub fn reserve_at(&mut self, at: AccountId, epsilon: f64) {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "reservation must be finite and >= 0, got {epsilon}"
        );
        self.slots[at.0 as usize]
            .as_mut()
            .expect("stale account handle")
            .reserved += epsilon;
    }

    /// Budget currently reserved against `id` and awaiting commit (zero
    /// for unknown ids).
    pub fn reserved(&self, id: u64) -> f64 {
        self.get(id).map_or(0.0, |a| a.reserved)
    }

    /// Converts `id`'s whole pending reservation into committed spend
    /// and returns the amount. A no-op returning zero when nothing is
    /// reserved; panics if the id was never registered.
    pub fn commit(&mut self, id: u64) -> f64 {
        let a = self
            .get_mut(id)
            .unwrap_or_else(|| panic!("entity {id} was never registered"));
        let amount = a.reserved;
        a.spent += amount;
        a.reserved = 0.0;
        amount
    }

    /// Discards `id`'s pending reservation (the publications never
    /// happened) and returns the released amount. Zero for unknown ids.
    pub fn rollback(&mut self, id: u64) -> f64 {
        self.get_mut(id).map_or(0.0, |a| {
            let amount = a.reserved;
            a.reserved = 0.0;
            amount
        })
    }

    /// Cumulative committed spend of `id` (zero for unknown ids).
    pub fn spent(&self, id: u64) -> f64 {
        self.get(id).map_or(0.0, |a| a.spent)
    }

    /// Handle counterpart of [`spent`](Self::spent); zero for stale
    /// handles.
    pub fn spent_at(&self, at: AccountId) -> f64 {
        self.slots[at.0 as usize].map_or(0.0, |a| a.spent)
    }

    /// Remaining lifetime budget of `id` (zero for unknown ids), net of
    /// both committed spend and pending reservations, clamped at zero.
    pub fn remaining(&self, id: u64) -> f64 {
        self.get(id)
            .map_or(0.0, |a| (a.capacity - a.spent - a.reserved).max(0.0))
    }

    /// Handle counterpart of [`remaining`](Self::remaining); zero for
    /// stale handles.
    pub fn remaining_at(&self, at: AccountId) -> f64 {
        self.slots[at.0 as usize].map_or(0.0, |a| (a.capacity - a.spent - a.reserved).max(0.0))
    }

    /// Whether `id` has spent its whole capacity (unknown ids count as
    /// exhausted — they have nothing left to spend).
    pub fn is_exhausted(&self, id: u64) -> bool {
        self.get(id).is_none_or(|a| {
            // Tolerance mirrors the ledger-vs-board float comparisons.
            a.spent >= a.capacity - 1e-12
        })
    }

    /// Removes and returns every exhausted entity, ascending by id —
    /// the retirement step the stream driver runs after each window.
    pub fn drain_exhausted(&mut self) -> Vec<u64> {
        let mut gone = Vec::new();
        let (index, slots) = (&mut self.index, &mut self.slots);
        self.live.retain(|&id| {
            let slot = *index.get(&id).expect("live id is indexed");
            let exhausted = slots[slot as usize].is_some_and(|a| a.spent >= a.capacity - 1e-12);
            if exhausted {
                index.remove(&id);
                slots[slot as usize] = None;
                gone.push(id);
            }
            !exhausted
        });
        gone
    }

    /// Stops tracking `id` regardless of its state (e.g. a worker who
    /// departed by being matched). Returns whether it was tracked.
    pub fn forget(&mut self, id: u64) -> bool {
        match self.index.remove(&id) {
            Some(slot) => {
                self.slots[slot as usize] = None;
                let at = self.live.partition_point(|&x| x < id);
                debug_assert_eq!(self.live.get(at), Some(&id));
                self.live.remove(at);
                true
            }
            None => false,
        }
    }

    /// Ids still tracked, ascending.
    pub fn tracked(&self) -> impl Iterator<Item = u64> + '_ {
        self.live.iter().copied()
    }

    /// Total spend across all tracked entities, summed ascending by id
    /// (the float order every historical gate pinned).
    pub fn total_spent(&self) -> f64 {
        self.live
            .iter()
            .filter_map(|id| {
                let slot = *self.index.get(id)?;
                self.slots[slot as usize]
            })
            .map(|a| a.spent)
            .sum()
    }
}

/// Canonical form: one row per live entity, ascending by id, with the
/// dense slot layout discarded. Restoring assigns fresh contiguous
/// slots — safe because every observable behaviour (iteration order,
/// retirement order, float summation order) goes through the id index,
/// never the slot vector, and it makes snapshot → restore → snapshot
/// idempotent regardless of how many tombstones the original
/// accumulated.
impl Serialize for CumulativeAccountant {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::Array(
            self.live
                .iter()
                .filter_map(|&id| {
                    let slot = *self.index.get(&id)?;
                    self.slots[slot as usize].map(|a| {
                        serde::Value::Object(vec![
                            ("id".to_string(), id.serialize_value()),
                            ("capacity".to_string(), a.capacity.serialize_value()),
                            ("spent".to_string(), a.spent.serialize_value()),
                            ("reserved".to_string(), a.reserved.serialize_value()),
                        ])
                    })
                })
                .collect(),
        )
    }
}

impl Deserialize for CumulativeAccountant {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let rows = match v {
            serde::Value::Array(rows) => rows,
            other => return Err(serde::Error::expected("accountant row array", other)),
        };
        let mut acc = CumulativeAccountant::new();
        for row in rows {
            let field = |name: &str| {
                row.get(name)
                    .ok_or_else(|| serde::Error(format!("missing accountant field `{name}`")))
            };
            let id = u64::deserialize_value(field("id")?)?;
            let account = Account {
                capacity: f64::deserialize_value(field("capacity")?)?,
                spent: f64::deserialize_value(field("spent")?)?,
                reserved: f64::deserialize_value(field("reserved")?)?,
            };
            if account.capacity <= 0.0 || account.capacity.is_nan() {
                return Err(serde::Error(format!(
                    "accountant entity {id} has non-positive capacity"
                )));
            }
            let slot = acc.slots.len() as u32;
            acc.slots.push(Some(account));
            if acc.index.insert(id, slot).is_some() {
                return Err(serde::Error(format!("duplicate accountant entity {id}")));
            }
            acc.live.push(id);
        }
        // Canonical snapshots are already ascending; tolerate (and
        // normalise) any historical ordering.
        acc.live.sort_unstable();
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_ledger_has_zero_bound() {
        let l = PrivacyLedger::new();
        assert_eq!(l.total_epsilon(), 0.0);
        assert_eq!(l.ldp_bound(2.0), 0.0);
        assert_eq!(l.publications(), 0);
    }

    #[test]
    fn bound_is_radius_times_total() {
        let mut l = PrivacyLedger::new();
        l.record(0, 0.5);
        l.record(0, 0.75);
        l.record(3, 1.0);
        assert!((l.total_epsilon() - 2.25).abs() < 1e-15);
        assert!((l.ldp_bound(1.4) - 2.25 * 1.4).abs() < 1e-12);
        assert!((l.spent_on(0) - 1.25).abs() < 1e-15);
        assert_eq!(l.spent_on(7), 0.0);
        assert_eq!(l.publications(), 3);
        assert_eq!(l.tasks().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    #[should_panic(expected = "privacy budget must be finite")]
    fn rejects_invalid_budget() {
        PrivacyLedger::new().record(0, -1.0);
    }

    #[test]
    #[should_panic(expected = "service radius")]
    fn rejects_negative_radius() {
        let mut l = PrivacyLedger::new();
        l.record(0, 1.0);
        let _ = l.ldp_bound(-0.1);
    }

    #[test]
    fn accountant_tracks_charges_and_retires() {
        let mut acc = CumulativeAccountant::new();
        acc.register(1, 2.0);
        acc.register(2, 1.0);
        acc.register(3, f64::INFINITY);
        acc.charge(1, 0.75);
        acc.charge(1, 0.75);
        acc.charge(2, 1.0);
        acc.charge(3, 1000.0);
        assert!((acc.spent(1) - 1.5).abs() < 1e-12);
        assert!((acc.remaining(1) - 0.5).abs() < 1e-12);
        assert!(!acc.is_exhausted(1));
        assert!(acc.is_exhausted(2));
        assert!(!acc.is_exhausted(3));
        assert_eq!(acc.drain_exhausted(), vec![2]);
        assert_eq!(acc.tracked().collect::<Vec<_>>(), vec![1, 3]);
        assert!((acc.total_spent() - 1001.5).abs() < 1e-9);
        assert!(acc.forget(3));
        assert!(!acc.forget(3));
        // Unknown ids: nothing left to spend.
        assert!(acc.is_exhausted(99));
        assert_eq!(acc.remaining(99), 0.0);
        assert_eq!(acc.spent(99), 0.0);
    }

    #[test]
    fn re_registering_keeps_spend() {
        let mut acc = CumulativeAccountant::new();
        acc.register(5, 1.0);
        acc.charge(5, 0.9);
        acc.register(5, 10.0); // capacity raise must not reset history
        assert!((acc.spent(5) - 0.9).abs() < 1e-12);
        assert!((acc.remaining(5) - 9.1).abs() < 1e-12);
    }

    #[test]
    fn reserve_commit_rollback_round_trip() {
        let mut acc = CumulativeAccountant::new();
        acc.register(4, 3.0);
        acc.charge(4, 1.0);
        acc.reserve(4, 0.5);
        acc.reserve(4, 0.25);
        assert!((acc.reserved(4) - 0.75).abs() < 1e-12);
        // Reservations deplete `remaining` but not `spent`.
        assert!((acc.remaining(4) - 1.25).abs() < 1e-12);
        assert!((acc.spent(4) - 1.0).abs() < 1e-12);
        assert!(!acc.is_exhausted(4));
        // Rollback releases the budget untouched.
        assert!((acc.rollback(4) - 0.75).abs() < 1e-12);
        assert_eq!(acc.reserved(4), 0.0);
        assert!((acc.remaining(4) - 2.0).abs() < 1e-12);
        // Commit converts a reservation into spend exactly once.
        acc.reserve(4, 2.0);
        assert!((acc.commit(4) - 2.0).abs() < 1e-12);
        assert_eq!(acc.commit(4), 0.0); // nothing pending: no-op
        assert!((acc.spent(4) - 3.0).abs() < 1e-12);
        assert!(acc.is_exhausted(4));
        // Unknown ids: rollback is a zero no-op.
        assert_eq!(acc.rollback(99), 0.0);
        assert_eq!(acc.reserved(99), 0.0);
    }

    #[test]
    fn reservations_never_retire() {
        let mut acc = CumulativeAccountant::new();
        acc.register(1, 1.0);
        acc.reserve(1, 5.0);
        assert_eq!(acc.remaining(1), 0.0);
        assert!(!acc.is_exhausted(1), "only committed spend retires");
        assert!(acc.drain_exhausted().is_empty());
        acc.commit(1);
        assert!(acc.is_exhausted(1));
    }

    #[test]
    fn handles_are_dense_aliases_of_ids() {
        let mut acc = CumulativeAccountant::new();
        acc.register(40, 2.0);
        acc.register(41, 3.0);
        let h40 = acc.resolve(40).unwrap();
        let h41 = acc.resolve(41).unwrap();
        assert_ne!(h40, h41);
        assert!(acc.resolve(99).is_none());
        acc.charge_at(h40, 0.5);
        acc.reserve_at(h41, 1.0);
        assert!((acc.spent(40) - 0.5).abs() < 1e-12);
        assert!((acc.spent_at(h40) - 0.5).abs() < 1e-12);
        assert!((acc.remaining_at(h40) - 1.5).abs() < 1e-12);
        assert!((acc.reserved(41) - 1.0).abs() < 1e-12);
        assert!((acc.remaining_at(h41) - 2.0).abs() < 1e-12);
        // Removal tombstones the slot: a later registration can never
        // alias the old handle, and reads degrade to the unknown-id
        // behaviour.
        acc.forget(40);
        assert!(acc.resolve(40).is_none());
        assert_eq!(acc.spent_at(h40), 0.0);
        assert_eq!(acc.remaining_at(h40), 0.0);
        acc.register(40, 5.0); // fresh slot
        let h40b = acc.resolve(40).unwrap();
        assert_ne!(h40, h40b);
        assert_eq!(acc.spent_at(h40), 0.0, "old handle stays dead");
    }

    #[test]
    #[should_panic(expected = "stale account handle")]
    fn charging_a_stale_handle_panics() {
        let mut acc = CumulativeAccountant::new();
        acc.register(1, 1.0);
        let h = acc.resolve(1).unwrap();
        acc.forget(1);
        acc.charge_at(h, 0.1);
    }

    #[test]
    fn drained_entities_release_their_handles() {
        let mut acc = CumulativeAccountant::new();
        acc.register(8, 1.0);
        acc.register(9, 1.0);
        let h8 = acc.resolve(8).unwrap();
        acc.charge_at(h8, 1.0);
        assert_eq!(acc.drain_exhausted(), vec![8]);
        assert!(acc.resolve(8).is_none());
        assert_eq!(acc.remaining_at(h8), 0.0);
        assert_eq!(acc.tracked().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    #[should_panic(expected = "never registered")]
    fn reserving_unknown_id_panics() {
        CumulativeAccountant::new().reserve(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "never registered")]
    fn charging_unknown_id_panics() {
        CumulativeAccountant::new().charge(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        CumulativeAccountant::new().register(0, 0.0);
    }

    #[test]
    fn accountant_round_trips_canonically() {
        let mut acc = CumulativeAccountant::new();
        acc.register(7, f64::INFINITY);
        acc.register(2, 1.5);
        acc.register(9, 4.0);
        acc.charge(2, 0.5);
        acc.reserve(9, 1.25); // outstanding reservation must survive
        acc.forget(7); // leaves a slot tombstone
        let back =
            CumulativeAccountant::deserialize_value(&acc.serialize_value()).expect("round trip");
        assert_eq!(back.tracked().collect::<Vec<_>>(), vec![2, 9]);
        assert_eq!(back.spent(2), acc.spent(2));
        assert_eq!(back.reserved(9), acc.reserved(9));
        assert_eq!(back.remaining(9), acc.remaining(9));
        // Canonical: a second round trip is value-identical.
        assert_eq!(back.serialize_value(), acc.serialize_value());
        // Infinite capacities survive exactly.
        let mut inf = CumulativeAccountant::new();
        inf.register(1, f64::INFINITY);
        let back = CumulativeAccountant::deserialize_value(&inf.serialize_value()).unwrap();
        assert_eq!(back.remaining(1), f64::INFINITY);
    }

    #[test]
    fn accountant_rejects_malformed_rows() {
        use serde::Value;
        let dup = Value::Array(vec![
            Value::Object(vec![
                ("id".into(), Value::Number(1.0)),
                ("capacity".into(), Value::Number(1.0)),
                ("spent".into(), Value::Number(0.0)),
                ("reserved".into(), Value::Number(0.0)),
            ]);
            2
        ]);
        assert!(CumulativeAccountant::deserialize_value(&dup).is_err());
        let bad_cap = Value::Array(vec![Value::Object(vec![
            ("id".into(), Value::Number(1.0)),
            ("capacity".into(), Value::Number(0.0)),
            ("spent".into(), Value::Number(0.0)),
            ("reserved".into(), Value::Number(0.0)),
        ])]);
        assert!(CumulativeAccountant::deserialize_value(&bad_cap).is_err());
    }

    proptest! {
        #[test]
        fn accountant_total_matches_per_entity(
            charges in proptest::collection::vec((0u64..6, 0.0f64..2.0), 0..40)
        ) {
            let mut acc = CumulativeAccountant::new();
            for id in 0..6 {
                acc.register(id, f64::INFINITY);
            }
            for &(id, e) in &charges {
                acc.charge(id, e);
            }
            let direct: f64 = charges.iter().map(|&(_, e)| e).sum();
            prop_assert!((acc.total_spent() - direct).abs() < 1e-9);
            let by_id: f64 = (0..6).map(|id| acc.spent(id)).sum();
            prop_assert!((by_id - direct).abs() < 1e-9);
        }

        #[test]
        fn total_is_sum_of_per_task(
            records in proptest::collection::vec((0u32..8, 0.05f64..3.0), 0..40)
        ) {
            let mut l = PrivacyLedger::new();
            for &(t, e) in &records {
                l.record(t, e);
            }
            let direct: f64 = records.iter().map(|&(_, e)| e).sum();
            prop_assert!((l.total_epsilon() - direct).abs() < 1e-9);
            let by_task: f64 = (0..8).map(|t| l.spent_on(t)).sum();
            prop_assert!((by_task - direct).abs() < 1e-9);
        }
    }
}
