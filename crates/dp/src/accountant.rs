//! Per-worker privacy accounting (Theorems V.2 and VI.4).
//!
//! The paper proves PUCE and PGT each satisfy
//! `(Σ_{t_i ∈ R_j} b_{i,j}·ε_{i,j}·r_j)`-local differential privacy for
//! every worker `w_j`: each published obfuscated distance `d̂` with
//! budget `ε` contributes `ε · r_j`, because two neighbouring worker
//! locations inside the service area change any task distance by at most
//! `r_j`. The ledger simply tracks every publication and evaluates that
//! bound, so tests and examples can assert the theorem against the
//! actual protocol trace.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Ledger of one worker's published privacy budgets, keyed by task.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PrivacyLedger {
    per_task: BTreeMap<u32, Vec<f64>>,
}

impl PrivacyLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one publication toward `task` with budget `epsilon`.
    pub fn record(&mut self, task: u32, epsilon: f64) {
        crate::validate_epsilon(epsilon);
        self.per_task.entry(task).or_default().push(epsilon);
    }

    /// Number of publications recorded in total.
    pub fn publications(&self) -> usize {
        self.per_task.values().map(Vec::len).sum()
    }

    /// Total published budget toward one task: `b_{i,j} · ε_{i,j}`.
    pub fn spent_on(&self, task: u32) -> f64 {
        self.per_task.get(&task).map_or(0.0, |v| v.iter().sum())
    }

    /// Total published budget across all tasks: `Σ_i b_{i,j}·ε_{i,j}`.
    pub fn total_epsilon(&self) -> f64 {
        self.per_task.values().flatten().sum()
    }

    /// The local-DP level of Theorems V.2 / VI.4 for a worker with
    /// service radius `radius`: `Σ_{t_i∈R_j} b_{i,j}·ε_{i,j}·r_j`.
    pub fn ldp_bound(&self, radius: f64) -> f64 {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "service radius must be finite and >= 0, got {radius}"
        );
        self.total_epsilon() * radius
    }

    /// Tasks with at least one publication, ascending.
    pub fn tasks(&self) -> impl Iterator<Item = u32> + '_ {
        self.per_task.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_ledger_has_zero_bound() {
        let l = PrivacyLedger::new();
        assert_eq!(l.total_epsilon(), 0.0);
        assert_eq!(l.ldp_bound(2.0), 0.0);
        assert_eq!(l.publications(), 0);
    }

    #[test]
    fn bound_is_radius_times_total() {
        let mut l = PrivacyLedger::new();
        l.record(0, 0.5);
        l.record(0, 0.75);
        l.record(3, 1.0);
        assert!((l.total_epsilon() - 2.25).abs() < 1e-15);
        assert!((l.ldp_bound(1.4) - 2.25 * 1.4).abs() < 1e-12);
        assert!((l.spent_on(0) - 1.25).abs() < 1e-15);
        assert_eq!(l.spent_on(7), 0.0);
        assert_eq!(l.publications(), 3);
        assert_eq!(l.tasks().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    #[should_panic(expected = "privacy budget must be finite")]
    fn rejects_invalid_budget() {
        PrivacyLedger::new().record(0, -1.0);
    }

    #[test]
    #[should_panic(expected = "service radius")]
    fn rejects_negative_radius() {
        let mut l = PrivacyLedger::new();
        l.record(0, 1.0);
        let _ = l.ldp_bound(-0.1);
    }

    proptest! {
        #[test]
        fn total_is_sum_of_per_task(
            records in proptest::collection::vec((0u32..8, 0.05f64..3.0), 0..40)
        ) {
            let mut l = PrivacyLedger::new();
            for &(t, e) in &records {
                l.record(t, e);
            }
            let direct: f64 = records.iter().map(|&(_, e)| e).sum();
            prop_assert!((l.total_epsilon() - direct).abs() < 1e-9);
            let by_task: f64 = (0..8).map(|t| l.spent_on(t)).sum();
            prop_assert!((by_task - direct).abs() < 1e-9);
        }
    }
}
