//! The budget-ledger abstraction: lifetime vs sliding-window privacy
//! accounting behind one trait.
//!
//! The paper's model is *lifetime* depletion: every publication burns a
//! worker's ε forever and an exhausted worker retires ([Theorems V.2 /
//! VI.4], tracked by [`CumulativeAccountant`]). That is correct over
//! the paper's finite horizon but wrong for a service that runs for
//! months: under the continual-observation / sliding-window model of
//! *Differential Privacy on Dynamic Data* (Qiu & Yi, arXiv:2209.01387)
//! the adversary is only promised indistinguishability over any span of
//! length `W`, so spend older than the protection window stops counting
//! against the worker and his budget *renews*.
//!
//! [`BudgetLedger`] is the object-safe surface both accountants share —
//! the streaming pipeline's budget guards, single-charge dedup, and
//! snapshot machinery are written against it. [`WindowedAccountant`]
//! implements the sliding-window policy as a time-stamped charge
//! ledger; with `W = ∞` it performs *bit-for-bit* the same arithmetic
//! as [`CumulativeAccountant`] (no entries are ever recorded, the spend
//! accumulator is the only state — pinned by proptests here and at the
//! stream level). [`LedgerState`] is the serializable sum of the two,
//! the concrete storage the stream session embeds and snapshots.
//!
//! # The reclamation rule
//!
//! Charges are stamped with the ledger's current time (the enclosing
//! window's start, in the stream pipeline). [`advance_time`] to `now`
//! drops every entry stamped `t ≤ now − W` and recomputes the spend
//! accumulator as a fresh left-to-right sum over the survivors. Two
//! consequences, both load-bearing:
//!
//! * **Spend inside any `W`-span never exceeds capacity.** The budget
//!   guard reads `remaining = capacity − spent − reserved` where
//!   `spent` is exactly the in-window spend, so a guard-respecting
//!   caller can never push any window of length `W` past `capacity`.
//! * **Reclamation is exactly monotone.** IEEE round-to-nearest
//!   addition is monotone in the accumulator, so summing a suffix of
//!   the entry list can never exceed summing the whole list: shrinking
//!   `W` never *decreases* remaining budget, with no tolerance needed.
//!
//! [`advance_time`]: BudgetLedger::advance_time

use crate::accountant::{AccountId, CumulativeAccountant};
use crate::intern::FastMap;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The accounting surface shared by lifetime and sliding-window budget
/// ledgers.
///
/// Mirrors [`CumulativeAccountant`]'s method set — registration, the
/// two-phase reserve/commit/rollback protocol, dense [`AccountId`]
/// handles for hot per-proposal paths, retirement draining — plus the
/// two knobs that distinguish the policies:
/// [`advance_time`](Self::advance_time) (a no-op for lifetime
/// accounting) and [`renewable`](Self::renewable) (whether exhausted
/// entities may come back, i.e. whether retiring them is wrong).
///
/// The trait is object-safe: the streaming halo coordinator passes
/// `&dyn BudgetLedger` as its remaining-budget guard source.
pub trait BudgetLedger {
    /// Starts tracking `id` with the given budget capacity.
    /// Re-registering keeps spend and adjusts only the capacity.
    fn register(&mut self, id: u64, capacity: f64);
    /// The dense handle for `id`, if currently tracked.
    fn resolve(&self, id: u64) -> Option<AccountId>;
    /// Charges `epsilon` (≥ 0) against `id`. Panics if unregistered.
    fn charge(&mut self, id: u64, epsilon: f64);
    /// Handle counterpart of [`charge`](Self::charge).
    fn charge_at(&mut self, at: AccountId, epsilon: f64);
    /// Reserves `epsilon` (≥ 0) without committing it.
    fn reserve(&mut self, id: u64, epsilon: f64);
    /// Handle counterpart of [`reserve`](Self::reserve).
    fn reserve_at(&mut self, at: AccountId, epsilon: f64);
    /// Budget reserved against `id` and awaiting commit.
    fn reserved(&self, id: u64) -> f64;
    /// Converts `id`'s pending reservation into spend; returns it.
    fn commit(&mut self, id: u64) -> f64;
    /// Discards `id`'s pending reservation; returns it.
    fn rollback(&mut self, id: u64) -> f64;
    /// Committed spend of `id` (zero for unknown ids). For a windowed
    /// ledger this is the spend *inside the current protection window*.
    fn spent(&self, id: u64) -> f64;
    /// Handle counterpart of [`spent`](Self::spent).
    fn spent_at(&self, at: AccountId) -> f64;
    /// Remaining budget of `id`, net of reservations, clamped at zero.
    fn remaining(&self, id: u64) -> f64;
    /// Handle counterpart of [`remaining`](Self::remaining).
    fn remaining_at(&self, at: AccountId) -> f64;
    /// Whether `id`'s committed spend has reached capacity.
    fn is_exhausted(&self, id: u64) -> bool;
    /// Removes and returns every exhausted entity, ascending by id.
    fn drain_exhausted(&mut self) -> Vec<u64>;
    /// Stops tracking `id`; returns whether it was tracked.
    fn forget(&mut self, id: u64) -> bool;
    /// Ids still tracked, ascending.
    fn tracked_ids(&self) -> Vec<u64>;
    /// Total spend across tracked entities, summed ascending by id.
    fn total_spent(&self) -> f64;
    /// Advances the ledger clock to `now`, reclaiming any spend that
    /// has aged out of the protection window. A no-op for lifetime
    /// accounting.
    fn advance_time(&mut self, now: f64) {
        let _ = now;
    }
    /// Whether reclaimed budget can return to exhausted entities — if
    /// `true`, retiring an exhausted entity forever is wrong and the
    /// caller should let it idle instead.
    fn renewable(&self) -> bool {
        false
    }
}

impl BudgetLedger for CumulativeAccountant {
    fn register(&mut self, id: u64, capacity: f64) {
        CumulativeAccountant::register(self, id, capacity);
    }
    fn resolve(&self, id: u64) -> Option<AccountId> {
        CumulativeAccountant::resolve(self, id)
    }
    fn charge(&mut self, id: u64, epsilon: f64) {
        CumulativeAccountant::charge(self, id, epsilon);
    }
    fn charge_at(&mut self, at: AccountId, epsilon: f64) {
        CumulativeAccountant::charge_at(self, at, epsilon);
    }
    fn reserve(&mut self, id: u64, epsilon: f64) {
        CumulativeAccountant::reserve(self, id, epsilon);
    }
    fn reserve_at(&mut self, at: AccountId, epsilon: f64) {
        CumulativeAccountant::reserve_at(self, at, epsilon);
    }
    fn reserved(&self, id: u64) -> f64 {
        CumulativeAccountant::reserved(self, id)
    }
    fn commit(&mut self, id: u64) -> f64 {
        CumulativeAccountant::commit(self, id)
    }
    fn rollback(&mut self, id: u64) -> f64 {
        CumulativeAccountant::rollback(self, id)
    }
    fn spent(&self, id: u64) -> f64 {
        CumulativeAccountant::spent(self, id)
    }
    fn spent_at(&self, at: AccountId) -> f64 {
        CumulativeAccountant::spent_at(self, at)
    }
    fn remaining(&self, id: u64) -> f64 {
        CumulativeAccountant::remaining(self, id)
    }
    fn remaining_at(&self, at: AccountId) -> f64 {
        CumulativeAccountant::remaining_at(self, at)
    }
    fn is_exhausted(&self, id: u64) -> bool {
        CumulativeAccountant::is_exhausted(self, id)
    }
    fn drain_exhausted(&mut self) -> Vec<u64> {
        CumulativeAccountant::drain_exhausted(self)
    }
    fn forget(&mut self, id: u64) -> bool {
        CumulativeAccountant::forget(self, id)
    }
    fn tracked_ids(&self) -> Vec<u64> {
        self.tracked().collect()
    }
    fn total_spent(&self) -> f64 {
        CumulativeAccountant::total_spent(self)
    }
}

/// One tracked entity of a [`WindowedAccountant`]: capacity, the spend
/// accumulator (over in-window entries), pending reservation, and the
/// time-stamped charge ledger itself, stamps ascending.
#[derive(Debug, Clone, PartialEq)]
struct WindowedAccount {
    capacity: f64,
    spent: f64,
    reserved: f64,
    entries: VecDeque<(f64, f64)>,
}

/// Sliding-window budget accounting: spend older than the protection
/// window `W` is reclaimed, making entities renewable resources.
///
/// Shares [`CumulativeAccountant`]'s interned fast-map layout (logical
/// id → dense slot, tombstoned on removal, id-sorted live list for
/// every observable iteration) and its exact two-phase
/// reserve/commit/rollback semantics. On top, every committed charge is
/// stamped with the ledger clock, and
/// [`advance_time`](BudgetLedger::advance_time) drops entries that have
/// aged out, recomputing the spend accumulator as a fresh left-to-right
/// sum over the survivors.
///
/// With `window = ∞` no entry is ever recorded and no reclamation ever
/// runs: the arithmetic performed is bit-for-bit the
/// [`CumulativeAccountant`]'s (proptest-pinned, here and at the stream
/// level).
///
/// # Examples
///
/// ```
/// use dpta_dp::{BudgetLedger, WindowedAccountant};
///
/// let mut acc = WindowedAccountant::new(600.0); // W = 600 s
/// acc.register(7, 1.0);
/// acc.advance_time(0.0);
/// acc.charge(7, 1.0);
/// assert!(acc.is_exhausted(7));
/// // 600 s later the charge ages out and the budget renews.
/// acc.advance_time(600.0);
/// assert!(!acc.is_exhausted(7));
/// assert_eq!(acc.remaining(7), 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WindowedAccountant {
    index: FastMap<u64, u32>,
    slots: Vec<Option<WindowedAccount>>,
    live: Vec<u64>,
    /// Protection window length `W`; `f64::INFINITY` disables
    /// reclamation entirely (lifetime semantics).
    window: f64,
    /// The ledger clock: charges are stamped with it, reclamation
    /// measures age against it.
    now: f64,
}

impl WindowedAccountant {
    /// Creates a windowed accountant with protection window `window`
    /// (seconds of stream time; `f64::INFINITY` for lifetime
    /// semantics). Panics on a non-positive or NaN window.
    pub fn new(window: f64) -> Self {
        assert!(
            window > 0.0 && !window.is_nan(),
            "protection window must be positive, got {window}"
        );
        WindowedAccountant {
            index: FastMap::default(),
            slots: Vec::new(),
            live: Vec::new(),
            window,
            now: f64::NEG_INFINITY,
        }
    }

    /// The protection window length `W`.
    pub fn window(&self) -> f64 {
        self.window
    }

    /// The ledger clock (the last `advance_time` value;
    /// `-∞` before the first advance).
    pub fn now(&self) -> f64 {
        self.now
    }

    fn get(&self, id: u64) -> Option<&WindowedAccount> {
        let slot = *self.index.get(&id)?;
        self.slots[slot as usize].as_ref()
    }

    fn get_mut(&mut self, id: u64) -> Option<&mut WindowedAccount> {
        let slot = *self.index.get(&id)?;
        self.slots[slot as usize].as_mut()
    }

    /// Stamps a committed amount into the charge ledger. Zero amounts
    /// are skipped (they cannot change any future recomputed sum) and
    /// an infinite window records nothing at all — the spend
    /// accumulator is the only state, exactly as in
    /// [`CumulativeAccountant`].
    fn stamp(window: f64, now: f64, account: &mut WindowedAccount, amount: f64) {
        if window.is_finite() && amount > 0.0 {
            account.entries.push_back((now, amount));
        }
    }
}

impl BudgetLedger for WindowedAccountant {
    fn register(&mut self, id: u64, capacity: f64) {
        assert!(
            capacity > 0.0 && !capacity.is_nan(),
            "capacity must be positive, got {capacity}"
        );
        match self.get_mut(id) {
            Some(a) => a.capacity = capacity,
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Some(WindowedAccount {
                    capacity,
                    spent: 0.0,
                    reserved: 0.0,
                    entries: VecDeque::new(),
                }));
                self.index.insert(id, slot);
                match self.live.last() {
                    Some(&last) if last >= id => {
                        let at = self.live.partition_point(|&x| x < id);
                        self.live.insert(at, id);
                    }
                    _ => self.live.push(id),
                }
            }
        }
    }

    fn resolve(&self, id: u64) -> Option<AccountId> {
        let slot = *self.index.get(&id)?;
        self.slots[slot as usize]
            .as_ref()
            .map(|_| AccountId::from_slot(slot))
    }

    fn charge(&mut self, id: u64, epsilon: f64) {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "charge must be finite and >= 0, got {epsilon}"
        );
        let (window, now) = (self.window, self.now);
        let a = self
            .get_mut(id)
            .unwrap_or_else(|| panic!("entity {id} was never registered"));
        a.spent += epsilon;
        Self::stamp(window, now, a, epsilon);
    }

    fn charge_at(&mut self, at: AccountId, epsilon: f64) {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "charge must be finite and >= 0, got {epsilon}"
        );
        let (window, now) = (self.window, self.now);
        let a = self.slots[at.slot() as usize]
            .as_mut()
            .expect("stale account handle");
        a.spent += epsilon;
        Self::stamp(window, now, a, epsilon);
    }

    fn reserve(&mut self, id: u64, epsilon: f64) {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "reservation must be finite and >= 0, got {epsilon}"
        );
        self.get_mut(id)
            .unwrap_or_else(|| panic!("entity {id} was never registered"))
            .reserved += epsilon;
    }

    fn reserve_at(&mut self, at: AccountId, epsilon: f64) {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "reservation must be finite and >= 0, got {epsilon}"
        );
        self.slots[at.slot() as usize]
            .as_mut()
            .expect("stale account handle")
            .reserved += epsilon;
    }

    fn reserved(&self, id: u64) -> f64 {
        self.get(id).map_or(0.0, |a| a.reserved)
    }

    fn commit(&mut self, id: u64) -> f64 {
        let (window, now) = (self.window, self.now);
        let a = self
            .get_mut(id)
            .unwrap_or_else(|| panic!("entity {id} was never registered"));
        let amount = a.reserved;
        a.spent += amount;
        a.reserved = 0.0;
        Self::stamp(window, now, a, amount);
        amount
    }

    fn rollback(&mut self, id: u64) -> f64 {
        self.get_mut(id).map_or(0.0, |a| {
            let amount = a.reserved;
            a.reserved = 0.0;
            amount
        })
    }

    fn spent(&self, id: u64) -> f64 {
        self.get(id).map_or(0.0, |a| a.spent)
    }

    fn spent_at(&self, at: AccountId) -> f64 {
        self.slots[at.slot() as usize]
            .as_ref()
            .map_or(0.0, |a| a.spent)
    }

    fn remaining(&self, id: u64) -> f64 {
        self.get(id)
            .map_or(0.0, |a| (a.capacity - a.spent - a.reserved).max(0.0))
    }

    fn remaining_at(&self, at: AccountId) -> f64 {
        self.slots[at.slot() as usize]
            .as_ref()
            .map_or(0.0, |a| (a.capacity - a.spent - a.reserved).max(0.0))
    }

    fn is_exhausted(&self, id: u64) -> bool {
        self.get(id).is_none_or(|a| {
            // Tolerance mirrors the ledger-vs-board float comparisons.
            a.spent >= a.capacity - 1e-12
        })
    }

    fn drain_exhausted(&mut self) -> Vec<u64> {
        let mut gone = Vec::new();
        let (index, slots) = (&mut self.index, &mut self.slots);
        self.live.retain(|&id| {
            let slot = *index.get(&id).expect("live id is indexed");
            let exhausted = slots[slot as usize]
                .as_ref()
                .is_some_and(|a| a.spent >= a.capacity - 1e-12);
            if exhausted {
                index.remove(&id);
                slots[slot as usize] = None;
                gone.push(id);
            }
            !exhausted
        });
        gone
    }

    fn forget(&mut self, id: u64) -> bool {
        match self.index.remove(&id) {
            Some(slot) => {
                self.slots[slot as usize] = None;
                let at = self.live.partition_point(|&x| x < id);
                debug_assert_eq!(self.live.get(at), Some(&id));
                self.live.remove(at);
                true
            }
            None => false,
        }
    }

    fn tracked_ids(&self) -> Vec<u64> {
        self.live.clone()
    }

    fn total_spent(&self) -> f64 {
        self.live
            .iter()
            .filter_map(|id| {
                let slot = *self.index.get(id)?;
                self.slots[slot as usize].as_ref()
            })
            .map(|a| a.spent)
            .sum()
    }

    fn advance_time(&mut self, now: f64) {
        assert!(!now.is_nan(), "ledger clock must not be NaN");
        self.now = now;
        if !self.window.is_finite() {
            return;
        }
        let cutoff = now - self.window;
        for slot in &mut self.slots {
            let Some(a) = slot.as_mut() else { continue };
            let mut reclaimed = false;
            while a.entries.front().is_some_and(|&(t, _)| t <= cutoff) {
                a.entries.pop_front();
                reclaimed = true;
            }
            if reclaimed {
                // A fresh left-to-right sum over the survivors: exactly
                // the accumulator a run that never saw the reclaimed
                // prefix would hold, and — because IEEE
                // round-to-nearest addition is monotone in the
                // accumulator — never more than the pre-reclamation
                // spend.
                a.spent = a.entries.iter().map(|&(_, e)| e).sum();
            }
        }
    }

    fn renewable(&self) -> bool {
        self.window.is_finite()
    }
}

/// Canonical form: the window and clock, then one row per live entity
/// ascending by id, each carrying its time-stamped charge ledger. The
/// dense slot layout is discarded; restoring assigns fresh contiguous
/// slots (see [`CumulativeAccountant`]'s serde notes — the same
/// argument applies).
impl Serialize for WindowedAccountant {
    fn serialize_value(&self) -> serde::Value {
        let accounts = self
            .live
            .iter()
            .filter_map(|&id| {
                let slot = *self.index.get(&id)?;
                self.slots[slot as usize].as_ref().map(|a| {
                    serde::Value::Object(vec![
                        ("id".to_string(), id.serialize_value()),
                        ("capacity".to_string(), a.capacity.serialize_value()),
                        ("spent".to_string(), a.spent.serialize_value()),
                        ("reserved".to_string(), a.reserved.serialize_value()),
                        (
                            "entries".to_string(),
                            serde::Value::Array(
                                a.entries
                                    .iter()
                                    .map(|&(t, e)| {
                                        serde::Value::Object(vec![
                                            ("t".to_string(), t.serialize_value()),
                                            ("eps".to_string(), e.serialize_value()),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
            })
            .collect();
        serde::Value::Object(vec![
            ("window".to_string(), self.window.serialize_value()),
            ("now".to_string(), self.now.serialize_value()),
            ("accounts".to_string(), serde::Value::Array(accounts)),
        ])
    }
}

impl Deserialize for WindowedAccountant {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error(format!("missing windowed-ledger field `{name}`")))
        };
        let window = f64::deserialize_value(field("window")?)?;
        if window.is_nan() || window <= 0.0 {
            return Err(serde::Error(format!(
                "windowed ledger has non-positive window {window}"
            )));
        }
        let now = f64::deserialize_value(field("now")?)?;
        if now.is_nan() {
            return Err(serde::Error("windowed ledger clock is NaN".to_string()));
        }
        let rows = match field("accounts")? {
            serde::Value::Array(rows) => rows,
            other => return Err(serde::Error::expected("windowed account row array", other)),
        };
        let mut acc = WindowedAccountant::new(window);
        acc.now = now;
        for row in rows {
            let field = |name: &str| {
                row.get(name)
                    .ok_or_else(|| serde::Error(format!("missing windowed account field `{name}`")))
            };
            let id = u64::deserialize_value(field("id")?)?;
            let capacity = f64::deserialize_value(field("capacity")?)?;
            if capacity <= 0.0 || capacity.is_nan() {
                return Err(serde::Error(format!(
                    "windowed account {id} has non-positive capacity"
                )));
            }
            let entries = match field("entries")? {
                serde::Value::Array(entries) => entries
                    .iter()
                    .map(|entry| {
                        let field = |name: &str| {
                            entry.get(name).ok_or_else(|| {
                                serde::Error(format!("missing charge-entry field `{name}`"))
                            })
                        };
                        Ok((
                            f64::deserialize_value(field("t")?)?,
                            f64::deserialize_value(field("eps")?)?,
                        ))
                    })
                    .collect::<Result<VecDeque<_>, serde::Error>>()?,
                other => return Err(serde::Error::expected("charge-entry array", other)),
            };
            let account = WindowedAccount {
                capacity,
                spent: f64::deserialize_value(field("spent")?)?,
                reserved: f64::deserialize_value(field("reserved")?)?,
                entries,
            };
            let slot = acc.slots.len() as u32;
            acc.slots.push(Some(account));
            if acc.index.insert(id, slot).is_some() {
                return Err(serde::Error(format!("duplicate windowed account {id}")));
            }
            acc.live.push(id);
        }
        acc.live.sort_unstable();
        Ok(acc)
    }
}

/// The serializable sum of the two accounting policies — the concrete
/// ledger storage the stream session embeds, clones, and snapshots.
///
/// Dispatch goes through [`BudgetLedger`] (also implemented here, by
/// delegation), so pipeline code is written once against the trait and
/// the policy is a pure configuration choice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum LedgerState {
    /// Lifetime depletion — the paper's model, a
    /// [`CumulativeAccountant`].
    Lifetime {
        /// The wrapped lifetime accountant.
        accountant: CumulativeAccountant,
    },
    /// Sliding-window accounting — spend older than the protection
    /// window is reclaimed, a [`WindowedAccountant`].
    Windowed {
        /// The wrapped sliding-window accountant.
        accountant: WindowedAccountant,
    },
}

impl LedgerState {
    /// An empty lifetime ledger.
    pub fn lifetime() -> Self {
        LedgerState::Lifetime {
            accountant: CumulativeAccountant::new(),
        }
    }

    /// An empty sliding-window ledger with protection window `window`
    /// (may be `f64::INFINITY`, which is bit-identical to
    /// [`lifetime`](Self::lifetime) accounting).
    pub fn windowed(window: f64) -> Self {
        LedgerState::Windowed {
            accountant: WindowedAccountant::new(window),
        }
    }

    /// The ledger as a trait object (read side).
    pub fn as_ledger(&self) -> &dyn BudgetLedger {
        match self {
            LedgerState::Lifetime { accountant } => accountant,
            LedgerState::Windowed { accountant } => accountant,
        }
    }

    /// The ledger as a trait object (write side).
    pub fn as_ledger_mut(&mut self) -> &mut dyn BudgetLedger {
        match self {
            LedgerState::Lifetime { accountant } => accountant,
            LedgerState::Windowed { accountant } => accountant,
        }
    }
}

impl BudgetLedger for LedgerState {
    fn register(&mut self, id: u64, capacity: f64) {
        self.as_ledger_mut().register(id, capacity);
    }
    fn resolve(&self, id: u64) -> Option<AccountId> {
        self.as_ledger().resolve(id)
    }
    fn charge(&mut self, id: u64, epsilon: f64) {
        self.as_ledger_mut().charge(id, epsilon);
    }
    fn charge_at(&mut self, at: AccountId, epsilon: f64) {
        self.as_ledger_mut().charge_at(at, epsilon);
    }
    fn reserve(&mut self, id: u64, epsilon: f64) {
        self.as_ledger_mut().reserve(id, epsilon);
    }
    fn reserve_at(&mut self, at: AccountId, epsilon: f64) {
        self.as_ledger_mut().reserve_at(at, epsilon);
    }
    fn reserved(&self, id: u64) -> f64 {
        self.as_ledger().reserved(id)
    }
    fn commit(&mut self, id: u64) -> f64 {
        self.as_ledger_mut().commit(id)
    }
    fn rollback(&mut self, id: u64) -> f64 {
        self.as_ledger_mut().rollback(id)
    }
    fn spent(&self, id: u64) -> f64 {
        self.as_ledger().spent(id)
    }
    fn spent_at(&self, at: AccountId) -> f64 {
        self.as_ledger().spent_at(at)
    }
    fn remaining(&self, id: u64) -> f64 {
        self.as_ledger().remaining(id)
    }
    fn remaining_at(&self, at: AccountId) -> f64 {
        self.as_ledger().remaining_at(at)
    }
    fn is_exhausted(&self, id: u64) -> bool {
        self.as_ledger().is_exhausted(id)
    }
    fn drain_exhausted(&mut self) -> Vec<u64> {
        self.as_ledger_mut().drain_exhausted()
    }
    fn forget(&mut self, id: u64) -> bool {
        self.as_ledger_mut().forget(id)
    }
    fn tracked_ids(&self) -> Vec<u64> {
        self.as_ledger().tracked_ids()
    }
    fn total_spent(&self) -> f64 {
        self.as_ledger().total_spent()
    }
    fn advance_time(&mut self, now: f64) {
        self.as_ledger_mut().advance_time(now);
    }
    fn renewable(&self) -> bool {
        self.as_ledger().renewable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn windowed_reclaims_aged_spend() {
        let mut acc = WindowedAccountant::new(100.0);
        acc.register(1, 2.0);
        acc.advance_time(0.0);
        acc.charge(1, 1.5);
        assert!((acc.remaining(1) - 0.5).abs() < 1e-12);
        acc.advance_time(50.0);
        acc.charge(1, 0.5);
        assert!(acc.is_exhausted(1));
        // t=0 charge ages out at t=100; the t=50 one survives.
        acc.advance_time(100.0);
        assert!(!acc.is_exhausted(1));
        assert_eq!(acc.spent(1), 0.5);
        assert_eq!(acc.remaining(1), 1.5);
        // Everything reclaimed at t=150.
        acc.advance_time(150.0);
        assert_eq!(acc.spent(1), 0.0);
        assert_eq!(acc.remaining(1), 2.0);
    }

    #[test]
    fn windowed_two_phase_round_trip() {
        let mut acc = WindowedAccountant::new(100.0);
        acc.register(4, 3.0);
        acc.advance_time(0.0);
        acc.charge(4, 1.0);
        acc.reserve(4, 0.5);
        acc.reserve(4, 0.25);
        assert!((acc.reserved(4) - 0.75).abs() < 1e-12);
        assert!((acc.remaining(4) - 1.25).abs() < 1e-12);
        assert!((acc.spent(4) - 1.0).abs() < 1e-12);
        assert!((acc.rollback(4) - 0.75).abs() < 1e-12);
        assert_eq!(acc.reserved(4), 0.0);
        acc.reserve(4, 2.0);
        assert!((acc.commit(4) - 2.0).abs() < 1e-12);
        assert_eq!(acc.commit(4), 0.0);
        assert!(acc.is_exhausted(4));
        // The committed reservation is stamped and reclaims like a
        // direct charge.
        acc.advance_time(200.0);
        assert!(!acc.is_exhausted(4));
        assert_eq!(acc.spent(4), 0.0);
    }

    #[test]
    fn windowed_retirement_and_handles_match_lifetime_semantics() {
        let mut acc = WindowedAccountant::new(f64::INFINITY);
        acc.register(8, 1.0);
        acc.register(9, 1.0);
        let h8 = acc.resolve(8).unwrap();
        acc.charge_at(h8, 1.0);
        assert_eq!(acc.drain_exhausted(), vec![8]);
        assert!(acc.resolve(8).is_none());
        assert_eq!(acc.remaining_at(h8), 0.0);
        assert_eq!(acc.tracked_ids(), vec![9]);
        assert!(acc.forget(9));
        assert!(!acc.forget(9));
    }

    #[test]
    #[should_panic(expected = "never registered")]
    fn windowed_charging_unknown_id_panics() {
        WindowedAccountant::new(10.0).charge(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "protection window must be positive")]
    fn zero_window_panics() {
        let _ = WindowedAccountant::new(0.0);
    }

    #[test]
    fn windowed_round_trips_canonically() {
        let mut acc = WindowedAccountant::new(300.0);
        acc.register(7, f64::INFINITY);
        acc.register(2, 1.5);
        acc.register(9, 4.0);
        acc.advance_time(10.0);
        acc.charge(2, 0.5);
        acc.advance_time(20.0);
        acc.charge(2, 0.25);
        acc.reserve(9, 1.25);
        acc.forget(7);
        let back =
            WindowedAccountant::deserialize_value(&acc.serialize_value()).expect("round trip");
        assert_eq!(back.tracked_ids(), vec![2, 9]);
        assert_eq!(back.window(), 300.0);
        assert_eq!(back.now(), 20.0);
        assert_eq!(back.spent(2), acc.spent(2));
        assert_eq!(back.reserved(9), acc.reserved(9));
        assert_eq!(back.serialize_value(), acc.serialize_value());
        // And restored ledgers keep reclaiming correctly.
        let mut back = back;
        back.advance_time(311.0);
        assert_eq!(back.spent(2), 0.25, "only the t=10 entry ages out");
        // An infinite window survives the trip exactly.
        let inf = WindowedAccountant::new(f64::INFINITY);
        let back = WindowedAccountant::deserialize_value(&inf.serialize_value()).unwrap();
        assert_eq!(back.window(), f64::INFINITY);
    }

    #[test]
    fn windowed_rejects_malformed_rows() {
        use serde::Value;
        let mut acc = WindowedAccountant::new(10.0);
        acc.register(1, 1.0);
        let good = acc.serialize_value();
        // Duplicate ids.
        let mut dup = good.clone();
        if let Value::Object(fields) = &mut dup {
            for (k, v) in fields.iter_mut() {
                if k == "accounts" {
                    if let Value::Array(rows) = v {
                        let row = rows[0].clone();
                        rows.push(row);
                    }
                }
            }
        }
        assert!(WindowedAccountant::deserialize_value(&dup).is_err());
        // Bad window.
        let bad = Value::Object(vec![
            ("window".into(), Value::Number(0.0)),
            ("now".into(), Value::Number(0.0)),
            ("accounts".into(), Value::Array(vec![])),
        ]);
        assert!(WindowedAccountant::deserialize_value(&bad).is_err());
    }

    #[test]
    fn ledger_state_dispatches_and_round_trips() {
        for mut state in [LedgerState::lifetime(), LedgerState::windowed(600.0)] {
            state.register(3, 2.0);
            state.advance_time(0.0);
            state.charge(3, 0.5);
            assert!((state.remaining(3) - 1.5).abs() < 1e-12);
            let back = LedgerState::deserialize_value(&state.serialize_value()).unwrap();
            assert_eq!(back.spent(3), state.spent(3));
            assert_eq!(back.serialize_value(), state.serialize_value());
        }
        assert!(!LedgerState::lifetime().renewable());
        assert!(LedgerState::windowed(10.0).renewable());
        assert!(!LedgerState::windowed(f64::INFINITY).renewable());
    }

    /// One randomized op against both accountants at once.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        Charge(u64, f64),
        Reserve(u64, f64),
        Commit(u64),
        Rollback(u64),
        Advance(f64),
        Drain,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        (0u8..6, 0u64..5, 0.0f64..0.6, 0.0f64..1e4).prop_map(|(kind, id, e, dt)| match kind {
            0 => Op::Charge(id, e),
            1 => Op::Reserve(id, e),
            2 => Op::Commit(id),
            3 => Op::Rollback(id),
            4 => Op::Advance(dt),
            _ => Op::Drain,
        })
    }

    proptest! {
        // `W = ∞` is bit-identical to lifetime accounting under any
        // op interleaving: same spends, same remaining budgets, same
        // retirement order — exact equality, no tolerances.
        #[test]
        fn infinite_window_is_bit_identical_to_lifetime(
            ops in proptest::collection::vec(op_strategy(), 0..60)
        ) {
            let mut life = CumulativeAccountant::new();
            let mut windowed = WindowedAccountant::new(f64::INFINITY);
            for id in 0..5u64 {
                life.register(id, 1.0 + id as f64 * 0.37);
                windowed.register(id, 1.0 + id as f64 * 0.37);
            }
            let mut clock: f64 = 0.0;
            for &op in &ops {
                match op {
                    Op::Charge(id, e) => {
                        if life.resolve(id).is_some() {
                            life.charge(id, e);
                            windowed.charge(id, e);
                        }
                    }
                    Op::Reserve(id, e) => {
                        if life.resolve(id).is_some() {
                            life.reserve(id, e);
                            windowed.reserve(id, e);
                        }
                    }
                    Op::Commit(id) => {
                        if life.resolve(id).is_some() {
                            prop_assert_eq!(
                                life.commit(id).to_bits(),
                                BudgetLedger::commit(&mut windowed, id).to_bits()
                            );
                        }
                    }
                    Op::Rollback(id) => {
                        prop_assert_eq!(
                            life.rollback(id).to_bits(),
                            BudgetLedger::rollback(&mut windowed, id).to_bits()
                        );
                    }
                    Op::Advance(dt) => {
                        clock += dt;
                        windowed.advance_time(clock);
                    }
                    Op::Drain => {
                        prop_assert_eq!(
                            life.drain_exhausted(),
                            BudgetLedger::drain_exhausted(&mut windowed)
                        );
                    }
                }
                for id in 0..5u64 {
                    prop_assert_eq!(
                        life.spent(id).to_bits(),
                        BudgetLedger::spent(&windowed, id).to_bits()
                    );
                    prop_assert_eq!(
                        life.remaining(id).to_bits(),
                        BudgetLedger::remaining(&windowed, id).to_bits()
                    );
                    prop_assert_eq!(
                        life.is_exhausted(id),
                        BudgetLedger::is_exhausted(&windowed, id)
                    );
                }
                prop_assert_eq!(
                    life.total_spent().to_bits(),
                    BudgetLedger::total_spent(&windowed).to_bits()
                );
            }
        }

        // Spend visible inside the ledger never exceeds capacity when
        // every charge respects the remaining-budget guard — the
        // rolling-cap invariant the engine-level hook relies on.
        #[test]
        fn guarded_spend_never_exceeds_capacity(
            window in 50.0f64..500.0,
            charges in proptest::collection::vec((0.0f64..30.0, 0.0f64..0.9), 1..80)
        ) {
            let mut acc = WindowedAccountant::new(window);
            acc.register(1, 1.0);
            let mut t = 0.0;
            for &(dt, want) in &charges {
                t += dt;
                acc.advance_time(t);
                let granted = want.min(acc.remaining(1));
                acc.charge(1, granted);
                prop_assert!(acc.spent(1) <= 1.0 + 1e-9);
            }
        }

        // Reclamation is exactly monotone: replaying one charge
        // history under a shorter protection window never decreases
        // any remaining budget, at any time step — `>=` with no
        // tolerance (IEEE round-to-nearest summation is monotone).
        #[test]
        fn shrinking_the_window_never_decreases_remaining(
            w_long in 100.0f64..1000.0,
            shrink in 0.05f64..1.0,
            charges in proptest::collection::vec((0.0f64..40.0, 0.0f64..0.4), 1..60)
        ) {
            let w_short = w_long * shrink;
            let mut long = WindowedAccountant::new(w_long);
            let mut short = WindowedAccountant::new(w_short);
            long.register(1, 5.0);
            short.register(1, 5.0);
            let mut t = 0.0;
            for &(dt, e) in &charges {
                t += dt;
                long.advance_time(t);
                short.advance_time(t);
                long.charge(1, e);
                short.charge(1, e);
                prop_assert!(
                    short.remaining(1) >= long.remaining(1),
                    "shorter window must never hold less budget: \
                     short {} < long {} at t {}",
                    short.remaining(1),
                    long.remaining(1),
                    t
                );
            }
        }

        // Serialization is canonical under arbitrary op histories:
        // restore reproduces every observable and a second round trip
        // is value-identical.
        #[test]
        fn windowed_serde_round_trip_is_canonical(
            window in 50.0f64..500.0,
            ops in proptest::collection::vec(op_strategy(), 0..40)
        ) {
            let mut acc = WindowedAccountant::new(window);
            for id in 0..5u64 {
                acc.register(id, 2.0);
            }
            let mut clock = 0.0;
            for &op in &ops {
                match op {
                    Op::Charge(id, e) if acc.resolve(id).is_some() => acc.charge(id, e),
                    Op::Reserve(id, e) if acc.resolve(id).is_some() => acc.reserve(id, e),
                    Op::Commit(id) if acc.resolve(id).is_some() => {
                        acc.commit(id);
                    }
                    Op::Rollback(id) => {
                        acc.rollback(id);
                    }
                    Op::Advance(dt) => {
                        clock += dt;
                        acc.advance_time(clock);
                    }
                    Op::Drain => {
                        acc.drain_exhausted();
                    }
                    _ => {}
                }
            }
            let value = acc.serialize_value();
            let back = WindowedAccountant::deserialize_value(&value).unwrap();
            prop_assert_eq!(back.serialize_value(), value);
            prop_assert_eq!(back.tracked_ids(), acc.tracked_ids());
            for id in 0..5u64 {
                prop_assert_eq!(back.spent(id).to_bits(), acc.spent(id).to_bits());
                prop_assert_eq!(back.reserved(id).to_bits(), acc.reserved(id).to_bits());
            }
        }
    }
}
