//! Geo-Indistinguishability: the planar Laplace mechanism of Andrés et
//! al. (CCS 2013), which the paper discusses as the main alternative
//! location-protection model (Section II, \[18\]).
//!
//! Where the paper's scheme releases *obfuscated distances*, Geo-I
//! releases an *obfuscated location*: `z = x + noise` with the noise
//! drawn from the planar Laplace density `∝ ε²/(2π)·e^{−ε|z−x|}`,
//! giving `ε·d(x, y)`-indistinguishability between any two locations.
//! The workspace uses it for the `GEO-I` one-shot baseline
//! (`dpta_core::Method::GeoI`) that the distance-release protocols are
//! compared against.
//!
//! Sampling the radial component needs the inverse of the Gamma(2)
//! CDF, `C_ε(r) = 1 − (1 + εr)·e^{−εr}`, whose closed form runs through
//! the lower branch of the Lambert W function:
//! `C_ε^{-1}(p) = −(1/ε)·(W_{−1}((p−1)/e) + 1)` — implemented here from
//! scratch with a Halley iteration.

use crate::validate_epsilon;

/// Lower branch `W_{−1}` of the Lambert W function on `[−1/e, 0)`.
///
/// Solves `w·e^w = x` with `w <= −1`. Panics outside the domain.
/// Accuracy is ~1e-12 across the domain (see tests).
pub fn lambert_w_m1(x: f64) -> f64 {
    let inv_e = -(-1.0f64).exp(); // −1/e
    assert!(
        (inv_e..0.0).contains(&x),
        "W_-1 domain is [-1/e, 0), got {x}"
    );
    if x == inv_e {
        return -1.0;
    }
    // Initial guess. Near the branch point use the square-root series
    // w ≈ −1 − s − s²/3 with s = sqrt(2(1 + e·x)); near zero use the
    // asymptotic w ≈ ln(−x) − ln(−ln(−x)).
    let mut w = if x > -0.25 {
        let l1 = (-x).ln();
        let l2 = (-l1).ln();
        l1 - l2
    } else {
        let s = (2.0 * (1.0 + std::f64::consts::E * x)).sqrt();
        -1.0 - s - s * s / 3.0
    };
    // Halley iteration on f(w) = w·e^w − x.
    for _ in 0..64 {
        let ew = w.exp();
        let f = w * ew - x;
        if f == 0.0 {
            break;
        }
        let w1 = w + 1.0;
        let step = f / (ew * w1 - (w + 2.0) * f / (2.0 * w1));
        let next = w - step;
        if (next - w).abs() <= 1e-15 * w.abs().max(1.0) {
            w = next;
            break;
        }
        w = next;
    }
    w
}

/// The planar (polar) Laplace mechanism with privacy level `ε` per km.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanarLaplace {
    epsilon: f64,
}

impl PlanarLaplace {
    /// Creates the mechanism; `ε` must be finite and positive.
    pub fn new(epsilon: f64) -> Self {
        PlanarLaplace {
            epsilon: validate_epsilon(epsilon),
        }
    }

    /// The privacy level.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Radial CDF `Pr[R <= r] = 1 − (1 + εr)·e^{−εr}`.
    pub fn radial_cdf(&self, r: f64) -> f64 {
        if r <= 0.0 {
            return 0.0;
        }
        let er = self.epsilon * r;
        1.0 - (1.0 + er) * (-er).exp()
    }

    /// Inverse radial CDF via `W_{−1}` (Andrés et al., Eq. for
    /// `C_ε^{-1}`). `p` must lie in `[0, 1)`.
    pub fn radial_quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&p),
            "probability must be in [0,1), got {p}"
        );
        if p == 0.0 {
            return 0.0;
        }
        let arg = (p - 1.0) / std::f64::consts::E;
        -(lambert_w_m1(arg) + 1.0) / self.epsilon
    }

    /// Draws a planar noise vector from two uniforms in `[0, 1)`:
    /// `u_r` drives the radius, `u_theta` the angle. Returns `(dx, dy)`.
    pub fn sample_from_uniforms(&self, u_r: f64, u_theta: f64) -> (f64, f64) {
        let r = self.radial_quantile(u_r.clamp(0.0, 1.0 - 1e-12));
        let theta = u_theta * std::f64::consts::TAU;
        (r * theta.cos(), r * theta.sin())
    }

    /// Density of reporting `z` when the true point is `x`, as a
    /// function of their Euclidean distance `d`.
    pub fn pdf_at_distance(&self, d: f64) -> f64 {
        let e = self.epsilon;
        e * e / std::f64::consts::TAU * (-e * d.abs()).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn lambert_w_known_values() {
        // W_{-1}(-1/e) = -1.
        let inv_e = -(-1.0f64).exp();
        assert!((lambert_w_m1(inv_e) + 1.0).abs() < 1e-9);
        // W_{-1}(-0.1) ≈ -3.577152063957297 (reference value).
        assert!((lambert_w_m1(-0.1) + 3.577152063957297).abs() < 1e-10);
        // W_{-1}(-0.2) ≈ -2.542641357773526.
        assert!((lambert_w_m1(-0.2) + 2.542641357773526).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn lambert_w_rejects_positive() {
        let _ = lambert_w_m1(0.1);
    }

    proptest! {
        #[test]
        fn lambert_w_inverts_w_exp_w(w in -30.0f64..-1.0) {
            let x = w * w.exp();
            // x can underflow to -0.0 for very negative w; skip those.
            prop_assume!(x < 0.0 && x >= -(-1.0f64).exp());
            let got = lambert_w_m1(x);
            prop_assert!((got - w).abs() < 1e-8 * w.abs(), "w={w} got={got}");
        }

        #[test]
        fn radial_quantile_inverts_cdf(eps in 0.1f64..5.0, p in 0.001f64..0.999) {
            let m = PlanarLaplace::new(eps);
            let r = m.radial_quantile(p);
            prop_assert!(r >= 0.0);
            prop_assert!((m.radial_cdf(r) - p).abs() < 1e-9);
        }

        #[test]
        fn geo_indistinguishability_bound(
            eps in 0.1f64..3.0,
            dx in 0.0f64..3.0,  // distance from z to x
            dy in 0.0f64..3.0,  // distance from z to y
        ) {
            // pdf(z|x)/pdf(z|y) = e^{ε(d(z,y) − d(z,x))} <= e^{ε·d(x,y)},
            // and by the triangle inequality d(x,y) >= |d(z,x) − d(z,y)|.
            let m = PlanarLaplace::new(eps);
            let ratio = m.pdf_at_distance(dx) / m.pdf_at_distance(dy);
            let d_xy_min = (dx - dy).abs();
            prop_assert!(ratio <= (eps * d_xy_min).exp() * (1.0 + 1e-9));
        }
    }

    #[test]
    fn radial_distribution_matches_monte_carlo() {
        let m = PlanarLaplace::new(1.4);
        let mut rng = StdRng::seed_from_u64(31);
        let n = 200_000;
        let mut within_1 = 0u32;
        let mut mean_r = 0.0;
        for _ in 0..n {
            let (dx, dy) = m.sample_from_uniforms(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
            let r = (dx * dx + dy * dy).sqrt();
            mean_r += r;
            if r <= 1.0 {
                within_1 += 1;
            }
        }
        mean_r /= n as f64;
        // E[R] = 2/ε for the Gamma(2, 1/ε) radius.
        assert!((mean_r - 2.0 / 1.4).abs() < 0.01, "mean radius {mean_r}");
        let emp = within_1 as f64 / n as f64;
        assert!((emp - m.radial_cdf(1.0)).abs() < 5e-3, "P[R<=1] {emp}");
    }

    #[test]
    fn angle_is_uniform() {
        let m = PlanarLaplace::new(1.0);
        let mut rng = StdRng::seed_from_u64(8);
        let mut quadrant = [0u32; 4];
        let n = 40_000;
        for _ in 0..n {
            let (dx, dy) = m.sample_from_uniforms(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
            let q = match (dx >= 0.0, dy >= 0.0) {
                (true, true) => 0,
                (false, true) => 1,
                (false, false) => 2,
                (true, false) => 3,
            };
            quadrant[q] += 1;
        }
        for q in quadrant {
            let frac = q as f64 / n as f64;
            assert!((frac - 0.25).abs() < 0.01, "quadrant fraction {frac}");
        }
    }
}
