//! Dense id interning for the streaming hot path.
//!
//! The streaming stack keys everything by sparse logical ids (`u32`
//! task/worker ids, `u64` composite keys). At 10⁵+ entities the
//! hash-keyed maps over those ids dominate window-build time: every
//! probe pays a SipHash over a value that is already an integer. An
//! [`Interner`] assigns each logical id a dense `u32` *symbol* on first
//! sight, so per-entity state can live in plain `Vec`s indexed by
//! symbol while serialization, iteration order, and every observable
//! artefact stay keyed by the logical id.
//!
//! Two invariants matter for determinism and the snapshot wire format:
//!
//! * **Symbols are an implementation detail.** Nothing serialized,
//!   logged, or compared across runs may depend on symbol values —
//!   canonical forms always re-sort by logical id. The fixture test in
//!   `dpta-stream` pins this byte-for-byte.
//! * **Symbols are assigned in first-insertion order** and never reused,
//!   so within one run a symbol is a stable handle (the same property
//!   the slot-based `CumulativeAccountant` relies on).
//!
//! The module also provides [`FastMap`]/[`FastSet`] aliases using a
//! deterministic multiplicative hasher ([`FastHasher`]) for integer
//! keys. `SipHash` is overkill for ids we generate ourselves; a
//! fixed-key Fibonacci mix is ~5× cheaper per probe and — unlike
//! `RandomState` — hashes identically in every process, which keeps any
//! accidental iteration-order dependence from becoming a cross-run
//! nondeterminism. (Canonical artefacts still must not iterate these
//! maps raw.)

// dpta-lint: allow(deterministic-containers) -- backing store for FastMap/FastSet, pinned to the fixed-key FastHasher below
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A deterministic integer hasher: Fibonacci multiplicative mixing
/// with a fixed odd constant (no per-process seed).
///
/// Only suitable for keys we mint ourselves (entity ids, grid cell
/// coordinates) — it makes no attempt at HashDoS resistance.
#[derive(Default)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-integer keys (tuples hash field-wise via the
        // integer paths below; byte slices land here).
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        // Rotate-xor then multiply by 2^64/φ rounded to odd; the
        // rotate keeps consecutive ids from colliding in the low bits
        // after the multiply's truncation.
        let x = self.0.rotate_left(26) ^ n;
        self.0 = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_i32(&mut self, n: i32) {
        self.write_u64(n as u32 as u64);
    }
}

/// `HashMap` with the deterministic [`FastHasher`].
// dpta-lint: allow(deterministic-containers) -- this alias IS the sanctioned deterministic wrapper
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;
/// `HashSet` with the deterministic [`FastHasher`].
// dpta-lint: allow(deterministic-containers) -- this alias IS the sanctioned deterministic wrapper
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

/// A dense symbol minted by an [`Interner`]; indexes `Vec`-backed side
/// tables. Symbols order by first-insertion, not by logical id.
pub type Sym = u32;

/// Interns sparse `u64` logical ids into dense [`Sym`] symbols.
///
/// Lookup is one [`FastHasher`] probe; the reverse direction
/// ([`Interner::resolve`]) is a `Vec` index. Symbols are assigned
/// contiguously from 0 in first-insertion order and never reused.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    index: FastMap<u64, Sym>,
    ids: Vec<u64>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty interner with room for `cap` ids before rehashing.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            index: FastMap::with_capacity_and_hasher(cap, Default::default()),
            ids: Vec::with_capacity(cap),
        }
    }

    /// The symbol for `id`, minting a fresh one on first sight.
    #[inline]
    pub fn intern(&mut self, id: u64) -> Sym {
        if let Some(&sym) = self.index.get(&id) {
            return sym;
        }
        let sym = self.ids.len() as Sym;
        self.index.insert(id, sym);
        self.ids.push(id);
        sym
    }

    /// The symbol for `id` if it has been interned.
    #[inline]
    pub fn get(&self, id: u64) -> Option<Sym> {
        self.index.get(&id).copied()
    }

    /// The logical id behind `sym`.
    ///
    /// # Panics
    /// If `sym` was not minted by this interner.
    #[inline]
    pub fn resolve(&self, sym: Sym) -> u64 {
        self.ids[sym as usize]
    }

    /// Number of distinct ids interned.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no ids have been interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// All interned logical ids in symbol (first-insertion) order.
    #[inline]
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }
}

impl FromIterator<u64> for Interner {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut interner = Interner::new();
        for id in iter {
            interner.intern(id);
        }
        interner
    }
}

/// A per-window scratch table mapping symbols to `V`, cleared in O(set
/// bits) between windows via an epoch stamp instead of a full wipe.
///
/// This replaces the per-window `BTreeMap<id, V>` scratch maps in the
/// session stepper: reads/writes are a bounds-checked `Vec` index, and
/// "clearing" is a single counter bump. The table remembers which
/// symbols were set this epoch (`touched`) so callers can still iterate
/// the window's entries — in *symbol* order, which is only safe for
/// artefacts that re-sort by logical id downstream.
#[derive(Debug, Clone)]
pub struct EpochTable<V> {
    stamp: Vec<u32>,
    vals: Vec<Option<V>>,
    epoch: u32,
    touched: Vec<Sym>,
}

impl<V> Default for EpochTable<V> {
    fn default() -> Self {
        Self {
            stamp: Vec::new(),
            vals: Vec::new(),
            epoch: 1,
            touched: Vec::new(),
        }
    }
}

impl<V> EpochTable<V> {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop all entries; O(1) plus the deferred cost of overwriting
    /// stale values on next touch.
    #[inline]
    pub fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: stale stamps could collide with the new epoch.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        self.touched.clear();
    }

    #[inline]
    fn grow(&mut self, sym: Sym) {
        let need = sym as usize + 1;
        if self.stamp.len() < need {
            self.stamp.resize(need, 0);
            self.vals.resize_with(need, || None);
        }
    }

    /// Insert or overwrite the entry for `sym` this epoch.
    #[inline]
    pub fn insert(&mut self, sym: Sym, val: V) {
        self.grow(sym);
        let i = sym as usize;
        if self.stamp[i] != self.epoch {
            self.stamp[i] = self.epoch;
            self.touched.push(sym);
        }
        self.vals[i] = Some(val);
    }

    /// The entry for `sym` this epoch, if set.
    #[inline]
    pub fn get(&self, sym: Sym) -> Option<&V> {
        let i = sym as usize;
        if i < self.stamp.len() && self.stamp[i] == self.epoch {
            self.vals[i].as_ref()
        } else {
            None
        }
    }

    /// Symbols set this epoch, in touch order.
    #[inline]
    pub fn touched(&self) -> &[Sym] {
        &self.touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_mints_dense_symbols_in_first_insertion_order() {
        let mut int = Interner::new();
        assert_eq!(int.intern(900), 0);
        assert_eq!(int.intern(3), 1);
        assert_eq!(int.intern(900), 0);
        assert_eq!(int.intern(41), 2);
        assert_eq!(int.len(), 3);
        assert_eq!(int.ids(), &[900, 3, 41]);
        assert_eq!(int.resolve(1), 3);
        assert_eq!(int.get(41), Some(2));
        assert_eq!(int.get(7), None);
    }

    #[test]
    fn fast_hasher_is_deterministic_and_spreads_consecutive_ids() {
        let hash = |n: u64| {
            let mut h = FastHasher::default();
            h.write_u64(n);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        // Consecutive ids should land in different low-bit buckets.
        let buckets: FastSet<u64> = (0..64u64).map(|n| hash(n) & 63).collect();
        assert!(
            buckets.len() > 32,
            "only {} distinct buckets",
            buckets.len()
        );
    }

    #[test]
    fn epoch_table_clears_in_constant_time() {
        let mut t = EpochTable::new();
        t.insert(5, "a");
        t.insert(2, "b");
        assert_eq!(t.get(5), Some(&"a"));
        assert_eq!(t.touched(), &[5, 2]);
        t.clear();
        assert_eq!(t.get(5), None);
        assert!(t.touched().is_empty());
        t.insert(5, "c");
        assert_eq!(t.get(5), Some(&"c"));
        assert_eq!(t.get(2), None);
    }

    #[test]
    fn epoch_table_overwrite_keeps_single_touch() {
        let mut t = EpochTable::new();
        t.insert(1, 10);
        t.insert(1, 20);
        assert_eq!(t.touched(), &[1]);
        assert_eq!(t.get(1), Some(&20));
    }
}
