//! Shared helpers for the Criterion benches (the benches themselves
//! live under `benches/`, one per paper figure group), plus the pure
//! half of the `bench_gate` binary: parsing the criterion shim's
//! JSON-lines output, assembling the `BENCH_stream.json` trajectory
//! file, and comparing a fresh run against the committed baseline.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use dpta_core::RunParams;
use dpta_experiments::report::render_figure;
use dpta_experiments::{figures, runner, RunOptions};
use dpta_workloads::{Dataset, Scenario};
use serde::Deserialize as _;
use std::collections::BTreeMap;

/// Median nanoseconds per benchmark id, grouped by bench binary — the
/// shape of `BENCH_stream.json`.
pub type BenchTrajectory = BTreeMap<String, BTreeMap<String, f64>>;

/// Parses the criterion shim's `CRITERION_JSON` lines (one object per
/// benchmark) into `(id, median_ns)` pairs, skipping blank lines.
/// Returns an error message naming the first malformed line.
pub fn parse_bench_lines(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for (k, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = serde_json::from_str(line).map_err(|e| format!("line {}: {e}", k + 1))?;
        let id = match v.get("id") {
            Some(serde::Value::String(s)) => s.clone(),
            _ => return Err(format!("line {}: missing string \"id\"", k + 1)),
        };
        let median = match v.get("median_ns") {
            Some(serde::Value::Number(n)) => *n,
            _ => return Err(format!("line {}: missing numeric \"median_ns\"", k + 1)),
        };
        out.push((id, median));
    }
    Ok(out)
}

/// Renders a trajectory as the pretty JSON committed at the repo root.
pub fn render_trajectory(t: &BenchTrajectory) -> String {
    let mut text = serde_json::to_string_pretty(t).expect("trajectory serializes");
    text.push('\n');
    text
}

/// Parses a committed trajectory file.
pub fn parse_trajectory(text: &str) -> Result<BenchTrajectory, String> {
    let v = serde_json::from_str(text).map_err(|e| e.to_string())?;
    BenchTrajectory::deserialize_value(&v).map_err(|e| e.to_string())
}

/// Compares a fresh trajectory against the baseline: any shared bench
/// id whose fresh median exceeds `max_ratio ×` the baseline median is
/// a regression. Ids present on only one side are reported as notes,
/// never failures (benches come and go across PRs).
pub fn compare_trajectories(
    baseline: &BenchTrajectory,
    fresh: &BenchTrajectory,
    max_ratio: f64,
) -> (Vec<String>, Vec<String>) {
    let mut regressions = Vec::new();
    let mut notes = Vec::new();
    for (bench, base_ids) in baseline {
        let Some(fresh_ids) = fresh.get(bench) else {
            notes.push(format!("bench {bench} missing from the fresh run"));
            continue;
        };
        for (id, &base) in base_ids {
            match fresh_ids.get(id) {
                Some(&now) if base > 0.0 && now > max_ratio * base => {
                    regressions.push(format!(
                        "{bench}: {id} regressed {:.1}× ({:.0} ns -> {:.0} ns)",
                        now / base,
                        base,
                        now
                    ));
                }
                Some(_) => {}
                None => notes.push(format!("{bench}: {id} missing from the fresh run")),
            }
        }
        for id in fresh_ids.keys() {
            if !base_ids.contains_key(id) {
                notes.push(format!("{bench}: {id} is new (no baseline)"));
            }
        }
    }
    for bench in fresh.keys() {
        if !baseline.contains_key(bench) {
            notes.push(format!("bench {bench} is new (no baseline)"));
        }
    }
    (regressions, notes)
}

/// Derived cost-ratio columns for a trajectory: what the halo protocol
/// costs over lossy drop-pairs sharding, what the adaptive controller
/// costs over a static width, and what delta maintenance saves over
/// from-scratch instance rebuilds — one line per comparable id pair.
/// `bench_gate` prints these after every run so the ratios the PR
/// acceptance gates track are visible without opening the JSON.
pub fn ratio_columns(t: &BenchTrajectory) -> Vec<String> {
    let mut out = Vec::new();
    let mut push_pairs = |bench: &str, num_tag: &str, den_tag: &str, label: &str| {
        let Some(ids) = t.get(bench) else { return };
        for (id, &num) in ids {
            let Some(stem) = id.strip_suffix(num_tag) else {
                continue;
            };
            let Some(&den) = ids.get(&format!("{stem}{den_tag}")) else {
                continue;
            };
            if den > 0.0 {
                out.push(format!("{stem}{label} = {:.2}x", num / den));
            }
        }
    };
    push_pairs(
        "halo_sharding",
        "/halo2x2",
        "/drop_pairs2x2",
        " halo/drop_pairs",
    );
    if let Some(ids) = t.get("adaptive_window") {
        for (id, &adaptive) in ids {
            let Some((stem, burst)) = id.split_once("_adaptive/") else {
                continue;
            };
            let Some(&fixed) = ids.get(&format!("{stem}_time300s/{burst}")) else {
                continue;
            };
            if fixed > 0.0 {
                out.push(format!(
                    "{stem}/{burst} adaptive/static = {:.2}x",
                    adaptive / fixed
                ));
            }
        }
    }
    if let Some(ids) = t.get("incremental_window") {
        for (id, &delta) in ids {
            let Some(w) = id.strip_prefix("incremental_window/delta/") else {
                continue;
            };
            let Some(&scratch) = ids.get(&format!("incremental_window/scratch/{w}")) else {
                continue;
            };
            if scratch > 0.0 {
                out.push(format!(
                    "incremental_window/{w} delta/scratch = {:.2}x",
                    delta / scratch
                ));
            }
        }
    }
    out
}

/// The reserved trajectory group holding entity-scale metadata: maps
/// each sweep benchmark id to the entity count it ran at, so a future
/// gate run only ever compares medians taken at the same scale (the
/// values are exact constants, so the ratio gate can never trip on
/// them). Written whenever the gate runs the scale sweep — including
/// the first-run auto-seed.
pub const SCALES_GROUP: &str = "_scales";

/// The entity count encoded in a sweep benchmark id's trailing
/// `/n<count>` segment (`scale_sweep/drain/n10000` → `10000`).
pub fn entity_scale(id: &str) -> Option<f64> {
    let tail = id.rsplit('/').next()?;
    let digits = tail.strip_prefix('n')?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// One fitted growth step of a scale sweep: how the median scaled
/// between two consecutive entity counts of the same benchmark stem.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleFit {
    /// The benchmark id stem shared by both scales
    /// (`scale_sweep/drain`).
    pub stem: String,
    /// The smaller entity count.
    pub from_n: f64,
    /// The larger entity count.
    pub to_n: f64,
    /// The fitted growth exponent `α` in `t ∝ n^α` between the two
    /// scales: `ln(t₂/t₁) / ln(n₂/n₁)`. Linear work gives α ≈ 1,
    /// quadratic drift α ≈ 2.
    pub exponent: f64,
}

impl std::fmt::Display for ScaleFit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: n{} -> n{} grows as n^{:.2}",
            self.stem, self.from_n, self.to_n, self.exponent
        )
    }
}

/// Fits growth exponents between consecutive scales of every sweep
/// stem in `ids` (benchmark ids carrying a trailing `/n<count>`
/// segment). Stems with fewer than two scales produce no fits.
pub fn scale_exponents(ids: &BTreeMap<String, f64>) -> Vec<ScaleFit> {
    let mut by_stem: BTreeMap<&str, Vec<(f64, f64)>> = BTreeMap::new();
    for (id, &median) in ids {
        let Some(n) = entity_scale(id) else { continue };
        let Some(cut) = id.rfind('/') else { continue };
        by_stem.entry(&id[..cut]).or_default().push((n, median));
    }
    let mut out = Vec::new();
    for (stem, mut points) in by_stem {
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in points.windows(2) {
            let [(n1, t1), (n2, t2)] = [pair[0], pair[1]];
            if n1 > 0.0 && t1 > 0.0 && n2 > n1 && t2 > 0.0 {
                out.push(ScaleFit {
                    stem: stem.to_string(),
                    from_n: n1,
                    to_n: n2,
                    exponent: (t2 / t1).ln() / (n2 / n1).ln(),
                });
            }
        }
    }
    out
}

/// The fits whose growth exponent exceeds `max_exponent` — the
/// super-linear-drift failures the scale-sweep gate reports. The
/// constant-density sweep is engineered to grow ~linearly, so an
/// exponent near 2 means some per-window cost has started scaling with
/// the *total* entity count (a full-ledger walk, an unbounded map, a
/// quadratic drain).
pub fn scale_regressions(fits: &[ScaleFit], max_exponent: f64) -> Vec<String> {
    fits.iter()
        .filter(|f| f.exponent > max_exponent)
        .map(|f| format!("{f} (limit n^{max_exponent:.2})"))
        .collect()
}

/// The small-but-meaningful scale used inside timed benchmark bodies.
pub fn bench_options() -> RunOptions {
    RunOptions {
        scale: 0.1, // 100-task batches
        n_batches: 1,
        params: RunParams::default(),
        n_seeds: 1,
        parallel: false, // timings must not depend on thread scheduling
    }
}

/// A single default-parameter instance of `dataset` at bench scale,
/// ready to feed a method under test.
pub fn bench_instance(dataset: Dataset, extra_seed: u64) -> dpta_core::Instance {
    let opts = bench_options();
    let sc = Scenario {
        dataset,
        batch_size: opts.batch_size(),
        n_batches: 1,
        seed: opts.params.seed ^ extra_seed,
        ..Scenario::default()
    };
    sc.batches().remove(0)
}

/// Regenerates and prints the series of the given figures (the rows the
/// paper plots), so `cargo bench` output doubles as the reproduction
/// log. Runs once per bench binary, at reduced scale.
pub fn print_figures(ids: &[&str]) {
    let opts = RunOptions {
        scale: 0.1,
        n_batches: 1,
        params: RunParams::default(),
        n_seeds: 1,
        parallel: true,
    };
    for id in ids {
        let spec = figures::find(id).expect("figure id in registry");
        let out = runner::run_figure(&spec, &opts);
        eprintln!("{}", render_figure(&out));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(entries: &[(&str, &[(&str, f64)])]) -> BenchTrajectory {
        entries
            .iter()
            .map(|(bench, ids)| {
                (
                    bench.to_string(),
                    ids.iter().map(|(id, ns)| (id.to_string(), *ns)).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn bench_lines_parse_and_reject_garbage() {
        let text = "{\"id\":\"g/a\",\"median_ns\":1200.5,\"min_ns\":1000.0}\n\n\
                    {\"id\":\"g/b\",\"median_ns\":7}\n";
        let rows = parse_bench_lines(text).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "g/a");
        assert!((rows[0].1 - 1200.5).abs() < 1e-9);
        assert!(parse_bench_lines("{\"median_ns\":1}").is_err());
        assert!(parse_bench_lines("not json").is_err());
    }

    #[test]
    fn trajectory_round_trips_through_json() {
        let t = traj(&[
            (
                "time_to_drain",
                &[("stream/PUCE", 1500.0), ("stream/GRD", 900.0)],
            ),
            ("adaptive_window", &[("adaptive/burst0.5", 2e6)]),
        ]);
        let text = render_trajectory(&t);
        assert!(text.contains("time_to_drain"));
        let back = parse_trajectory(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn ratio_columns_pair_comparable_ids() {
        let t = traj(&[
            (
                "halo_sharding",
                &[
                    ("halo_sharding/GRD/halo2x2", 300.0),
                    ("halo_sharding/GRD/drop_pairs2x2", 200.0),
                    ("halo_sharding/GRD/unsharded", 100.0),
                ],
            ),
            (
                "adaptive_window",
                &[
                    ("adaptive_window/GRD_adaptive/burst0.2", 130.0),
                    ("adaptive_window/GRD_time300s/burst0.2", 100.0),
                ],
            ),
            (
                "incremental_window",
                &[
                    ("incremental_window/delta/w16", 25.0),
                    ("incremental_window/scratch/w16", 100.0),
                ],
            ),
        ]);
        let cols = ratio_columns(&t);
        assert_eq!(cols.len(), 3, "{cols:?}");
        assert!(
            cols.iter()
                .any(|c| c.contains("GRD halo/drop_pairs = 1.50x")),
            "{cols:?}"
        );
        assert!(
            cols.iter()
                .any(|c| c.contains("GRD/burst0.2 adaptive/static = 1.30x")),
            "{cols:?}"
        );
        assert!(
            cols.iter().any(|c| c.contains("w16 delta/scratch = 0.25x")),
            "{cols:?}"
        );
    }

    #[test]
    fn entity_scale_reads_only_well_formed_suffixes() {
        assert_eq!(entity_scale("scale_sweep/drain/n1000"), Some(1000.0));
        assert_eq!(entity_scale("scale_sweep/sharded4x4/n1000000"), Some(1e6));
        assert_eq!(entity_scale("scale_sweep/drain/w64"), None);
        assert_eq!(entity_scale("scale_sweep/drain/n"), None);
        assert_eq!(entity_scale("scale_sweep/drain/n12x"), None);
        assert_eq!(entity_scale("stream_time_to_drain/GRD/count50"), None);
    }

    #[test]
    fn scale_exponents_fit_consecutive_scales_per_stem() {
        // drain grows exactly linearly, sharded exactly quadratically.
        let ids: BTreeMap<String, f64> = [
            ("scale_sweep/drain/n1000", 1e6),
            ("scale_sweep/drain/n10000", 1e7),
            ("scale_sweep/drain/n100000", 1e8),
            ("scale_sweep/sharded4x4/n1000", 1e6),
            ("scale_sweep/sharded4x4/n10000", 1e8),
            ("scale_sweep/other/unscaled", 5.0),
        ]
        .into_iter()
        .map(|(id, ns)| (id.to_string(), ns))
        .collect();
        let fits = scale_exponents(&ids);
        assert_eq!(fits.len(), 3, "{fits:?}");
        assert!(fits
            .iter()
            .filter(|f| f.stem == "scale_sweep/drain")
            .all(|f| (f.exponent - 1.0).abs() < 1e-9));
        let sharded: Vec<_> = fits
            .iter()
            .filter(|f| f.stem == "scale_sweep/sharded4x4")
            .collect();
        assert_eq!(sharded.len(), 1);
        assert!((sharded[0].exponent - 2.0).abs() < 1e-9);
        let gate = scale_regressions(&fits, 1.7);
        assert_eq!(gate.len(), 1, "{gate:?}");
        assert!(gate[0].contains("sharded4x4"), "{gate:?}");
        assert!(scale_regressions(&fits, 2.5).is_empty());
    }

    #[test]
    fn comparison_flags_only_threshold_breaches() {
        let base = traj(&[("drain", &[("a", 100.0), ("b", 100.0), ("gone", 50.0)])]);
        let fresh = traj(&[
            ("drain", &[("a", 250.0), ("b", 350.0), ("new", 10.0)]),
            ("extra", &[("c", 1.0)]),
        ]);
        let (regressions, notes) = compare_trajectories(&base, &fresh, 3.0);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].contains("drain: b regressed 3.5×"));
        assert_eq!(notes.len(), 3, "{notes:?}"); // gone, new, extra
    }
}
