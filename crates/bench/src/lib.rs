//! Shared helpers for the Criterion benches (the benches themselves
//! live under `benches/`, one per paper figure group).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dpta_core::RunParams;
use dpta_experiments::report::render_figure;
use dpta_experiments::{figures, runner, RunOptions};
use dpta_workloads::{Dataset, Scenario};

/// The small-but-meaningful scale used inside timed benchmark bodies.
pub fn bench_options() -> RunOptions {
    RunOptions {
        scale: 0.1, // 100-task batches
        n_batches: 1,
        params: RunParams::default(),
        n_seeds: 1,
        parallel: false, // timings must not depend on thread scheduling
    }
}

/// A single default-parameter instance of `dataset` at bench scale,
/// ready to feed a method under test.
pub fn bench_instance(dataset: Dataset, extra_seed: u64) -> dpta_core::Instance {
    let opts = bench_options();
    let sc = Scenario {
        dataset,
        batch_size: opts.batch_size(),
        n_batches: 1,
        seed: opts.params.seed ^ extra_seed,
        ..Scenario::default()
    };
    sc.batches().remove(0)
}

/// Regenerates and prints the series of the given figures (the rows the
/// paper plots), so `cargo bench` output doubles as the reproduction
/// log. Runs once per bench binary, at reduced scale.
pub fn print_figures(ids: &[&str]) {
    let opts = RunOptions {
        scale: 0.1,
        n_batches: 1,
        params: RunParams::default(),
        n_seeds: 1,
        parallel: true,
    };
    for id in ids {
        let spec = figures::find(id).expect("figure id in registry");
        let out = runner::run_figure(&spec, &opts);
        eprintln!("{}", render_figure(&out));
    }
}
