//! The CI bench-trajectory gate.
//!
//! Runs the five streaming benches (`time_to_drain`, `halo_sharding`,
//! `adaptive_window`, `reentry_drain`, `incremental_window`) with the
//! criterion shim's machine-readable JSON output, assembles
//! `BENCH_stream.json` (median ns per bench id), prints the derived
//! cost-ratio columns (halo/drop-pairs, adaptive/static,
//! delta/scratch), and compares the fresh medians against the
//! committed baseline at the repo root: any benchmark more than
//! `--max-ratio` (default 3×) slower fails the gate. On the first run
//! — no committed baseline — the fresh trajectory is written to the
//! baseline path so CI can commit it.
//!
//! ```text
//! cargo run --release -p dpta-bench --bin bench_gate -- \
//!     --quick --baseline BENCH_stream.json --fresh-out BENCH_stream.fresh.json
//! ```

use dpta_bench::{
    compare_trajectories, parse_bench_lines, parse_trajectory, ratio_columns, render_trajectory,
    BenchTrajectory,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::{Command, ExitCode};

/// The bench binaries the trajectory tracks, in run order.
const BENCHES: [&str; 5] = [
    "time_to_drain",
    "halo_sharding",
    "adaptive_window",
    "reentry_drain",
    "incremental_window",
];

struct Args {
    quick: bool,
    baseline: PathBuf,
    fresh_out: Option<PathBuf>,
    max_ratio: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        baseline: PathBuf::from("BENCH_stream.json"),
        fresh_out: None,
        max_ratio: 3.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--quick" => args.quick = true,
            "--baseline" => args.baseline = PathBuf::from(next("--baseline")?),
            "--fresh-out" => args.fresh_out = Some(PathBuf::from(next("--fresh-out")?)),
            "--max-ratio" => {
                args.max_ratio = next("--max-ratio")?
                    .parse()
                    .map_err(|e| format!("bad --max-ratio: {e}"))?;
                if !(args.max_ratio > 1.0 && args.max_ratio.is_finite()) {
                    return Err("--max-ratio must be a finite ratio above 1".into());
                }
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// Runs one bench binary with the shim's JSON output redirected to
/// `jsonl`, returning its parsed `(id, median_ns)` rows.
fn run_bench(name: &str, jsonl: &PathBuf, quick: bool) -> Result<Vec<(String, f64)>, String> {
    let _ = std::fs::remove_file(jsonl);
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let mut cmd = Command::new(cargo);
    cmd.args(["bench", "-p", "dpta-bench", "--bench", name])
        .env("CRITERION_JSON", jsonl);
    if quick {
        cmd.env("CRITERION_QUICK", "1");
    }
    let status = cmd
        .status()
        .map_err(|e| format!("could not spawn cargo bench --bench {name}: {e}"))?;
    if !status.success() {
        return Err(format!("cargo bench --bench {name} failed: {status}"));
    }
    let text = std::fs::read_to_string(jsonl)
        .map_err(|e| format!("bench {name} wrote no JSON at {}: {e}", jsonl.display()))?;
    let rows = parse_bench_lines(&text).map_err(|e| format!("bench {name}: {e}"))?;
    if rows.is_empty() {
        return Err(format!("bench {name} produced no measurements"));
    }
    Ok(rows)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let jsonl = std::env::temp_dir().join(format!("bench_gate_{}.jsonl", std::process::id()));
    let mut fresh: BenchTrajectory = BTreeMap::new();
    for name in BENCHES {
        eprintln!(
            "bench_gate: running {name} ({})",
            if args.quick { "quick" } else { "full" }
        );
        match run_bench(name, &jsonl, args.quick) {
            Ok(rows) => {
                fresh.insert(name.to_string(), rows.into_iter().collect());
            }
            Err(e) => {
                eprintln!("error: {e}");
                let _ = std::fs::remove_file(&jsonl);
                return ExitCode::FAILURE;
            }
        }
    }
    let _ = std::fs::remove_file(&jsonl);

    for col in ratio_columns(&fresh) {
        eprintln!("bench_gate: ratio: {col}");
    }

    let rendered = render_trajectory(&fresh);
    if let Some(out) = &args.fresh_out {
        if let Err(e) = std::fs::write(out, &rendered) {
            eprintln!("error: could not write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        eprintln!("bench_gate: fresh trajectory written to {}", out.display());
    }

    let baseline_text = match std::fs::read_to_string(&args.baseline) {
        Ok(t) => t,
        Err(_) => {
            // First run: seed the baseline so CI can commit it.
            if let Err(e) = std::fs::write(&args.baseline, &rendered) {
                eprintln!(
                    "error: could not seed baseline {}: {e}",
                    args.baseline.display()
                );
                return ExitCode::FAILURE;
            }
            eprintln!(
                "bench_gate: no baseline at {} — seeded it from this run (commit it)",
                args.baseline.display()
            );
            return ExitCode::SUCCESS;
        }
    };
    let baseline = match parse_trajectory(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "error: baseline {} is unreadable: {e}",
                args.baseline.display()
            );
            return ExitCode::FAILURE;
        }
    };

    let (regressions, notes) = compare_trajectories(&baseline, &fresh, args.max_ratio);
    for n in &notes {
        eprintln!("bench_gate: note: {n}");
    }
    if regressions.is_empty() {
        eprintln!(
            "bench_gate: OK — no bench slower than {:.1}× its committed baseline",
            args.max_ratio
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_gate: FAILED — {} bench(es) regressed past {:.1}×:",
            regressions.len(),
            args.max_ratio
        );
        for r in &regressions {
            eprintln!("  {r}");
        }
        ExitCode::FAILURE
    }
}
