//! The CI bench-trajectory gate.
//!
//! Runs the five streaming benches (`time_to_drain`, `halo_sharding`,
//! `adaptive_window`, `reentry_drain`, `incremental_window`) with the
//! criterion shim's machine-readable JSON output, assembles
//! `BENCH_stream.json` (median ns per bench id), prints the derived
//! cost-ratio columns (halo/drop-pairs, adaptive/static,
//! delta/scratch), and compares the fresh medians against the
//! committed baseline at the repo root: any benchmark more than
//! `--max-ratio` (default 3×) slower fails the gate. On the first run
//! — no committed baseline — the fresh trajectory is written to the
//! baseline path so CI can commit it.
//!
//! `--scale-sweep` additionally runs the `scale_sweep` bench (drain
//! wall time at 10³ → 10⁵ entities, 10⁶ behind `SCALE_SWEEP_FULL=1`),
//! records each scaled id's entity count in the trajectory's `_scales`
//! metadata group so future runs compare like-for-like, and fits the
//! growth exponent between consecutive scales: any curve steeper than
//! `--max-scale-exponent` (default n^1.7 — super-linear drift well
//! before quadratic) fails the gate, baseline or not.
//!
//! ```text
//! cargo run --release -p dpta-bench --bin bench_gate -- \
//!     --quick --scale-sweep \
//!     --baseline BENCH_stream.json --fresh-out BENCH_stream.fresh.json
//! ```

use dpta_bench::{
    compare_trajectories, entity_scale, parse_bench_lines, parse_trajectory, ratio_columns,
    render_trajectory, scale_exponents, scale_regressions, BenchTrajectory, SCALES_GROUP,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::{Command, ExitCode};

/// The bench binaries the trajectory always tracks, in run order
/// (`--scale-sweep` appends the `scale_sweep` sweep).
const BENCHES: [&str; 6] = [
    "time_to_drain",
    "halo_sharding",
    "adaptive_window",
    "reentry_drain",
    "incremental_window",
    "windowed_ledger",
];

struct Args {
    quick: bool,
    baseline: PathBuf,
    fresh_out: Option<PathBuf>,
    max_ratio: f64,
    scale_sweep: bool,
    max_scale_exponent: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        baseline: PathBuf::from("BENCH_stream.json"),
        fresh_out: None,
        max_ratio: 3.0,
        scale_sweep: false,
        max_scale_exponent: 1.7,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--quick" => args.quick = true,
            "--baseline" => args.baseline = PathBuf::from(next("--baseline")?),
            "--fresh-out" => args.fresh_out = Some(PathBuf::from(next("--fresh-out")?)),
            "--max-ratio" => {
                args.max_ratio = next("--max-ratio")?
                    .parse()
                    .map_err(|e| format!("bad --max-ratio: {e}"))?;
                if !(args.max_ratio > 1.0 && args.max_ratio.is_finite()) {
                    return Err("--max-ratio must be a finite ratio above 1".into());
                }
            }
            "--scale-sweep" => args.scale_sweep = true,
            "--max-scale-exponent" => {
                args.max_scale_exponent = next("--max-scale-exponent")?
                    .parse()
                    .map_err(|e| format!("bad --max-scale-exponent: {e}"))?;
                if !(args.max_scale_exponent > 1.0 && args.max_scale_exponent.is_finite()) {
                    return Err("--max-scale-exponent must be a finite exponent above 1".into());
                }
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// Runs one bench binary with the shim's JSON output redirected to
/// `jsonl`, returning its parsed `(id, median_ns)` rows.
fn run_bench(name: &str, jsonl: &PathBuf, quick: bool) -> Result<Vec<(String, f64)>, String> {
    let _ = std::fs::remove_file(jsonl);
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let mut cmd = Command::new(cargo);
    cmd.args(["bench", "-p", "dpta-bench", "--bench", name])
        .env("CRITERION_JSON", jsonl);
    if quick {
        cmd.env("CRITERION_QUICK", "1");
    }
    let status = cmd
        .status()
        .map_err(|e| format!("could not spawn cargo bench --bench {name}: {e}"))?;
    if !status.success() {
        return Err(format!("cargo bench --bench {name} failed: {status}"));
    }
    let text = std::fs::read_to_string(jsonl)
        .map_err(|e| format!("bench {name} wrote no JSON at {}: {e}", jsonl.display()))?;
    let rows = parse_bench_lines(&text).map_err(|e| format!("bench {name}: {e}"))?;
    if rows.is_empty() {
        return Err(format!("bench {name} produced no measurements"));
    }
    Ok(rows)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let jsonl = std::env::temp_dir().join(format!("bench_gate_{}.jsonl", std::process::id()));
    let mut benches: Vec<&str> = BENCHES.to_vec();
    if args.scale_sweep {
        benches.push("scale_sweep");
    }
    let mut fresh: BenchTrajectory = BTreeMap::new();
    for name in benches {
        eprintln!(
            "bench_gate: running {name} ({})",
            if args.quick { "quick" } else { "full" }
        );
        match run_bench(name, &jsonl, args.quick) {
            Ok(rows) => {
                fresh.insert(name.to_string(), rows.into_iter().collect());
            }
            Err(e) => {
                eprintln!("error: {e}");
                let _ = std::fs::remove_file(&jsonl);
                return ExitCode::FAILURE;
            }
        }
    }
    let _ = std::fs::remove_file(&jsonl);

    // Record the entity count behind every scaled benchmark id (the
    // `_scales` metadata group), so this trajectory — the first-run
    // auto-seed included — documents what scale each median was taken
    // at and future sweeps compare like-for-like.
    let scales: BTreeMap<String, f64> = fresh
        .values()
        .flat_map(|ids| ids.keys())
        .filter_map(|id| entity_scale(id).map(|n| (id.clone(), n)))
        .collect();
    if !scales.is_empty() {
        fresh.insert(SCALES_GROUP.to_string(), scales);
    }

    for col in ratio_columns(&fresh) {
        eprintln!("bench_gate: ratio: {col}");
    }

    // The scale-sweep drift gate: medians across the sweep's entity
    // scales must stay sub-quadratic, whether or not a committed
    // baseline exists yet.
    let mut drift = Vec::new();
    if let Some(ids) = fresh.get("scale_sweep") {
        let fits = scale_exponents(ids);
        for fit in &fits {
            eprintln!("bench_gate: scale: {fit}");
        }
        drift = scale_regressions(&fits, args.max_scale_exponent);
    }

    let rendered = render_trajectory(&fresh);
    if let Some(out) = &args.fresh_out {
        if let Err(e) = std::fs::write(out, &rendered) {
            eprintln!("error: could not write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        eprintln!("bench_gate: fresh trajectory written to {}", out.display());
    }

    let baseline_text = match std::fs::read_to_string(&args.baseline) {
        Ok(t) => t,
        Err(_) => {
            // First run: seed the baseline so CI can commit it.
            if let Err(e) = std::fs::write(&args.baseline, &rendered) {
                eprintln!(
                    "error: could not seed baseline {}: {e}",
                    args.baseline.display()
                );
                return ExitCode::FAILURE;
            }
            eprintln!(
                "bench_gate: no baseline at {} — seeded it from this run (commit it)",
                args.baseline.display()
            );
            return finish(Vec::new(), drift, args.max_ratio, args.max_scale_exponent);
        }
    };
    let baseline = match parse_trajectory(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "error: baseline {} is unreadable: {e}",
                args.baseline.display()
            );
            return ExitCode::FAILURE;
        }
    };

    let (regressions, notes) = compare_trajectories(&baseline, &fresh, args.max_ratio);
    for n in &notes {
        eprintln!("bench_gate: note: {n}");
    }
    finish(regressions, drift, args.max_ratio, args.max_scale_exponent)
}

/// Prints the verdict and maps the two failure classes — baseline
/// ratio regressions and scale-sweep drift — onto the exit code.
fn finish(
    regressions: Vec<String>,
    drift: Vec<String>,
    max_ratio: f64,
    max_scale_exponent: f64,
) -> ExitCode {
    if !regressions.is_empty() {
        eprintln!(
            "bench_gate: FAILED — {} bench(es) regressed past {:.1}×:",
            regressions.len(),
            max_ratio
        );
        for r in &regressions {
            eprintln!("  {r}");
        }
    }
    if !drift.is_empty() {
        eprintln!(
            "bench_gate: FAILED — {} sweep curve(s) drifted past n^{:.2}:",
            drift.len(),
            max_scale_exponent
        );
        for d in &drift {
            eprintln!("  {d}");
        }
    }
    if regressions.is_empty() && drift.is_empty() {
        eprintln!(
            "bench_gate: OK — no bench slower than {max_ratio:.1}× its committed baseline, \
             no sweep curve past n^{max_scale_exponent:.2}"
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
