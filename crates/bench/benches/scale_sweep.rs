//! Entity-scale sweep — drain wall time as the stream grows 10³ → 10⁵
//! tasks (10⁶ behind `SCALE_SWEEP_FULL=1`), the regression harness
//! behind ROADMAP item 2 ("production scale").
//!
//! The workload is *constant-density*: sites live on a √n × √n grid
//! with fixed spacing, so the service area grows with the entity count
//! and each worker's disc covers the same handful of candidates at
//! every scale. Arrivals tick at a fixed rate under a fixed time
//! window, so the per-window live set is scale-independent too — total
//! work should therefore grow ~linearly in `n`, and any super-linear
//! drift (an accidental full-ledger scan per window, a rebuild that
//! touches all dead slots, a quadratic buffer drain) bends the
//! `scale_sweep/…/n10³ → n10⁵` curve upward. `bench_gate
//! --scale-sweep` fits the growth exponent between consecutive scales
//! and fails CI when it exceeds the sub-quadratic threshold.
//!
//! Per site `k` a worker arrives at `t = k` and a co-sited task one
//! half-radius away arrives in the same instant (workers sort first),
//! so GRD matches the pair inside its window and both entities leave —
//! except every fifth site, which is an orphan task with no worker and
//! expires after `task_ttl` windows (or is still pending at stream
//! end). Matched fractions are exact (4/5 of tasks), asserted before
//! any timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpta_core::{Method, Task, Worker};
use dpta_spatial::{Aabb, GridPartition, Point};
use dpta_stream::{
    run_sharded, ArrivalEvent, ArrivalStream, StreamConfig, StreamDriver, TaskArrival,
    WindowPolicy, WorkerArrival,
};
use std::hint::black_box;
use std::time::Duration;

/// Grid pitch between neighbouring sites; discs of radius
/// [`RADIUS`] never reach a neighbouring site, so the matching is a
/// disjoint union of singleton pairs at every scale.
const SPACING: f64 = 4.0;
const RADIUS: f64 = 1.0;
/// One site's arrivals per second; with [`WINDOW`]-second windows the
/// live set per window is ~[`WINDOW`] sites regardless of `n`.
const WINDOW: f64 = 120.0;

/// Side length (in sites) of the square occupied by `n` sites.
fn side(n: usize) -> usize {
    (n as f64).sqrt().ceil() as usize
}

/// The constant-density sweep stream for `n` task sites: one task per
/// site, a matching worker on all but every fifth site (⌈4n/5⌉ workers,
/// so ~1.8 n entities in total).
fn sweep_stream(n: usize) -> ArrivalStream {
    let side = side(n);
    let mut events = Vec::with_capacity(2 * n);
    for k in 0..n {
        let x = (k % side) as f64 * SPACING;
        let y = (k / side) as f64 * SPACING;
        let t = k as f64;
        if k % 5 != 4 {
            events.push(ArrivalEvent::Worker(WorkerArrival {
                id: k as u32,
                time: t,
                worker: Worker::new(Point::new(x, y), RADIUS),
            }));
        }
        events.push(ArrivalEvent::Task(TaskArrival {
            id: k as u32,
            time: t,
            task: Task::new(Point::new(x + 0.5 * RADIUS, y), 4.5),
        }));
    }
    ArrivalStream::new(events)
}

fn sweep_cfg() -> StreamConfig {
    StreamConfig {
        policy: WindowPolicy::ByTime { width: WINDOW },
        ..StreamConfig::default()
    }
}

/// The 4×4 partition over `n` sites' occupied square.
fn sweep_partition(n: usize) -> GridPartition {
    let extent = side(n) as f64 * SPACING;
    GridPartition::new(Aabb::from_extents(0.0, 0.0, extent, extent), 4, 4)
}

fn scale_sweep(c: &mut Criterion) {
    let cfg = sweep_cfg();
    let engine = Method::Grd.engine(&cfg.params);

    // The construction is exact at every scale: paired sites match,
    // orphan sites expire. Pin it once before timing anything.
    {
        let n = 1000;
        let report = StreamDriver::new(engine.as_ref(), cfg.clone()).run(&sweep_stream(n));
        let (matched, expired, pending) = report.assert_conservation();
        // Orphans arriving in the last `task_ttl` windows are still
        // pending when the stream ends; the rest have expired.
        assert_eq!(
            (matched, expired + pending),
            (n - n / 5, n / 5),
            "sweep stream lost its exact matching structure"
        );
    }

    let mut group = c.benchmark_group("scale_sweep");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(1000));

    let mut scales = vec![1_000usize, 10_000, 100_000];
    if std::env::var("SCALE_SWEEP_FULL").is_ok_and(|v| !v.is_empty() && v != "0") {
        scales.push(1_000_000);
    }
    for n in scales {
        let stream = sweep_stream(n);
        group.bench_with_input(
            BenchmarkId::new("drain", format!("n{n}")),
            &stream,
            |b, stream| {
                b.iter(|| {
                    black_box(
                        StreamDriver::new(engine.as_ref(), cfg.clone()).run(black_box(stream)),
                    )
                })
            },
        );
        let part = sweep_partition(n);
        group.bench_with_input(
            BenchmarkId::new("sharded4x4", format!("n{n}")),
            &stream,
            |b, stream| {
                b.iter(|| black_box(run_sharded(engine.as_ref(), black_box(stream), &cfg, &part)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, scale_sweep);
criterion_main!(benches);
