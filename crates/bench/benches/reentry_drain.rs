//! Session-API drain cost — wall time for the push-based
//! `StreamSession` to drain a bursty arrival stream (push every event,
//! close), serve-and-leave vs worker re-entry, per method.
//!
//! Tracked by `bench_gate` in `BENCH_stream.json` from the session
//! redesign onward: regressions in the push/advance/close path or in
//! the in-service bookkeeping show up here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpta_core::Method;
use dpta_stream::{
    ArrivalModel, ArrivalStream, ServiceModel, StreamConfig, StreamScenario, StreamSession,
    WindowPolicy,
};
use dpta_workloads::{Dataset, Scenario};
use std::hint::black_box;
use std::time::Duration;

fn bench_stream(scale: f64) -> ArrivalStream {
    StreamScenario {
        scenario: Scenario {
            dataset: Dataset::Normal,
            batch_size: ((1000.0 * scale).round() as usize).max(20),
            n_batches: 2,
            ..Scenario::default()
        },
        task_model: ArrivalModel::Bursty {
            base_rate: 0.05,
            burst_rate: 0.5,
            period: 600.0,
            burst_fraction: 0.25,
        },
        worker_model: ArrivalModel::Poisson { rate: 0.02 },
        initial_worker_fraction: 0.8,
    }
    .stream()
}

fn drain(engine: &dyn dpta_core::AssignmentEngine, cfg: &StreamConfig, stream: &ArrivalStream) {
    let mut session = StreamSession::new(engine, cfg.clone());
    for e in stream.events() {
        session.push(*e);
    }
    black_box(session.close());
}

fn reentry_drain(c: &mut Criterion) {
    let stream = bench_stream(0.1);
    let mut group = c.benchmark_group("reentry_drain");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    for (service_name, service) in [
        ("never", ServiceModel::Never),
        ("fixed240s", ServiceModel::Fixed { secs: 240.0 }),
    ] {
        for method in [Method::Puce, Method::Grd] {
            let cfg = StreamConfig {
                policy: WindowPolicy::ByTime { width: 300.0 },
                service,
                ..StreamConfig::default()
            };
            let engine = method.engine(&cfg.params);
            group.bench_with_input(
                BenchmarkId::new(method.name(), service_name),
                &stream,
                |b, stream| b.iter(|| drain(engine.as_ref(), &cfg, black_box(stream))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, reentry_drain);
criterion_main!(benches);
