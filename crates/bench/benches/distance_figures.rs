//! Figures 11–16 and 22–24 — average travel distance and its relative
//! deviation under the three sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpta_bench::{bench_instance, print_figures};
use dpta_core::{Method, RunParams};
use dpta_dp::SeededNoise;
use dpta_workloads::Dataset;
use std::hint::black_box;
use std::time::Duration;

fn distance_engines(c: &mut Criterion) {
    print_figures(&[
        "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig22", "fig23", "fig24",
    ]);

    let params = RunParams::default();
    let mut group = c.benchmark_group("distance_engines");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    for dataset in [Dataset::Chengdu, Dataset::Normal, Dataset::Uniform] {
        let inst = bench_instance(dataset, 11);
        for method in [Method::Pdce, Method::Dce] {
            let engine = method.engine(&params);
            let noise = SeededNoise::new(params.seed);
            group.bench_with_input(
                BenchmarkId::new(method.name(), dataset.name()),
                &inst,
                |b, inst| b.iter(|| black_box(engine.run(black_box(inst), &noise))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, distance_engines);
criterion_main!(benches);
